"""Minimal image output (binary PPM) with no third-party dependencies.

Examples save rendered frames for visual inspection; PPM keeps the library
dependency-free (any viewer and most converters read it).
"""

from __future__ import annotations

import numpy as np


def to_uint8(image, gamma=2.2):
    """Convert a float HDR image (premultiplied composite) to uint8 sRGB-ish.

    Values are clamped to [0, 1] and gamma-encoded.
    """
    image = np.asarray(image, dtype=np.float64)
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    clamped = np.clip(image, 0.0, 1.0)
    encoded = clamped ** (1.0 / gamma)
    return (encoded * 255.0 + 0.5).astype(np.uint8)


def write_ppm(path, image, gamma=2.2):
    """Write an ``(h, w, 3)`` float image to a binary PPM file."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"image must be (h, w, 3), got {image.shape}")
    data = to_uint8(image, gamma=gamma)
    height, width = data.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(data.tobytes())
    return path


def read_ppm(path):
    """Read a binary PPM written by :func:`write_ppm`; returns uint8 array."""
    with open(path, "rb") as handle:
        magic = handle.readline().strip()
        if magic != b"P6":
            raise ValueError(f"not a binary PPM file: {path}")
        dims = handle.readline().split()
        width, height = int(dims[0]), int(dims[1])
        maxval = int(handle.readline())
        if maxval != 255:
            raise ValueError(f"unsupported max value {maxval}")
        data = handle.read(width * height * 3)
    return np.frombuffer(data, dtype=np.uint8).reshape(height, width, 3)

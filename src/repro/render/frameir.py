"""FrameIR: one columnar frame representation shared by every consumer.

The rasteriser resolves each splat's coverage as *per-scanline pixel
intervals* (see :func:`repro.render.splat_raster._row_intervals`) and then
throws that structure away, leaving every downstream stage — quad
digestion, the flush planner, the backends — to rebuild fragment grouping
with full-stream sorts.  :class:`FrameIR` keeps the row-interval structure
alive on the emitted stream and derives the shared groupings *from it*:

* the **quad table rows** (2x2 quads ordered by ``(prim, tile, qpos)`` —
  the emission order :class:`~repro.render.fragstream.QuadTable` and the
  TC/TGC coalescers consume) come straight out of integer range
  arithmetic on the row intervals: scanline pairs form quad rows, tile
  splits cut them into *chunklets*, and only the chunklet list — two
  orders of magnitude smaller than the fragment stream — is ever sorted.
  In particular the quad-emission sort over shuffled ``(prim, tile,
  qpos)`` keys, the most expensive single step of legacy digestion, is
  gone entirely;
* the **(prim, screen-tile) group ranges** that
  :class:`~repro.hwmodel.pipeline.DrawWorkload` and
  :func:`~repro.hwmodel.flushplan.build_flush_plan` iterate are chunklet
  runs, so digestion reads them off the IR instead of re-deriving them
  with per-quad reductions;
* the **fragment grouping** (the permutation gathering the stream into
  per-quad runs) is materialised lazily — like the quad table's
  aggregate columns, it is only needed once the draw executes — from
  per-quad span arithmetic, with no fragment sort.

Exactness is the contract: the IR-built quad table is **bit-identical** —
same rows in the same order, same aggregate columns — to the legacy
sort-based construction, which is retained behind ``ir="legacy"`` as the
oracle and pinned by the fuzz tests in ``tests/test_frameir.py``.

The ``ir`` knob
---------------
``"auto"``
    Use the IR when the stream carries one (streams emitted by
    :func:`~repro.render.splat_raster.rasterize_splats`), fall back to the
    legacy path otherwise (hand-built streams, the scalar rasteriser).
``"frameir"``
    Require the IR; raise if the stream has none.
``"legacy"``
    Always use the original sort-based digestion (the oracle).

The process-wide default is ``"auto"`` and can be overridden with the
``REPRO_IR`` environment variable — CI runs the golden raster and golden
flush suites under both ``REPRO_IR=frameir`` and ``REPRO_IR=legacy``.
"""

from __future__ import annotations

import numpy as np

from repro import faults, knobs
from repro.knobs import IR_MODES  # re-exported; declared centrally
from repro.utils.arrays import popcount4, segment_boundaries


def resolve_ir(ir=None):
    """Normalise an ``ir`` knob value, defaulting to ``$REPRO_IR`` / auto."""
    if ir is None:
        ir = knobs.env("REPRO_IR")
    if ir not in IR_MODES:
        raise ValueError(f"unknown ir mode {ir!r}; choose from {IR_MODES}")
    return ir


class GroupIR:
    """(primitive, screen-tile) group ranges over the IR's quad order.

    Mirrors the arrays :class:`~repro.hwmodel.pipeline.DrawWorkload`
    derives from the quad table — group ``g`` covers quad rows
    ``[starts[g], ends[g])`` — plus the per-group raster-tile counts, all
    computed from the chunklet pass instead of per-quad reductions.
    """

    __slots__ = ("starts", "ends", "prim", "tile", "grid", "n_rtiles")

    def __init__(self, starts, ends, prim, tile, grid, n_rtiles):
        self.starts = starts
        self.ends = ends
        self.prim = prim
        self.tile = tile
        self.grid = grid
        self.n_rtiles = n_rtiles

    def __len__(self):
        return self.starts.shape[0]


class QuadIR:
    """The IR's quad view: per-quad metadata plus lazy fragment reductions.

    Quads are ordered by ``(prim, tile_id, qpos)`` — exactly the emission
    order of the legacy :meth:`~repro.render.fragstream.QuadTable.
    from_stream` table, so no ``emit`` permutation exists on this path.

    Only the :class:`GroupIR` of (prim, screen-tile) ranges — what the
    digest phase actually consumes — is materialised up front.  The
    int64 per-quad metadata columns (:meth:`meta`: ``prim_ids``/``qx``/
    ``qy``/``tile_ids``/``grid_ids``/``qpos``, the :class:`~repro.render.
    fragstream.QuadTable` schema) and the fragment slots of the
    aggregate reductions (:meth:`slots`) expand lazily from the chunklet
    ranges when the draw first touches them.

    Per-quad aggregates never touch a permuted fragment stream: a quad
    holds at most four fragments — up to two consecutive on its even
    scanline, up to two on its odd scanline — and row intervals are
    contiguous fragment runs, so all four emission offsets are direct
    integer arithmetic (the *slot table*).  Each aggregate column is then
    four padded gathers combined with adds or ORs; the quad-table
    aggregates are integer sums and bitwise ORs, both associative, so the
    regrouped reduction is exactly the legacy per-quad value.
    """

    def __init__(self, groups, meta_state, slot_state, n_quads,
                 n_fragments):
        self.groups = groups
        self._meta_state = meta_state
        self._slot_state = slot_state
        self._n_quads = int(n_quads)
        self._n_fragments = int(n_fragments)
        self._meta = None
        self._slots = None
        self._frag_counts = None

    def __len__(self):
        return self._n_quads

    def meta(self):
        """The per-quad metadata columns, built on first use.

        Digestion itself only needs the group ranges (eager above); the
        metadata columns — like the aggregate columns — are first touched
        when the draw executes, so their expansion from the chunklet list
        is deferred to the same place.
        """
        if self._meta is None:
            (c_pair, c_qa, nq_c, q_offsets, p_prim, p_qy,
             tiles_x, grids_x) = self._meta_state
            n_quads = self._n_quads
            # Fused ragged expansion: ``repeat(base - offset)`` plus a
            # global arange *is* ``base + local``.
            q_pair = np.repeat(c_pair, nq_c)
            q_qx = (np.repeat(c_qa - q_offsets[:-1], nq_c)
                    + np.arange(n_quads, dtype=np.int64))
            q_qy = p_qy[q_pair]
            tile_y = q_qy >> 3
            tile_x = q_qx >> 3
            self._meta = {
                "prim_ids": p_prim[q_pair],
                "qx": q_qx,
                "qy": q_qy,
                "tile_ids": tile_y * tiles_x + tile_x,
                "grid_ids": (tile_y >> 2) * grids_x + (tile_x >> 2),
                "qpos": (q_qy & 7) * 8 + (q_qx & 7),
                "q_pair": q_pair,
            }
            self._meta_state = None
        return self._meta

    def slots(self):
        """The four per-quad fragment slots, as emission-stream offsets.

        Returns ``(s0, s1, s2, s3)`` int64 arrays — first/second fragment
        of the even scanline span, then of the odd span — where absent
        slots hold ``n_fragments`` (reductions append a zero pad there).
        Built on first use: the digest phase never needs it, only the
        draw's aggregate columns do.
        """
        if self._slots is None:
            (e_xlo, e_xhi, o_xlo, o_xhi,
             e_fstart, o_fstart) = self._slot_state
            meta = self.meta()
            q_pair = meta["q_pair"]
            n = np.int64(self._n_fragments)
            x2 = meta["qx"] << 1
            qe_xlo = e_xlo[q_pair]
            qo_xlo = o_xlo[q_pair]
            e_lo = np.maximum(x2, qe_xlo)
            e_hi = np.minimum(x2 + 1, e_xhi[q_pair])
            o_lo = np.maximum(x2, qo_xlo)
            o_hi = np.minimum(x2 + 1, o_xhi[q_pair])
            # Sentinel bounds of absent scanlines clip to negative counts.
            ec = np.maximum(e_hi - e_lo + 1, 0)
            oc = np.maximum(o_hi - o_lo + 1, 0)
            e_src = e_fstart[q_pair] + (e_lo - qe_xlo)
            o_src = o_fstart[q_pair] + (o_lo - qo_xlo)
            self._slots = (np.where(ec >= 1, e_src, n),
                           np.where(ec == 2, e_src + 1, n),
                           np.where(oc >= 1, o_src, n),
                           np.where(oc == 2, o_src + 1, n))
            self._frag_counts = (ec + oc).astype(np.int64)
            if int(self._frag_counts.sum()) != self._n_fragments:
                raise RuntimeError(
                    "FrameIR quad slots lost fragments: got "
                    f"{int(self._frag_counts.sum())}, stream has "
                    f"{self._n_fragments}")
            self._slot_state = None
        return self._slots

    def frag_counts(self):
        """Covered pixels per quad (the ``n_fragments`` column)."""
        self.slots()
        return self._frag_counts

    def reduce_add(self, values):
        """Per-quad sums of an emission-order integer array (exact: the
        quad-table count columns are integer sums, so regrouping by slot
        is associative)."""
        s0, s1, s2, s3 = self.slots()
        padded = np.concatenate((values, np.zeros(1, dtype=values.dtype)))
        out = padded[s0].astype(np.int64)
        out += padded[s1]
        out += padded[s2]
        out += padded[s3]
        return out

    def reduce_or(self, values):
        """Per-quad bitwise OR of an emission-order integer array."""
        s0, s1, s2, s3 = self.slots()
        padded = np.concatenate((values, np.zeros(1, dtype=values.dtype)))
        out = padded[s0].astype(np.int64)
        out |= padded[s1]
        out |= padded[s2]
        out |= padded[s3]
        return out


class FrameIR:
    """Columnar raster structure of one draw call.

    Parameters (all per *live* scanline row, in emission order)
    ----------------------------------------------------------
    row_prim:
        Emitting primitive id (non-decreasing).
    row_y:
        Scanline y (ascending within each primitive).
    row_xlo, row_xhi:
        Inclusive covered pixel interval of the row.
    row_fstart:
        Offset of the row's first fragment in the emitted stream (rows
        are contiguous fragment runs: ``row_fstart[r] + (x - row_xlo[r])``
        is fragment ``(x, row_y[r])``).
    n_fragments, width, height:
        Stream geometry.

    The quad view is built lazily on first use and cached; building it
    costs a handful of vectorised passes over rows, chunklets and quads
    plus a sort of the chunklet list (tens of thousands of entries for
    millions of fragments) — never a fragment-level sort.
    """

    def __init__(self, row_prim, row_y, row_xlo, row_xhi, row_fstart,
                 n_fragments, width, height):
        self.row_prim = row_prim
        self.row_y = row_y
        self.row_xlo = row_xlo
        self.row_xhi = row_xhi
        self.row_fstart = row_fstart
        self.n_fragments = int(n_fragments)
        self.width = int(width)
        self.height = int(height)
        self._quads = None

    @property
    def n_rows(self):
        return self.row_prim.shape[0]

    def quads(self):
        """The cached :class:`QuadIR` of this frame (built on first use)."""
        if self._quads is None:
            if faults.ENABLED:
                rule = faults.checkpoint("digest")
                if rule is not None:
                    # FrameIR digestion has no independent integrity
                    # oracle at this layer; model the corruption as
                    # immediately detected so the executor can heal by
                    # degrading to the legacy digestion path.
                    faults.corrupt_detected("digest")
            self._quads = self._build_quads()
        return self._quads

    def _build_quads(self):
        width, height = self.width, self.height
        tiles_x = -(-width // 16)
        grids_x = -(-tiles_x // 4)
        empty = np.empty(0, dtype=np.int64)
        if self.n_rows == 0:
            groups = GroupIR(empty, empty, empty, empty, empty, empty)
            quads = QuadIR(groups, meta_state=None, slot_state=None,
                           n_quads=0, n_fragments=0)
            quads._meta = {name: empty for name in
                           ("prim_ids", "qx", "qy", "tile_ids", "grid_ids",
                            "qpos", "q_pair")}
            quads._slots = (empty, empty, empty, empty)
            quads._frag_counts = empty
            return quads

        prim = self.row_prim
        y = self.row_y
        xlo = self.row_xlo
        xhi = self.row_xhi
        fstart = self.row_fstart

        # --- quad-row pairs: adjacent scanlines sharing (prim, y // 2).
        # Rows arrive sorted by (prim, y) with one interval per scanline,
        # so each pair is 1 or 2 consecutive rows; a 2-row pair is always
        # (even y, odd y) in that order.
        qy_row = y >> 1
        pair_key = prim * np.int64(-(-height // 2)) + qy_row
        pstarts = segment_boundaries(pair_key)
        pends = np.concatenate(
            (pstarts[1:], np.asarray([self.n_rows], dtype=np.int64)))
        two = (pends - pstarts) == 2
        first_parity_odd = (y[pstarts] & 1) == 1
        e_row = np.where(two | ~first_parity_odd, pstarts, -1)
        o_row = np.where(two, pstarts + 1,
                         np.where(first_parity_odd, pstarts, -1))
        n_pairs = pstarts.shape[0]
        p_prim = prim[pstarts]
        p_qy = qy_row[pstarts]

        e_ok = e_row >= 0
        o_ok = o_row >= 0
        e_idx = np.maximum(e_row, 0)
        o_idx = np.maximum(o_row, 0)
        # Sentinel bounds for absent scanlines (an empty interval far
        # outside any real coordinate) make every later clip produce a
        # zero-length span without separate validity masks.
        big = np.int64(1) << 40
        e_xlo = np.where(e_ok, xlo[e_idx], big)
        e_xhi = np.where(e_ok, xhi[e_idx], -big)
        o_xlo = np.where(o_ok, xlo[o_idx], big)
        o_xhi = np.where(o_ok, xhi[o_idx], -big)
        e_fstart = fstart[e_idx]
        o_fstart = fstart[o_idx]

        # --- per-pair quad-x runs.  The pair's quad columns are the union
        # of its two rows' qx ranges: one run when they overlap or touch,
        # two runs (ascending) when a steep splat leaves a gap.
        a_e, b_e = e_xlo >> 1, e_xhi >> 1
        a_o, b_o = o_xlo >> 1, o_xhi >> 1
        both = e_ok & o_ok
        merged = both & (np.maximum(a_e, a_o) <= np.minimum(b_e, b_o) + 1)
        e_first = a_e <= a_o
        one_a = np.where(e_ok, a_e, a_o)
        one_b = np.where(e_ok, b_e, b_o)
        run1_a = np.where(both, np.minimum(a_e, a_o), one_a)
        run1_b = np.where(merged, np.maximum(b_e, b_o),
                          np.where(both, np.where(e_first, b_e, b_o), one_b))
        run2_ok = both & ~merged
        run2_a = np.where(e_first, a_o, a_e)
        run2_b = np.where(e_first, b_o, b_e)

        run_a = np.empty(2 * n_pairs, dtype=np.int64)
        run_b = np.empty(2 * n_pairs, dtype=np.int64)
        run_ok = np.empty(2 * n_pairs, dtype=bool)
        run_a[0::2], run_a[1::2] = run1_a, run2_a
        run_b[0::2], run_b[1::2] = run1_b, run2_b
        run_ok[0::2], run_ok[1::2] = True, run2_ok
        run_pair = np.repeat(np.arange(n_pairs, dtype=np.int64), 2)
        keep = np.flatnonzero(run_ok)
        run_a, run_b, run_pair = run_a[keep], run_b[keep], run_pair[keep]

        # --- chunklets: runs split at screen-tile columns (8 quads).
        t0 = run_a >> 3
        t1 = run_b >> 3
        c_counts = t1 - t0 + 1
        n_chunks = int(c_counts.sum())
        c_offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(c_counts)[:-1]))
        # Fused ragged expansion: ``repeat(base - offset)`` plus a global
        # arange *is* ``base + local``.
        c_tx = (np.repeat(t0 - c_offsets, c_counts)
                + np.arange(n_chunks, dtype=np.int64))
        c_pair = np.repeat(run_pair, c_counts)
        c_qa = np.maximum(np.repeat(run_a, c_counts), c_tx << 3)
        c_qb = np.minimum(np.repeat(run_b, c_counts), (c_tx << 3) + 7)

        # Emission order of the legacy table is (prim, tile, qpos) =
        # (prim, tile_y, tile_x, qy & 7, qx asc).  Chunklets arrive
        # (prim, qy, qx)-ordered; one stable sort of the *chunklet list*
        # (not the fragments) produces the emission order, with same-key
        # chunklets (two runs of one pair in one tile) kept qx-ascending.
        c_ty = p_qy[c_pair] >> 3
        c_iy = p_qy[c_pair] & 7
        c_key = ((p_prim[c_pair] * (-(-height // 16)) + c_ty) * tiles_x
                 + c_tx) * 8 + c_iy
        c_order = np.argsort(c_key, kind="stable")
        c_pair = c_pair[c_order]
        c_tx = c_tx[c_order]
        c_qa = c_qa[c_order]
        c_qb = c_qb[c_order]
        c_key = c_key[c_order]

        # --- quads exist only as chunklet ranges at this point; their
        # metadata columns and fragment slots expand lazily (see
        # :meth:`QuadIR.meta` / :meth:`QuadIR.slots`) once the draw
        # touches them.
        nq_c = c_qb - c_qa + 1
        q_offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(nq_c)))
        n_quads = int(q_offsets[-1])

        groups = _build_groups(c_key, c_pair, c_tx, c_qa, c_qb, q_offsets,
                               n_quads, p_prim, p_qy, tiles_x, grids_x)
        meta_state = (c_pair, c_qa, nq_c, q_offsets, p_prim, p_qy,
                      tiles_x, grids_x)
        slot_state = (e_xlo, e_xhi, o_xlo, o_xhi, e_fstart, o_fstart)
        return QuadIR(groups, meta_state, slot_state, n_quads,
                      self.n_fragments)


def _build_groups(c_key, c_pair, c_tx, c_qa, c_qb, q_offsets, n_quads,
                  p_prim, p_qy, tiles_x, grids_x):
    """(prim, tile) group ranges from the sorted chunklet list.

    Chunklets are emission-ordered, so a (prim, tile) group is a
    consecutive chunklet run — its boundaries are where the chunklet key
    changes once the quad-position bits are dropped.  The per-group
    raster-tile count (8x8 px raster tiles inside the 16x16 screen tile)
    reduces over chunklet quad ranges: a chunklet's quads lie in one
    half-row of the tile's 2x2 raster-tile grid, covering its left half
    iff it starts left of quad column 4 and its right half iff it ends at
    or past it.
    """
    g_key = c_key >> 3
    cg_starts = segment_boundaries(g_key)
    group_starts = q_offsets[cg_starts]
    group_ends = np.concatenate((group_starts[1:], [np.int64(n_quads)]))
    g_pair = c_pair[cg_starts]
    tile_y = p_qy[g_pair] >> 3
    group_prim = p_prim[g_pair]
    group_tile = tile_y * tiles_x + c_tx[cg_starts]
    group_grid = (tile_y >> 2) * grids_x + (c_tx[cg_starts] >> 2)
    rt_base = ((p_qy[c_pair] & 7) >> 2) * 2
    bits = (np.where((c_qa & 7) < 4, np.int64(1) << rt_base, 0)
            | np.where((c_qb & 7) >= 4, np.int64(2) << rt_base, 0))
    rt_mask = np.bitwise_or.reduceat(bits, cg_starts)
    group_n_rtiles = popcount4(rt_mask)
    return GroupIR(group_starts, group_ends, group_prim, group_tile,
                   group_grid, group_n_rtiles)

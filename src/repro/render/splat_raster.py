"""Batched rasterisation of depth-sorted 2D splats into a fragment stream.

This models the fixed-function rasteriser's *coverage* decision: a pixel is
covered when its centre lies inside the splat's tight oriented bounding box
(the two triangles of Figure 4).  Per-fragment alpha is evaluated from the
Gaussian conic exactly as the fragment shader would; fragments whose alpha
falls below ``1/255`` remain in the stream flagged as *pruned* (they are
shaded but never blended), matching the paper's "alpha pruning".

Two implementations produce **bit-identical** streams (enforced by the
golden tests in ``tests/test_golden_raster.py``):

:func:`rasterize_splats`
    The batched production path.  Splat OBBs are binned into fixed-size
    screen tiles in one vectorised pass (the :class:`TileBinning` carried on
    the emitted stream, which downstream tile-coalescing consumers reuse
    instead of re-deriving it), coverage is resolved per scanline row as an
    exact pixel interval (the OBB is convex, so each row's covered set is
    contiguous — see :func:`_row_intervals`), and conic alpha is evaluated
    for all fragments with broadcasting in cache-sized blocks.  No Python
    loop over splats.

:func:`rasterize_splats_scalar`
    The original per-splat reference loop, kept as the golden baseline for
    equivalence tests and as the ``repro bench --suite rasterize``
    comparison point.

Bit-identity holds because both paths evaluate the same IEEE-754 double
expressions per pixel in the same operand order; the batched path only
changes *which* pixels are visited, never the arithmetic.  Fragments are
emitted primitive-major, row-major per splat, exactly like the loop.
"""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.gaussians.projection import ALPHA_EPS, ALPHA_MAX, Splat2D
from repro.render.fragstream import TILE_SIZE, FragmentStream
from repro.render.frameir import FrameIR, resolve_ir
from repro.utils.validation import check_positive

_EPS = float(np.finfo(np.float64).eps)

#: Fragment block size for the batched alpha evaluation.  Blocks of ~64k
#: doubles keep every intermediate in L2, which is ~3x faster per pass than
#: streaming whole-frame arrays through DRAM.
_FRAGMENT_BLOCK = 65536


def _ragged_arange(counts):
    """``(owner, local)`` indices of the ragged range family ``counts``.

    For segment lengths ``[2, 3]`` returns owners ``[0, 0, 1, 1, 1]`` and
    local indices ``[0, 1, 0, 1, 2]`` — the flattening every batched stage
    here uses (tile pairs per splat, rows per splat, pixels per row).
    """
    counts = np.asarray(counts)
    total = int(counts.sum())
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    owner = np.repeat(np.arange(counts.shape[0]), counts)
    local = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    return owner, local


class TileBinning:
    """Splat-OBB to screen-tile binning of one draw call.

    Produced as a by-product of :func:`rasterize_splats` (one vectorised
    pass over the clipped bounding boxes) and attached to the emitted
    :class:`~repro.render.fragstream.FragmentStream`, so downstream
    consumers — the CUDA path's tile duplication, the hardware model's tile
    coalescers — can reuse the binning instead of re-deriving or re-sorting
    it.

    Attributes
    ----------
    n_splats:
        Splats in the draw call (including off-screen ones).
    splat_ids:
        ``(k,)`` indices of the splats that rasterise (draw order).
    tx0, tx1, ty0, ty1:
        ``(k,)`` inclusive tile-coordinate spans of each kept splat's
        clipped bounding box.
    pair_splat, pair_tile:
        Flattened (splat, tile) pairs, splat-major then tile-row-major —
        the exact set of tiles whose pixels the rasteriser visits.
        Materialised lazily on first access (the per-frame hot path only
        needs the spans and counts).
    tiles_x, tiles_y, tile_size:
        Screen-tile grid geometry (16x16 px tiles, row-major ids).
    """

    def __init__(self, n_splats, splat_ids, tx0, tx1, ty0, ty1,
                 tiles_x, tiles_y, tile_size=TILE_SIZE):
        self.n_splats = int(n_splats)
        self.splat_ids = splat_ids
        self.tx0 = tx0
        self.tx1 = tx1
        self.ty0 = ty0
        self.ty1 = ty1
        self.tiles_x = int(tiles_x)
        self.tiles_y = int(tiles_y)
        self.tile_size = int(tile_size)
        self.tiles_per_splat = (tx1 - tx0 + 1) * (ty1 - ty0 + 1)
        self._pairs = None

    def _build_pairs(self):
        ntx = self.tx1 - self.tx0 + 1
        if int(self.tiles_per_splat.sum()):
            owner, k = _ragged_arange(self.tiles_per_splat)
            ptx = self.tx0[owner] + k % ntx[owner]
            pty = self.ty0[owner] + k // ntx[owner]
            self._pairs = (self.splat_ids[owner], pty * self.tiles_x + ptx)
        else:
            empty = np.empty(0, dtype=np.int64)
            self._pairs = (empty, empty)

    @property
    def pair_splat(self):
        if self._pairs is None:
            self._build_pairs()
        return self._pairs[0]

    @property
    def pair_tile(self):
        if self._pairs is None:
            self._build_pairs()
        return self._pairs[1]

    @property
    def n_pairs(self):
        """Total (splat, tile) pairs — the CUDA path's duplication count."""
        return int(self.tiles_per_splat.sum())

    def pairs_per_splat(self):
        """``(n_splats,)`` tiles each splat rasterises into (0 off-screen).

        Unlike the conservative estimate of
        :func:`repro.swrender.tiling.assign_tiles`, these counts are exact:
        they come from the clipped pixel bounds the rasteriser actually
        visits.
        """
        counts = np.zeros(self.n_splats, dtype=np.int64)
        counts[self.splat_ids] = self.tiles_per_splat
        return counts

    @classmethod
    def empty(cls, n_splats, width, height):
        e = np.empty(0, dtype=np.int64)
        return cls(n_splats, e, e, e, e, e,
                   tiles_x=-(-int(width) // TILE_SIZE),
                   tiles_y=-(-int(height) // TILE_SIZE))


def _empty_stream(splats, width, height, ir="auto"):
    empty = np.empty(0, dtype=np.int64)
    frameir = None
    if ir != "legacy":
        frameir = FrameIR(empty, empty, empty, empty, empty,
                          n_fragments=0, width=width, height=height)
    return FragmentStream(
        prim_ids=np.empty(0, dtype=np.int32),
        x=np.empty(0, dtype=np.int32),
        y=np.empty(0, dtype=np.int32),
        alphas=np.empty(0, dtype=np.float32),
        prim_colors=splats.colors,
        width=width,
        height=height,
        binning=TileBinning.empty(len(splats), width, height),
        frameir=frameir,
        ir=ir,
    )


def _clipped_bounds(splats, width, height):
    """Kept splat ids + clipped integer pixel bounds, matching the scalar
    loop's ``max(int(floor), 0)`` / ``min(int(ceil), edge)`` exactly."""
    bboxes = splats.bounding_boxes()
    positive = (splats.radii > 0.0).all(axis=1)
    safe = np.where(positive[:, None], bboxes, 0.0)
    x0 = np.maximum(np.floor(safe[:, 0]), 0.0).astype(np.int64)
    y0 = np.maximum(np.floor(safe[:, 1]), 0.0).astype(np.int64)
    x1 = np.minimum(np.ceil(safe[:, 2]), width - 1.0).astype(np.int64)
    y1 = np.minimum(np.ceil(safe[:, 3]), height - 1.0).astype(np.int64)
    keep = positive & (x1 >= x0) & (y1 >= y0)
    sid = np.flatnonzero(keep)
    return sid, x0[sid], y0[sid], x1[sid], y1[sid]


def rasterize_splats(splats, width, height, max_fragments=200_000_000,
                     jobs=None, ir=None):
    """Rasterise sorted splats into a :class:`FragmentStream` (batched).

    Parameters
    ----------
    splats:
        :class:`Splat2D` already sorted front-to-back (draw order ==
        blending order).
    width, height:
        Framebuffer size in pixels.
    max_fragments:
        Safety valve: raise rather than exhaust memory if the workload
        explodes (e.g. a degenerate scene with screen-sized splats).  The
        batched path counts fragments *before* materialising them, so the
        guard fires without allocating the stream.
    jobs:
        Worker threads for the fragment-fill stage.  The ~64k-fragment
        blocks are mutually independent (each writes a disjoint output
        slice), so they fan out over the engine's frame executor
        (:func:`repro.engine.executor.run_frames`); the stream is
        bit-identical for any ``jobs`` — block boundaries and all
        arithmetic are unchanged, only the wall-clock schedule differs.
        ``None``/``1`` keeps the single-threaded loop.
    ir:
        Frame-IR mode (see :mod:`repro.render.frameir`): ``"auto"`` /
        ``"frameir"`` attach a :class:`~repro.render.frameir.FrameIR`
        carrying the raster's row-interval structure for downstream
        digestion; ``"legacy"`` emits a bare stream so every consumer
        takes the original sort-based paths.  ``None`` follows the
        process default (``$REPRO_IR`` or ``"auto"``).  The fragment
        arrays are bit-identical in every mode.

    Returns
    -------
    :class:`FragmentStream` with fragments in primitive-major emission
    order, bit-identical to :func:`rasterize_splats_scalar`, carrying the
    draw call's :class:`TileBinning` in ``stream.binning``.
    """
    if not isinstance(splats, Splat2D):
        raise TypeError(f"splats must be a Splat2D, got {type(splats).__name__}")
    width = int(check_positive("width", width))
    height = int(check_positive("height", height))
    ir = resolve_ir(ir)
    if faults.ENABLED:
        rule = faults.checkpoint("rasterize")
        if rule is not None:
            # No corruptible data channel here: a corrupted raster would
            # be undetectable downstream (and break bit-identity), so
            # model it as detected at the source.
            faults.corrupt_detected("rasterize")

    sid, x0, y0, x1, y1 = _clipped_bounds(splats, width, height)
    if sid.size == 0:
        return _empty_stream(splats, width, height, ir=ir)

    binning = TileBinning(
        len(splats), sid,
        x0 // TILE_SIZE, x1 // TILE_SIZE, y0 // TILE_SIZE, y1 // TILE_SIZE,
        tiles_x=-(-width // TILE_SIZE), tiles_y=-(-height // TILE_SIZE))

    rows = _row_intervals(splats, sid, x0, y0, x1, y1)
    (rs, yrow, dy, xlo, xhi, lengths) = rows
    total = int(lengths.sum())
    if total > max_fragments:
        raise MemoryError(
            f"fragment stream exceeds max_fragments={max_fragments}; "
            "reduce scene size or resolution")
    if total == 0:
        stream = _empty_stream(splats, width, height, ir=ir)
        stream.binning = binning
        return stream

    live = np.flatnonzero(lengths > 0)
    fstarts = np.concatenate(([0], np.cumsum(lengths[live])))
    prim_ids, x, y, alphas = _fill_fragments(
        splats, sid, rs, yrow, dy, xlo, xhi, lengths, total,
        live=live, fstarts=fstarts, jobs=jobs)
    frameir = None
    if ir != "legacy":
        # The IR carries the raster's own row-interval structure (one
        # covered pixel interval per live scanline, contiguous fragment
        # runs) — the source every IR-derived grouping is built from.
        frameir = FrameIR(
            row_prim=sid[rs[live]], row_y=yrow[live],
            row_xlo=xlo[live], row_xhi=xhi[live],
            row_fstart=fstarts[:-1], n_fragments=total,
            width=width, height=height)
    # Coordinates come from bounds clipped to the framebuffer and prim ids
    # from splat rows, so the stream skips the range re-validation.
    return FragmentStream(
        prim_ids=prim_ids, x=x, y=y, alphas=alphas,
        prim_colors=splats.colors, width=width, height=height,
        binning=binning, validate=False, frameir=frameir, ir=ir)


def _row_intervals(splats, sid, x0, y0, x1, y1):
    """Per-scanline covered pixel intervals, exact w.r.t. the scalar test.

    For every bounding-box row of every kept splat, the set of covered
    pixels (``|u| <= r0 and |v| <= r1`` with ``u``/``v`` the float64 OBB
    projections) is contiguous: ``u(x)`` and ``v(x)`` are monotone in ``x``
    even under IEEE rounding (``x + 0.5`` is exact and multiplication /
    addition are monotone), so each slab constraint admits an interval of
    pixels and their intersection is an interval.

    The interval endpoints are first *estimated* by solving the two slab
    inequalities in floating point, then *snapped* with the exact per-pixel
    test: the estimate carries a computable error bound (``err`` below);
    rows where it is below a quarter pixel need at most one snap step per
    endpoint, and the rare rows where the bound is loose (near-degenerate
    axis projections) fall back to an exact scan of the whole row.
    """
    cx = splats.centers[sid, 0]
    p0 = splats.axes[sid, 0, 0]
    q0 = splats.axes[sid, 0, 1]
    p1 = splats.axes[sid, 1, 0]
    q1 = splats.axes[sid, 1, 1]
    r0 = splats.radii[sid, 0]
    r1 = splats.radii[sid, 1]

    h = y1 - y0 + 1
    n_rows = int(h.sum())
    rs, local = _ragged_arange(h)
    yrow = y0[rs] + local
    cxr = cx[rs]
    dy = (yrow + 0.5) - splats.centers[sid, 1][rs]

    p0r, q0r, r0r = p0[rs], q0[rs], r0[rs]
    p1r, q1r, r1r = p1[rs], q1[rs], r1[rs]
    t0 = dy * q0r
    t1 = dy * q1r
    x0r, x1r = x0[rs], x1[rs]

    lo = np.full(n_rows, -np.inf)
    hi = np.full(n_rows, np.inf)
    trusted = np.ones(n_rows, dtype=bool)
    row_empty = np.zeros(n_rows, dtype=bool)
    shift = cxr - 0.5
    for p, t, r in ((p0r, t0, r0r), (p1r, t1, r1r)):
        nz = p != 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            e1 = (-r - t) / p
            e2 = (r - t) / p
            err = 16.0 * _EPS * ((r + np.abs(t)) / np.abs(p) + np.abs(cxr) + 1.0)
        lo = np.where(nz, np.maximum(lo, np.minimum(e1, e2) + shift), lo)
        hi = np.where(nz, np.minimum(hi, np.maximum(e1, e2) + shift), hi)
        # A zero x-projection makes the constraint row-wide constant; the
        # per-pixel test reduces to |t| <= r exactly (dx * 0 + t == t).
        row_empty |= ~nz & ~(np.abs(t) <= r)
        trusted &= np.where(nz, err < 0.25, True)

    xlo = np.clip(np.ceil(lo), x0r, x1r).astype(np.int64)
    xhi = np.clip(np.floor(hi), x0r, x1r).astype(np.int64)

    def cov(xi):
        """The exact scalar-path coverage test at pixel column ``xi``."""
        dx = (xi + 0.5) - cxr
        return ((np.abs(dx * p0r + t0) <= r0r)
                & (np.abs(dx * p1r + t1) <= r1r))

    # One snap step per endpoint corrects the <= 1 px estimate error.
    step_out = cov(xlo - 1) & (xlo - 1 >= x0r)
    xlo = np.where(step_out, xlo - 1, np.where(cov(xlo), xlo, xlo + 1))
    step_out = cov(xhi + 1) & (xhi + 1 <= x1r)
    xhi = np.where(step_out, xhi + 1, np.where(cov(xhi), xhi, xhi - 1))
    valid = ~row_empty & (xlo <= xhi) & cov(xlo) & cov(xhi)

    fallback = np.flatnonzero(~trusted & ~row_empty)
    if fallback.size:
        first, last = _scan_rows_exact(
            fallback, x0r, x1r, cxr, p0r, t0, r0r, p1r, t1, r1r)
        xlo[fallback] = first
        xhi[fallback] = last
        valid[fallback] = last >= first

    lengths = np.where(valid, xhi - xlo + 1, 0)
    return rs, yrow, dy, xlo, xhi, lengths


def _scan_rows_exact(rows, x0r, x1r, cxr, p0r, t0, r0r, p1r, t1, r1r):
    """Exact per-pixel scan of ``rows`` (the no-estimate fallback path)."""
    widths = x1r[rows] - x0r[rows] + 1
    starts = np.concatenate(([0], np.cumsum(widths)[:-1]))
    owner, local = _ragged_arange(widths)
    xs = x0r[rows][owner] + local
    sel = rows[owner]
    dx = (xs + 0.5) - cxr[sel]
    covered = ((np.abs(dx * p0r[sel] + t0[sel]) <= r0r[sel])
               & (np.abs(dx * p1r[sel] + t1[sel]) <= r1r[sel]))
    sentinel = int(x1r.max()) + 2
    first = np.minimum.reduceat(np.where(covered, xs, sentinel), starts)
    last = np.maximum.reduceat(np.where(covered, xs, -1), starts)
    return first, last


def _fill_fragments(splats, sid, rs, yrow, dy, xlo, xhi, lengths, total,
                    live=None, fstarts=None, jobs=None):
    """Materialise the fragment arrays from snapped row intervals.

    Every arithmetic step mirrors the scalar loop's expression order
    operation for operation (see module docstring), evaluated in blocks of
    ~64k fragments so all intermediates stay cache-resident.  Blocks write
    disjoint output slices, so with ``jobs > 1`` they run across the
    engine's thread executor with bit-identical results (NumPy releases
    the GIL inside the ufunc loops, so the conic/alpha math genuinely
    overlaps).  ``live``/``fstarts`` (live-row indices and fragment
    offsets) may be passed in when the caller already computed them.
    """
    if live is None:
        live = np.flatnonzero(lengths > 0)
    rsl = rs[live]
    counts = lengths[live]
    if fstarts is None:
        fstarts = np.concatenate(([0], np.cumsum(counts)))

    row_cx = splats.centers[sid, 0][rsl]
    row_a = splats.conics[sid, 0][rsl]
    row_b = splats.conics[sid, 1][rsl]
    row_op = splats.opacities[sid][rsl]
    row_dy = dy[live]
    # c * cdy * cdy is row-constant; precompute it with the scalar path's
    # exact association: (c * cdy) * cdy.
    row_cyy = (splats.conics[sid, 2][rsl] * row_dy) * row_dy
    row_y32 = yrow[live].astype(np.int32)
    row_prim32 = sid[rsl].astype(np.int32)
    row_shift = fstarts[:-1] - xlo[live]

    prim_ids = np.empty(total, dtype=np.int32)
    x_out = np.empty(total, dtype=np.int32)
    y_out = np.empty(total, dtype=np.int32)
    alphas = np.empty(total, dtype=np.float32)

    # Block boundaries (in live-row space) are fixed by the fragment
    # budget alone — identical whether the blocks then run serially or on
    # the thread pool.
    n_rows = live.size
    blocks = []
    r0b = 0
    while r0b < n_rows:
        r1b = int(np.searchsorted(fstarts, fstarts[r0b] + _FRAGMENT_BLOCK,
                                  side="left"))
        r1b = min(max(r1b, r0b + 1), n_rows)
        blocks.append((r0b, r1b))
        r0b = r1b

    def fill_block(block):
        r0, r1 = block
        f0 = int(fstarts[r0])
        f1 = int(fstarts[r1])
        reps = counts[r0:r1]

        def spread(row_values):
            # Row-constant values broadcast to fragments: same elements as
            # ``row_values[fr]`` with ``fr = repeat(arange(r0, r1), reps)``,
            # but np.repeat streams instead of gathering.
            return np.repeat(row_values[r0:r1], reps)

        xg = np.arange(f0, f1, dtype=np.int64) - spread(row_shift)
        x_out[f0:f1] = xg
        y_out[f0:f1] = spread(row_y32)
        prim_ids[f0:f1] = spread(row_prim32)

        # alpha = min(op * exp(-max(0.5*((a*dx)*dx + (c*dy)*dy)
        #                           + (b*dx)*dy, 0)), ALPHA_MAX)
        dx = xg.astype(np.float64)
        dx += 0.5
        dx -= spread(row_cx)
        power = spread(row_a)
        power *= dx
        power *= dx
        power += spread(row_cyy)
        power *= 0.5
        cross = spread(row_b)
        cross *= dx
        cross *= spread(row_dy)
        power += cross
        np.maximum(power, 0.0, out=power)
        np.negative(power, out=power)
        np.exp(power, out=power)
        power *= spread(row_op)
        np.minimum(power, ALPHA_MAX, out=power)
        alphas[f0:f1] = power

    if jobs is not None and jobs > 1 and len(blocks) > 1:
        # Imported lazily: the engine package pulls in the render stack at
        # import time, so a module-level import would be circular.
        from repro.engine.executor import run_frames

        run_frames(fill_block, blocks, jobs=jobs)
    else:
        for block in blocks:
            fill_block(block)
    return prim_ids, x_out, y_out, alphas


def rasterize_splats_scalar(splats, width, height, max_fragments=200_000_000):
    """The original per-splat rasterisation loop (golden baseline).

    Semantically and bit-wise identical to :func:`rasterize_splats`; kept
    as the reference the golden tests and the ``rasterize`` benchmark suite
    compare against.  Uses open-grid broadcasting (``xs[None, :]`` /
    ``ys[:, None]``) instead of materialised ``np.meshgrid`` planes, which
    cuts peak memory per splat roughly 3x without changing any emitted
    value (the per-element IEEE operations are unchanged).
    """
    if not isinstance(splats, Splat2D):
        raise TypeError(f"splats must be a Splat2D, got {type(splats).__name__}")
    width = int(check_positive("width", width))
    height = int(check_positive("height", height))

    prim_chunks = []
    x_chunks = []
    y_chunks = []
    alpha_chunks = []
    total = 0

    bboxes = splats.bounding_boxes()
    for i in range(len(splats)):
        r0, r1 = splats.radii[i]
        if r0 <= 0.0 or r1 <= 0.0:
            continue
        xmin = max(int(np.floor(bboxes[i, 0])), 0)
        ymin = max(int(np.floor(bboxes[i, 1])), 0)
        xmax = min(int(np.ceil(bboxes[i, 2])), width - 1)
        ymax = min(int(np.ceil(bboxes[i, 3])), height - 1)
        if xmax < xmin or ymax < ymin:
            continue
        xs = np.arange(xmin, xmax + 1, dtype=np.int32)
        ys = np.arange(ymin, ymax + 1, dtype=np.int32)
        dx = xs[None, :] + 0.5 - splats.centers[i, 0]
        dy = ys[:, None] + 0.5 - splats.centers[i, 1]
        # OBB coverage: |d . axis_k| <= radius_k for both axes.
        ax0, ax1 = splats.axes[i]
        u = dx * ax0[0] + dy * ax0[1]
        v = dx * ax1[0] + dy * ax1[1]
        covered = (np.abs(u) <= r0) & (np.abs(v) <= r1)
        iy, ix = np.nonzero(covered)
        if ix.size == 0:
            continue
        cdx = dx[0, ix]
        cdy = dy[iy, 0]
        a, b, c = splats.conics[i]
        power = 0.5 * (a * cdx * cdx + c * cdy * cdy) + b * cdx * cdy
        alpha = splats.opacities[i] * np.exp(-np.maximum(power, 0.0))
        alpha = np.minimum(alpha, ALPHA_MAX)

        count = ix.size
        total += count
        if total > max_fragments:
            raise MemoryError(
                f"fragment stream exceeds max_fragments={max_fragments}; "
                "reduce scene size or resolution")
        prim_chunks.append(np.full(count, i, dtype=np.int32))
        x_chunks.append(xs[ix])
        y_chunks.append(ys[iy])
        alpha_chunks.append(alpha.astype(np.float32))

    if total == 0:
        # The scalar loop never carries a FrameIR (it is the golden
        # oracle); keep that true for empty scenes as well.
        return _empty_stream(splats, width, height, ir="legacy")
    return FragmentStream(
        prim_ids=np.concatenate(prim_chunks),
        x=np.concatenate(x_chunks),
        y=np.concatenate(y_chunks),
        alphas=np.concatenate(alpha_chunks),
        prim_colors=splats.colors,
        width=width,
        height=height,
    )


def splat_coverage_counts(splats, width, height):
    """Per-splat covered-pixel counts without materialising fragments.

    Cheaper helper for workload sizing: uses the OBB area clipped to screen
    as the exact coverage is the OBB rectangle.
    """
    if not isinstance(splats, Splat2D):
        raise TypeError(f"splats must be a Splat2D, got {type(splats).__name__}")
    counts = np.zeros(len(splats), dtype=np.int64)
    bboxes = splats.bounding_boxes()
    area = 4.0 * splats.radii[:, 0] * splats.radii[:, 1]
    on_screen = (
        (bboxes[:, 2] > 0) & (bboxes[:, 0] < width)
        & (bboxes[:, 3] > 0) & (bboxes[:, 1] < height)
        & (splats.radii > 0).all(axis=1)
    )
    counts[on_screen] = np.maximum(area[on_screen].astype(np.int64), 1)
    return counts


ALPHA_PRUNE_THRESHOLD = ALPHA_EPS

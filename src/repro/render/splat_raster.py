"""Vectorised rasterisation of depth-sorted 2D splats into a fragment stream.

This models the fixed-function rasteriser's *coverage* decision: a pixel is
covered when its centre lies inside the splat's tight oriented bounding box
(the two triangles of Figure 4).  Per-fragment alpha is evaluated from the
Gaussian conic exactly as the fragment shader would; fragments whose alpha
falls below ``1/255`` remain in the stream flagged as *pruned* (they are
shaded but never blended), matching the paper's "alpha pruning".
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.projection import ALPHA_EPS, ALPHA_MAX, Splat2D
from repro.render.fragstream import FragmentStream
from repro.utils.validation import check_positive


def rasterize_splats(splats, width, height, max_fragments=200_000_000):
    """Rasterise sorted splats into a :class:`FragmentStream`.

    Parameters
    ----------
    splats:
        :class:`Splat2D` already sorted front-to-back (draw order ==
        blending order).
    width, height:
        Framebuffer size in pixels.
    max_fragments:
        Safety valve: raise rather than exhaust memory if the workload
        explodes (e.g. a degenerate scene with screen-sized splats).

    Returns
    -------
    :class:`FragmentStream` with fragments in primitive-major emission order.
    """
    if not isinstance(splats, Splat2D):
        raise TypeError(f"splats must be a Splat2D, got {type(splats).__name__}")
    width = int(check_positive("width", width))
    height = int(check_positive("height", height))

    prim_chunks = []
    x_chunks = []
    y_chunks = []
    alpha_chunks = []
    total = 0

    bboxes = splats.bounding_boxes()
    for i in range(len(splats)):
        r0, r1 = splats.radii[i]
        if r0 <= 0.0 or r1 <= 0.0:
            continue
        xmin = max(int(np.floor(bboxes[i, 0])), 0)
        ymin = max(int(np.floor(bboxes[i, 1])), 0)
        xmax = min(int(np.ceil(bboxes[i, 2])), width - 1)
        ymax = min(int(np.ceil(bboxes[i, 3])), height - 1)
        if xmax < xmin or ymax < ymin:
            continue
        xs = np.arange(xmin, xmax + 1, dtype=np.int32)
        ys = np.arange(ymin, ymax + 1, dtype=np.int32)
        gx, gy = np.meshgrid(xs, ys)
        dx = gx + 0.5 - splats.centers[i, 0]
        dy = gy + 0.5 - splats.centers[i, 1]
        # OBB coverage: |d . axis_k| <= radius_k for both axes.
        ax0, ax1 = splats.axes[i]
        u = dx * ax0[0] + dy * ax0[1]
        v = dx * ax1[0] + dy * ax1[1]
        covered = (np.abs(u) <= r0) & (np.abs(v) <= r1)
        if not covered.any():
            continue
        cdx = dx[covered]
        cdy = dy[covered]
        a, b, c = splats.conics[i]
        power = 0.5 * (a * cdx * cdx + c * cdy * cdy) + b * cdx * cdy
        alpha = splats.opacities[i] * np.exp(-np.maximum(power, 0.0))
        alpha = np.minimum(alpha, ALPHA_MAX)

        count = int(covered.sum())
        total += count
        if total > max_fragments:
            raise MemoryError(
                f"fragment stream exceeds max_fragments={max_fragments}; "
                "reduce scene size or resolution")
        prim_chunks.append(np.full(count, i, dtype=np.int32))
        x_chunks.append(gx[covered].astype(np.int32))
        y_chunks.append(gy[covered].astype(np.int32))
        alpha_chunks.append(alpha.astype(np.float32))

    if total == 0:
        return FragmentStream(
            prim_ids=np.empty(0, dtype=np.int32),
            x=np.empty(0, dtype=np.int32),
            y=np.empty(0, dtype=np.int32),
            alphas=np.empty(0, dtype=np.float32),
            prim_colors=splats.colors,
            width=width,
            height=height,
        )
    return FragmentStream(
        prim_ids=np.concatenate(prim_chunks),
        x=np.concatenate(x_chunks),
        y=np.concatenate(y_chunks),
        alphas=np.concatenate(alpha_chunks),
        prim_colors=splats.colors,
        width=width,
        height=height,
    )


def splat_coverage_counts(splats, width, height):
    """Per-splat covered-pixel counts without materialising fragments.

    Cheaper helper for workload sizing: uses the OBB area clipped to screen
    as the exact coverage is the OBB rectangle.
    """
    if not isinstance(splats, Splat2D):
        raise TypeError(f"splats must be a Splat2D, got {type(splats).__name__}")
    counts = np.zeros(len(splats), dtype=np.int64)
    bboxes = splats.bounding_boxes()
    area = 4.0 * splats.radii[:, 0] * splats.radii[:, 1]
    on_screen = (
        (bboxes[:, 2] > 0) & (bboxes[:, 0] < width)
        & (bboxes[:, 3] > 0) & (bboxes[:, 1] < height)
        & (splats.radii > 0).all(axis=1)
    )
    counts[on_screen] = np.maximum(area[on_screen].astype(np.int64), 1)
    return counts


ALPHA_PRUNE_THRESHOLD = ALPHA_EPS

"""Front-to-back alpha blending primitives (Equation 1/2 of the paper).

The key algebraic fact VR-Pipe's quad merging exploits is that the
front-to-back operator over premultiplied RGBA

    f_fb(c1, c2) = c1 + (1 - a1) * c2

is *associative* (but not commutative), so fragments may be partially blended
in shader cores before the ROP finishes the pixel, without changing the
result.  These helpers are the single implementation of that operator used
everywhere in the library.
"""

from __future__ import annotations

import numpy as np


def premultiply(colors, alphas):
    """Pack RGB + alpha into premultiplied RGBA: ``(a*r, a*g, a*b, a)``.

    ``colors`` is ``(n, 3)`` and ``alphas`` ``(n,)``; returns ``(n, 4)``.
    """
    colors = np.asarray(colors, dtype=np.float64)
    alphas = np.asarray(alphas, dtype=np.float64)
    if colors.ndim != 2 or colors.shape[1] != 3:
        raise ValueError(f"colors must be (n, 3), got {colors.shape}")
    if alphas.shape != (colors.shape[0],):
        raise ValueError(
            f"alphas must be ({colors.shape[0]},), got {alphas.shape}")
    out = np.empty((colors.shape[0], 4), dtype=np.float64)
    out[:, :3] = colors * alphas[:, None]
    out[:, 3] = alphas
    return out


def front_to_back_blend(front, back):
    """``f_fb(front, back) = front + (1 - front.a) * back``.

    Both operands are premultiplied RGBA, either ``(4,)`` or ``(n, 4)``
    (blended row-wise).  The result's alpha is the accumulated coverage.
    """
    front = np.asarray(front, dtype=np.float64)
    back = np.asarray(back, dtype=np.float64)
    if front.shape != back.shape:
        raise ValueError(f"operand shapes differ: {front.shape} vs {back.shape}")
    if front.shape[-1] != 4:
        raise ValueError(f"operands must be RGBA (last axis 4), got {front.shape}")
    alpha_front = front[..., 3:4]
    return front + (1.0 - alpha_front) * back


def back_to_front_blend(back, front):
    """The conventional OVER operator on premultiplied RGBA.

    ``over(back, front) = front + (1 - front.a) * back`` — blending the
    *farthest* fragment first.  Provided because most OpenGL viewers render
    splats back-to-front with ``glBlendFunc(ONE, ONE_MINUS_SRC_ALPHA)``;
    the two orders produce identical composites (tested), but only
    front-to-back admits early termination, which is why the paper's
    pipeline (and this library's default) uses it.
    """
    back = np.asarray(back, dtype=np.float64)
    front = np.asarray(front, dtype=np.float64)
    if back.shape != front.shape:
        raise ValueError(f"operand shapes differ: {back.shape} vs {front.shape}")
    if back.shape[-1] != 4:
        raise ValueError(f"operands must be RGBA (last axis 4), got {back.shape}")
    alpha_front = front[..., 3:4]
    return front + (1.0 - alpha_front) * back


def accumulate_back_to_front(rgba_sequence):
    """Right fold of the OVER operator: farthest-first compositing.

    ``rgba_sequence`` is ordered front-to-back (as everywhere in this
    library); the fold walks it in reverse.  Must equal
    :func:`accumulate_front_to_back` on the same sequence.
    """
    rgba_sequence = np.asarray(rgba_sequence, dtype=np.float64)
    if rgba_sequence.size == 0:
        return np.zeros(4)
    if rgba_sequence.ndim != 2 or rgba_sequence.shape[1] != 4:
        raise ValueError(f"expected (n, 4) fragments, got {rgba_sequence.shape}")
    acc = rgba_sequence[-1].copy()
    for rgba in rgba_sequence[-2::-1]:
        acc = back_to_front_blend(acc, rgba)
    return acc


def accumulate_front_to_back(rgba_sequence):
    """Left fold of :func:`front_to_back_blend` over ``(n, 4)`` fragments.

    This is the scalar reference used in tests; the vectorised per-pixel
    equivalent lives in :mod:`repro.render.fragstream`.  An empty sequence
    yields transparent black.
    """
    rgba_sequence = np.asarray(rgba_sequence, dtype=np.float64)
    if rgba_sequence.size == 0:
        return np.zeros(4)
    if rgba_sequence.ndim != 2 or rgba_sequence.shape[1] != 4:
        raise ValueError(f"expected (n, 4) fragments, got {rgba_sequence.shape}")
    acc = rgba_sequence[0].copy()
    for rgba in rgba_sequence[1:]:
        acc = front_to_back_blend(acc, rgba)
    return acc

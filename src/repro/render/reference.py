"""Reference renderer: the ground-truth image every simulator must match.

Composes preprocessing (cull/colour/project/sort), rasterisation, and
per-pixel front-to-back blending.  The early-termination variant implements
the paper's termination rule (stop blending a pixel once accumulated alpha
reaches 0.996) at perfect fragment granularity.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.preprocess import preprocess
from repro.render.fragstream import DEFAULT_TERMINATION_ALPHA, FragmentStream
from repro.render.splat_raster import rasterize_splats, rasterize_splats_scalar

#: Selectable rasterisation paths (bit-identical; see splat_raster).
RASTER_PATHS = {
    "batched": rasterize_splats,
    "scalar": rasterize_splats_scalar,
}


class RenderResult:
    """Output of :func:`render_reference`.

    Attributes
    ----------
    image:
        ``(h, w, 3)`` float RGB (premultiplied composite over black).
    alpha:
        ``(h, w)`` accumulated alpha.
    stream:
        The :class:`FragmentStream` the image was blended from — reused by
        the timing simulators so they never re-rasterise.
    preprocess:
        The :class:`~repro.gaussians.preprocess.PreprocessResult`.
    """

    def __init__(self, image, alpha, stream, preprocess_result):
        self.image = image
        self.alpha = alpha
        self.stream = stream
        self.preprocess = preprocess_result

    def psnr_against(self, other_image, peak=1.0):
        """PSNR (dB) of this image against ``other_image``."""
        other_image = np.asarray(other_image, dtype=np.float64)
        if other_image.shape != self.image.shape:
            raise ValueError(
                f"shape mismatch: {other_image.shape} vs {self.image.shape}")
        mse = float(np.mean((self.image - other_image) ** 2))
        if mse == 0.0:
            return float("inf")
        return 10.0 * np.log10(peak * peak / mse)


def render_reference(cloud, camera, early_term=False,
                     threshold=DEFAULT_TERMINATION_ALPHA, raster="batched"):
    """Render a Gaussian cloud from ``camera`` and return a RenderResult.

    Parameters
    ----------
    cloud:
        Scene Gaussians.
    camera:
        Viewpoint.
    early_term:
        Apply the early-termination rule; the resulting image differs from
        the exact composite by at most the residual transmittance
        (``1 - threshold``) per channel.
    raster:
        ``"batched"`` (default, the tile-binned vectorised rasteriser) or
        ``"scalar"`` (the per-splat golden loop).  Both emit bit-identical
        streams; the knob exists for the benchmark harness and the golden
        equivalence tests.
    """
    if not isinstance(cloud, GaussianCloud):
        raise TypeError(f"cloud must be a GaussianCloud, got {type(cloud).__name__}")
    if not isinstance(camera, Camera):
        raise TypeError(f"camera must be a Camera, got {type(camera).__name__}")
    try:
        rasterize = RASTER_PATHS[raster]
    except KeyError:
        raise ValueError(
            f"unknown raster path {raster!r}; use one of {sorted(RASTER_PATHS)}"
        ) from None
    pre = preprocess(cloud, camera)
    stream = rasterize(pre.splats, camera.width, camera.height)
    image, alpha = stream.blend_image(early_term=early_term, threshold=threshold)
    return RenderResult(image=image, alpha=alpha, stream=stream,
                        preprocess_result=pre)


def render_stream(stream, early_term=False,
                  threshold=DEFAULT_TERMINATION_ALPHA):
    """Blend an existing fragment stream (no re-rasterisation)."""
    if not isinstance(stream, FragmentStream):
        raise TypeError(
            f"stream must be a FragmentStream, got {type(stream).__name__}")
    return stream.blend_image(early_term=early_term, threshold=threshold)

"""Image-quality metrics: PSNR and SSIM.

Used to quantify the (bounded) impact of early termination and to verify
quad merging is lossless, the way rendering papers report fidelity.
Implemented from the standard definitions on float images in [0, 1]; SSIM
uses the common 8x8 block formulation with the K1/K2 constants of the
original paper.
"""

from __future__ import annotations

import numpy as np


def mse(a, b):
    """Mean squared error between two images of identical shape."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def psnr(a, b, peak=1.0):
    """Peak signal-to-noise ratio in dB (inf for identical images)."""
    error = mse(a, b)
    if error == 0.0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / error)


def _block_reduce_mean(channel, block):
    h, w = channel.shape
    th, tw = h // block * block, w // block * block
    trimmed = channel[:th, :tw]
    return trimmed.reshape(th // block, block, tw // block, block).mean(
        axis=(1, 3))


def ssim(a, b, peak=1.0, block=8, k1=0.01, k2=0.03):
    """Structural similarity on non-overlapping blocks, averaged over RGB.

    Returns a value in [-1, 1]; 1.0 for identical images.  Images smaller
    than one block raise.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim == 2:
        a = a[:, :, None]
        b = b[:, :, None]
    if a.shape[0] < block or a.shape[1] < block:
        raise ValueError(
            f"images must be at least {block}x{block}, got {a.shape[:2]}")
    c1 = (k1 * peak) ** 2
    c2 = (k2 * peak) ** 2
    scores = []
    for channel in range(a.shape[2]):
        x = a[:, :, channel]
        y = b[:, :, channel]
        mu_x = _block_reduce_mean(x, block)
        mu_y = _block_reduce_mean(y, block)
        xx = _block_reduce_mean(x * x, block) - mu_x ** 2
        yy = _block_reduce_mean(y * y, block) - mu_y ** 2
        xy = _block_reduce_mean(x * y, block) - mu_x * mu_y
        numerator = (2 * mu_x * mu_y + c1) * (2 * xy + c2)
        denominator = (mu_x ** 2 + mu_y ** 2 + c1) * (xx + yy + c2)
        scores.append(float(np.mean(numerator / denominator)))
    return float(np.mean(scores))


def image_report(reference, candidate, label="candidate"):
    """One-line fidelity summary: PSNR, SSIM, max abs error."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    max_err = float(np.abs(reference - candidate).max()) if reference.size else 0.0
    return {
        "label": label,
        "psnr_db": psnr(reference, candidate),
        "ssim": ssim(reference, candidate),
        "max_abs_error": max_err,
    }

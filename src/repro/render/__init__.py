"""Functional rendering core shared by every simulator in the library.

``splat_raster`` turns depth-sorted 2D splats into a deterministic
:class:`FragmentStream`; ``fragstream`` computes per-pixel blending orders,
transmittances, early-termination ranks and quad groupings from that stream;
``reference`` produces ground-truth images.  All timing models (hardware
pipeline, CUDA-style software renderer, software optimisations) consume the
same stream, so functional results are comparable across variants and the
paper's invariants are directly testable.
"""

from repro.render.blending import (
    accumulate_back_to_front,
    accumulate_front_to_back,
    back_to_front_blend,
    front_to_back_blend,
    premultiply,
)
from repro.render.frameir import IR_MODES, FrameIR, resolve_ir
from repro.render.splat_raster import (
    TileBinning,
    rasterize_splats,
    rasterize_splats_scalar,
)
from repro.render.fragstream import FragmentStream, QuadTable
from repro.render.reference import RenderResult, render_reference
from repro.render.metrics import image_report, psnr, ssim
from repro.render.image_io import read_ppm, write_ppm

__all__ = [
    "accumulate_back_to_front",
    "accumulate_front_to_back",
    "back_to_front_blend",
    "front_to_back_blend",
    "premultiply",
    "rasterize_splats",
    "rasterize_splats_scalar",
    "TileBinning",
    "FragmentStream",
    "FrameIR",
    "IR_MODES",
    "QuadTable",
    "resolve_ir",
    "RenderResult",
    "render_reference",
    "image_report",
    "psnr",
    "ssim",
    "read_ppm",
    "write_ppm",
]

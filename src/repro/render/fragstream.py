"""FragmentStream: the canonical fragment-level view of a draw call.

Every simulator in the library (reference renderer, CUDA-style software
renderer, hardware pipeline, VR-Pipe variants) consumes the same stream of
fragments produced by :func:`repro.render.splat_raster.rasterize_splats`.
The stream knows, for every fragment:

* its *arrival accumulated alpha* — the pixel's accumulated alpha at the
  moment the fragment would be blended (fragments are ordered front-to-back
  per pixel because splats are depth sorted), which defines perfect
  fragment-level early termination;
* whether it is *pruned* (alpha < 1/255, discarded in the fragment shader);
* its 2x2 quad, screen tile (16x16 px) and tile grid (64x64 px) membership.

All heavy quantities are computed lazily and cached.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.render.frameir import resolve_ir
from repro.utils.arrays import (
    segment_boundaries,
    segmented_cumsum,
    sliced_cumsum,
)

#: Default early-termination threshold on accumulated alpha (paper: 0.996).
DEFAULT_TERMINATION_ALPHA = 0.996

#: Alpha-pruning threshold (1/255), as in the paper's fragment shader.
PRUNE_EPS = 1.0 / 255.0

#: Fixed-function geometry of the modelled GPU (Section II / Table I).
QUAD_SIZE = 2
TILE_SIZE = 16
TILE_GRID_TILES = 4  # a tile grid is 4x4 screen tiles = 64x64 pixels
QUADS_PER_TILE_AXIS = TILE_SIZE // QUAD_SIZE  # 8 -> 64 quad positions/tile


def arrival_chain_sliced(alpha_eff_sorted, starts, slice_bounds):
    """Arrival accumulated alpha over a pixel-sorted fragment block.

    ``alpha_eff_sorted`` is the per-fragment effective alpha (zero when
    pruned) in pixel-sorted order, ``starts`` the per-pixel segment
    offsets, ``slice_bounds`` the scanline block offsets (the sorted
    domain is scanline-major, so each scanline is one contiguous slice).
    Returns the per-fragment arrival alpha
    ``1 - prod_{j earlier at the pixel} (1 - alpha_j)``.

    The log-space scans run *per scanline slice* (:func:`~repro.utils.
    arrays.sliced_cumsum`), so every output element is a pure function of
    its scanline's fragment content — the property the cross-frame
    coherence layer relies on to reuse unchanged scanline blocks and
    recompute only dirty ones, bit-identically to a full recompute.
    Shared by both: this one function is the full recompute *and* the
    dirty-subset recompute.
    """
    n = alpha_eff_sorted.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.float64)
    logs = alpha_eff_sorted.astype(np.float64)
    np.subtract(1.0, logs, out=logs)
    # Clamp unconditionally: inert for every representable alpha < 1
    # (``1 - float32(<1)`` is at least ~6e-8), and exactly the legacy
    # policy when alpha == 1, so the result never depends on other
    # scanlines' maxima.
    np.maximum(logs, 1e-30, out=logs)
    np.log(logs, out=logs)
    lcs = sliced_cumsum(logs, slice_bounds)
    # Per-pixel exclusive log-transmittance: the scanline-local inclusive
    # scan minus the fragment's own log and the pixel's preceding scan
    # value (zero for each scanline's first pixel segment).
    offsets = lcs[starts - 1]  # wraps at starts[0] == 0; zeroed below
    offsets[np.searchsorted(starts, slice_bounds[:-1])] = 0.0
    seg_lens = np.diff(np.concatenate(
        (starts, np.asarray([n], dtype=np.int64))))
    lcs -= logs
    lcs -= np.repeat(offsets, seg_lens)
    arrival = np.exp(lcs, out=lcs)
    np.subtract(1.0, arrival, out=arrival)
    return arrival


class FragmentStream:
    """Fragments of one draw call, in primitive-major emission order.

    Parameters
    ----------
    prim_ids:
        ``(n,)`` int32 index of the emitting splat (ascending in draw order).
    x, y:
        ``(n,)`` int32 pixel coordinates.
    alphas:
        ``(n,)`` float32 fragment alphas (already capped at 0.99).
    prim_colors:
        ``(n_prims, 3)`` RGB per primitive (fragments share their splat's
        colour, as in the paper's vertex-colour scheme).
    width, height:
        Framebuffer dimensions.
    binning:
        Optional :class:`~repro.render.splat_raster.TileBinning` carrying
        the rasteriser's splat-to-screen-tile pairs, so downstream
        consumers (CUDA tile duplication, the hardware tile coalescers)
        reuse the binning instead of re-deriving it.
    frameir:
        Optional :class:`~repro.render.frameir.FrameIR` carrying the
        rasteriser's row-interval structure; when present (and the ``ir``
        mode allows it) the quad table and (prim, tile) group ranges are
        derived from it instead of re-sorted from the fragments —
        bit-identically.
    ir:
        Default digestion mode for this stream (``"auto"`` / ``"frameir"``
        / ``"legacy"``, see :mod:`repro.render.frameir`); ``None`` follows
        the process default.
    """

    def __init__(self, prim_ids, x, y, alphas, prim_colors, width, height,
                 binning=None, validate=True, frameir=None, ir=None):
        self.prim_ids = np.asarray(prim_ids, dtype=np.int32)
        self.x = np.asarray(x, dtype=np.int32)
        self.y = np.asarray(y, dtype=np.int32)
        self.alphas = np.asarray(alphas, dtype=np.float32)
        self.prim_colors = np.asarray(prim_colors, dtype=np.float64)
        self.width = int(width)
        self.height = int(height)
        n = self.prim_ids.shape[0]
        for name, arr in (("x", self.x), ("y", self.y), ("alphas", self.alphas)):
            if arr.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {arr.shape}")
        # ``validate=False`` skips the six full-stream min/max range
        # reductions; reserved for producers whose outputs are range-safe
        # by construction (the rasterisers clip to the framebuffer).
        if validate and n:
            if (self.prim_ids.min() < 0
                    or self.prim_ids.max() >= self.prim_colors.shape[0]):
                raise ValueError("prim_ids reference colours out of range")
            if ((self.x.min() < 0) or (self.x.max() >= self.width)
                    or (self.y.min() < 0) or (self.y.max() >= self.height)):
                raise ValueError(
                    "fragment coordinates fall outside the framebuffer")
        self.binning = binning
        self.frameir = frameir
        self.ir = ir
        #: Optional :class:`~repro.render.coherence.FrameCoherence` carrier
        #: (attached by trajectory sessions); consulted before the arrival
        #: caches are recomputed from scratch.
        self.coherence = None
        #: Wall-clock of the named digestion substages (ms), accumulated
        #: as the lazy caches materialise; the hardware renderer folds
        #: these into its per-frame stage breakdown.
        self.substage_ms = {}
        self._cache = {}

    def _add_substage(self, name, t0):
        self.substage_ms[name] = (self.substage_ms.get(name, 0.0)
                                  + (perf_counter() - t0) * 1e3)

    # ------------------------------------------------------------------
    # Basic derived arrays
    # ------------------------------------------------------------------

    def __len__(self):
        return self.prim_ids.shape[0]

    @property
    def n_fragments(self):
        return len(self)

    @property
    def n_pixels(self):
        return self.width * self.height

    @property
    def pixel_ids(self):
        """``y * width + x`` per fragment."""
        if "pixel_ids" not in self._cache:
            self._cache["pixel_ids"] = (
                self.y.astype(np.int64) * self.width + self.x)
        return self._cache["pixel_ids"]

    @property
    def tile_ids(self):
        """Per-fragment screen-tile id (16x16 px tiles, row-major)."""
        if "tile_ids" not in self._cache:
            tiles_x = -(-self.width // TILE_SIZE)
            self._cache["tile_ids"] = (
                (self.y.astype(np.int64) // TILE_SIZE) * tiles_x
                + self.x.astype(np.int64) // TILE_SIZE)
        return self._cache["tile_ids"]

    @property
    def unpruned(self):
        """Mask of fragments surviving alpha pruning (alpha >= 1/255)."""
        if "unpruned" not in self._cache:
            self._cache["unpruned"] = self.alphas >= PRUNE_EPS
        return self._cache["unpruned"]

    def _use_ir_digest(self):
        """Whether the sorted-domain caches may derive from the FrameIR."""
        return self.frameir is not None and resolve_ir(self.ir) != "legacy"

    def _radix_pixel_keys(self):
        """Pixel sort keys in the narrowest unsigned dtype that holds them.

        NumPy's stable integer argsort is an LSD radix sort over the key
        bytes, so halving the key width halves the counting passes: a
        uint16 key (framebuffers up to 65536 pixels) sorts in two passes
        where the int64 ``pixel_ids`` key takes eight.  The values are
        identical pixel ids, so the stable permutation is identical.
        """
        n_pixels = self.n_pixels
        if n_pixels <= 1 << 16:
            dtype = np.uint16
        elif n_pixels <= 1 << 32:
            dtype = np.uint32
        else:
            return self.pixel_ids
        return (self.y.astype(dtype) * dtype(self.width)
                + self.x.astype(dtype))

    def _ensure_pixel_grouping(self):
        """Materialise ``pixel_order``, ``pix_sorted`` and ``pixel_starts``.

        On IR-backed streams the pixel grouping derives from the FrameIR
        row structure: per-pixel fragment counts come from a counting pass
        over the row intervals (two bincounts of interval endpoints plus
        one prefix sum — no fragment-level work), which yields
        ``pix_sorted``/``pixel_starts`` directly, and the permutation
        itself from a bounded-key radix sort over narrow pixel keys.  The
        original int64 stable sort plus gather is retained as the oracle
        for streams without an IR (hand-built, scalar-emitted); both paths
        produce the identical permutation and identical caches, pinned by
        ``tests/test_coherence.py``.
        """
        if "pix_sorted" in self._cache:
            return
        t0 = perf_counter()
        n = len(self)
        if self._use_ir_digest() and n:
            # The rasteriser's emission order has non-decreasing prim ids,
            # so a single stable sort on the pixel key is the (pixel, draw
            # order) lexsort.
            order = np.argsort(self._radix_pixel_keys(), kind="stable")
            self._cache["pixel_order"] = order
            counts = self._ir_pixel_counts()
            nz = np.flatnonzero(counts)
            seg_counts = counts[nz]
            pix_sorted = np.repeat(nz, seg_counts)
            starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(seg_counts)[:-1]))
            self._cache["pix_sorted"] = pix_sorted
            self._cache["pixel_starts"] = starts
        else:
            order = self._pixel_order
            pix_sorted = self.pixel_ids[order]
            self._cache["pix_sorted"] = pix_sorted
            self._cache["pixel_starts"] = segment_boundaries(pix_sorted)
        self._add_substage("pixel-group", t0)

    def _ir_pixel_counts(self):
        """Per-pixel fragment counts from the IR's row intervals.

        A row covering ``[xlo, xhi]`` on scanline ``y`` adds one fragment
        to each pixel of the interval; the counts are the prefix sum of
        the interval endpoint difference array over the flat pixel space.
        (An interval's ``-1`` marker at ``xhi + 1`` may land on the next
        scanline's first pixel, but its ``+1`` partner was already summed
        by then, so the running sum stays exact — integer arithmetic.)
        """
        ir = self.frameir
        n_pixels = self.n_pixels
        row_y = ir.row_y.astype(np.int64)
        start_keys = row_y * self.width + ir.row_xlo
        end_keys = start_keys + (ir.row_xhi - ir.row_xlo) + 1
        diff = (np.bincount(start_keys, minlength=n_pixels + 1)
                - np.bincount(end_keys, minlength=n_pixels + 1))
        return np.cumsum(diff[:n_pixels])

    @property
    def _pixel_order(self):
        """Indices lexsorting fragments by (pixel, draw order)."""
        if "pixel_order" not in self._cache:
            prim_ids = self.prim_ids
            if self._use_ir_digest() and len(self):
                self._ensure_pixel_grouping()
                return self._cache["pixel_order"]
            if prim_ids.shape[0] == 0 or (prim_ids[1:] >= prim_ids[:-1]).all():
                # Streams in emission order (the rasterisers' contract)
                # have non-decreasing prim ids, so a single stable sort on
                # the pixel key yields the identical permutation to the
                # two-key lexsort — within a pixel the draw order *is* the
                # stream order — at roughly half the sorting cost.
                order = np.argsort(self.pixel_ids, kind="stable")
            else:
                order = np.lexsort((prim_ids, self.pixel_ids))
            self._cache["pixel_order"] = order
        return self._cache["pixel_order"]

    def _pixel_starts(self, pix_sorted):
        """Segment starts of the pixel-sorted stream, computed once."""
        if "pixel_starts" not in self._cache:
            self._cache["pixel_starts"] = segment_boundaries(pix_sorted)
        return self._cache["pixel_starts"]

    def _sorted_scanline_bounds(self):
        """Scanline block offsets of the pixel-sorted stream.

        The sorted domain is scanline-major (pixel id = ``y * width + x``),
        so each scanline is one contiguous fragment block; the bounds are
        the offsets ``[b0=0, ..., bk=n]`` delimiting them.
        """
        if "scanline_bounds" not in self._cache:
            starts = self._cache["pixel_starts"]
            pix_sorted = self._cache["pix_sorted"]
            if starts.shape[0] == 0:
                bounds = np.zeros(1, dtype=np.int64)
            else:
                seg_y = pix_sorted[starts] // self.width
                first = np.empty(seg_y.shape, dtype=bool)
                first[0] = True
                np.not_equal(seg_y[1:], seg_y[:-1], out=first[1:])
                bounds = np.concatenate(
                    (starts[first],
                     np.asarray([len(self)], dtype=np.int64)))
            self._cache["scanline_bounds"] = bounds
        return self._cache["scanline_bounds"]

    def _ensure_arrival_sorted(self):
        """Materialise the pixel-sorted arrival caches (no fragment-order
        scatter).

        Populates ``pix_sorted``, ``pixel_starts``, ``alpha_eff_sorted``
        (per-fragment effective alpha — zero when pruned) and
        ``arrival_sorted`` in the pixel-sorted domain.  Every consumer —
        :attr:`arrival_alpha`, :attr:`accumulated_alpha`, the termination
        masks, the HET rank structure — shares these caches instead of
        re-running the arrival chain, and only :attr:`arrival_alpha`
        itself pays for the scatter back to fragment order.

        A :attr:`coherence` carrier, when attached, is consulted first: it
        either serves the caches from the previous frame's state (reusing
        unchanged scanline blocks) or lets this full recompute run and
        records its results for the next frame.
        """
        if "arrival_sorted" in self._cache:
            return
        carrier = self.coherence
        if carrier is not None and carrier.serve_arrival(self):
            return
        self._compute_arrival_sorted()
        if carrier is not None:
            carrier.capture(self)

    def _compute_arrival_sorted(self):
        """The full-recompute arrival chain (the coherence oracle)."""
        self._ensure_pixel_grouping()
        t0 = perf_counter()
        order = self._cache["pixel_order"]
        pix_sorted = self._cache["pix_sorted"]
        starts = self._cache["pixel_starts"]
        # Effective alphas in emission order first, then one gather —
        # identical values to gathering ``unpruned``/``alphas``
        # separately, one fewer full-width gather.
        alpha_eff = np.where(self.unpruned, self.alphas,
                             np.float32(0.0))[order]
        if self._use_ir_digest():
            # Per-scanline log-space scans: ~35% cheaper than the global
            # segmented cumsum (no offset-subtraction pass, unconditional
            # inert clamp) and deterministic per scanline content, which
            # is what lets the coherence carrier splice cached scanline
            # blocks into freshly computed ones bit-exactly.
            arrival_sorted = arrival_chain_sliced(
                alpha_eff, starts, self._sorted_scanline_bounds())
        else:
            logs = alpha_eff.astype(np.float64)
            np.subtract(1.0, logs, out=logs)
            if len(self) and float(self.alphas.max()) >= 1.0:
                # The 1e-30 clamp matters only for alpha == 1 exactly;
                # rasterised streams cap alpha at 0.99 so the extra pass
                # is skipped when provably inert (max(y, 1e-30) == y).
                np.maximum(logs, 1e-30, out=logs)
            np.log(logs, out=logs)
            inclusive = segmented_cumsum(logs, pix_sorted, starts=starts)
            exclusive_log_t = inclusive - logs
            arrival_sorted = np.exp(exclusive_log_t, out=exclusive_log_t)
            np.subtract(1.0, arrival_sorted, out=arrival_sorted)
        self._cache["alpha_eff_sorted"] = alpha_eff
        self._cache["arrival_sorted"] = arrival_sorted
        self._add_substage("arrival-alpha", t0)

    @property
    def arrival_alpha(self):
        """Per-fragment accumulated pixel alpha at the fragment's arrival.

        For fragment ``i`` of pixel ``p`` this is
        ``1 - prod_{j earlier unpruned at p} (1 - alpha_j)``; pruned
        fragments contribute nothing but still *have* an arrival state.
        This quantity decides perfect fragment-level early termination:
        a fragment is blended iff it is unpruned and
        ``arrival_alpha < threshold``.
        """
        if "arrival_alpha" not in self._cache:
            self._ensure_arrival_sorted()
            arrival = np.empty(len(self), dtype=np.float64)
            arrival[self._pixel_order] = self._cache["arrival_sorted"]
            self._cache["arrival_alpha"] = arrival
        return self._cache["arrival_alpha"]

    def et_survivor_mask(self, threshold=DEFAULT_TERMINATION_ALPHA):
        """Fragments blended under perfect early termination.

        A fragment is blended iff it survives alpha pruning *and* its pixel
        had not yet reached the termination threshold when it arrived.
        """
        key = ("et_survivor", round(float(threshold), 9))
        if key not in self._cache:
            if "arrival_alpha" in self._cache:
                mask = self.unpruned & (self.arrival_alpha < threshold)
            else:
                # Same mask built in the pixel-sorted domain and scattered
                # once: ``alpha_eff > 0`` is exactly the unpruned predicate
                # (unpruned alphas are >= 1/255) and the sorted arrival
                # values are the same doubles the fragment-order compare
                # would see.
                self._ensure_arrival_sorted()
                mask_sorted = ((self._cache["alpha_eff_sorted"] > 0)
                               & (self._cache["arrival_sorted"] < threshold))
                mask = np.empty(len(self), dtype=bool)
                mask[self._pixel_order] = mask_sorted
            self._cache[key] = mask
        return self._cache[key]

    def unterminated_on_arrival(self, threshold=DEFAULT_TERMINATION_ALPHA,
                                lag=0):
        """Fragments (pruned or not) arriving before their pixel terminated.

        This is what the ZROP termination *test* sees: it runs before
        shading, so pruning is invisible to it.

        ``lag`` models the in-flight window of hardware early termination:
        the blend that crosses the threshold, the alpha-test signal, and the
        stencil update all take time, during which the next ``lag``
        fragments of the pixel still pass the test.  ``lag=0`` is the
        perfect fragment-granular bound.
        """
        key = ("unterminated", round(float(threshold), 9), int(lag))
        if key not in self._cache:
            if lag == 0:
                if "arrival_alpha" in self._cache:
                    self._cache[key] = self.arrival_alpha < threshold
                else:
                    # Compare in the sorted domain, scatter the boolean
                    # once — same doubles, same mask, no float64 scatter.
                    self._ensure_arrival_sorted()
                    out = np.empty(len(self), dtype=bool)
                    out[self._pixel_order] = (
                        self._cache["arrival_sorted"] < threshold)
                    self._cache[key] = out
            else:
                # Compare in the pixel-sorted domain (local ranks against
                # the pixel's termination rank) and scatter the boolean
                # once — same mask as gathering rank/term_rank per
                # fragment, minus two full-width int64 passes.
                local, term_rank, order, pix_sorted = \
                    self._pixel_ranks_sorted(threshold)
                unterm_sorted = local < term_rank[pix_sorted] + int(lag)
                out = np.empty(len(self), dtype=bool)
                out[order] = unterm_sorted
                self._cache[key] = out
        return self._cache[key]

    def het_blended_mask(self, threshold=DEFAULT_TERMINATION_ALPHA, lag=0):
        """Fragments the hardware actually blends under HET with ``lag``.

        Superset of :meth:`et_survivor_mask` when ``lag > 0`` (late kills
        mean extra blends); the extra blends only push accumulated alpha
        past the threshold, so the image error stays bounded by
        ``1 - threshold``.
        """
        key = ("het_blended", round(float(threshold), 9), int(lag))
        if key not in self._cache:
            self._cache[key] = (self.unpruned
                                & self.unterminated_on_arrival(threshold, lag))
        return self._cache[key]

    def _pixel_ranks_sorted(self, threshold):
        """Pixel-sorted rank structure: ``(local, term_rank, order, pix)``.

        ``local`` is each fragment's rank within its pixel in the
        pixel-sorted domain, ``term_rank`` the per-pixel rank of the first
        fragment arriving with accumulated alpha already at/above the
        threshold (i.e. the first one perfect HET would kill); pixels that
        never terminate get a rank beyond any fragment count.
        """
        key = ("pixel_ranks_sorted", round(float(threshold), 9))
        if key not in self._cache:
            self._ensure_arrival_sorted()
            order = self._pixel_order
            pix_sorted = self._cache["pix_sorted"]
            starts = self._pixel_starts(pix_sorted)
            lengths = np.diff(np.concatenate(
                (starts, np.asarray([len(self)], dtype=np.int64))))
            local = np.arange(len(self), dtype=np.int64) - np.repeat(starts, lengths)
            sentinel = np.int64(len(self) + 1)
            term_rank = np.full(self.n_pixels, sentinel, dtype=np.int64)
            # Per-pixel first terminated rank, as a segment minimum over
            # the pixel-sorted stream (ranks are the local indices there);
            # one reduceat replaces the far slower ``np.minimum.at``
            # scatter and produces the identical minima.
            if len(self):
                term_sorted = self._cache["arrival_sorted"] >= threshold
                masked = np.where(term_sorted, local, sentinel)
                seg_min = np.minimum.reduceat(masked, starts)
                term_rank[pix_sorted[starts]] = seg_min
            self._cache[key] = (local, term_rank, order, pix_sorted)
        return self._cache[key]

    def _pixel_ranks(self, threshold):
        """Per-fragment rank within its pixel and per-pixel termination rank
        (fragment-order view of :meth:`_pixel_ranks_sorted`)."""
        key = ("pixel_ranks", round(float(threshold), 9))
        if key not in self._cache:
            local, term_rank, order, _pix = self._pixel_ranks_sorted(threshold)
            rank = np.empty(len(self), dtype=np.int64)
            rank[order] = local
            self._cache[key] = (rank, term_rank)
        return self._cache[key]

    # ------------------------------------------------------------------
    # Images and per-pixel statistics
    # ------------------------------------------------------------------

    def _blend_weights(self, early_term, threshold):
        """Per-fragment colour/alpha blend weights of a front-to-back pass."""
        blended = self.et_survivor_mask(threshold) if early_term else self.unpruned
        transmittance = 1.0 - self.arrival_alpha
        weights = transmittance * self.alphas.astype(np.float64)
        return np.where(blended, weights, 0.0)

    @property
    def accumulated_alpha(self):
        """Final accumulated alpha per pixel, flat ``(n_pixels,)``.

        Bit-identical to the (flattened) alpha map of
        ``blend_image(early_term=False)`` — the blend weights telescope to
        the pixel's final accumulated alpha — but skips the colour pass
        entirely and is cached, so consumers that only need termination
        state (e.g. :meth:`~repro.hwmodel.pipeline.DrawWorkload.
        from_stream`) never pay for a full re-blend.

        Computed straight from the pixel-sorted arrival caches: the blend
        weights are formed in the sorted domain (``alpha_eff`` is zero for
        pruned fragments, so the ``where(blended, ...)`` select is the
        multiplication itself) and summed with a bincount over the sorted
        stream — each pixel's partial sums still accumulate in emission
        order, so the result is bit-identical to the fragment-order blend
        while skipping the arrival scatter entirely.
        """
        if "accumulated_alpha" not in self._cache:
            self._ensure_arrival_sorted()
            carrier = self.coherence
            if carrier is not None and carrier.serve_accumulated(self):
                return self._cache["accumulated_alpha"]
            t0 = perf_counter()
            weights = ((1.0 - self._cache["arrival_sorted"])
                       * self._cache["alpha_eff_sorted"].astype(np.float64))
            self._cache["accumulated_alpha"] = np.bincount(
                self._cache["pix_sorted"], weights=weights,
                minlength=self.n_pixels)
            self._add_substage("arrival-alpha", t0)
        return self._cache["accumulated_alpha"]

    def blend_image(self, early_term=False, threshold=DEFAULT_TERMINATION_ALPHA):
        """Front-to-back blend to an image.

        Returns ``(image, alpha_map)`` with ``image`` shaped ``(h, w, 3)``
        and ``alpha_map`` ``(h, w)``.  With ``early_term`` the blend stops
        once a pixel's accumulated alpha reaches ``threshold`` (identical to
        the reference otherwise).
        """
        weights = self._blend_weights(early_term, threshold)
        pix = self.pixel_ids
        colors = self.prim_colors[self.prim_ids]
        # One interleaved bincount over an (n, 3) contribution array instead
        # of a per-channel Python loop; for each (pixel, channel) bin the
        # partial sums still accumulate in fragment order, so the image is
        # bit-identical to three separate per-channel bincounts.
        contrib = weights[:, None] * colors
        keys = pix[:, None] * 3 + np.arange(3, dtype=np.int64)
        image = np.bincount(
            keys.ravel(), weights=contrib.ravel(),
            minlength=self.n_pixels * 3).reshape(self.n_pixels, 3)
        if early_term:
            alpha_map = np.bincount(pix, weights=weights,
                                    minlength=self.n_pixels)
        else:
            # Seed the cache from the weights already in hand rather than
            # recomputing them inside the property.
            if "accumulated_alpha" not in self._cache:
                self._cache["accumulated_alpha"] = np.bincount(
                    pix, weights=weights, minlength=self.n_pixels)
            alpha_map = self.accumulated_alpha.copy()
        return (image.reshape(self.height, self.width, 3),
                alpha_map.reshape(self.height, self.width))

    def fragments_per_pixel(self, kind="unpruned",
                            threshold=DEFAULT_TERMINATION_ALPHA):
        """Per-pixel fragment counts as an ``(h, w)`` int64 map.

        ``kind`` selects which fragments count:

        * ``"all"`` — every rasterised fragment;
        * ``"unpruned"`` — fragments blended without early termination
          (Figure 7 left);
        * ``"early_term"`` — fragments blended with perfect early
          termination (Figure 7 right).
        """
        if kind == "all":
            mask = None
        elif kind == "unpruned":
            mask = self.unpruned
        elif kind == "early_term":
            mask = self.et_survivor_mask(threshold)
        else:
            raise ValueError(f"unknown kind {kind!r}")
        pix = self.pixel_ids if mask is None else self.pixel_ids[mask]
        counts = np.bincount(pix, minlength=self.n_pixels)
        return counts.reshape(self.height, self.width)

    def termination_ratio(self, threshold=DEFAULT_TERMINATION_ALPHA):
        """Blended fragments without ET divided by blended with ET.

        This is the paper's "early termination ratio" (Figure 21); >= 1 by
        construction, and 1.0 when no pixel ever saturates.
        """
        with_et = int(self.et_survivor_mask(threshold).sum())
        without_et = int(self.unpruned.sum())
        if with_et == 0:
            return 1.0
        return without_et / with_et

    # ------------------------------------------------------------------
    # Quad / tile structure
    # ------------------------------------------------------------------

    def quad_table(self, threshold=DEFAULT_TERMINATION_ALPHA, lag=0, ir=None):
        """Aggregate fragments into 2x2 quads (see :class:`QuadTable`).

        ``lag`` selects the HET in-flight window baked into the table's
        termination masks (see :meth:`unterminated_on_arrival`).  ``ir``
        overrides the stream's digestion mode (see :mod:`repro.render.
        frameir`): with ``"auto"``/``"frameir"`` and a stream carrying a
        :class:`~repro.render.frameir.FrameIR`, the table materialises
        from the IR's precomputed quad grouping; ``"legacy"`` forces the
        original sort-based construction.  Both paths are bit-identical
        (fuzz-pinned by ``tests/test_frameir.py``).
        """
        explicit = ir if ir is not None else self.ir
        mode = resolve_ir(explicit)
        if mode == "frameir" and self.frameir is None:
            # Strict only when the caller (or the stream's producer) asked
            # for the IR by name; the ``$REPRO_IR=frameir`` process
            # default stays best-effort so hand-built and scalar-emitted
            # streams keep digesting through the legacy path.
            if explicit is not None:
                raise ValueError(
                    "ir='frameir' requires a stream carrying a FrameIR "
                    "(emitted by rasterize_splats); this stream has none")
            mode = "auto"
        use_ir = mode != "legacy" and self.frameir is not None
        key = ("quad_table", round(float(threshold), 9), int(lag),
               "frameir" if use_ir else "legacy")
        if key not in self._cache:
            t0 = perf_counter()
            if use_ir:
                self._cache[key] = QuadTable.from_ir(self, self.frameir,
                                                     threshold, lag)
            else:
                self._cache[key] = QuadTable.from_stream(self, threshold, lag)
            self._add_substage("chunklets", t0)
        return self._cache[key]


class _QuadColumnBuilder:
    """Deferred per-quad aggregate reductions of a :class:`QuadTable`.

    Holds the quad grouping of the fragment stream (the fragment sort
    ``order``, the per-quad segment ``starts``, and the ``emit``
    permutation into emission order) and materialises each aggregate
    column on demand with the exact reductions the eager path used.
    """

    def __init__(self, stream, threshold, lag, order, starts, emit):
        self.stream = stream
        self.threshold = threshold
        self.lag = lag
        self.order = order
        self.starts = starts
        self.emit = emit
        self._bit = None

    def _bits(self):
        """Coverage bit (y & 1) * 2 + (x & 1) per grouped fragment."""
        if self._bit is None:
            stream, order = self.stream, self.order
            shift = ((stream.y[order] & 1) * 2
                     + (stream.x[order] & 1)).astype(np.uint8)
            self._bit = np.left_shift(np.uint8(1), shift)
        return self._bit

    def _fragment_flags(self, name):
        stream = self.stream
        if name.endswith("unpruned"):
            flags = stream.unpruned
        elif name.endswith("et_blended") or name.endswith("mask_et"):
            flags = stream.het_blended_mask(self.threshold, self.lag)
        else:
            flags = stream.unterminated_on_arrival(self.threshold, self.lag)
        if self.order is None:
            return flags.view(np.uint8)
        return flags[self.order].view(np.uint8)

    def column(self, name):
        # Count columns reduce in int32 (narrower passes than int64, still
        # overflow-proof); mask columns reduce in uint8 — a bitwise OR of
        # 4-bit coverage masks can never overflow.  Results widen to the
        # table's int64 convention afterwards.
        t0 = perf_counter()
        if name == "n_fragments":
            ones = np.ones(len(self.stream), dtype=np.int32)
            per_quad = np.add.reduceat(ones, self.starts)
        elif name.startswith("n_"):
            per_quad = np.add.reduceat(
                self._fragment_flags(name).astype(np.int32), self.starts)
        else:
            per_quad = np.bitwise_or.reduceat(
                self._bits() * self._fragment_flags(name), self.starts)
        out = per_quad[self.emit].astype(np.int64)
        self.stream._add_substage("quad-columns", t0)
        return out


class _IRQuadColumnBuilder(_QuadColumnBuilder):
    """Columns served from the FrameIR's quad view.

    Metadata columns come straight from :meth:`~repro.render.frameir.
    QuadIR.meta`; aggregates reduce over the per-quad fragment *slots*
    (:meth:`~repro.render.frameir.QuadIR.slots`) — up to four direct
    emission-stream offsets per quad, combined with padded gathers, so
    there is no ``order`` gather and no fragment sort.  All aggregates
    are integer sums or bitwise ORs, so the regrouped reduction is
    exactly the per-quad value the legacy builder computes.
    """

    def __init__(self, stream, threshold, lag, ir_quads):
        super().__init__(stream, threshold, lag, order=None, starts=None,
                         emit=None)
        self.ir_quads = ir_quads

    def _bits(self):
        """Coverage bit (y & 1) * 2 + (x & 1) per *emission* fragment."""
        if self._bit is None:
            stream = self.stream
            shift = ((stream.y & 1) * 2 + (stream.x & 1)).astype(np.uint8)
            self._bit = np.left_shift(np.uint8(1), shift)
        return self._bit

    def column(self, name):
        t0 = perf_counter()
        if name in QuadTable._META_COLUMNS:
            out = self.ir_quads.meta()[name]
        elif name == "n_fragments":
            out = self.ir_quads.frag_counts()
        elif name.startswith("n_"):
            out = self.ir_quads.reduce_add(
                self._fragment_flags(name).astype(np.int32))
        else:
            out = self.ir_quads.reduce_or(
                self._bits() * self._fragment_flags(name))
        self.stream._add_substage("quad-columns", t0)
        return out


class QuadTable:
    """Per-quad aggregation of a fragment stream.

    The hardware pipeline operates on 2x2-fragment quads from fine raster
    onward; this table is the quad-granular view every hardware model uses.
    Rows are sorted by ``(prim_id, tile_id, qpos)`` — the order in which the
    rasteriser emits them.

    Attributes (parallel arrays, one row per quad)
    ----------------------------------------------
    prim_ids:        emitting primitive.
    qx, qy:          global quad coordinates (pixel // 2).
    tile_ids:        screen-tile index (16x16 px tiles, row-major).
    grid_ids:        tile-grid index (4x4 tiles = 64x64 px, row-major).
    qpos:            quad position within its tile, 0..63.
    n_fragments:     covered pixels in the quad (1..4).
    n_unpruned:      fragments passing alpha pruning (blended by baseline).
    n_et_blended:    fragments blended under HET with the table's lag
                     (== perfect early termination when ``lag == 0``).
    n_unterminated:  fragments arriving before pixel termination + lag
                     (what the ZROP termination test sees — pruning
                     invisible).
    mask_unpruned:   4-bit coverage bitmap of unpruned fragments (bit index
                     ``(y & 1) * 2 + (x & 1)``), for exact union counting
                     when two quads merge.
    mask_et:         coverage bitmap of early-termination-blended fragments.
    mask_unterminated: coverage bitmap of fragments arriving unterminated.
    """

    #: Aggregate columns materialised on first access when the table was
    #: built lazily by :meth:`from_stream` — each hardware variant touches
    #: only a subset (baseline never reads the termination columns), so
    #: digestion skips the per-fragment reductions the draw won't use.
    _LAZY_COLUMNS = frozenset((
        "n_fragments", "n_unpruned", "n_et_blended", "n_unterminated",
        "mask_unpruned", "mask_et", "mask_unterminated",
    ))

    #: Metadata columns: eager on the legacy path (the sort produces them
    #: anyway) but deferred on the FrameIR path, where only the draw —
    #: never digestion — consumes them.
    _META_COLUMNS = frozenset((
        "prim_ids", "qx", "qy", "tile_ids", "grid_ids", "qpos",
    ))

    def __init__(self, prim_ids, qx, qy, tile_ids, grid_ids, qpos,
                 n_fragments, n_unpruned, n_et_blended, n_unterminated,
                 mask_unpruned, mask_et, mask_unterminated,
                 width, height, threshold, _lazy=None):
        self._lazy = _lazy
        columns = dict(
            prim_ids=prim_ids, qx=qx, qy=qy, tile_ids=tile_ids,
            grid_ids=grid_ids, qpos=qpos,
            n_fragments=n_fragments, n_unpruned=n_unpruned,
            n_et_blended=n_et_blended, n_unterminated=n_unterminated,
            mask_unpruned=mask_unpruned, mask_et=mask_et,
            mask_unterminated=mask_unterminated)
        for name, value in columns.items():
            if value is not None or _lazy is None:
                setattr(self, name, value)
        self.width = width
        self.height = height
        self.threshold = threshold
        #: Precomputed (prim, screen-tile) group ranges when the table was
        #: materialised from a FrameIR (:class:`~repro.render.frameir.
        #: GroupIR`); ``None`` for legacy-built tables.
        self.ir_groups = None

    def __len__(self):
        if "prim_ids" in self.__dict__:
            return self.prim_ids.shape[0]
        return len(self._lazy.ir_quads)

    def __getattr__(self, name):
        # Only reached for attributes not set in __init__, i.e. deferred
        # columns of a lazily built table.
        cls = type(self)
        if (name in cls._LAZY_COLUMNS or name in cls._META_COLUMNS) \
                and self.__dict__.get("_lazy"):
            value = self._lazy.column(name)
            setattr(self, name, value)
            if all(column in self.__dict__
                   for column in cls._LAZY_COLUMNS | cls._META_COLUMNS):
                # Every column is materialised: drop the builder so it
                # stops pinning the stream and its O(n_fragments) index
                # arrays.
                self._lazy = None
            return value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    @classmethod
    def from_stream(cls, stream, threshold=DEFAULT_TERMINATION_ALPHA, lag=0):
        """Build the table from a :class:`FragmentStream`.

        ``lag`` is the HET in-flight window (fragments per pixel that still
        pass the termination test after the threshold crossing).  The
        per-quad aggregate columns (fragment counts, coverage bitmaps) are
        deferred: each is computed on first attribute access, identical to
        the eager reductions.
        """
        n = len(stream)
        width, height = stream.width, stream.height
        tiles_x = -(-width // TILE_SIZE)
        grids_x = -(-tiles_x // TILE_GRID_TILES)
        if n == 0:
            empty_i = np.empty(0, dtype=np.int64)
            return cls(empty_i, empty_i, empty_i, empty_i, empty_i, empty_i,
                       empty_i, empty_i, empty_i, empty_i,
                       empty_i, empty_i, empty_i,
                       width, height, threshold)

        qx = stream.x // QUAD_SIZE
        qy = stream.y // QUAD_SIZE
        quads_x = -(-width // QUAD_SIZE)
        # Narrow int32 local key, one widening combine with the prim id.
        local_key = qy * np.int32(quads_x) + qx
        quad_key = stream.prim_ids.astype(np.int64)
        quad_key *= quads_x * -(-height // QUAD_SIZE)
        quad_key += local_key
        order = np.argsort(quad_key, kind="stable")
        sorted_key = quad_key[order]
        starts = segment_boundaries(sorted_key)

        first = order[starts]
        q_prim = stream.prim_ids[first].astype(np.int64)
        q_qx = qx[first].astype(np.int64)
        q_qy = qy[first].astype(np.int64)
        tile_x = q_qx // QUADS_PER_TILE_AXIS
        tile_y = q_qy // QUADS_PER_TILE_AXIS
        tile_ids = tile_y * tiles_x + tile_x
        grid_ids = (tile_y // TILE_GRID_TILES) * grids_x + (tile_x // TILE_GRID_TILES)
        qpos = ((q_qy % QUADS_PER_TILE_AXIS) * QUADS_PER_TILE_AXIS
                + (q_qx % QUADS_PER_TILE_AXIS))

        # Emission order: primitive-major, then tile, then quad position.
        # One stable sort on the combined key is the same permutation the
        # three-key lexsort produced (the key encodes the triple
        # lexicographically and both sorts are stable).
        n_tiles = tiles_x * (-(-height // TILE_SIZE))
        emit = np.argsort(
            (q_prim * n_tiles + tile_ids) * QUADS_PER_TILE_AXIS ** 2 + qpos,
            kind="stable")
        lazy = _QuadColumnBuilder(stream, threshold, lag, order, starts, emit)
        return cls(
            prim_ids=q_prim[emit], qx=q_qx[emit], qy=q_qy[emit],
            tile_ids=tile_ids[emit], grid_ids=grid_ids[emit],
            qpos=qpos[emit],
            n_fragments=None, n_unpruned=None,
            n_et_blended=None, n_unterminated=None,
            mask_unpruned=None, mask_et=None,
            mask_unterminated=None,
            width=width, height=height, threshold=threshold,
            _lazy=lazy,
        )

    @classmethod
    def from_ir(cls, stream, frameir, threshold=DEFAULT_TERMINATION_ALPHA,
                lag=0):
        """Materialise the table from the stream's FrameIR.

        Bit-identical to :meth:`from_stream` — same rows in the same
        ``(prim, tile, qpos)`` order, same aggregate columns — but the
        grouping comes from the IR's raster-derived quad structure, so no
        fragment-level sort (and no ``emit`` permutation) is needed.  The
        IR's (prim, tile) group ranges ride along as :attr:`ir_groups`
        for :class:`~repro.hwmodel.pipeline.DrawWorkload`.
        """
        if len(stream) == 0:
            return cls.from_stream(stream, threshold, lag)
        quads = frameir.quads()
        lazy = _IRQuadColumnBuilder(stream, threshold, lag, quads)
        table = cls(
            prim_ids=None, qx=None, qy=None,
            tile_ids=None, grid_ids=None, qpos=None,
            n_fragments=None, n_unpruned=None,
            n_et_blended=None, n_unterminated=None,
            mask_unpruned=None, mask_et=None,
            mask_unterminated=None,
            width=stream.width, height=stream.height, threshold=threshold,
            _lazy=lazy,
        )
        table.ir_groups = quads.groups
        return table

    # Convenience aggregates used by the experiments -------------------

    def quads_blended_baseline(self):
        """Quads the baseline CROP blends (>= 1 unpruned fragment)."""
        return int((self.n_unpruned > 0).sum())

    def quads_blended_het(self):
        """Quads surviving both the ZROP termination test and pruning."""
        return int((self.n_et_blended > 0).sum())

    def quads_passing_zrop(self):
        """Quads with >= 1 fragment arriving before pixel termination."""
        return int((self.n_unterminated > 0).sum())

    def fragments_blended_baseline(self):
        return int(self.n_unpruned.sum())

    def fragments_blended_het(self):
        return int(self.n_et_blended.sum())

"""FrameCoherence: cross-frame digestion state for trajectory rendering.

Orbit/trajectory frames are highly coherent: most scanlines of a frame are
*identical* to the previous frame's (same row intervals, same fragment
alphas), yet the digestion pipeline recomputed every per-frame structure —
pixel grouping, arrival-alpha chain, quad chunklets — from scratch.  This
module carries digestion state across :class:`~repro.engine.session.
RenderSession` frames and reuses it wherever the new frame's content
provably matches.

Granularity and exactness
-------------------------
The unit of reuse is the **scanline**.  The pixel-sorted digestion domain
is scanline-major (pixel id = ``y * width + x``), so every sorted-domain
cache — ``pix_sorted``, ``arrival_sorted``, ``alpha_eff_sorted``, the
pixel order — decomposes into contiguous per-scanline blocks, and the
arrival chain (:func:`~repro.render.fragstream.arrival_chain_sliced`)
computes each scanline's block as a pure function of that scanline's
fragment content.  Classification is **exact array comparison** of the
FrameIR row intervals and the fragment alpha bit patterns — never hashes,
which could collide and silently break bit-identity.  Three outcomes:

* **full hit** — every row and every alpha identical: the previous
  frame's caches (and, when the primitive boundaries also match, its
  FrameIR quad view) are adopted wholesale;
* **partial hit** — clean scanlines copy their cached blocks to their
  new offsets; dirty scanlines (changed, shifted or new rows) recompute
  through the same chain the full path uses, on the dirty subset only;
* **full recompute** — low coherence (or no usable previous frame): the
  always-available oracle runs, and its results are captured for the
  next frame.

All three produce bit-identical caches, pinned by the fuzz tests in
``tests/test_coherence.py``.

The ``coherence`` knob
----------------------
``"auto"`` and ``"incremental"`` enable the carrier (they differ only in
strictness elsewhere: sessions running parallel frames silently drop the
carrier under ``"auto"`` but refuse under ``"incremental"``), ``"off"``
disables it entirely.  The process default is ``"auto"``, overridable via
the ``REPRO_COHERENCE`` environment variable; CI runs the golden flush
and coherence suites under both ``incremental`` and ``off``.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter

import numpy as np

from repro import faults, knobs
from repro.knobs import COHERENCE_MODES  # re-exported; declared centrally
from repro.render.fragstream import arrival_chain_sliced
from repro.utils.arrays import segment_boundaries


def resolve_coherence(mode=None):
    """Normalise a ``coherence`` knob value (default ``$REPRO_COHERENCE``)."""
    if mode is None:
        mode = knobs.env("REPRO_COHERENCE")
    if mode not in COHERENCE_MODES:
        raise ValueError(
            f"unknown coherence mode {mode!r}; choose from {COHERENCE_MODES}")
    return mode


def _ragged_expand(base, lens):
    """``concatenate([base[i] + arange(lens[i]) for i])`` without the loop."""
    if lens.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    total = int(lens.sum())
    offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
    return (np.arange(total, dtype=np.int64)
            + np.repeat(base.astype(np.int64) - offsets, lens))


def _exclusive_cumsum(values):
    out = np.empty(values.shape[0] + 1, dtype=np.int64)
    out[0] = 0
    np.cumsum(values, out=out[1:])
    return out


class _RowGroups:
    """Scanline-grouped view of a FrameIR's rows (lazy per-frame aux).

    ``order_rows`` sorts rows by scanline (stable, so rows of one scanline
    keep their emission order); ``row_counts``/``frag_counts`` are per
    scanline over the full height; ``frag_offsets`` are the scanline block
    offsets of the pixel-sorted domain (which is scanline-major).
    """

    def __init__(self, ir, height):
        row_y = ir.row_y
        self.order_rows = np.argsort(row_y, kind="stable")
        self.row_counts = np.bincount(row_y, minlength=height)
        self.lengths = (ir.row_xhi.astype(np.int64) - ir.row_xlo) + 1
        self.frag_counts = np.bincount(
            row_y, weights=self.lengths, minlength=height).astype(np.int64)
        self.row_offsets = _exclusive_cumsum(self.row_counts)
        self.frag_offsets = _exclusive_cumsum(self.frag_counts)


class _FrameState:
    """One digested frame: the stream itself plus lazy coherence aux."""

    __slots__ = ("stream", "_rowgroups")

    def __init__(self, stream):
        self.stream = stream
        self._rowgroups = None

    def rowgroups(self):
        if self._rowgroups is None:
            self._rowgroups = _RowGroups(self.stream.frameir,
                                         self.stream.height)
        return self._rowgroups


class FrameCoherence:
    """Carrier of cross-frame digestion state (see module docstring).

    One carrier serves one serial frame sequence: call :meth:`begin_frame`
    with each new frame's stream *before* digestion starts, and the
    stream's lazy caches will consult the carrier automatically.
    """

    #: Fall back to a full recompute when clean scanlines cover less than
    #: this fraction of the new frame's fragments — below it, the
    #: classification and splice overhead outweighs the reuse (and both
    #: paths are bit-identical, so the fallback is free).
    MIN_CLEAN_FRACTION = 0.25

    #: Stream cache entries adopted wholesale on a full-frame hit (pure
    #: functions of the frame's fragment content).
    _FULL_HIT_KEYS = (
        "pixel_ids", "unpruned", "pixel_order", "pix_sorted", "pixel_starts",
        "scanline_bounds", "alpha_eff_sorted", "arrival_sorted",
        "arrival_alpha", "accumulated_alpha",
    )

    #: Tuple-keyed cache families adopted on a full-frame hit (threshold-
    #: keyed termination masks and rank structures — also pure functions
    #: of fragment content).  Quad tables are *not* adopted through the
    #: stream cache: the FrameIR quad view is shared instead (see
    #: :meth:`begin_frame`), so the table rebuilds its cheap wrapper
    #: against the new stream.
    _FULL_HIT_FAMILIES = (
        "et_survivor", "unterminated", "het_blended",
        "pixel_ranks_sorted", "pixel_ranks",
    )

    def __init__(self, mode=None, max_states=8):
        self.mode = resolve_coherence(mode)
        self.max_states = int(max_states)
        #: Library of digested frames keyed by content hash, LRU-bounded.
        #: Trajectory serving loops over a fixed set of viewpoints, so a
        #: revisited frame keys straight back to its digested state even
        #: when other frames rendered in between.
        self._states = OrderedDict()
        self._pows = None
        self._prev = None
        self._current = None
        self._key = None
        self._hit = None
        self._full_hit = False
        self._acc_patch = None
        self._partial_state = None
        #: Outcome counters (frames served per path), for observability.
        self.stats = {"full_hits": 0, "partial_hits": 0, "full_recomputes": 0}

    def _content_key(self, stream):
        """Position-weighted 64-bit content hash of a frame's row structure
        and alpha bits.  The hash only *selects* a library candidate —
        :meth:`_verify` then compares the arrays exactly before any reuse,
        so a collision can cost a missed hit, never bit-identity.
        """
        ir = stream.frameir
        n = len(stream)
        pows = self._pows
        if pows is None or pows.shape[0] < max(n, ir.n_rows):
            size = max(n, ir.n_rows, 1 << 16)
            pows = np.multiply.accumulate(
                np.full(size, np.uint64(0x9E3779B97F4A7C15)))
            self._pows = pows
        bits = stream.alphas.view(np.uint32).astype(np.uint64)
        h_alpha = int((bits * pows[:n]).sum())
        mix = (ir.row_y.astype(np.uint64)
               + (ir.row_xlo.astype(np.uint64) << np.uint64(16))
               + (ir.row_xhi.astype(np.uint64) << np.uint64(32))
               + ir.row_prim.astype(np.uint64) * np.uint64(0x100000001B3))
        h_rows = int((mix * pows[:ir.n_rows]).sum())
        return (stream.width, stream.height, n, ir.n_rows, h_alpha, h_rows)

    @staticmethod
    def _verify(stream, cand):
        """Exact equality of two equal-sized frames' content: row arrays
        (including primitive boundaries) and raw alpha bit patterns.
        Identical intervals imply identical fragment runs (``row_fstart``
        is the running sum of interval lengths) and identical per-fragment
        ``(x, y)``, so equality here makes every digestion cache equal."""
        ir, pir = stream.frameir, cand.frameir
        return (np.array_equal(ir.row_y, pir.row_y)
                and np.array_equal(ir.row_xlo, pir.row_xlo)
                and np.array_equal(ir.row_xhi, pir.row_xhi)
                and np.array_equal(ir.row_prim, pir.row_prim)
                and np.array_equal(stream.alphas.view(np.uint32),
                                   cand.alphas.view(np.uint32)))

    def snapshot(self):
        """Rewindable copy of the carrier's cross-frame state.

        Shallow per-entry copies are sound: digested :class:`_FrameState`
        entries are never mutated in place after capture (their stream
        caches are frozen read-only), so only the container structures and
        the per-frame cursors need copying.  Used by the self-healing
        frame executor to rewind the carrier after a failed attempt.
        """
        return (list(self._states.items()), self._prev, self._current,
                self._key, self._hit, self._full_hit, self._acc_patch,
                self._partial_state, dict(self.stats))

    def restore(self, state):
        """Restore a :meth:`snapshot` (library, cursors and counters)."""
        (items, self._prev, self._current, self._key, self._hit,
         self._full_hit, self._acc_patch, self._partial_state,
         stats) = state
        self._states = OrderedDict(items)
        self.stats = dict(stats)

    # ------------------------------------------------------------------
    # Frame lifecycle
    # ------------------------------------------------------------------

    def begin_frame(self, stream):
        """Attach to a new frame's stream before digestion starts.

        Hashes the frame's content and classifies it against the state
        library eagerly, so a full hit can share the matched frame's
        FrameIR quad view *before* the quad table is built; the
        per-scanline classification of partial hits is deferred to the
        first arrival-cache request.
        """
        if self.mode == "off":
            return
        if stream.frameir is None or not stream._use_ir_digest():
            return
        t0 = perf_counter()
        # Classification runs *before* the backend's render call, whose
        # substage-delta accounting would otherwise swallow it; stash the
        # pre-classification snapshot so the renderer attributes this
        # frame's classification cost to its digest breakdown.
        stream._substage_base = dict(stream.substage_ms)
        stream.coherence = self
        self._current = stream
        self._full_hit = False
        self._hit = None
        self._acc_patch = None
        self._partial_state = None
        self._key = self._content_key(stream)
        cand = self._states.get(self._key)
        if faults.ENABLED and faults.checkpoint("coherence.verify") is not None:
            # Injected corruption of the carried state: exact verification
            # would reject a poisoned candidate, so model the detection as
            # a forced miss — the frame takes the always-available full
            # recompute path, which is bit-identical by construction.
            cand = None
        if cand is not None and self._verify(stream, cand.stream):
            self._full_hit = True
            self._hit = cand
            self._states.move_to_end(self._key)
            # Verified-identical content means the chunklet/quad structure
            # is identical too: share the built quad view.
            pir = cand.stream.frameir
            if pir._quads is not None:
                stream.frameir._quads = pir._quads
        stream._add_substage("pixel-group", t0)

    def serve_arrival(self, stream):
        """Try to install the sorted-domain arrival caches from carried
        state; returns True when served (bit-identical to a recompute)."""
        if stream is not self._current:
            return False
        t0 = perf_counter()
        if self._full_hit:
            self._install_full(stream)
            self.stats["full_hits"] += 1
            self.capture(stream)
            stream._add_substage("arrival-alpha", t0)
            return True
        if self._prev is not None and self._serve_partial(stream):
            self.stats["partial_hits"] += 1
            self.capture(stream)
            stream._add_substage("arrival-alpha", t0)
            return True
        if self._states:
            self.stats["full_recomputes"] += 1
        return False

    def serve_accumulated(self, stream):
        """Patch the per-pixel accumulated-alpha map from carried state."""
        patch = self._acc_patch
        if patch is None or self._prev is None \
                or stream is not self._prev.stream:
            return False
        kind, prev_acc, payload = patch
        if kind == "full":
            stream._cache["accumulated_alpha"] = prev_acc
        else:
            clean_y, dirty_y, dirty_slots = payload
            width = stream.width
            acc = np.zeros(stream.n_pixels, dtype=np.float64)
            cols = np.arange(width, dtype=np.int64)
            if clean_y.shape[0]:
                idx = (clean_y[:, None] * width + cols).ravel()
                acc[idx] = prev_acc[idx]
            if dirty_y.shape[0]:
                pix = stream._cache["pix_sorted"][dirty_slots]
                weights = ((1.0 - stream._cache["arrival_sorted"][dirty_slots])
                           * stream._cache["alpha_eff_sorted"][dirty_slots]
                           .astype(np.float64))
                part = np.bincount(pix, weights=weights,
                                   minlength=stream.n_pixels)
                idx = (dirty_y[:, None] * width + cols).ravel()
                acc[idx] = part[idx]
            acc.flags.writeable = False
            stream._cache["accumulated_alpha"] = acc
        self._acc_patch = None
        return True

    def capture(self, stream):
        """Adopt the just-digested stream as the coherence reference."""
        if self.mode == "off" or stream is not self._current:
            return
        if self._partial_state is not None \
                and self._partial_state.stream is stream:
            # The partial serve already built this frame's scanline aux.
            state = self._partial_state
        else:
            state = _FrameState(stream)
        if self._full_hit and self._hit is not None:
            # Content-identical frame: the scanline aux carries over.
            state._rowgroups = self._hit._rowgroups
            prev_acc = self._hit.stream._cache.get("accumulated_alpha")
            if prev_acc is not None:
                prev_acc.flags.writeable = False
                self._acc_patch = ("full", prev_acc, None)
        self._prev = state
        self._states[self._key] = state
        self._states.move_to_end(self._key)
        while len(self._states) > self.max_states:
            self._states.popitem(last=False)
        for key in ("pixel_order", "pix_sorted", "pixel_starts",
                    "alpha_eff_sorted", "arrival_sorted"):
            arr = stream._cache.get(key)
            if arr is not None:
                arr.flags.writeable = False

    # ------------------------------------------------------------------
    # Serving paths
    # ------------------------------------------------------------------

    def _install_full(self, stream):
        ps = self._hit.stream
        for key in self._FULL_HIT_KEYS:
            value = ps._cache.get(key)
            if value is None:
                continue
            if isinstance(value, np.ndarray):
                value.flags.writeable = False
            stream._cache[key] = value
        for key, value in ps._cache.items():
            if isinstance(key, tuple) and key[0] in self._FULL_HIT_FAMILIES:
                if isinstance(value, np.ndarray):
                    value.flags.writeable = False
                stream._cache[key] = value

    def _serve_partial(self, stream):
        """Per-scanline classification, splice and dirty-subset recompute."""
        n = len(stream)
        prev = self._prev
        ps = prev.stream
        ir, pir = stream.frameir, ps.frameir
        if n == 0 or len(ps) == 0:
            return False
        height, width = stream.height, stream.width
        state = _FrameState(stream)
        new = state.rowgroups()
        old = prev.rowgroups()

        # --- classify scanlines: candidates have matching row and
        # fragment counts; clean ones also match every interval and every
        # alpha bit (positional compares — counts equal means the
        # y-grouped selections align).
        cand_y = np.flatnonzero((new.row_counts == old.row_counts)
                                & (new.frag_counts == old.frag_counts)
                                & (new.row_counts > 0))
        clean_frags = int(new.frag_counts[cand_y].sum())
        if clean_frags < self.MIN_CLEAN_FRACTION * n:
            return False
        r_old = old.order_rows[
            _ragged_expand(old.row_offsets[cand_y], old.row_counts[cand_y])]
        r_new = new.order_rows[
            _ragged_expand(new.row_offsets[cand_y], new.row_counts[cand_y])]
        eq_rows = ((pir.row_xlo[r_old] == ir.row_xlo[r_new])
                   & (pir.row_xhi[r_old] == ir.row_xhi[r_new]))
        row_bounds = _exclusive_cumsum(new.row_counts[cand_y])
        rows_ok = np.logical_and.reduceat(eq_rows, row_bounds[:-1])
        ok_y = cand_y[rows_ok]
        r_old2 = old.order_rows[
            _ragged_expand(old.row_offsets[ok_y], old.row_counts[ok_y])]
        r_new2 = new.order_rows[
            _ragged_expand(new.row_offsets[ok_y], new.row_counts[ok_y])]
        lens2 = new.lengths[r_new2]
        e_old = _ragged_expand(pir.row_fstart[r_old2], lens2)
        e_new = _ragged_expand(ir.row_fstart[r_new2], lens2)
        eq_alpha = (ps.alphas.view(np.uint32)[e_old]
                    == stream.alphas.view(np.uint32)[e_new])
        frag_bounds = _exclusive_cumsum(new.frag_counts[ok_y])
        alpha_ok = np.logical_and.reduceat(eq_alpha, frag_bounds[:-1])
        clean_y = ok_y[alpha_ok]
        clean_frags = int(new.frag_counts[clean_y].sum())
        if clean_frags < self.MIN_CLEAN_FRACTION * n:
            return False
        clean_mask = np.zeros(height, dtype=bool)
        clean_mask[clean_y] = True
        dirty_y = np.flatnonzero((new.row_counts > 0) & ~clean_mask)

        # --- full-frame pixel grouping (identical to the full recompute:
        # same counting pass, same arrays).
        counts = stream._ir_pixel_counts()
        nz = np.flatnonzero(counts)
        seg_counts = counts[nz]
        pix_sorted = np.repeat(nz, seg_counts)
        starts = np.concatenate(([0], np.cumsum(seg_counts)[:-1]))

        order = np.empty(n, dtype=np.int64)
        alpha_eff = np.empty(n, dtype=np.float32)
        arrival = np.empty(n, dtype=np.float64)

        # --- clean scanlines: copy cached blocks to their new offsets.
        # The sorted domain is scanline-major, so a run of consecutive
        # copyable scanlines (clean, or empty on both sides) is one
        # contiguous block in *both* frames — each run is a slice copy,
        # not a gather.  Row alignment already paired every ok row's old
        # and new emission runs (``e_old``/``e_new``), so a scatter of
        # one into the other translates old emission indices to new ones,
        # re-targeting the pixel order — shifted rows included.
        trans = np.empty(len(ps), dtype=np.int64)
        trans[e_old] = e_new
        prev_arrival = ps._cache["arrival_sorted"]
        prev_alpha = ps._cache["alpha_eff_sorted"]
        prev_order = ps._cache["pixel_order"]
        copyable = clean_mask | ((new.row_counts == 0)
                                 & (old.row_counts == 0))
        edges = np.diff(copyable.astype(np.int8))
        run_lo = np.flatnonzero(edges == 1) + 1
        run_hi = np.flatnonzero(edges == -1) + 1
        if copyable[0]:
            run_lo = np.concatenate(([0], run_lo))
        if copyable[-1]:
            run_hi = np.concatenate((run_hi, [height]))
        for ya, yb in zip(run_lo, run_hi):
            s0, s1 = old.frag_offsets[ya], old.frag_offsets[yb]
            d0, d1 = new.frag_offsets[ya], new.frag_offsets[yb]
            arrival[d0:d1] = prev_arrival[s0:s1]
            alpha_eff[d0:d1] = prev_alpha[s0:s1]
            order[d0:d1] = trans[prev_order[s0:s1]]

        # --- dirty scanlines: the same stable grouping and sliced arrival
        # chain the full recompute runs, restricted to the dirty subset
        # (both are per-scanline computations, so the blocks come out
        # bit-identical).
        dirty_slots = np.empty(0, dtype=np.int64)
        if dirty_y.shape[0]:
            dirty_row_mask = np.zeros(height, dtype=bool)
            dirty_row_mask[dirty_y] = True
            ridx = np.flatnonzero(dirty_row_mask[ir.row_y])
            emit = _ragged_expand(ir.row_fstart[ridx], new.lengths[ridx])
            ys = stream.y[emit]
            xs = stream.x[emit]
            if stream.n_pixels <= 1 << 16:
                kdtype = np.uint16
            elif stream.n_pixels <= 1 << 32:
                kdtype = np.uint32
            else:
                kdtype = np.int64
            keys = ys.astype(kdtype) * kdtype(width) + xs.astype(kdtype)
            sub_order = np.argsort(keys, kind="stable")
            emit_sorted = emit[sub_order]
            sub_pix = keys[sub_order].astype(np.int64)
            sub_starts = segment_boundaries(sub_pix)
            sub_alpha = np.where(stream.unpruned[emit_sorted],
                                 stream.alphas[emit_sorted], np.float32(0.0))
            seg_y = sub_pix[sub_starts] // width
            first = np.empty(seg_y.shape, dtype=bool)
            first[0] = True
            np.not_equal(seg_y[1:], seg_y[:-1], out=first[1:])
            sub_bounds = np.concatenate((sub_starts[first],
                                         [emit.shape[0]]))
            sub_arrival = arrival_chain_sliced(sub_alpha, sub_starts,
                                               sub_bounds)
            dirty_slots = _ragged_expand(new.frag_offsets[dirty_y],
                                         new.frag_counts[dirty_y])
            arrival[dirty_slots] = sub_arrival
            alpha_eff[dirty_slots] = sub_alpha
            order[dirty_slots] = emit_sorted

        stream._cache["pixel_order"] = order
        stream._cache["pix_sorted"] = pix_sorted
        stream._cache["pixel_starts"] = starts
        stream._cache["alpha_eff_sorted"] = alpha_eff
        stream._cache["arrival_sorted"] = arrival
        prev_acc = ps._cache.get("accumulated_alpha")
        if prev_acc is not None:
            prev_acc.flags.writeable = False
            self._acc_patch = ("partial", prev_acc,
                               (clean_y, dirty_y, dirty_slots))
        self._partial_state = state
        return True

"""Comparator accelerators (Figure 22)."""

from repro.accel.gscore import GSCoreConfig, GSCoreModel

__all__ = ["GSCoreConfig", "GSCoreModel"]

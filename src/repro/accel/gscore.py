"""Analytic model of GSCore, the dedicated 3DGS accelerator (ASPLOS'24).

Figure 22 compares VR-Pipe against GSCore and finds the dedicated
accelerator faster (VR-Pipe shows a 1.5-3x slowdown) — the expected price of
VR-Pipe's generality (it runs standard graphics APIs; GSCore needs custom
compilers/runtime and renders only Gaussian splatting).

GSCore's advantages, per its paper, are (1) shape-aware intersection tests
that skip ineffective Gaussian-tile pairs, (2) hierarchical bitonic sorting
units, and (3) an array of dedicated volume-rendering units (VRUs) that
blend with perfect early termination and no quad-granularity loss — it
processes *fragments*, not quads, so partially-covered quads cost nothing.
We model those properties analytically on top of the same fragment stream;
constants reflect GSCore's published configuration scaled to the Table I
clock so the comparison is iso-frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.render.fragstream import DEFAULT_TERMINATION_ALPHA, FragmentStream


@dataclass
class GSCoreConfig:
    """GSCore-like accelerator parameters (calibrated; see module docs).

    ``vru_fragments_per_cycle`` — aggregate blending throughput of the VRU
    array.  GSCore-1 has 16 VRUs x 2 lanes; at fragment granularity with
    early termination this sustains ~20 useful fragments/cycle after load
    imbalance.
    """

    ccu_gaussians_per_cycle: float = 2.0     # culling & conversion unit
    gsu_keys_per_cycle: float = 4.0          # Gaussian sorting unit
    vru_fragments_per_cycle: float = 20.0    # volume rendering units
    alpha_eval_fragments_per_cycle: float = 32.0
    threshold: float = DEFAULT_TERMINATION_ALPHA


class GSCoreModel:
    """Cycle estimate for rendering a fragment stream on GSCore."""

    def __init__(self, config=None):
        self.config = config or GSCoreConfig()

    def render_cycles(self, stream, n_gaussians=None):
        """Cycles to render ``stream`` (same draw-call scope as the GPU model).

        The accelerator pipelines culling, sorting, and rendering; the
        bottleneck stage dominates.  Rendering pays alpha evaluation for
        every fragment that arrives before its pixel terminates and a blend
        for the unpruned subset.
        """
        if not isinstance(stream, FragmentStream):
            raise TypeError(
                f"stream must be a FragmentStream, got {type(stream).__name__}")
        cfg = self.config
        n_gaussians = (stream.prim_colors.shape[0] if n_gaussians is None
                       else int(n_gaussians))
        frag_alive = int(stream.unterminated_on_arrival(cfg.threshold).sum())
        frag_blend = int(stream.et_survivor_mask(cfg.threshold).sum())

        ccu = n_gaussians / cfg.ccu_gaussians_per_cycle
        gsu = n_gaussians / cfg.gsu_keys_per_cycle
        vru = (frag_alive / cfg.alpha_eval_fragments_per_cycle
               + frag_blend / cfg.vru_fragments_per_cycle)
        return max(ccu, gsu, vru)

    def slowdown_of(self, draw_result, stream):
        """VR-Pipe's slowdown versus GSCore (Figure 22's y-axis).

        ``draw_result`` is the VR-Pipe (HET+QM) pipeline result on the same
        stream; values > 1 mean GSCore is faster.
        """
        gscore = self.render_cycles(stream)
        if gscore <= 0:
            raise ValueError("GSCore cycle estimate must be positive")
        return draw_result.cycles / gscore

"""Unified renderer backends: one protocol over every rendering path.

The library grew three divergent entry points — the hardware pipeline
(:class:`~repro.core.vrpipe.HardwareRenderer`), the CUDA-style software
renderer (:class:`~repro.swrender.renderer.CudaRenderer`), and the
reference blender — each with its own result type.  This module puts them
behind a single :class:`RendererBackend` protocol returning a common
:class:`FrameResult`, and a string-keyed registry so callers (sessions,
the CLI, experiments) select a path by spec:

==============  ======================================================
spec            path
==============  ======================================================
``hw:baseline``  hardware pipeline, no VR-Pipe extensions
``hw:qm``        hardware pipeline + quad merging (TGC/QRU)
``hw:het``       hardware pipeline + hardware early termination
``hw:het+qm``    full VR-Pipe
``cuda``         CUDA-style software renderer, no early termination
``cuda+et``      CUDA-style software renderer with early termination
``reference``    ground-truth blender (functional only, no timing)
==============  ======================================================
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.vrpipe import VARIANTS, HardwareRenderer, variant_config
from repro.gaussians.preprocess import preprocess
from repro.hwmodel.caches import LRUCache
from repro.hwmodel.config import jetson_agx_orin, rtx_3090
from repro.render.fragstream import DEFAULT_TERMINATION_ALPHA
from repro.render.frameir import resolve_ir
from repro.render.splat_raster import rasterize_splats
from repro.swrender.renderer import CudaRenderer, SWKernelModel


def make_device(device_name):
    """Device presets shared by every backend and the experiments."""
    if device_name == "orin":
        return jetson_agx_orin()
    if device_name == "rtx3090":
        return rtx_3090()
    raise ValueError(f"unknown device {device_name!r}; use 'orin' or 'rtx3090'")


def device_kernel_model(device):
    """The calibrated CUDA-kernel model matched to ``device``'s SM array."""
    return SWKernelModel(issue_slots=float(device.sm_issue_slots_per_cycle))


def make_cuda_renderer(device_name="orin", early_term=True, ir=None,
                       swmodel=None):
    """A CUDA-path renderer matched to the device's clock and SM count."""
    device = make_device(device_name)
    return CudaRenderer(kernel_model=device_kernel_model(device),
                        frequency_hz=device.frequency_hz(),
                        early_term=early_term, ir=ir, swmodel=swmodel)


class FrameResult:
    """One rendered frame in the engine's common schema.

    ``cycles``/``ms``/``fps`` are ``None`` for the reference backend,
    which is functional-only.  ``n_fragments`` counts the rasterised
    fragments of the frame (the benchmark harness derives fragments/sec
    from it).  ``kernels`` is the per-kernel millisecond
    breakdown (preprocess / sort / rasterize) when the path models it.
    ``wall_ms`` is the backend's *measured* wall-clock stage breakdown
    (empty when the path doesn't record one).  ``pipeline_stats`` carries
    the hardware model's :class:`~repro.hwmodel.stats.PipelineStats` when
    available, and ``raw`` the backend's native result object.

    ``image``/``alpha`` may be deferred: a backend can hand an
    ``image_source`` (any object with lazy ``image``/``alpha`` attributes,
    e.g. :class:`~repro.core.vrpipe.HWRenderResult`) instead of eager
    arrays, and the blend then runs on first property access — sessions
    that keep only numeric records never trigger it.
    """

    def __init__(self, backend, image=None, alpha=None, cycles=None,
                 ms=None, fps=None, kernels=None, et_ratio=None,
                 n_fragments=None, pipeline_stats=None, raw=None,
                 wall_ms=None, image_source=None):
        self.backend = backend
        self._image = image
        self._alpha = alpha
        self._image_source = image_source
        self.cycles = cycles
        self.ms = ms
        self.fps = fps
        self.kernels = dict(kernels) if kernels else {}
        self.wall_ms = dict(wall_ms) if wall_ms else {}
        self.et_ratio = et_ratio
        self.n_fragments = n_fragments
        self.pipeline_stats = pipeline_stats
        self.raw = raw

    @property
    def image(self):
        if self._image is None and self._image_source is not None:
            self._image = self._image_source.image
        return self._image

    @property
    def alpha(self):
        if self._alpha is None and self._image_source is not None:
            self._alpha = self._image_source.alpha
        return self._alpha


@runtime_checkable
class RendererBackend(Protocol):
    """What every registered backend implements."""

    spec: str

    def render(self, cloud, camera, crop_cache=None) -> FrameResult:
        """Render a Gaussian cloud from a camera."""
        ...

    def render_stream(self, stream, pre=None, crop_cache=None) -> FrameResult:
        """Render an already-rasterised fragment stream."""
        ...

    def new_crop_cache(self):
        """A persistent CROP cache for cross-frame reuse, or ``None``."""
        ...


class HardwareBackend:
    """Hardware (OpenGL-path) rendering under one VR-Pipe variant.

    ``engine`` selects the pipeline's flush engine: the batched flush-plan
    engine (default) or the retained scalar per-flush path — both produce
    cycle- and stat-identical results.  ``ir`` selects the digestion path
    (FrameIR-backed or the legacy sort-based oracle, see
    :mod:`repro.render.frameir`) — likewise bit-identical.  ``coherence``
    enables cross-frame digestion reuse for standalone backend loops (see
    :mod:`repro.render.coherence`); sessions manage their own carrier and
    leave this at its stateless default.
    """

    def __init__(self, spec, variant, device, engine="batched", ir=None,
                 coherence=None):
        self.spec = spec
        self.variant = variant
        self.config = variant_config(variant, device)
        self.renderer = HardwareRenderer(
            config=self.config, kernel_model=device_kernel_model(device),
            engine=engine, ir=ir, coherence=coherence)

    def render(self, cloud, camera, crop_cache=None):
        res = self.renderer.render(cloud, camera, crop_cache=crop_cache)
        return self._wrap(res)

    def render_stream(self, stream, pre=None, crop_cache=None):
        res = self.renderer.render_stream(stream, pre, crop_cache=crop_cache)
        return self._wrap(res)

    def new_crop_cache(self):
        return LRUCache(self.config.crop_cache_kb * 1024,
                        self.config.cache_line_bytes)

    def _wrap(self, res):
        return FrameResult(
            backend=self.spec,
            image_source=res,
            cycles=res.total_cycles,
            ms=res.total_ms(),
            fps=res.fps(),
            kernels=res.breakdown_ms(),
            wall_ms=res.wall_ms,
            et_ratio=res.stream.termination_ratio(
                self.config.termination_alpha),
            n_fragments=len(res.stream),
            pipeline_stats=res.draw.stats,
            raw=res,
        )


class CudaBackend:
    """CUDA-style software rendering (Figure 5's SW path).

    ``ir`` selects the digestion path of streams this backend rasterises
    itself, and ``swmodel`` the warp-model engine (FrameIR-backed or the
    fragment-sort oracle, see :mod:`repro.swrender.warp_model`) — both
    bit-identical mode pairs.
    """

    def __init__(self, spec, device, early_term, ir=None, swmodel=None):
        self.spec = spec
        self.renderer = CudaRenderer(
            kernel_model=device_kernel_model(device),
            frequency_hz=device.frequency_hz(),
            early_term=early_term, ir=ir, swmodel=swmodel)

    def render(self, cloud, camera, crop_cache=None):
        self._check_no_cache(crop_cache)
        return self._wrap(self.renderer.render(cloud, camera))

    def render_stream(self, stream, pre=None, crop_cache=None):
        self._check_no_cache(crop_cache)
        return self._wrap(self.renderer.render_stream(stream, pre))

    def new_crop_cache(self):
        return None

    def _check_no_cache(self, crop_cache):
        if crop_cache is not None:
            raise ValueError(
                f"backend {self.spec!r} has no CROP cache to persist")

    def _wrap(self, res):
        return FrameResult(
            backend=self.spec,
            image_source=res,
            cycles=res.timing.total_cycles,
            ms=res.timing.total_ms(),
            fps=res.timing.fps(),
            kernels=res.timing.breakdown_ms(),
            wall_ms=res.wall_ms,
            et_ratio=res.stream.termination_ratio(self.renderer.threshold),
            n_fragments=len(res.stream),
            pipeline_stats=None,
            raw=res,
        )


class ReferenceBackend:
    """Ground-truth blender: functional output only, no timing model."""

    def __init__(self, spec, device=None, ir=None):
        self.spec = spec
        # None stays None so the $REPRO_IR default remains best-effort.
        self.ir = resolve_ir(ir) if ir is not None else None

    def render(self, cloud, camera, crop_cache=None):
        self._check_no_cache(crop_cache)
        pre = preprocess(cloud, camera)
        stream = rasterize_splats(pre.splats, camera.width, camera.height,
                                  ir=self.ir)
        return self.render_stream(stream, pre)

    def render_stream(self, stream, pre=None, crop_cache=None):
        self._check_no_cache(crop_cache)
        image, alpha = stream.blend_image(early_term=False)
        return FrameResult(
            backend=self.spec,
            image=image,
            alpha=alpha,
            et_ratio=stream.termination_ratio(DEFAULT_TERMINATION_ALPHA),
            n_fragments=len(stream),
            raw=stream,
        )

    def new_crop_cache(self):
        return None

    def _check_no_cache(self, crop_cache):
        if crop_cache is not None:
            raise ValueError(
                f"backend {self.spec!r} has no CROP cache to persist")


_REGISTRY = {}


def register_backend(spec, factory):
    """Register ``factory(spec, device, ir=None, coherence=None,
    engine=None, swmodel=None) -> backend`` under ``spec``."""
    if spec in _REGISTRY:
        raise ValueError(f"backend {spec!r} is already registered")
    # repro-lint: ok(R6): populated once at import time before workers exist; read-only afterwards
    _REGISTRY[spec] = factory


def available_backends():
    """Registered backend specs, sorted."""
    return sorted(_REGISTRY)


def backend_spec(spec_or_backend):
    """Normalise a backend spec string or backend instance to its spec.

    The single place spec strings come from: callers that branch on the
    spec (``"hw:"`` prefixes, cache keys, reports) use this instead of
    assuming they were handed a string.
    """
    if isinstance(spec_or_backend, str):
        return spec_or_backend
    spec = getattr(spec_or_backend, "spec", None)
    if isinstance(spec, str):
        return spec
    raise TypeError(
        "expected a backend spec string or a backend instance with a "
        f"'spec' attribute, got {type(spec_or_backend).__name__}")


def resolve_backend(spec_or_backend, device=None, device_name="orin",
                    ir=None, coherence=None, engine=None, swmodel=None):
    """Return a backend instance for a spec string *or* a ready instance.

    Backend instances (anything implementing :class:`RendererBackend`)
    pass through unchanged; strings go through :func:`create_backend`.
    """
    if not isinstance(spec_or_backend, str) and hasattr(
            spec_or_backend, "render_stream"):
        return spec_or_backend
    return create_backend(backend_spec(spec_or_backend), device=device,
                          device_name=device_name, ir=ir,
                          coherence=coherence, engine=engine,
                          swmodel=swmodel)


def create_backend(spec, device=None, device_name="orin", ir=None,
                   coherence=None, engine=None, swmodel=None):
    """Instantiate the backend registered under ``spec``.

    ``device`` (a :class:`~repro.hwmodel.config.GPUConfig`) overrides the
    ``device_name`` preset.  ``ir`` sets the backend's digestion mode
    (see :mod:`repro.render.frameir`), ``coherence`` its standalone
    cross-frame reuse mode (see :mod:`repro.render.coherence`),
    ``engine`` the hardware pipeline's flush engine (``"batched"`` /
    ``"scalar"``, ``None`` = backend default), and ``swmodel`` the
    software path's model engine (see
    :mod:`repro.swrender.warp_model`); all are ignored by backends they
    don't apply to.
    """
    try:
        factory = _REGISTRY[spec]
    except KeyError:
        raise ValueError(
            f"unknown backend {spec!r}; available: {available_backends()}"
        ) from None
    if device is None:
        device = make_device(device_name)
    # Factories registered before the newer knobs existed keep working:
    # only pass a knob the caller actually set.
    kwargs = {"ir": ir, "coherence": coherence}
    if engine is not None:
        kwargs["engine"] = engine
    if swmodel is not None:
        kwargs["swmodel"] = swmodel
    return factory(spec, device, **kwargs)


def _register_defaults():
    for variant in VARIANTS:
        register_backend(
            f"hw:{variant}",
            lambda spec, device, ir=None, coherence=None, engine=None,
                   swmodel=None, v=variant:
                HardwareBackend(spec, v, device,
                                engine=engine or "batched",
                                ir=ir, coherence=coherence))
    register_backend(
        "cuda", lambda spec, device, ir=None, coherence=None, engine=None,
            swmodel=None:
            CudaBackend(spec, device, early_term=False, ir=ir,
                        swmodel=swmodel))
    register_backend(
        "cuda+et", lambda spec, device, ir=None, coherence=None, engine=None,
            swmodel=None:
            CudaBackend(spec, device, early_term=True, ir=ir,
                        swmodel=swmodel))
    register_backend(
        "reference", lambda spec, device, ir=None, coherence=None,
            engine=None, swmodel=None: ReferenceBackend(spec, device, ir=ir))


_register_defaults()

"""Engine result caching: in-process memoisation plus an on-disk layer.

This module owns the caches that :mod:`repro.experiments.runner` used to
keep as module-level dicts.  Two layers:

* an **in-process memo** of expensive intermediates — scene clouds,
  preprocessed fragment streams (:class:`Scenario`), and per-variant
  pipeline draws — so a figure suite simulates each (scene, variant)
  pair exactly once per process;
* a **content-keyed disk cache** (:class:`ResultCache`) for trajectory
  results: the key hashes everything that determines the numbers (scene
  profile contents, seed, backend/baseline specs, device, view count and
  an engine schema version), so editing a scene or bumping the schema
  invalidates stale entries automatically.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid
from dataclasses import asdict
from pathlib import Path

from repro import faults
from repro.core.vrpipe import VARIANTS, run_variant
from repro.engine.backends import make_device
from repro.gaussians.preprocess import preprocess
from repro.render.splat_raster import rasterize_splats
from repro.workloads.catalog import build_scene, get_profile

#: Bump when the cached trajectory payload layout changes.  Schema 2
#: added the per-payload integrity checksum.
CACHE_SCHEMA = 2

_SCENARIO_MEMO = {}
_DRAW_MEMO = {}

#: Guards the memo dicts: the memoised builders are reachable from
#: run_frames worker callables, so first-build and lookup must be
#: atomic.  Reentrant because get_draw -> get_scenario -> get_cloud
#: nest under the same lock.
_MEMO_LOCK = threading.RLock()


class Scenario:
    """Everything derived from one (scene, viewpoint): cloud -> stream."""

    def __init__(self, profile, cloud, camera, pre, stream):
        self.profile = profile
        self.cloud = cloud
        self.camera = camera
        self.pre = pre
        self.stream = stream

    @property
    def name(self):
        return self.profile.name


def get_cloud(name, seed=0):
    """Build (or fetch) the Gaussian cloud for a catalogued scene."""
    key = (name, seed)
    with _MEMO_LOCK:
        if key not in _SCENARIO_MEMO:
            _SCENARIO_MEMO[key] = build_scene(get_profile(name), seed=seed)
        return _SCENARIO_MEMO[key]


def get_scenario(name, seed=0, camera=None, view_key=None):
    """Build (or fetch) the scenario for a scene's default viewpoint.

    ``camera``/``view_key`` support viewpoint sweeps: pass an explicit
    camera and a hashable key identifying it.
    """
    key = (name, seed, view_key)
    with _MEMO_LOCK:
        if key not in _SCENARIO_MEMO:
            profile = get_profile(name)
            cloud = get_cloud(name, seed)
            cam = camera if camera is not None else profile.camera()
            pre = preprocess(cloud, cam)
            stream = rasterize_splats(pre.splats, cam.width, cam.height)
            _SCENARIO_MEMO[key] = Scenario(profile, cloud, cam, pre, stream)
        return _SCENARIO_MEMO[key]


def get_draw(name, variant, device_name="orin", seed=0):
    """Cached pipeline simulation of ``variant`` on a scene."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    key = (name, variant, device_name, seed)
    with _MEMO_LOCK:
        if key not in _DRAW_MEMO:
            scenario = get_scenario(name, seed)
            device = make_device(device_name)
            _DRAW_MEMO[key] = run_variant(scenario.stream, variant, device)
        return _DRAW_MEMO[key]


def clear_cache():
    """Drop all memoised scenarios and draws (tests use this)."""
    with _MEMO_LOCK:
        _SCENARIO_MEMO.clear()
        _DRAW_MEMO.clear()


def content_key(payload):
    """Stable hex digest of a JSON-serialisable payload dict."""
    blob = json.dumps(payload, sort_keys=True, default=_jsonify)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def trajectory_key(profile, seed, backend, baseline, device_name, n_views,
                   warm_crop_cache):
    """Content key for one trajectory run's disk-cache entry."""
    return content_key({
        "schema": CACHE_SCHEMA,
        "profile": asdict(profile),
        "seed": int(seed),
        "backend": backend,
        "baseline": baseline,
        "device": device_name,
        "n_views": int(n_views),
        "warm_crop_cache": bool(warm_crop_cache),
    })


def _jsonify(obj):
    if isinstance(obj, tuple):
        return list(obj)
    return str(obj)


def payload_checksum(payload):
    """Integrity digest of a cache payload (its own checksum excluded)."""
    blob = json.dumps({k: v for k, v in payload.items() if k != "checksum"},
                      sort_keys=True, default=_jsonify)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _corrupt_text(text):
    """Bump the first decimal digit (fault injection: a flipped payload
    value that stays valid JSON, so only the checksum can catch it)."""
    for i, ch in enumerate(text):
        if ch.isdigit():
            return text[:i] + str((int(ch) + 1) % 10) + text[i + 1:]
    return text + "\x00"


class ResultCache:
    """On-disk JSON store for trajectory results, keyed by content hash.

    Entries hold the numeric per-frame records and run metadata — not
    images — so a hit reproduces every statistic bit-for-bit while the
    store stays small.

    Hardening (the service layer's requirements):

    * every payload carries a SHA-256 ``checksum``, verified on load;
    * entries that fail to parse, carry a stale schema, or fail their
      checksum are **quarantined** — moved to ``quarantine/`` with the
      failure reason in the filename — instead of silently re-missing
      forever (and silently inflating ``len(cache)``);
    * ``store`` writes through a unique per-writer tmp file (no shared
      tmp-path race between concurrent writers of one key) and retries
      transient ``OSError`` with exponential backoff, degrading to
      uncached execution (``False``) when the disk stays unhappy;
    * ``max_bytes`` bounds the on-disk footprint with a real LRU sweep:
      stores that push the summed entry size over the budget evict the
      least-recently-*used* entries (hits touch mtime, so recency means
      access, not write) until the budget holds again;
    * ``counters`` tracks hits / misses / quarantines / evictions /
      store retries and failures, and :meth:`stats` snapshots them
      together with the current entry count, on-disk bytes and hit rate.
    """

    #: Attempts per :meth:`store` before degrading to uncached execution.
    MAX_STORE_ATTEMPTS = 3
    #: Base backoff between store attempts, in seconds (doubles per retry).
    BACKOFF_S = 0.01

    def __init__(self, root, max_bytes=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.counters = {"hits": 0, "misses": 0, "quarantined": 0,
                         "evicted": 0, "store_retries": 0,
                         "store_failures": 0}

    def _path(self, key):
        return self.root / f"{key}.json"

    @property
    def quarantine_dir(self):
        return self.root / "quarantine"

    def _quarantine(self, path, reason):
        """Move a bad entry aside (reason-tagged) so it can't re-miss."""
        qdir = self.quarantine_dir
        try:
            qdir.mkdir(exist_ok=True)
            path.replace(qdir / f"{path.stem}.{reason}.json")
        except OSError:
            try:
                path.unlink()
            except OSError:
                return  # Unreachable entry: leave it for clear().
        self.counters["quarantined"] += 1

    def load(self, key):
        """The verified payload dict for ``key``, or ``None`` on a miss.

        Unparseable, schema-stale and checksum-failing entries are
        quarantined (see class docstring) and read as misses.
        """
        path = self._path(key)
        rule = None
        try:
            if faults.ENABLED:
                rule = faults.checkpoint("cache.load")
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except (OSError, faults.FaultInjected):
            self.counters["misses"] += 1
            return None
        if rule is not None:
            text = _corrupt_text(text)
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
        except ValueError:
            self._quarantine(path, "corrupt")
            self.counters["misses"] += 1
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            self._quarantine(path, "schema")
            self.counters["misses"] += 1
            return None
        if payload.get("checksum") != payload_checksum(payload):
            self._quarantine(path, "checksum")
            self.counters["misses"] += 1
            return None
        self.counters["hits"] += 1
        try:
            os.utime(path)  # recency for the LRU sweep = last *access*
        except OSError:
            pass
        return payload

    def store(self, key, payload):
        """Persist ``payload`` under ``key`` (atomic rename).

        Writes through a tmp file unique to this writer, retries
        transient ``OSError`` with exponential backoff, and returns
        ``True`` on success / ``False`` after giving up — callers then
        simply run uncached.
        """
        payload = dict(payload, schema=CACHE_SCHEMA)
        payload["checksum"] = payload_checksum(payload)
        blob = json.dumps(payload)
        path = self._path(key)
        for attempt in range(self.MAX_STORE_ATTEMPTS):
            tmp = self.root / f"{key}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
            try:
                rule = (faults.checkpoint("cache.store")
                        if faults.ENABLED else None)
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(blob if rule is None else _corrupt_text(blob))
                tmp.replace(path)
                self._evict_over_budget()
                return True
            except (OSError, faults.FaultInjected):
                try:
                    tmp.unlink()
                except OSError:
                    pass
                if attempt + 1 < self.MAX_STORE_ATTEMPTS:
                    self.counters["store_retries"] += 1
                    time.sleep(self.BACKOFF_S * (2 ** attempt))
        self.counters["store_failures"] += 1
        return False

    def _entries(self):
        """``(path, size, mtime)`` for every stored entry (best effort)."""
        entries = []
        for path in sorted(self.root.glob("*.json")):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((path, st.st_size, st.st_mtime))
        return entries

    def _evict_over_budget(self):
        """LRU-sweep stored entries until ``max_bytes`` holds again.

        Recency is the entry's mtime — refreshed on every verified load —
        so the sweep drops the least-recently-*used* entries first.  A
        racing delete (another process sweeping too) just means less work
        left for us; ``OSError`` on unlink is ignored.
        """
        if self.max_bytes is None:
            return
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        # Oldest access first; path breaks exact mtime ties stably.
        entries.sort(key=lambda entry: (entry[2], entry[0].name))
        for path, size, _ in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.counters["evicted"] += 1

    def stats(self):
        """JSON-safe snapshot: counters + current footprint + hit rate."""
        entries = self._entries()
        lookups = self.counters["hits"] + self.counters["misses"]
        return {
            **self.counters,
            "entries": len(entries),
            "bytes": int(sum(size for _, size, _ in entries)),
            "max_bytes": self.max_bytes,
            "hit_rate": (self.counters["hits"] / lookups if lookups else 0.0),
        }

    def clear(self):
        """Delete every stored entry, leftover tmp file and quarantined
        entry."""
        for pattern in ("*.json", "*.tmp"):
            for path in sorted(self.root.glob(pattern)):
                path.unlink()
        qdir = self.quarantine_dir
        if qdir.is_dir():
            for path in sorted(qdir.glob("*.json")):
                path.unlink()

    def __len__(self):
        return sum(1 for _ in sorted(self.root.glob("*.json")))

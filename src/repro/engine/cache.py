"""Engine result caching: in-process memoisation plus an on-disk layer.

This module owns the caches that :mod:`repro.experiments.runner` used to
keep as module-level dicts.  Two layers:

* an **in-process memo** of expensive intermediates — scene clouds,
  preprocessed fragment streams (:class:`Scenario`), and per-variant
  pipeline draws — so a figure suite simulates each (scene, variant)
  pair exactly once per process;
* a **content-keyed disk cache** (:class:`ResultCache`) for trajectory
  results: the key hashes everything that determines the numbers (scene
  profile contents, seed, backend/baseline specs, device, view count and
  an engine schema version), so editing a scene or bumping the schema
  invalidates stale entries automatically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.core.vrpipe import VARIANTS, run_variant
from repro.engine.backends import make_device
from repro.gaussians.preprocess import preprocess
from repro.render.splat_raster import rasterize_splats
from repro.workloads.catalog import build_scene, get_profile

#: Bump when the cached trajectory payload layout changes.
CACHE_SCHEMA = 1

_SCENARIO_MEMO = {}
_DRAW_MEMO = {}


class Scenario:
    """Everything derived from one (scene, viewpoint): cloud -> stream."""

    def __init__(self, profile, cloud, camera, pre, stream):
        self.profile = profile
        self.cloud = cloud
        self.camera = camera
        self.pre = pre
        self.stream = stream

    @property
    def name(self):
        return self.profile.name


def get_cloud(name, seed=0):
    """Build (or fetch) the Gaussian cloud for a catalogued scene."""
    key = (name, seed)
    if key not in _SCENARIO_MEMO:
        _SCENARIO_MEMO[key] = build_scene(get_profile(name), seed=seed)
    return _SCENARIO_MEMO[key]


def get_scenario(name, seed=0, camera=None, view_key=None):
    """Build (or fetch) the scenario for a scene's default viewpoint.

    ``camera``/``view_key`` support viewpoint sweeps: pass an explicit
    camera and a hashable key identifying it.
    """
    key = (name, seed, view_key)
    if key not in _SCENARIO_MEMO:
        profile = get_profile(name)
        cloud = get_cloud(name, seed)
        cam = camera if camera is not None else profile.camera()
        pre = preprocess(cloud, cam)
        stream = rasterize_splats(pre.splats, cam.width, cam.height)
        _SCENARIO_MEMO[key] = Scenario(profile, cloud, cam, pre, stream)
    return _SCENARIO_MEMO[key]


def get_draw(name, variant, device_name="orin", seed=0):
    """Cached pipeline simulation of ``variant`` on a scene."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    key = (name, variant, device_name, seed)
    if key not in _DRAW_MEMO:
        scenario = get_scenario(name, seed)
        device = make_device(device_name)
        _DRAW_MEMO[key] = run_variant(scenario.stream, variant, device)
    return _DRAW_MEMO[key]


def clear_cache():
    """Drop all memoised scenarios and draws (tests use this)."""
    _SCENARIO_MEMO.clear()
    _DRAW_MEMO.clear()


def content_key(payload):
    """Stable hex digest of a JSON-serialisable payload dict."""
    blob = json.dumps(payload, sort_keys=True, default=_jsonify)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def trajectory_key(profile, seed, backend, baseline, device_name, n_views,
                   warm_crop_cache):
    """Content key for one trajectory run's disk-cache entry."""
    return content_key({
        "schema": CACHE_SCHEMA,
        "profile": asdict(profile),
        "seed": int(seed),
        "backend": backend,
        "baseline": baseline,
        "device": device_name,
        "n_views": int(n_views),
        "warm_crop_cache": bool(warm_crop_cache),
    })


def _jsonify(obj):
    if isinstance(obj, tuple):
        return list(obj)
    return str(obj)


class ResultCache:
    """On-disk JSON store for trajectory results, keyed by content hash.

    Entries hold the numeric per-frame records and run metadata — not
    images — so a hit reproduces every statistic bit-for-bit while the
    store stays small.  A missing/corrupt entry reads as a miss.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key):
        return self.root / f"{key}.json"

    def load(self, key):
        """The stored payload dict for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            return None
        return payload

    def store(self, key, payload):
        """Persist ``payload`` under ``key`` (atomic rename)."""
        payload = dict(payload, schema=CACHE_SCHEMA)
        tmp = self._path(key).with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        tmp.replace(self._path(key))

    def clear(self):
        """Delete every stored entry."""
        for path in self.root.glob("*.json"):
            path.unlink()

    def __len__(self):
        return sum(1 for _ in self.root.glob("*.json"))

"""Parallel frame execution with deterministic per-frame seeding.

Frames of a trajectory are independent once cross-frame state (warm CROP
cache) is disabled, so they fan out over a thread pool:
the simulation is numpy-heavy, and every worker shares the read-only
scene cloud with zero copies.  Results always come back in frame order,
so serial and parallel runs are bit-identical.  Each frame also carries
a deterministic seed (see :func:`frame_seed`) so backends that do draw
randomness stay reproducible across workers and reruns.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ThreadPoolExecutor


def frame_seed(scene_name, base_seed, index):
    """Deterministic, process-independent seed for one trajectory frame.

    Uses crc32 rather than ``hash()`` (which varies with PYTHONHASHSEED),
    so parallel workers, reruns, and disk-cache entries all agree.  The
    built-in backends are pure functions of (cloud, camera) and draw no
    randomness; the seed is recorded on each frame's record so stochastic
    backends (sampling, jittered viewpoints) plug in without changing the
    reproducibility story.
    """
    token = f"{scene_name}:{int(base_seed)}:{int(index)}".encode("ascii")
    return zlib.crc32(token) & 0x7FFFFFFF


def run_frames(fn, tasks, jobs=1):
    """Apply ``fn`` to every task, optionally across ``jobs`` workers.

    Returns results in task order regardless of completion order; with
    ``jobs <= 1`` the frames run serially in the calling thread (required
    when frames share mutable state such as a warm CROP cache).
    """
    tasks = list(tasks)
    if jobs is None or jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with ThreadPoolExecutor(max_workers=int(jobs)) as pool:
        return list(pool.map(fn, tasks))

"""Parallel frame execution with deterministic per-frame seeding.

Frames of a trajectory are independent once cross-frame state (warm CROP
cache) is disabled, so they fan out over a thread pool:
the simulation is numpy-heavy, and every worker shares the read-only
scene cloud with zero copies.  Results always come back in frame order,
so serial and parallel runs are bit-identical.  Each frame also carries
a deterministic seed (see :func:`frame_seed`) so backends that do draw
randomness stay reproducible across workers and reruns.

This module also owns the structured failure types of the self-healing
frame executor (see :class:`~repro.engine.session.RenderSession`):
:class:`FrameIncident` records one recovered (or fatal) fault,
:class:`FrameLadderExhausted` is raised when every degradation rung
failed, and :class:`FrameExecutionError` wraps a parallel worker's
failure with the frame's identity and the results completed so far.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait


def frame_seed(scene_name, base_seed, index):
    """Deterministic, process-independent seed for one trajectory frame.

    Uses crc32 rather than ``hash()`` (which varies with PYTHONHASHSEED),
    so parallel workers, reruns, and disk-cache entries all agree.  The
    built-in backends are pure functions of (cloud, camera) and draw no
    randomness; the seed is recorded on each frame's record so stochastic
    backends (sampling, jittered viewpoints) plug in without changing the
    reproducibility story.
    """
    token = f"{scene_name}:{int(base_seed)}:{int(index)}".encode("ascii")
    return zlib.crc32(token) & 0x7FFFFFFF


class FrameIncident:
    """One fault encountered (and usually healed) while rendering a frame.

    ``rung`` is the degradation-ladder rung that was *running* when the
    fault struck; ``recovered_by`` is the rung that eventually produced
    the frame (``None`` while unresolved, or when the ladder exhausted).
    ``point`` is the named injection/failure point when the exception
    carried one.  ``wall_ms`` is the wall-clock cost of the failed
    attempt — incidents are operational telemetry, so unlike the modeled
    per-frame numbers this is measured time.  ``ts_ms`` is a monotonic
    timestamp (``time.monotonic() * 1e3``, captured at construction
    unless supplied) so incident trails from concurrent requests can be
    interleaved into one service-wide timeline.
    """

    __slots__ = ("frame", "rung", "point", "error", "recovered_by",
                 "wall_ms", "ts_ms")

    def __init__(self, frame, rung, error, point=None, recovered_by=None,
                 wall_ms=0.0, ts_ms=None):
        self.frame = int(frame)
        self.rung = rung
        self.point = point
        self.error = error
        self.recovered_by = recovered_by
        self.wall_ms = float(wall_ms)
        self.ts_ms = (time.monotonic() * 1e3 if ts_ms is None
                      else float(ts_ms))

    def to_dict(self):
        return {"frame": self.frame, "rung": self.rung, "point": self.point,
                "error": self.error, "recovered_by": self.recovered_by,
                "wall_ms": self.wall_ms, "ts_ms": self.ts_ms}

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["frame"], payload["rung"], payload["error"],
                   point=payload.get("point"),
                   recovered_by=payload.get("recovered_by"),
                   wall_ms=payload.get("wall_ms", 0.0),
                   ts_ms=payload.get("ts_ms", 0.0))

    def __repr__(self):
        return (f"FrameIncident(frame={self.frame}, rung={self.rung!r}, "
                f"point={self.point!r}, recovered_by={self.recovered_by!r})")


class FrameLadderExhausted(RuntimeError):
    """Every rung of a frame's degradation ladder failed.

    Carries the frame's identity and the full incident trail so callers
    (and operators) see exactly what was tried.
    """

    def __init__(self, index, seed, incidents):
        self.index = int(index)
        self.seed = int(seed)
        self.incidents = list(incidents)
        last = self.incidents[-1].error if self.incidents else "unknown"
        super().__init__(
            f"frame {self.index} (seed {self.seed}) failed every "
            f"degradation rung ({len(self.incidents)} attempts); "
            f"last error: {last}")


class FrameExecutionError(RuntimeError):
    """A parallel frame worker failed.

    Wraps the original exception (as ``__cause__``) with the failing
    frame's index and seed, plus the results of every frame that *did*
    complete (``completed``, a dict ``{frame index: result}``) so a
    caller can salvage partial progress instead of losing the run.
    """

    def __init__(self, index, seed, completed):
        self.index = int(index)
        self.seed = int(seed)
        self.completed = dict(completed)
        super().__init__(
            f"frame {self.index} (seed {self.seed}) failed; "
            f"{len(self.completed)} other frame(s) completed")


def run_frames(fn, tasks, jobs=1, task_info=None):
    """Apply ``fn`` to every task, optionally across ``jobs`` workers.

    Returns results in task order regardless of completion order; with
    ``jobs <= 1`` the frames run serially in the calling thread (required
    when frames share mutable state such as a warm CROP cache), and
    exceptions propagate unwrapped.

    In parallel mode a worker exception cancels the not-yet-started
    frames, drains the in-flight ones, and re-raises as a
    :class:`FrameExecutionError` carrying the failing frame's index/seed
    and the completed results.  ``task_info`` optionally maps a task to
    its ``(index, seed)`` identity for that error (defaults to the task
    list position and seed 0).
    """
    tasks = list(tasks)
    if jobs is None or jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    if task_info is None:
        task_info = lambda task, position: (position, 0)  # noqa: E731
    with ThreadPoolExecutor(max_workers=int(jobs)) as pool:
        futures = [pool.submit(fn, task) for task in tasks]
        wait(futures, return_when=FIRST_EXCEPTION)
        failed_at = None
        for position, future in enumerate(futures):
            if future.done() and not future.cancelled() \
                    and future.exception() is not None:
                failed_at = position
                break
        if failed_at is None:
            return [future.result() for future in futures]
        # Cancel everything not yet started, then drain what is running.
        for future in futures:
            future.cancel()
        wait(futures)
        completed = {}
        for position, future in enumerate(futures):
            if future.cancelled() or future.exception() is not None:
                continue
            index, _ = task_info(tasks[position], position)
            completed[index] = future.result()
        index, seed = task_info(tasks[failed_at], failed_at)
        raise FrameExecutionError(index, seed, completed) \
            from futures[failed_at].exception()

"""Trajectory rendering engine: backends, sessions, execution, caching.

The engine is the platform layer every scaling feature plugs into.  It
unifies the library's three rendering paths behind one
:class:`~repro.engine.backends.RendererBackend` protocol, simulates
multi-frame trajectories through :class:`~repro.engine.session.RenderSession`,
fans independent frames out over the parallel executor, and memoises
results in-process and on disk (:mod:`repro.engine.cache`).
"""

from repro.engine.backends import (
    FrameResult,
    RendererBackend,
    available_backends,
    backend_spec,
    create_backend,
    make_cuda_renderer,
    make_device,
    register_backend,
    resolve_backend,
)
from repro.engine.cache import (
    ResultCache,
    Scenario,
    clear_cache,
    get_cloud,
    get_draw,
    get_scenario,
)
from repro.engine.executor import (
    FrameExecutionError,
    FrameIncident,
    FrameLadderExhausted,
    frame_seed,
    run_frames,
)
from repro.engine.session import (
    FrameRecord,
    RenderSession,
    TrajectoryResult,
    geomean,
)

__all__ = [
    "FrameExecutionError",
    "FrameIncident",
    "FrameLadderExhausted",
    "FrameRecord",
    "FrameResult",
    "RendererBackend",
    "RenderSession",
    "ResultCache",
    "Scenario",
    "TrajectoryResult",
    "available_backends",
    "backend_spec",
    "clear_cache",
    "create_backend",
    "frame_seed",
    "geomean",
    "get_cloud",
    "get_draw",
    "get_scenario",
    "make_cuda_renderer",
    "make_device",
    "register_backend",
    "resolve_backend",
    "run_frames",
]

"""Multi-frame simulation sessions along viewpoint trajectories.

The paper's headline aggregates (Figures 16/17/21) are statistics over
*many viewpoints per scene*.  A :class:`RenderSession` owns one
(scene, backend, device) configuration and simulates whole frame
sequences along the scene's orbit trajectory
(:func:`repro.workloads.viewpoints.scene_viewpoints`), producing a
:class:`TrajectoryResult` with per-frame records and aggregate
statistics (geomean speedup over a baseline backend, FPS percentiles,
the early-termination-ratio distribution).

Cross-frame state is carried correctly: with ``warm_crop_cache`` the
backend's CROP cache persists across frames (the ``crop_cache`` hook of
the pipeline model), while the HET termination stencil is cleared every
frame — a fresh ZROP unit per draw, as in hardware.  Warm-cache runs are
serial by construction; stateless runs fan out over the parallel
executor and return bit-identical records in either mode.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import faults
from repro.engine import cache as engine_cache
from repro.engine.backends import backend_spec, resolve_backend
from repro.engine.executor import (FrameIncident, FrameLadderExhausted,
                                   frame_seed, run_frames)
from repro.gaussians.preprocess import preprocess
from repro.render.coherence import FrameCoherence, resolve_coherence
from repro.render.frameir import resolve_ir
from repro.render.splat_raster import rasterize_splats
from repro.swrender.warp_model import resolve_swmodel
from repro.workloads.catalog import SceneProfile, build_scene, get_profile
from repro.workloads.viewpoints import scene_viewpoints


def geomean(values):
    """Geometric mean of positive values."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(values <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


class FrameRecord:
    """Numeric summary of one trajectory frame.

    ``result`` holds the full :class:`~repro.engine.backends.FrameResult`
    (with images) only when the session ran with ``keep_results=True``;
    by default — and for records restored from the disk cache — it is
    ``None``, so long trajectories never pin every frame's image and
    fragment stream in memory at once.

    ``incidents`` lists the faults the self-healing executor recovered
    while producing this frame (as
    :meth:`~repro.engine.executor.FrameIncident.to_dict` payloads);
    empty for clean frames.  The numeric fields are bit-identical
    whether a frame rendered cleanly or through a degraded ladder rung.
    """

    _FIELDS = ("index", "backend", "seed", "cycles", "ms", "fps",
               "et_ratio", "kernels", "baseline_cycles", "speedup",
               "incidents")

    def __init__(self, index, backend, seed, cycles=None, ms=None, fps=None,
                 et_ratio=None, kernels=None, baseline_cycles=None,
                 speedup=None, incidents=None, result=None):
        self.index = int(index)
        self.backend = backend
        self.seed = int(seed)
        self.cycles = cycles
        self.ms = ms
        self.fps = fps
        self.et_ratio = et_ratio
        self.kernels = dict(kernels) if kernels else {}
        self.baseline_cycles = baseline_cycles
        self.speedup = speedup
        self.incidents = list(incidents) if incidents else []
        self.result = result

    def to_dict(self):
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, payload):
        return cls(**{name: payload.get(name) for name in cls._FIELDS})

    def __repr__(self):
        ms = f"{self.ms:.3f}" if self.ms is not None else "-"
        return (f"FrameRecord(index={self.index}, backend={self.backend!r}, "
                f"ms={ms}, et_ratio={self.et_ratio})")


class TrajectoryResult:
    """Per-frame records plus aggregates for one trajectory run.

    ``stage_ms`` holds the summed wall-clock per-stage breakdown over the
    run's frames (preprocess / rasterize / digest / draw / ...) when the
    session collected one (serial runs only — overlapping workers would
    double-count wall time); empty otherwise.
    """

    def __init__(self, scene, backend, baseline, device, seed, records,
                 from_cache=False, stage_ms=None):
        self.scene = scene
        self.backend = backend
        self.baseline = baseline
        self.device = device
        self.seed = int(seed)
        self.records = list(records)
        self.from_cache = bool(from_cache)
        self.stage_ms = dict(stage_ms or {})

    @property
    def n_frames(self):
        return len(self.records)

    def aggregates(self):
        """Summary statistics over the trajectory's frames.

        Always reports the frame count and the early-termination-ratio
        distribution; timing aggregates (ms, FPS percentiles) appear when
        the backend models time, and ``geomean_speedup`` when a baseline
        backend ran alongside.
        """
        agg = {"frames": self.n_frames}
        ratios = [r.et_ratio for r in self.records if r.et_ratio is not None]
        if ratios:
            ratios = np.asarray(ratios, dtype=np.float64)
            agg["et_ratio_mean"] = float(ratios.mean())
            agg["et_ratio_min"] = float(ratios.min())
            agg["et_ratio_max"] = float(ratios.max())
        times = [r.ms for r in self.records if r.ms is not None]
        if times:
            agg["mean_ms"] = float(np.mean(times))
            agg["total_ms"] = float(np.sum(times))
        fps = [r.fps for r in self.records if r.fps is not None]
        if fps:
            fps = np.asarray(fps, dtype=np.float64)
            agg["fps_p5"] = float(np.percentile(fps, 5))
            agg["fps_p50"] = float(np.percentile(fps, 50))
            agg["fps_p95"] = float(np.percentile(fps, 95))
        speedups = [r.speedup for r in self.records if r.speedup is not None]
        if speedups:
            agg["geomean_speedup"] = geomean(speedups)
        return agg

    def incidents(self):
        """Flat list of every frame's incident payloads, in frame order.

        Deliberately *not* part of :meth:`aggregates`: the aggregate
        statistics are bit-identical between a chaos run and its
        fault-free oracle (degraded rungs are exact), while incidents
        describe the run's operational history.
        """
        return [inc for r in self.records for inc in (r.incidents or [])]

    def incident_summary(self):
        """Operational rollup of the run's incidents (empty run: count 0)."""
        incidents = self.incidents()
        summary = {"count": len(incidents)}
        if not incidents:
            return summary
        summary["frames_affected"] = len({inc["frame"] for inc in incidents})
        by_rung = {}
        by_point = {}
        for inc in incidents:
            rung = inc.get("recovered_by") or "unrecovered"
            by_rung[rung] = by_rung.get(rung, 0) + 1
            point = inc.get("point") or "unknown"
            by_point[point] = by_point.get(point, 0) + 1
        summary["recovered_by"] = by_rung
        summary["by_point"] = by_point
        # healing_ms is the wall clock burned by *failed* attempts — the
        # latency tax paid to heal — the serving layer attributes slow
        # responses to it.  wall_ms is the historical alias.
        healing_ms = float(sum(inc.get("wall_ms", 0.0)
                               for inc in incidents))
        summary["healing_ms"] = healing_ms
        summary["wall_ms"] = healing_ms
        return summary

    def to_dict(self):
        return {
            "scene": self.scene,
            "backend": self.backend,
            "baseline": self.baseline,
            "device": self.device,
            "seed": self.seed,
            "records": [r.to_dict() for r in self.records],
            "incidents": self.incidents(),
        }

    @classmethod
    def from_dict(cls, payload, from_cache=False):
        return cls(
            scene=payload["scene"],
            backend=payload["backend"],
            baseline=payload.get("baseline"),
            device=payload.get("device", "orin"),
            seed=payload.get("seed", 0),
            records=[FrameRecord.from_dict(r) for r in payload["records"]],
            from_cache=from_cache,
        )

    def __repr__(self):
        return (f"TrajectoryResult(scene={self.scene!r}, "
                f"backend={self.backend!r}, frames={self.n_frames}, "
                f"from_cache={self.from_cache})")


class _FrameTask:
    """One frame's inputs: orbit index, camera, deterministic seed."""

    def __init__(self, index, camera, seed):
        self.index = index
        self.camera = camera
        self.seed = seed


class RenderSession:
    """Simulate frame sequences of one scene through one backend.

    Parameters
    ----------
    scene:
        Catalogue scene name or a :class:`SceneProfile`.
    backend:
        Backend spec (see :mod:`repro.engine.backends`).
    baseline:
        Spec of a second backend rendered on the *same* per-frame stream
        for speedup statistics.  ``"auto"`` picks ``hw:baseline`` for
        hardware backends (and nothing otherwise); ``None`` disables it.
    device:
        Device preset name (``orin`` / ``rtx3090``).
    seed:
        Scene-construction seed; per-frame seeds derive from it
        deterministically via :func:`repro.engine.executor.frame_seed`.
    warm_crop_cache:
        Persist the backend's CROP cache across the trajectory's frames
        (forces serial execution; hardware backends only).
    result_cache:
        Optional :class:`~repro.engine.cache.ResultCache`; trajectory
        runs are served from disk on a content-key hit.
    ir:
        Digestion mode shared by the session's rasterisation and both
        backends (``"auto"`` / ``"frameir"`` / ``"legacy"``, see
        :mod:`repro.render.frameir`).  Every mode produces bit-identical
        frames — the knob only selects which digestion engine runs — so
        the disk cache key is deliberately ``ir``-agnostic.
    coherence:
        Cross-frame digestion reuse (``"auto"`` / ``"incremental"`` /
        ``"off"``, see :mod:`repro.render.coherence`).  The session owns
        one :class:`~repro.render.coherence.FrameCoherence` carrier
        shared by :meth:`render_frame` calls and serial :meth:`run`
        trajectories, so revisited viewpoints reuse digested state.
        Like ``ir``, every mode is bit-identical — the disk cache key
        stays ``coherence``-agnostic — and ``None`` defers to the
        ``$REPRO_COHERENCE`` process default.  Parallel runs
        (``jobs > 1``) silently bypass the carrier under ``"auto"`` and
        refuse under explicit ``"incremental"``.
    strict:
        ``True`` restores raise-through semantics: a frame failure
        propagates immediately instead of entering the degradation
        ladder (see :data:`LADDER`).
    watchdog_ms:
        Per-frame-attempt wall-clock budget.  Attempts exceeding it
        raise :class:`~repro.faults.WatchdogTimeout` at the next
        instrumented checkpoint (the watchdog is cooperative — the
        simulator is pure compute with checkpoints on every fast path),
        and the ladder treats the timeout like any other frame fault.
        ``None`` (default) disables the watchdog entirely.

    Self-healing
    ------------
    Every trajectory frame runs through a bounded retry-with-degradation
    ladder: retry as-is, then ``coherence=off``, then ``ir=legacy``,
    then ``engine=scalar``.  Each rung re-renders the frame through a
    *retained bit-exact oracle* of the failed fast path, so a degraded
    frame's record is bit-identical to a clean one — only wall-clock
    changes.  Recoveries are logged as structured incidents on the
    frame's record; a frame that fails every rung raises
    :class:`~repro.engine.executor.FrameLadderExhausted`.  Degraded
    rungs need to rebuild backends from their registry specs, so
    sessions handed ready backend *instances* ladder through the retry
    rung only.
    """

    #: The degradation ladder, least- to most-degraded.  Every rung is
    #: bit-identical in its outputs; later rungs bypass progressively
    #: more of the vectorized fast paths (and their failure modes).
    LADDER = ("primary", "retry", "coherence=off", "swmodel=legacy",
              "ir=legacy", "engine=scalar")

    #: rung -> (use coherence carrier, ir override, flush-engine override,
    #: swmodel override).  The deeper rungs also pin ``swmodel`` to the
    #: fragment-sort oracle: ``ir=legacy`` streams carry no FrameIR for
    #: the software models to read.
    _RUNG_KNOBS = {
        "primary": (True, None, None, None),
        "retry": (True, None, None, None),
        "coherence=off": (False, None, None, None),
        "swmodel=legacy": (False, None, None, "legacy"),
        "ir=legacy": (False, "legacy", None, "legacy"),
        "engine=scalar": (False, "legacy", "scalar", "legacy"),
    }

    def __init__(self, scene, backend="hw:het+qm", baseline="auto",
                 device="orin", seed=0, warm_crop_cache=False,
                 result_cache=None, ir=None, coherence=None, swmodel=None,
                 strict=False, watchdog_ms=None):
        self.profile = (scene if isinstance(scene, SceneProfile)
                        else get_profile(scene))
        # Specs are normalised once here: ``backend``/``baseline`` may be
        # registry spec strings or ready backend instances alike.  The
        # on-disk result cache is keyed by (spec, device) strings, which
        # only describe instances the registry itself would build — so
        # caching is disabled when a ready instance is passed (its actual
        # configuration is not part of the key and a differently-built
        # instance sharing a spec must not collide).
        self._cacheable = (isinstance(backend, str)
                           and (baseline is None or isinstance(baseline, str)))
        self.backend_spec = backend_spec(backend)
        self.device_name = device
        self.seed = int(seed)
        # None stays None so the $REPRO_IR default remains best-effort.
        self.ir = resolve_ir(ir) if ir is not None else None
        # Same contract for the software-path model knob.
        self.swmodel = resolve_swmodel(swmodel) if swmodel is not None \
            else None
        self.backend = resolve_backend(backend, device_name=device,
                                       ir=self.ir, swmodel=self.swmodel)
        if baseline == "auto":
            spec = self.backend_spec
            baseline = ("hw:baseline"
                        if spec.startswith("hw:") and spec != "hw:baseline"
                        else None)
        self.baseline_spec = backend_spec(baseline) if baseline else None
        self.baseline = (resolve_backend(baseline, device_name=device,
                                         ir=self.ir, swmodel=self.swmodel)
                         if baseline else None)
        self.warm_crop_cache = bool(warm_crop_cache)
        self.result_cache = result_cache
        # None stays None so the $REPRO_COHERENCE default remains
        # best-effort (resolved when the carrier is first built).
        self.coherence = (resolve_coherence(coherence)
                          if coherence is not None else None)
        self.strict = bool(strict)
        self.watchdog_ms = watchdog_ms
        self._coherence_carrier = None
        self._cloud = None
        # Degraded-rung backends, built lazily from the registry specs
        # (keyed by (role, ir, engine)) — possible exactly when the
        # session was handed spec strings, i.e. when ``_cacheable``.
        self._degraded = {}
        self._degraded_lock = threading.Lock()

    @property
    def cloud(self):
        """The scene's Gaussian cloud (built once, shared by all frames)."""
        if self._cloud is None:
            try:
                catalogued = get_profile(self.profile.name) is self.profile
            except KeyError:
                catalogued = False
            if catalogued:
                self._cloud = engine_cache.get_cloud(self.profile.name,
                                                     self.seed)
            else:
                self._cloud = build_scene(self.profile, seed=self.seed)
        return self._cloud

    def _carrier(self):
        """The session's coherence carrier (built once, possibly inert)."""
        if self._coherence_carrier is None:
            mode = (self.coherence if self.coherence is not None
                    else resolve_coherence())
            self._coherence_carrier = FrameCoherence(mode)
        return self._coherence_carrier

    def _ladder_rungs(self):
        """The rungs available to this session (see class docstring)."""
        if self._cacheable:
            return self.LADDER
        return ("primary", "retry")

    def _rung_backends(self, rung):
        """``(backend, baseline, use_carrier, ir)`` for one ladder rung."""
        use_carrier, ir, engine, rung_swmodel = self._RUNG_KNOBS[rung]
        if ir is None and engine is None and rung_swmodel is None:
            return self.backend, self.baseline, use_carrier, self.ir
        # Knobs a rung leaves unset fall back to the session's own
        # settings, so a shallow rung doesn't silently degrade the rest.
        eff_ir = ir if ir is not None else self.ir
        key_tail = (ir, engine, rung_swmodel)
        with self._degraded_lock:
            backend = self._degraded.get(("backend",) + key_tail)
            if backend is None:
                backend = resolve_backend(self.backend_spec,
                                          device_name=self.device_name,
                                          ir=eff_ir, engine=engine,
                                          swmodel=rung_swmodel)
                self._degraded[("backend",) + key_tail] = backend
            baseline = None
            if self.baseline is not None:
                baseline = self._degraded.get(("baseline",) + key_tail)
                if baseline is None:
                    baseline = resolve_backend(self.baseline_spec,
                                               device_name=self.device_name,
                                               ir=eff_ir, engine=engine,
                                               swmodel=rung_swmodel)
                    self._degraded[("baseline",) + key_tail] = baseline
        return backend, baseline, use_carrier, eff_ir

    def _render_frame_attempt(self, task, backend, baseline, carrier,
                              crop_cache, raster_jobs, keep_results, ir,
                              stages):
        """One rendering attempt of one frame (any rung's configuration).

        ``stages``, when not ``None``, collects this attempt's wall-clock
        stage timings as ``(name, ms, substage dict)`` tuples — the
        caller merges them into the run's breakdown only if the attempt
        succeeds, so failed attempts never skew the per-stage report.
        """
        t0 = time.perf_counter()
        pre = preprocess(self.cloud, task.camera)
        t1 = time.perf_counter()
        stream = rasterize_splats(pre.splats, task.camera.width,
                                  task.camera.height, jobs=raster_jobs,
                                  ir=ir)
        t2 = time.perf_counter()
        if carrier is not None:
            carrier.begin_frame(stream)
        frame = backend.render_stream(stream, pre, crop_cache=crop_cache)
        t3 = time.perf_counter()
        record = FrameRecord(
            index=task.index, backend=self.backend_spec, seed=task.seed,
            cycles=frame.cycles, ms=frame.ms, fps=frame.fps,
            et_ratio=frame.et_ratio, kernels=frame.kernels,
            result=frame if keep_results else None)
        base = None
        if baseline is not None:
            base = baseline.render_stream(stream, pre)
            record.baseline_cycles = base.cycles
            if base.cycles and frame.cycles:
                record.speedup = base.cycles / frame.cycles
        if stages is not None:
            t4 = time.perf_counter()
            stages.append(("preprocess", (t1 - t0) * 1e3, None))
            stages.append(("rasterize", (t2 - t1) * 1e3, None))
            stages.append(("render", (t3 - t2) * 1e3, frame.wall_ms))
            if base is not None:
                stages.append(("baseline", (t4 - t3) * 1e3, base.wall_ms))
        return record

    def _run_frame_ladder(self, task, carrier, crop_cache, raster_jobs,
                          keep_results, stage_sink):
        """Render one frame through the degradation ladder.

        Cross-frame shared state (the coherence carrier, a warm CROP
        cache) is snapshotted before the first attempt and rewound
        before every retry, so a fault that struck mid-mutation cannot
        leak half-updated state into the healed frame or its successors.
        """
        incidents = []
        last_exc = None
        carrier_snap = (carrier.snapshot() if carrier is not None else None)
        crop_snap = (crop_cache.snapshot()
                     if crop_cache is not None
                     and hasattr(crop_cache, "snapshot") else None)
        for rung in self._ladder_rungs():
            backend, baseline, use_carrier, ir = self._rung_backends(rung)
            if incidents:
                if carrier_snap is not None:
                    carrier.restore(carrier_snap)
                if crop_snap is not None:
                    crop_cache.restore(crop_snap)
            stages = [] if stage_sink is not None else None
            t0 = time.perf_counter()
            try:
                with faults.watchdog(self.watchdog_ms):
                    record = self._render_frame_attempt(
                        task, backend, baseline,
                        carrier if use_carrier else None, crop_cache,
                        raster_jobs, keep_results, ir, stages)
            except Exception as exc:
                if self.strict:
                    raise
                last_exc = exc
                incidents.append(FrameIncident(
                    task.index, rung, f"{type(exc).__name__}: {exc}",
                    point=getattr(exc, "point", None),
                    wall_ms=(time.perf_counter() - t0) * 1e3))
                continue
            if incidents:
                for incident in incidents:
                    incident.recovered_by = rung
                record.incidents = [inc.to_dict() for inc in incidents]
            if stage_sink is not None:
                stage_sink(stages)
            return record
        if carrier_snap is not None:
            carrier.restore(carrier_snap)
        if crop_snap is not None:
            crop_cache.restore(crop_snap)
        raise FrameLadderExhausted(task.index, task.seed,
                                   incidents) from last_exc

    def render_frame(self, camera=None, crop_cache=None):
        """Render a single frame; defaults to the profile's camera.

        Preprocesses and rasterises exactly as the backend's own
        ``render`` would — the output stays bit-identical to calling the
        underlying renderer directly — but feeds the stream through the
        session's coherence carrier first, so repeated frames (static
        camera, revisited viewpoints) reuse digested state.
        """
        cam = camera if camera is not None else self.profile.camera()
        pre = preprocess(self.cloud, cam)
        stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                  ir=self.ir)
        self._carrier().begin_frame(stream)
        return self.backend.render_stream(stream, pre, crop_cache=crop_cache)

    def run(self, n_views=8, jobs=1, keep_results=False, raster_jobs=None,
            collect_stages=False, crop_cache=None):
        """Simulate ``n_views`` frames along the scene's orbit trajectory.

        ``keep_results=True`` attaches each frame's full
        :class:`~repro.engine.backends.FrameResult` (image, alpha, raw
        renderer output) to its record; the default keeps only the
        numeric summaries, so memory stays flat however long the
        trajectory is.

        ``raster_jobs`` threads the rasteriser's independent fragment
        blocks inside each frame (bit-identical streams, see
        :func:`repro.render.splat_raster.rasterize_splats`) — orthogonal
        to ``jobs``, which fans whole frames out.  ``collect_stages=True``
        accumulates a wall-clock per-stage breakdown onto the result
        (serial runs only).

        ``crop_cache`` hands in a caller-owned warm CROP cache instead of
        building a fresh one (the serving layer persists one per resident
        scene, so warm requests reuse it *across* trajectories).  Its
        contents depend on everything previously rendered through it, so
        such runs always bypass the disk result cache.
        """
        if n_views <= 0:
            raise ValueError(f"n_views must be positive, got {n_views}")
        if collect_stages and jobs is not None and jobs > 1:
            raise ValueError(
                "collect_stages sums wall-clock per stage and requires "
                "serial frame execution (jobs=1)")
        caller_crop_cache = crop_cache is not None
        key = None
        # Stage collection measures *this* run's wall clock; a cache hit
        # would return records with no breakdown, so it bypasses the cache.
        # A caller-owned CROP cache carries request history, so its runs
        # are not content-addressable either.
        if (self.result_cache is not None and self._cacheable
                and not collect_stages and not caller_crop_cache):
            key = engine_cache.trajectory_key(
                self.profile, self.seed, self.backend_spec,
                self.baseline_spec, self.device_name, n_views,
                self.warm_crop_cache)
            hit = self.result_cache.load(key)
            if hit is not None:
                return TrajectoryResult.from_dict(hit, from_cache=True)

        parallel = jobs is not None and jobs > 1
        if parallel and self.coherence == "incremental":
            raise ValueError(
                "coherence='incremental' carries digestion state across "
                "frames and requires serial execution (jobs=1)")
        # Parallel fan-out silently bypasses the carrier under "auto":
        # frames are bit-identical either way, the carrier only changes
        # how fast digestion converges.
        carrier = None if parallel else self._carrier()

        if self.warm_crop_cache or caller_crop_cache:
            if jobs is not None and jobs > 1:
                raise ValueError(
                    "warm_crop_cache carries state across frames and "
                    "requires serial execution (jobs=1)")
            if not caller_crop_cache:
                crop_cache = self.backend.new_crop_cache()
            if crop_cache is None:
                raise ValueError(
                    f"backend {self.backend_spec!r} has no CROP cache to "
                    "keep warm")

        cameras = scene_viewpoints(self.profile, n_views)
        tasks = [
            _FrameTask(k, cam, frame_seed(self.profile.name, self.seed, k))
            for k, cam in enumerate(cameras)
        ]
        _ = self.cloud  # build once outside the workers, shared read-only

        stage_ms = {} if collect_stages else None

        def stage_sink(stages):
            for name, ms, substages in stages:
                stage_ms[name] = stage_ms.get(name, 0.0) + ms
                for sub, sub_ms in (substages or {}).items():
                    key = f"{name}:{sub}"
                    stage_ms[key] = stage_ms.get(key, 0.0) + sub_ms

        def render_one(task):
            return self._run_frame_ladder(
                task, carrier, crop_cache, raster_jobs, keep_results,
                stage_sink if stage_ms is not None else None)

        records = run_frames(render_one, tasks, jobs=jobs,
                             task_info=lambda task, _: (task.index, task.seed))
        result = TrajectoryResult(
            scene=self.profile.name, backend=self.backend_spec,
            baseline=self.baseline_spec, device=self.device_name,
            seed=self.seed, records=records, stage_ms=stage_ms)
        if key is not None:
            self.result_cache.store(key, result.to_dict())
        return result

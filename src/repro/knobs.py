"""Central registry of the library's process knobs and mode sets.

Every behaviour toggle the library reads from the environment, and every
``engine=`` / ``ir=`` / ``coherence=``-style mode knob threaded through
the call graph, is declared **here** — one import-light module (stdlib
only, importable from anywhere without cycles) that three consumers
share:

* the resolvers (:func:`repro.render.frameir.resolve_ir`,
  :func:`repro.render.coherence.resolve_coherence`, the fault-plan
  installer) read their defaults through :func:`env` instead of touching
  ``os.environ`` directly;
* the CLI builds its ``--ir`` / ``--coherence`` / ``--faults`` options
  from the same declarations, so help text and accepted values cannot
  drift from the code;
* ``repro lint`` (see :mod:`repro.analysis`) statically cross-checks the
  tree against these declarations: rule R4 flags ``REPRO_*`` environment
  reads that bypass the registry or name an unregistered knob, and rule
  R5 flags mode literals outside the declared sets plus declared oracle
  paths that no test exercises.

Adding a knob therefore means adding it here first; the lint gate turns
an undeclared knob into a CI failure rather than a silent convention.
"""

from __future__ import annotations

import os

#: Valid values of the ``ir`` digestion knob (FrameIR-backed digestion
#: vs the retained sort-based oracle; see :mod:`repro.render.frameir`).
IR_MODES = ("auto", "frameir", "legacy")

#: Valid values of the cross-frame ``coherence`` knob (see
#: :mod:`repro.render.coherence`).
COHERENCE_MODES = ("auto", "incremental", "off")

#: Valid values of the software-path ``swmodel`` knob (FrameIR-backed
#: CUDA warp/multipass models vs the retained fragment-sort oracles; see
#: :mod:`repro.swrender.warp_model` and :mod:`repro.swopt.multipass`).
SWMODEL_MODES = ("auto", "frameir", "legacy")

#: Valid values of the pipeline flush ``engine`` knob (batched flush
#: plan vs the scalar per-flush oracle; see
#: :class:`repro.hwmodel.pipeline.GraphicsPipeline`).
PIPELINE_ENGINES = ("batched", "scalar")

#: Valid values of the LRU replay ``engine`` knob (vectorized exact-LRU
#: replay vs the scalar access loop; see
#: :meth:`repro.hwmodel.caches.LRUCache.access_segmented`).
LRU_ENGINES = ("auto", "vector", "scalar")


class EnvKnob:
    """One registered ``REPRO_*`` environment knob."""

    __slots__ = ("name", "default", "choices", "help", "consumed_by")

    def __init__(self, name, default, choices=None, help="",
                 consumed_by=()):
        self.name = name
        self.default = default
        self.choices = tuple(choices) if choices is not None else None
        self.help = help
        self.consumed_by = tuple(consumed_by)


#: The registered environment knobs.  ``repro lint`` rule R4 rejects any
#: ``os.environ`` read of a ``REPRO_*`` name missing from this table.
ENV_KNOBS = {
    "REPRO_IR": EnvKnob(
        "REPRO_IR", default="auto", choices=IR_MODES,
        help="process-wide default of the ir digestion knob "
             "(bit-identical modes; 'legacy' is the sort-based oracle)",
        consumed_by=("repro.render.frameir.resolve_ir",)),
    "REPRO_COHERENCE": EnvKnob(
        "REPRO_COHERENCE", default="auto", choices=COHERENCE_MODES,
        help="process-wide default of the cross-frame coherence knob "
             "(bit-identical modes; 'off' is the full-recompute oracle)",
        consumed_by=("repro.render.coherence.resolve_coherence",)),
    "REPRO_SWMODEL": EnvKnob(
        "REPRO_SWMODEL", default="auto", choices=SWMODEL_MODES,
        help="process-wide default of the software-path model knob "
             "(bit-identical modes; 'legacy' is the fragment-sort oracle "
             "for the CUDA warp/multipass models)",
        consumed_by=("repro.swrender.warp_model.resolve_swmodel",)),
    "REPRO_FAULTS": EnvKnob(
        "REPRO_FAULTS", default="", choices=None,
        help="seeded fault-injection plan installed at import time "
             "(grammar in repro.faults.plan)",
        consumed_by=("repro.faults",)),
    "REPRO_SCENES": EnvKnob(
        "REPRO_SCENES", default="", choices=None,
        help="comma-separated scene subset evaluated by the pytest "
             "benchmark suite (CI uses lego,palace)",
        consumed_by=("benchmarks.conftest",)),
    "REPRO_SERVE_WORKERS": EnvKnob(
        "REPRO_SERVE_WORKERS", default="2", choices=None,
        help="default worker-pool size of the request-serving layer "
             "(repro serve / RenderService)",
        consumed_by=("repro.serve.service.RenderService",)),
    "REPRO_SERVE_QUEUE": EnvKnob(
        "REPRO_SERVE_QUEUE", default="16", choices=None,
        help="default bounded-queue depth of the request-serving layer; "
             "submissions beyond it are rejected typed (queue_full)",
        consumed_by=("repro.serve.service.RenderService",)),
}


def env(name):
    """Read a registered knob from the environment (or its default).

    The single sanctioned ``os.environ`` access path for ``REPRO_*``
    names — lint rule R4 flags direct reads anywhere else, so defaults
    and registration cannot drift.  Raises ``KeyError`` for names not in
    :data:`ENV_KNOBS`.
    """
    knob = ENV_KNOBS[name]
    value = os.environ.get(name)
    return knob.default if value is None else value


#: Mode-knob declarations for lint rule R5: for each knob parameter
#: name, the full set of legal mode literals anywhere in the tree, and
#: the *oracle* mode — the retained bit-exact reference path that the
#: test suite must exercise for the fast paths to stay trustworthy.
MODE_KNOBS = {
    "ir": {"modes": IR_MODES, "oracle": "legacy"},
    "coherence": {"modes": COHERENCE_MODES, "oracle": "off"},
    "swmodel": {"modes": SWMODEL_MODES, "oracle": "legacy"},
    # ``engine`` names two knob families (the pipeline flush engine and
    # the LRU replay engine); the declared set is their union and both
    # oracles answer to mode "scalar".
    "engine": {"modes": tuple(sorted(set(PIPELINE_ENGINES + LRU_ENGINES))),
               "oracle": "scalar"},
}

#: Declared vector/scalar oracle pairs for lint rule R5: each oracle
#: ``symbol`` must exist in ``src`` and be exercised from ``tests/`` —
#: either referenced by name, or reached through its knob's oracle mode
#: (``knob=mode`` appearing in a test).
ORACLES = (
    {"symbol": "rasterize_splats_scalar", "pair": "rasterize_splats",
     "knob": None, "mode": None},
    {"symbol": "_draw_scalar", "pair": "_draw_batched",
     "knob": "engine", "mode": "scalar"},
    {"symbol": "_access_segmented_scalar", "pair": "replay_tag_stream",
     "knob": "engine", "mode": "scalar"},
    {"symbol": "from_stream", "pair": "from_ir",
     "knob": "ir", "mode": "legacy"},
    {"symbol": "_simulate_tile_warps_legacy", "pair": "_simulate_tile_warps_ir",
     "knob": "swmodel", "mode": "legacy"},
    {"symbol": "_multipass_workspace_legacy", "pair": "_multipass_workspace_ir",
     "knob": "swmodel", "mode": "legacy"},
)

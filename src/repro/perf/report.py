"""BENCH_<suite>.json reports and baseline comparison.

A report is a flat, diff-friendly JSON document: suite metadata, one row
per benchmark (median + raw repeats + derived metrics), and — when a
baseline report is supplied — per-benchmark speedups against it, so a
checked-in ``BENCH_rasterize.json`` doubles as the regression reference
for later runs (``repro bench --baseline BENCH_rasterize.json``).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

#: Bumped whenever the report layout changes incompatibly.
SCHEMA_VERSION = 1


def suite_report(run, baseline=None):
    """Serialise a :class:`~repro.perf.suite.SuiteRun` to a report dict.

    ``baseline`` is a previously loaded report dict; matching benchmark
    names gain a ``speedup_vs_baseline`` entry (>1 means this run is
    faster).
    """
    rows = []
    for result in run:
        rows.append({
            "name": result.name,
            "scene": result.scene,
            "median_ms": result.timing.median_ms,
            "times_ms": [t * 1e3 for t in result.timing.times_s],
            "warmup": result.timing.warmup,
            **result.metrics,
        })
    report = {
        "schema": SCHEMA_VERSION,
        "suite": run.suite,
        "quick": run.quick,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        # Environment fingerprint: trajectories of BENCH files are only
        # comparable when these match (medians from a 4-core laptop and a
        # 1-core CI runner are different experiments).
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "benchmarks": rows,
    }
    if baseline is not None:
        report["baseline_suite"] = baseline.get("suite")
        report["speedup_vs_baseline"] = compare_to_baseline(report, baseline)
    return report


def compare_to_baseline(report, baseline):
    """``{benchmark name: baseline_median / current_median}`` for shared rows."""
    if baseline.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline schema {baseline.get('schema')!r} does not match "
            f"current schema {SCHEMA_VERSION}")
    base_rows = {row["name"]: row for row in baseline.get("benchmarks", [])}
    speedups = {}
    for row in report["benchmarks"]:
        base = base_rows.get(row["name"])
        if base is None or not row["median_ms"]:
            continue
        speedups[row["name"]] = base["median_ms"] / row["median_ms"]
    return speedups


def check_report(report, reference, tolerance=0.5):
    """Compare fresh medians against a checked-in reference report.

    Returns ``[(benchmark name, slowdown_ratio), ...]`` for benchmarks
    whose fresh median exceeds the reference median by more than
    ``tolerance`` (0.5 = 50% slower).  Benchmarks present on only one
    side are ignored.  This powers ``repro bench --check`` — an *advisory*
    regression tripwire, not a hard CI gate: wall-clock medians move with
    machine load, so treat a failure as "go look", not "revert".
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    ref_rows = {row["name"]: row for row in reference.get("benchmarks", [])}
    regressions = []
    for row in report.get("benchmarks", []):
        ref = ref_rows.get(row["name"])
        if ref is None or not ref.get("median_ms"):
            continue
        ratio = row["median_ms"] / ref["median_ms"]
        if ratio > 1.0 + tolerance:
            regressions.append((row["name"], ratio))
    return regressions


def write_report(report, path):
    """Write ``report`` as indented JSON to ``path`` (returns the path)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_report(path):
    """Load a report previously written by :func:`write_report`."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict) or "benchmarks" not in report:
        raise ValueError(f"{path!r} is not a bench report")
    return report

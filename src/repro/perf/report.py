"""BENCH_<suite>.json reports and baseline comparison.

A report is a flat, diff-friendly JSON document: suite metadata, one row
per benchmark (median + raw repeats + derived metrics), and — when a
baseline report is supplied — per-benchmark speedups against it, so a
checked-in ``BENCH_rasterize.json`` doubles as the regression reference
for later runs (``repro bench --baseline BENCH_rasterize.json``).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

#: Bumped whenever the report layout changes incompatibly.
SCHEMA_VERSION = 1


def suite_report(run, baseline=None):
    """Serialise a :class:`~repro.perf.suite.SuiteRun` to a report dict.

    ``baseline`` is a previously loaded report dict; matching benchmark
    names gain a ``speedup_vs_baseline`` entry (>1 means this run is
    faster).
    """
    rows = []
    for result in run:
        rows.append({
            "name": result.name,
            "scene": result.scene,
            "median_ms": result.timing.median_ms,
            "times_ms": [t * 1e3 for t in result.timing.times_s],
            "warmup": result.timing.warmup,
            "cv": result.timing.cv,
            **result.metrics,
        })
    report = {
        "schema": SCHEMA_VERSION,
        "suite": run.suite,
        "quick": run.quick,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        # Environment fingerprint: trajectories of BENCH files are only
        # comparable when these match (medians from a 4-core laptop and a
        # 1-core CI runner are different experiments).
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "benchmarks": rows,
    }
    if baseline is not None:
        report["baseline_suite"] = baseline.get("suite")
        report["speedup_vs_baseline"] = compare_to_baseline(report, baseline)
        report["noise_vs_baseline"] = classify_noise(report, baseline)
    return report


def row_cv(row):
    """Coefficient of variation of one report row's repeats.

    Prefers the stored ``cv`` field; reports written before CV tracking
    are reconstructed from their raw ``times_ms``.  Rows with a single
    repeat have no measurable spread and return 0.0 — callers must treat
    them as noise-blind, not noise-free.
    """
    cv = row.get("cv")
    if cv is not None:
        return float(cv)
    times = row.get("times_ms") or []
    if len(times) < 2:
        return 0.0
    mean = sum(times) / len(times)
    if mean <= 0.0:
        return 0.0
    var = sum((t - mean) ** 2 for t in times) / (len(times) - 1)
    return var ** 0.5 / mean


def classify_noise(report, baseline, sigma=2.0):
    """Per-benchmark noise verdict on the baseline comparison.

    For every row shared with ``baseline``, compares the relative delta
    ``|speedup - 1|`` against a noise floor built from *both* runs'
    repeat spread: ``sigma * (cv_current + cv_baseline)``.  Returns
    ``{name: {"speedup", "delta", "noise_floor", "within_noise"}}``.

    A 0.95x row whose two sides each wobble by 3% between repeats is a 5%
    delta against a ~12% floor — reported as ``within_noise: true`` so a
    reader doesn't chase a regression that is scheduling jitter.  Deltas
    that clear the floor are genuine changes at roughly the ``sigma``
    confidence of the (small-sample) spread estimate.
    """
    base_rows = {row["name"]: row for row in baseline.get("benchmarks", [])}
    verdicts = {}
    for row in report.get("benchmarks", []):
        base = base_rows.get(row["name"])
        if base is None or not row["median_ms"] or not base.get("median_ms"):
            continue
        speedup = base["median_ms"] / row["median_ms"]
        delta = abs(speedup - 1.0)
        floor = sigma * (row_cv(row) + row_cv(base))
        verdicts[row["name"]] = {
            "speedup": speedup,
            "delta": delta,
            "noise_floor": floor,
            "within_noise": bool(delta <= floor),
        }
    return verdicts


def compare_to_baseline(report, baseline):
    """``{benchmark name: baseline_median / current_median}`` for shared rows."""
    if baseline.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline schema {baseline.get('schema')!r} does not match "
            f"current schema {SCHEMA_VERSION}")
    base_rows = {row["name"]: row for row in baseline.get("benchmarks", [])}
    speedups = {}
    for row in report["benchmarks"]:
        base = base_rows.get(row["name"])
        if base is None or not row["median_ms"]:
            continue
        speedups[row["name"]] = base["median_ms"] / row["median_ms"]
    return speedups


def check_report(report, reference, tolerance=0.5):
    """Compare fresh medians against a checked-in reference report.

    Returns ``[(benchmark name, slowdown_ratio), ...]`` for benchmarks
    whose fresh median exceeds the reference median by more than
    ``tolerance`` (0.5 = 50% slower).  Benchmarks present on only one
    side are ignored.  This powers ``repro bench --check`` — an *advisory*
    regression tripwire, not a hard CI gate: wall-clock medians move with
    machine load, so treat a failure as "go look", not "revert".
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    ref_rows = {row["name"]: row for row in reference.get("benchmarks", [])}
    regressions = []
    for row in report.get("benchmarks", []):
        ref = ref_rows.get(row["name"])
        if ref is None or not ref.get("median_ms"):
            continue
        ratio = row["median_ms"] / ref["median_ms"]
        if ratio > 1.0 + tolerance:
            regressions.append((row["name"], ratio))
    return regressions


def write_report(report, path):
    """Write ``report`` as indented JSON to ``path`` (returns the path)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_report(path):
    """Load a report previously written by :func:`write_report`."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict) or "benchmarks" not in report:
        raise ValueError(f"{path!r} is not a bench report")
    return report

"""Named benchmark suites over the library's hot paths.

Each suite builds its workload once (scene construction and preprocessing
are *not* part of the timed region unless the benchmark says so), then
times the hot path with :func:`repro.perf.timer.time_callable`.  Suites:

``rasterize``
    The headline suite: the batched tile-binned rasteriser against the
    golden per-splat scalar loop on the same splats, with the bit-identity
    of their streams re-verified inside the run.  Default scene ``bench``
    (production-like small-splat statistics, see
    :mod:`repro.workloads.catalog`).
``reference``
    Full reference frame: preprocess + rasterise + blend.
``hw``
    Hardware-model digestion (``DrawWorkload.from_stream``) and simulated
    draws under the batched flush-plan engine against the retained scalar
    per-flush path, per variant — with their cycle/stat equality
    re-verified inside the run.
``trajectory``
    Multi-frame orbit through the engine's ``RenderSession``.
``service``
    The request-serving layer under synthetic closed-loop load
    (:mod:`repro.serve`): a fault-free row and a seeded-chaos row, each
    reporting serving KPIs — latency percentiles, throughput, rejection
    and cache-hit rates, incident counts and the lost-request count
    (invariant: zero).

Every suite accepts ``quick=True`` — a CI-sized variant (small scene, one
repeat) whose purpose is keeping the harness from bitrotting, not
producing comparable numbers.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.preprocess import preprocess
from repro.perf.timer import time_callable
from repro.render.splat_raster import rasterize_splats, rasterize_splats_scalar
from repro.workloads.catalog import build_scene, get_profile


class BenchResult:
    """One benchmark's timing plus derived metrics.

    ``metrics`` is a flat JSON-safe dict (fragment counts, throughput,
    intra-suite speedups ...) merged into the report row.
    """

    def __init__(self, timing, scene, metrics=None):
        self.timing = timing
        self.scene = str(scene)
        self.metrics = dict(metrics or {})

    @property
    def name(self):
        return self.timing.name

    def __repr__(self):
        return f"BenchResult({self.name!r}, median={self.timing.median_ms:.2f} ms)"


class SuiteRun:
    """All results of one suite execution."""

    def __init__(self, suite, quick, results):
        self.suite = str(suite)
        self.quick = bool(quick)
        self.results = list(results)

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)


def _splats_for(scene, seed=0):
    profile = get_profile(scene)
    cloud = build_scene(profile, seed=seed)
    camera = profile.camera()
    pre = preprocess(cloud, camera)
    return profile, camera, pre


def _assert_identical(a, b):
    """Bit-level stream equality — the suite's built-in honesty check."""
    same = (np.array_equal(a.prim_ids, b.prim_ids)
            and np.array_equal(a.x, b.x)
            and np.array_equal(a.y, b.y)
            and np.array_equal(a.alphas.view(np.uint32),
                               b.alphas.view(np.uint32)))
    if not same:
        raise AssertionError(
            "batched and scalar rasterizers diverged; the benchmark would "
            "be comparing different work")


def _suite_rasterize(quick, scene=None, repeat=None, ir=None, coherence=None,
                     swmodel=None):
    scene = scene or ("lego" if quick else "bench")
    repeat = repeat or (2 if quick else 5)
    _, camera, pre = _splats_for(scene)
    w, h = camera.width, camera.height

    # Both paths get the *same* warmup so the speedup ratio compares
    # steady-state against steady-state even in quick mode.
    warmup = 0 if quick else 1
    batched = time_callable(lambda: rasterize_splats(pre.splats, w, h, ir=ir),
                            warmup=warmup, repeat=repeat,
                            name="rasterize/batched")
    scalar = time_callable(lambda: rasterize_splats_scalar(pre.splats, w, h),
                           warmup=warmup, repeat=repeat,
                           name="rasterize/scalar")
    stream = rasterize_splats(pre.splats, w, h)
    _assert_identical(stream, rasterize_splats_scalar(pre.splats, w, h))
    n = len(stream)
    speedup = (scalar.median_s / batched.median_s
               if batched.median_s > 0 else float("inf"))
    common = {"fragments": n, "splats": len(pre.splats)}
    return [
        BenchResult(batched, scene, {
            **common,
            "fragments_per_sec": batched.per_second(n),
            "speedup_vs_scalar": speedup,
        }),
        BenchResult(scalar, scene, {
            **common,
            "fragments_per_sec": scalar.per_second(n),
        }),
    ]


def _suite_reference(quick, scene=None, repeat=None, ir=None, coherence=None,
                     swmodel=None):
    from repro.render.reference import render_reference

    scene = scene or ("lego" if quick else "train")
    repeat = repeat or (1 if quick else 3)
    profile = get_profile(scene)
    cloud = build_scene(profile, seed=0)
    camera = profile.camera()

    timing = time_callable(lambda: render_reference(cloud, camera),
                           warmup=0 if quick else 1, repeat=repeat,
                           name="reference/frame")
    result = render_reference(cloud, camera)
    n = len(result.stream)
    return [BenchResult(timing, scene, {
        "fragments": n,
        "fragments_per_sec": timing.per_second(n),
    })]


def _assert_draws_identical(a, b):
    """Engine honesty check: batched and scalar must agree bit-for-bit."""
    same = (a.stats.total_cycles == b.stats.total_cycles
            and all(a.stats.units[u].busy_cycles == b.stats.units[u].busy_cycles
                    and a.stats.units[u].items == b.stats.units[u].items
                    for u in a.stats.units))
    if not same:
        raise AssertionError(
            "batched and scalar flush engines diverged; the benchmark "
            "would be comparing different work")


def _suite_hw(quick, scene=None, repeat=None, ir=None, coherence=None,
              swmodel=None):
    from repro.core.vrpipe import variant_config
    from repro.hwmodel.pipeline import DrawWorkload, GraphicsPipeline

    scene = scene or ("lego" if quick else "train")
    repeat = repeat or (1 if quick else 3)
    variants = ("baseline", "het+qm") if quick else ("baseline", "qm",
                                                     "het", "het+qm")
    _, camera, pre = _splats_for(scene)
    stream = rasterize_splats(pre.splats, camera.width, camera.height, ir=ir)
    n = len(stream)

    results = []
    cfg_full = variant_config("het+qm")
    digest = time_callable(
        lambda: DrawWorkload.from_stream(stream, cfg_full, ir=ir),
        warmup=0 if quick else 1, repeat=repeat,
        name="hw/digest")
    results.append(BenchResult(digest, scene, {
        "fragments": n, "fragments_per_sec": digest.per_second(n)}))
    for variant in variants:
        cfg = variant_config(variant)
        workload = DrawWorkload.from_stream(stream, cfg)
        pipe = GraphicsPipeline(cfg)
        _assert_draws_identical(pipe.draw(workload, engine="batched"),
                                pipe.draw(workload, engine="scalar"))
        batched = time_callable(
            lambda p=pipe, wl=workload: p.draw(wl, engine="batched"),
            warmup=0 if quick else 1, repeat=repeat,
            name=f"hw/draw:{variant}")
        scalar = time_callable(
            lambda p=pipe, wl=workload: p.draw(wl, engine="scalar"),
            warmup=0 if quick else 1, repeat=repeat,
            name=f"hw/draw:{variant}:scalar")
        speedup = (scalar.median_s / batched.median_s
                   if batched.median_s > 0 else float("inf"))
        results.append(BenchResult(batched, scene, {
            "fragments": n,
            "fragments_per_sec": batched.per_second(n),
            "speedup_vs_scalar": speedup,
        }))
        results.append(BenchResult(scalar, scene, {
            "fragments": n,
            "fragments_per_sec": scalar.per_second(n),
        }))
    return results


def _stage_breakdown(session, n_views):
    """Per-frame wall-clock stage map of one serial session run.

    Collected in a separate, untimed run so the instrumentation never
    contaminates the measured repetitions; returns ``{}`` on engines whose
    session predates stage collection (the suite also runs against older
    checkouts to produce baseline reports — probed by signature so a real
    ``TypeError`` inside the run still propagates).
    """
    import inspect

    if "collect_stages" not in inspect.signature(session.run).parameters:
        return {}
    result = session.run(n_views=n_views, collect_stages=True)
    return {f"stage_{name}_ms_per_frame": ms / n_views
            for name, ms in sorted(result.stage_ms.items())}


def _suite_trajectory(quick, scene=None, repeat=None, ir=None,
                      coherence=None, swmodel=None):
    """End-to-end multi-frame trajectories, per engine endpoint.

    The headline suite of the frame engines: each benchmark renders a
    whole ``RenderSession`` orbit — preprocess, rasterise, digest and
    simulate every frame — through one variant, cold, plus warm-CROP-cache
    rows (serial by contract) for the cache-carrying endpoints.  Rows
    report frames/s and a wall-clock per-stage breakdown, so
    ``BENCH_trajectory.json`` doubles as the repo's hotspot map; the
    ``stage_render:digest`` column measures whichever digestion engine
    ``ir`` selects (the FrameIR path by default) under the cross-frame
    ``coherence`` mode (the ``$REPRO_COHERENCE`` default when ``None``).
    The session — and with it the coherence carrier — persists across the
    warmup and every measured repeat, matching the production serving
    loop where a trajectory revisits viewpoints against warm state.

    The software path rides along as ``cuda`` / ``cuda+et`` rows under
    the ``swmodel`` engine knob: their ``cold`` rows pin the coherence
    carrier *off* (every frame digests from scratch — the software
    models' worst case), their ``warm`` rows pin it to ``incremental``
    so cross-frame reuse of the rasterise/FrameIR/digest products shows
    up as a separate measurement.

    Quick mode trades the variant sweep for *scenario* coverage: the
    ``lego`` orbit plus the sparse ``aerial`` and dense ``garden``
    profiles, two hardware variants plus the ``cuda+et`` cold/warm pair
    each.  Rows for non-default scenes carry the scene in their
    benchmark name so reports stay comparable row-by-row.
    """
    from repro.engine.session import RenderSession

    repeat = repeat or (1 if quick else 3)
    n_views = 2 if quick else 4
    if scene is not None:
        scenes = [scene]
    else:
        scenes = ["lego", "aerial", "garden"] if quick else ["lego"]
    cold_variants = ("baseline", "het+qm") if quick else (
        "baseline", "qm", "het", "het+qm")
    warm_variants = () if quick else ("baseline", "het+qm")
    cuda_specs = ("cuda+et",) if quick else ("cuda", "cuda+et")

    results = []
    for scene_name in scenes:
        prefix = ("trajectory" if scene_name == "lego"
                  else f"trajectory/{scene_name}")
        for variant, warm in ([(v, False) for v in cold_variants]
                              + [(v, True) for v in warm_variants]):
            session = RenderSession(scene_name, backend=f"hw:{variant}",
                                    baseline=None, warm_crop_cache=warm,
                                    ir=ir, coherence=coherence,
                                    swmodel=swmodel)
            mode = "warm" if warm else "cold"
            timing = time_callable(
                lambda s=session: s.run(n_views=n_views),
                warmup=0 if quick else 1, repeat=repeat,
                name=f"{prefix}/{variant}:{mode}")
            metrics = {
                "frames": n_views,
                "ms_per_frame": timing.median_ms / n_views,
                "frames_per_sec": timing.per_second(n_views),
            }
            metrics.update(_stage_breakdown(session, n_views))
            results.append(BenchResult(timing, scene_name, metrics))
        for spec in cuda_specs:
            for mode, coh in (("cold", "off"), ("warm", "incremental")):
                session = RenderSession(scene_name, backend=spec,
                                        baseline=None, ir=ir, coherence=coh,
                                        swmodel=swmodel)
                timing = time_callable(
                    lambda s=session: s.run(n_views=n_views),
                    warmup=0 if quick else 1, repeat=repeat,
                    name=f"{prefix}/{spec}:{mode}")
                metrics = {
                    "frames": n_views,
                    "ms_per_frame": timing.median_ms / n_views,
                    "frames_per_sec": timing.per_second(n_views),
                }
                metrics.update(_stage_breakdown(session, n_views))
                results.append(BenchResult(timing, scene_name, metrics))
    return results


#: Seeded chaos plan of the ``service`` suite: every one of the seven
#: injection points armed, mixing stall / raise / corrupt / oserror
#: kinds, probabilistic so healing happens without drowning the run.
SERVICE_CHAOS_PLAN = (
    "seed=11; rasterize:raise,p=0.15; digest:stall,delay=150,p=0.15; "
    "coherence.verify:corrupt,p=0.15; flushplan:raise,p=0.15; "
    "lru.replay:corrupt,p=0.15; cache.load:corrupt,p=0.3; "
    "cache.store:oserror,p=0.3")

#: The KPI columns every ``service`` row reports (flat, JSON-safe).
_SERVICE_KPI_KEYS = (
    "submitted", "resolved", "lost", "completed", "rejected", "failed",
    "rejection_rate", "throughput_rps", "cache_hit_rate", "from_cache",
    "degraded", "incidents", "healing_ms", "latency_p50_ms",
    "latency_p95_ms", "latency_p99_ms")


def _suite_service(quick, scene=None, repeat=None, ir=None, coherence=None,
                   swmodel=None):
    """The serving layer under synthetic load, fault-free and under chaos.

    Each row drives a fresh :class:`~repro.serve.service.RenderService`
    (own on-disk result cache in a temp dir, torn down after) with the
    seeded closed-loop load generator: ``clean`` with no fault plan,
    ``chaos`` under :data:`SERVICE_CHAOS_PLAN` (all seven injection
    points armed).  The timing row is the whole run's wall clock; the
    serving KPIs ride along as metrics.  ``ir``/``coherence`` are
    accepted for registry uniformity and ignored — the service owns its
    sessions' knobs (the breaker may downgrade them mid-run).

    Full mode runs 8 concurrent clients (the acceptance bar for the
    zero-lost-requests invariant); quick mode 2.
    """
    import shutil
    import tempfile

    from repro import faults
    from repro.engine.cache import ResultCache
    from repro.serve import LoadSpec, RenderService, run_load

    scene = scene or "lego"
    clients = 2 if quick else 8
    spec = LoadSpec(clients=clients, requests_per_client=2 if quick else 3,
                    scenes=(scene,), views_choices=(1, 2), seed=7)

    results = []
    for label, plan_text in (("clean", None), ("chaos", SERVICE_CHAOS_PLAN)):
        reports = []

        def run_once(plan_text=plan_text, reports=reports):
            tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
            try:
                plan = (faults.FaultPlan.parse(plan_text)
                        if plan_text else None)
                with faults.active(plan):
                    with RenderService(workers=2,
                                       queue_limit=max(16, 2 * clients),
                                       result_cache=ResultCache(tmp)
                                       ) as service:
                        reports.append(run_load(service, spec))
            finally:
                shutil.rmtree(tmp, ignore_errors=True)

        timing = time_callable(run_once, warmup=0, repeat=repeat or 1,
                               name=f"service/{label}")
        kpis = reports[-1].kpis()
        if kpis["lost"]:
            raise AssertionError(
                f"service suite ({label}): {kpis['lost']} request(s) "
                "lost — the serving layer's core invariant is broken")
        metrics = {"clients": clients,
                   **{key: kpis[key] for key in _SERVICE_KPI_KEYS
                      if key in kpis}}
        results.append(BenchResult(timing, scene, metrics))
    return results


#: Suite registry: name -> callable(quick, scene=None, repeat=None,
#: ir=None, coherence=None, swmodel=None).
SUITES = {
    "rasterize": _suite_rasterize,
    "reference": _suite_reference,
    "hw": _suite_hw,
    "trajectory": _suite_trajectory,
    "service": _suite_service,
}


def run_suite(name, quick=False, scene=None, repeat=None, ir=None,
              coherence=None, swmodel=None):
    """Run the suite registered under ``name`` and return a :class:`SuiteRun`.

    ``scene`` and ``repeat`` override the suite defaults (``repeat`` must
    be >= 1 when given); ``quick`` selects the CI-sized variant.  ``ir``
    selects the digestion engine the timed paths run under (see
    :mod:`repro.render.frameir`), ``coherence`` the cross-frame reuse
    mode of session-based suites (see :mod:`repro.render.coherence`), and
    ``swmodel`` the software-path model engine of the ``cuda`` rows (see
    :mod:`repro.swrender.warp_model`; suites without the corresponding
    state accept and ignore the knobs).
    """
    try:
        suite = SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; available: {sorted(SUITES)}") from None
    if repeat is not None and repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    return SuiteRun(name, quick, suite(quick, scene=scene, repeat=repeat,
                                       ir=ir, coherence=coherence,
                                       swmodel=swmodel))

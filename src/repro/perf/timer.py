"""Wall-clock timing with warmup, repeats, and median extraction.

Medians over a handful of repeats are the suite's headline statistic: on a
shared machine the minimum is too optimistic (one lucky scheduling window)
and the mean too pessimistic (one unlucky one); the median of 3-7 repeats
is stable enough to compare across runs.
"""

from __future__ import annotations

import gc
import statistics
import time


class TimingResult:
    """Timings of one benchmarked callable.

    Attributes
    ----------
    name:
        Benchmark label.
    times_s:
        Per-repeat wall-clock seconds (warmup excluded), in run order.
    warmup:
        Discarded warmup iterations that preceded the measurements.
    """

    def __init__(self, name, times_s, warmup):
        if not times_s:
            raise ValueError("times_s must contain at least one measurement")
        self.name = str(name)
        self.times_s = [float(t) for t in times_s]
        self.warmup = int(warmup)

    @property
    def repeat(self):
        return len(self.times_s)

    @property
    def median_s(self):
        return statistics.median(self.times_s)

    @property
    def median_ms(self):
        return self.median_s * 1e3

    @property
    def best_s(self):
        return min(self.times_s)

    @property
    def mean_s(self):
        return statistics.fmean(self.times_s)

    @property
    def cv(self):
        """Coefficient of variation (sample stdev / mean) of the repeats.

        The row's own noise floor: a baseline delta smaller than the
        combined CV of the two runs is scheduling jitter, not a real
        change.  0.0 with fewer than two repeats (a single sample has no
        measurable spread — callers must treat such rows as noise-blind,
        not noise-free).
        """
        if len(self.times_s) < 2:
            return 0.0
        mean = self.mean_s
        if mean <= 0.0:
            return 0.0
        return statistics.stdev(self.times_s) / mean

    def per_second(self, items):
        """Throughput ``items / median_s`` (0.0 for a zero median)."""
        if self.median_s <= 0.0:
            return 0.0
        return items / self.median_s

    def __repr__(self):
        return (f"TimingResult({self.name!r}, median={self.median_ms:.2f} ms, "
                f"repeat={self.repeat})")


def time_callable(fn, warmup=1, repeat=5, name=None,
                  clock=time.perf_counter):
    """Time ``fn()`` with ``warmup`` discarded runs then ``repeat`` measured.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is discarded.
    warmup:
        Runs executed before measuring (populate caches, trigger lazy
        imports/allocations).  May be 0.
    repeat:
        Measured runs; must be >= 1.
    name:
        Label stored on the result (defaults to ``fn.__name__``).
    clock:
        Monotonic clock returning seconds (injectable for tests).

    Returns
    -------
    :class:`TimingResult`
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    for _ in range(int(warmup)):
        fn()
    # A garbage-collection pass landing inside one repetition skews that
    # sample by milliseconds, so the collector stays off during every
    # timed region — but it must run *between* repeats (untimed): cyclic
    # garbage pinning large arrays otherwise accumulates across repeats,
    # and the growing footprint slows later samples by far more than a
    # collection pause ever would (observed: a 4-frame session repeat
    # going 2 s -> 4 s -> 47 s as ~0.5 GB of cycle-held buffers pile up
    # per run).  Collecting outside the clock gives every repeat the
    # same allocator state without a pause inside any sample.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        times = []
        for _ in range(int(repeat)):
            gc.collect()
            t0 = clock()
            fn()
            times.append(clock() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    label = name if name is not None else getattr(fn, "__name__", "benchmark")
    return TimingResult(label, times, warmup)

"""Performance measurement harness: timers, benchmark suites, reports.

The ``repro bench`` CLI subcommand drives this package: a suite (a named
set of benchmarks over one workload layer — rasterisation, full reference
frames, the hardware pipeline, trajectory sessions) runs each benchmark
with warmup + repeats, takes wall-clock medians, and writes a
``BENCH_<suite>.json`` report that later runs can be compared against.
"""

from repro.perf.report import (
    compare_to_baseline,
    load_report,
    suite_report,
    write_report,
)
from repro.perf.suite import SUITES, SuiteRun, run_suite
from repro.perf.timer import TimingResult, time_callable

__all__ = [
    "SUITES",
    "SuiteRun",
    "TimingResult",
    "compare_to_baseline",
    "load_report",
    "run_suite",
    "suite_report",
    "time_callable",
    "write_report",
]

"""Request/response schema of the serving layer.

One :class:`RenderRequest` asks for one trajectory (``views`` frames of
one scene through one backend).  Every submitted request terminates in
exactly one typed response — the service's core invariant is that no
request is ever lost or silently wrong:

:class:`Completed`
    The trajectory ran (possibly healed through degraded ladder rungs,
    possibly served from the disk result cache) and its aggregates are
    **bit-exact** to a fault-free run of the same request.  Carries the
    structured incident trail and its
    :meth:`~repro.engine.session.TrajectoryResult.incident_summary`.
:class:`Rejected`
    Admission control turned the request away *before* any work ran,
    with a typed ``reason`` (see :data:`REJECT_REASONS`).
:class:`Failed`
    The request was admitted but could not produce a result: the
    degradation ladder exhausted, a strict request raised through, or
    the deadline expired.  Carries the error and any incident trail —
    a typed failure, never a silent loss.

Responses are plain data (``to_dict()`` is JSON-safe) so the load
generator, the bench suite and the CLI can all consume them uniformly.
"""

from __future__ import annotations

import threading

#: Typed admission-rejection reasons.
REJECT_REASONS = ("queue_full", "deadline_unmeetable", "shedding",
                  "shutdown")

#: Typed post-admission failure reasons.
FAILURE_REASONS = ("deadline", "ladder_exhausted", "strict", "error")


class RenderRequest:
    """One client request: render ``views`` frames of ``scene``.

    ``deadline_ms`` is the end-to-end budget from submission: admission
    rejects requests whose estimated service time cannot meet it
    (``deadline_unmeetable``), and admitted requests carry the remaining
    budget into the engine's per-frame ``watchdog_ms`` so injected
    stalls are cut at the next checkpoint instead of blocking a worker.
    ``priority`` ``"high"`` exempts a request from load shedding (not
    from ``queue_full`` — the queue bound is absolute).  ``strict``
    restores raise-through semantics (failures surface as typed
    :class:`Failed` responses instead of healing through the ladder).
    ``warm_crop_cache`` renders through the scene's resident warm CROP
    cache, reusing it across requests for the same scene — cycle counts
    then depend on the resident's request history, so warm requests are
    excluded from the disk result cache and from the service's
    bit-exactness invariant (which covers the default cold
    configuration).
    """

    __slots__ = ("scene", "backend", "baseline", "views", "seed",
                 "deadline_ms", "priority", "strict", "warm_crop_cache",
                 "request_id")

    def __init__(self, scene, backend="hw:het+qm", baseline=None, views=1,
                 seed=0, deadline_ms=None, priority="normal", strict=False,
                 warm_crop_cache=False, request_id=None):
        if int(views) <= 0:
            raise ValueError(f"views must be positive, got {views}")
        if priority not in ("normal", "high"):
            raise ValueError(
                f"priority must be 'normal' or 'high', got {priority!r}")
        self.scene = str(scene)
        self.backend = backend
        self.baseline = baseline
        self.views = int(views)
        self.seed = int(seed)
        self.deadline_ms = (None if deadline_ms is None
                            else float(deadline_ms))
        self.priority = priority
        self.strict = bool(strict)
        self.warm_crop_cache = bool(warm_crop_cache)
        self.request_id = request_id

    def config_key(self):
        """Everything that determines the request's numeric results.

        Two requests with equal config keys must produce bit-identical
        aggregates (the chaos soak's oracle map is keyed by this).  The
        key deliberately excludes ``deadline_ms``/``priority``/``strict``
        (operational knobs) and the service's ``ir``/``coherence``
        overrides (bit-identical modes by construction).
        """
        return (self.scene, self.backend, self.baseline, self.views,
                self.seed, self.warm_crop_cache)

    def __repr__(self):
        return (f"RenderRequest({self.request_id or '?'}: {self.scene}/"
                f"{self.backend} x{self.views})")


class _Response:
    """Common response fields; subclasses set :attr:`status`."""

    status = None

    def __init__(self, request_id, latency_ms=0.0, queue_ms=0.0):
        self.request_id = request_id
        self.latency_ms = float(latency_ms)
        self.queue_ms = float(queue_ms)

    @property
    def ok(self):
        return self.status == "ok"

    def to_dict(self):
        return {"status": self.status, "request_id": self.request_id,
                "latency_ms": self.latency_ms, "queue_ms": self.queue_ms}


class Completed(_Response):
    """The request produced a bit-exact trajectory result.

    ``aggregates`` are the trajectory's summary statistics (bit-exact vs
    a fault-free run of the same request config); ``incidents`` /
    ``incident_summary`` the structured healing trail; ``from_cache``
    whether the disk result cache served the run; ``degraded`` whether
    the service breaker routed the request through cheaper (bit-exact)
    knobs; ``service_ms`` the measured execution wall clock (queue wait
    excluded).
    """

    status = "ok"

    def __init__(self, request_id, aggregates, incidents=None,
                 incident_summary=None, from_cache=False, degraded=False,
                 probe=False, latency_ms=0.0, queue_ms=0.0, service_ms=0.0):
        super().__init__(request_id, latency_ms, queue_ms)
        self.aggregates = dict(aggregates)
        self.incidents = list(incidents or [])
        self.incident_summary = dict(incident_summary or {"count": 0})
        self.from_cache = bool(from_cache)
        self.degraded = bool(degraded)
        self.probe = bool(probe)
        self.service_ms = float(service_ms)

    def to_dict(self):
        payload = super().to_dict()
        payload.update(aggregates=self.aggregates, incidents=self.incidents,
                       incident_summary=self.incident_summary,
                       from_cache=self.from_cache, degraded=self.degraded,
                       probe=self.probe, service_ms=self.service_ms)
        return payload

    def __repr__(self):
        return (f"Completed({self.request_id}, {self.latency_ms:.1f} ms, "
                f"incidents={self.incident_summary.get('count', 0)})")


class Rejected(_Response):
    """Admission control refused the request before any work ran."""

    status = "rejected"

    def __init__(self, request_id, reason, detail=None, latency_ms=0.0):
        if reason not in REJECT_REASONS:
            raise ValueError(
                f"unknown rejection reason {reason!r}; "
                f"choose from {REJECT_REASONS}")
        super().__init__(request_id, latency_ms)
        self.reason = reason
        self.detail = detail

    def to_dict(self):
        payload = super().to_dict()
        payload.update(reason=self.reason, detail=self.detail)
        return payload

    def __repr__(self):
        return f"Rejected({self.request_id}, reason={self.reason!r})"


class Failed(_Response):
    """An admitted request could not produce a result (typed, not lost)."""

    status = "failed"

    def __init__(self, request_id, reason, error, incidents=None,
                 latency_ms=0.0, queue_ms=0.0):
        if reason not in FAILURE_REASONS:
            raise ValueError(
                f"unknown failure reason {reason!r}; "
                f"choose from {FAILURE_REASONS}")
        super().__init__(request_id, latency_ms, queue_ms)
        self.reason = reason
        self.error = str(error)
        self.incidents = list(incidents or [])

    def to_dict(self):
        payload = super().to_dict()
        payload.update(reason=self.reason, error=self.error,
                       incidents=self.incidents)
        return payload

    def __repr__(self):
        return (f"Failed({self.request_id}, reason={self.reason!r}, "
                f"error={self.error!r})")


class PendingRequest:
    """Handle returned by :meth:`RenderService.submit`.

    Resolves exactly once — with a :class:`Completed`, :class:`Rejected`
    or :class:`Failed` response — and :meth:`result` blocks until then.
    Synchronously rejected requests come back already resolved.
    """

    def __init__(self, request):
        self.request = request
        self._event = threading.Event()
        self._response = None

    def done(self):
        return self._event.is_set()

    def result(self, timeout=None):
        """The response, blocking up to ``timeout`` seconds.

        Raises ``TimeoutError`` if the response has not arrived in time
        (the request itself stays in flight and resolves later).
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id!r} not resolved within "
                f"{timeout} s")
        return self._response

    def _resolve(self, response):
        if self._event.is_set():  # pragma: no cover - defensive
            raise RuntimeError(
                f"request {self.request.request_id!r} resolved twice")
        self._response = response
        self._event.set()

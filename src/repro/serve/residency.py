"""Scene residency: a bounded LRU of warm per-scene serving state.

A :class:`~repro.engine.session.RenderSession` accumulates expensive
warm state — the scene's Gaussian cloud, the cross-frame coherence
carrier (up to 8 digested frames of reusable state), lazily built
degraded-rung backends, and (for warm requests) a persistent CROP
cache.  Rebuilding all of that per request would throw the engine's
temporal-coherence work away at the service boundary, but keeping every
scene resident forever is an unbounded memory leak under diverse
traffic.

:class:`SceneResidency` is the middle ground: a bounded LRU keyed by
the request's session configuration.  Hits reuse the resident session
(and with it the coherence carrier, so revisited viewpoints digest
incrementally across *requests*, not just across frames of one
request); misses build a fresh session and evict least-recently-used
idle residents over the ``max_residents`` / ``max_bytes`` budgets.
Residents in use are never evicted — eviction only considers idle
entries, so a long request cannot have its session freed mid-run.

Correctness: evicting (or never having) a resident changes *wall-clock
only*.  The coherence modes are bit-identical by construction (PR 6),
so a request served by a cold rebuild produces exactly the bytes a warm
resident would — the service's bit-exactness invariant survives any
eviction schedule.  The one deliberate exception is the opt-in warm
CROP cache (``warm_crop_cache`` requests), whose *modeled* cycle counts
depend on the resident's request history by design.
"""

from __future__ import annotations

import threading

import numpy as np


def _ndarray_bytes(obj, seen):
    """Recursive nbytes estimate over an object's ndarray attributes."""
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    total = 0
    if isinstance(obj, dict):
        values = obj.values()
    elif isinstance(obj, (list, tuple)):
        values = obj
    else:
        values = vars(obj).values() if hasattr(obj, "__dict__") else ()
    for value in values:
        if isinstance(value, np.ndarray):
            total += int(value.nbytes)
        elif isinstance(value, (dict, list, tuple)):
            total += _ndarray_bytes(value, seen)
    return total


class ResidentScene:
    """One resident (scene, configuration) and its warm serving state.

    ``lock`` serializes requests onto the resident's session — sessions
    carry mutable cross-frame state (coherence carrier, warm CROP
    cache) and are not safe for concurrent runs; different residents
    run in parallel across the worker pool.  ``crop_cache`` is the
    persistent CROP cache shared by this resident's warm requests
    (built on first use).
    """

    def __init__(self, key, session):
        self.key = key
        self.session = session
        self.lock = threading.Lock()
        self.crop_cache = None
        self.uses = 0
        self.active = 0

    def estimated_bytes(self):
        """Rough resident footprint: ndarray bytes of the scene cloud.

        An *estimate* for the eviction budget, not an accounting — the
        coherence carrier's library and degraded backends add more, but
        the cloud dominates and is always materialised after one use.
        """
        cloud = getattr(self.session, "_cloud", None)
        if cloud is None:
            return 0
        return _ndarray_bytes(cloud, set())

    def warm_crop_cache(self):
        """The resident's persistent CROP cache (built on first call)."""
        if self.crop_cache is None:
            self.crop_cache = self.session.backend.new_crop_cache()
        return self.crop_cache


class SceneResidency:
    """Bounded LRU of :class:`ResidentScene` entries.

    ``max_residents`` bounds the entry count; ``max_bytes`` (optional)
    additionally bounds the summed :meth:`ResidentScene.estimated_bytes`.
    Both budgets only ever evict *idle* residents, so they are soft
    under pathological concurrency (every resident in use) — bounded
    admission upstream keeps that case bounded too.
    """

    def __init__(self, max_residents=4, max_bytes=None):
        if max_residents < 1:
            raise ValueError(
                f"max_residents must be >= 1, got {max_residents}")
        self.max_residents = int(max_residents)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._lock = threading.Lock()
        self._residents = {}   # key -> ResidentScene (dicts keep LRU via
        self._counters = {"hits": 0, "misses": 0, "evictions": 0}
        self._seq = 0          # re-insertion; _seq breaks exact ties)

    def acquire(self, key, build):
        """Return the resident for ``key`` (building via ``build()`` on a
        miss), with its per-resident lock **held** — callers must pair
        with :meth:`release`.  The registry lock is dropped before the
        resident lock is taken, so slow requests never block other
        scenes' acquisitions.
        """
        with self._lock:
            resident = self._residents.pop(key, None)
            if resident is None:
                self._counters["misses"] += 1
                resident = ResidentScene(key, build())
            else:
                self._counters["hits"] += 1
            self._residents[key] = resident  # most-recently-used position
            resident.active += 1
            resident.uses += 1
            self._evict_locked()
        resident.lock.acquire()
        return resident

    def release(self, resident):
        """Release a resident returned by :meth:`acquire`."""
        resident.lock.release()
        with self._lock:
            resident.active -= 1
            # Bytes become measurable once the cloud is built, so the
            # budget is re-checked on release too.
            self._evict_locked()

    def _evict_locked(self):
        def over_budget():
            if len(self._residents) > self.max_residents:
                return True
            if self.max_bytes is not None:
                total = sum(r.estimated_bytes()
                            for r in self._residents.values())
                return total > self.max_bytes
            return False

        while over_budget():
            victim_key = next(
                (key for key, resident in self._residents.items()
                 if resident.active == 0), None)
            if victim_key is None:
                return  # everything in use; budgets are soft here
            del self._residents[victim_key]
            self._counters["evictions"] += 1

    def stats(self):
        """JSON-safe snapshot: counters plus the current resident set."""
        with self._lock:
            return {
                **self._counters,
                "resident": len(self._residents),
                "max_residents": self.max_residents,
                "max_bytes": self.max_bytes,
                "estimated_bytes": sum(r.estimated_bytes()
                                       for r in self._residents.values()),
                "scenes": sorted({key[0] for key in self._residents}),
            }

    def __len__(self):
        with self._lock:
            return len(self._residents)

"""repro.serve: fault-tolerant request serving over the render engine.

The serving layer (PR 9) turns the single-trajectory
:class:`~repro.engine.session.RenderSession` into a single-box service:
a bounded worker pool with admission control (typed rejections:
``queue_full`` / ``deadline_unmeetable`` / ``shedding``), per-request
deadlines wired into the engine's cooperative watchdog, a service-level
circuit breaker that routes new admissions onto the retained bit-exact
oracle knobs while faults cluster, and a bounded LRU of resident scenes
that keeps warm cross-request state (coherence carrier, opt-in CROP
cache) without unbounded memory growth.

Invariant: **no request is ever lost or silently wrong** — every
admitted request terminates in a bit-exact (possibly incident-annotated)
:class:`Completed` result or a typed :class:`Failed` / :class:`Rejected`
response.  ``repro bench --suite service`` and ``tests/test_serve.py``
enforce this under seeded chaos plans.
"""

from repro.serve.breaker import ServiceBreaker
from repro.serve.loadgen import LoadReport, LoadSpec, run_load
from repro.serve.request import (
    FAILURE_REASONS,
    REJECT_REASONS,
    Completed,
    Failed,
    PendingRequest,
    Rejected,
    RenderRequest,
)
from repro.serve.residency import ResidentScene, SceneResidency
from repro.serve.service import RenderService

__all__ = [
    "FAILURE_REASONS",
    "REJECT_REASONS",
    "Completed",
    "Failed",
    "LoadReport",
    "LoadSpec",
    "PendingRequest",
    "Rejected",
    "RenderRequest",
    "RenderService",
    "ResidentScene",
    "SceneResidency",
    "ServiceBreaker",
    "run_load",
]

"""Service-level circuit breaker over the per-frame healing ladder.

The engine already heals individual frames (PR 7's degradation ladder),
but healing is *reactive*: a faulting fast path still burns a failed
attempt per frame before the retained oracle rung produces the result.
When faults cluster — a bad deploy, a poisoned cache, a degraded box —
the service should stop paying that tax per frame and route new work
straight onto the cheap rungs.  That is this breaker: a rolling window
of request health drives a three-state machine, and open states
downgrade *new admissions* to the retained bit-exact oracle knobs
(``coherence="off"``, ``ir="legacy"``), so degraded service stays
byte-for-byte correct — only the fast paths (and their failure modes)
are bypassed.

Determinism: all transitions are **count-based** (window occupancy,
completion counts), never wall-clock — a fixed request/fault sequence
replays the exact same transition trail, which the chaos tests assert.

States
------
``closed``
    Healthy: requests run with their primary knobs.  Completions enter
    the rolling window; when the window is full and its unhealthy
    fraction reaches ``open_threshold``, the breaker opens.
``open``
    Storm: new admissions run degraded.  After ``cooldown`` degraded
    completions the breaker moves to half-open to probe.
``half_open``
    One probe request at a time runs with primary knobs (the rest stay
    degraded).  A clean probe closes the breaker; an unhealthy one
    reopens it.
"""

from __future__ import annotations

import math
import threading
from collections import deque

STATES = ("closed", "open", "half_open")


class ServiceBreaker:
    """Rolling-incident-rate breaker (see module docstring).

    ``window`` completions are tracked while closed; the breaker opens
    when at least ``ceil(open_threshold * window)`` of a full window
    were unhealthy (the request failed, or healed through incidents).
    ``cooldown`` is the number of degraded completions served while open
    before probing.  ``enabled=False`` pins the breaker closed (the
    knob for A/B benchmarking the breaker itself).
    """

    def __init__(self, window=8, open_threshold=0.5, cooldown=4,
                 enabled=True):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < open_threshold <= 1.0:
            raise ValueError(
                f"open_threshold must be in (0, 1], got {open_threshold}")
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.window = int(window)
        self.open_threshold = float(open_threshold)
        self.cooldown = int(cooldown)
        self.enabled = bool(enabled)
        self._open_at = math.ceil(self.open_threshold * self.window)
        self._lock = threading.Lock()
        self._results = deque(maxlen=self.window)
        self._state = "closed"
        self._open_completions = 0
        self._probe_inflight = False
        self._completions = 0
        #: Transition trail: ``{"seq", "from", "to", "completions"}``
        #: dicts in occurrence order (deterministic for a fixed request
        #: sequence — counts, never timestamps).
        self.transitions = []

    @property
    def state(self):
        return self._state

    def _transition(self, new_state):
        self.transitions.append({
            "seq": len(self.transitions),
            "from": self._state,
            "to": new_state,
            "completions": self._completions,
        })
        self._state = new_state

    def admission_mode(self):
        """Knob routing for one new admission.

        ``"primary"`` — run the request's own knobs; ``"degraded"`` —
        run the oracle knobs; ``"probe"`` — primary knobs, and this
        request's completion decides the half-open verdict (at most one
        probe is in flight at a time).
        """
        if not self.enabled:
            return "primary"
        with self._lock:
            if self._state == "closed":
                return "primary"
            if self._state == "open":
                return "degraded"
            if not self._probe_inflight:
                self._probe_inflight = True
                return "probe"
            return "degraded"

    def record(self, mode, unhealthy):
        """Feed one completion back (``mode`` from :meth:`admission_mode`).

        ``unhealthy`` means the request failed or healed through one or
        more incidents — either way the fast path misbehaved.
        """
        if not self.enabled:
            return
        with self._lock:
            self._completions += 1
            if self._state == "closed":
                self._results.append(bool(unhealthy))
                if (len(self._results) == self.window
                        and sum(self._results) >= self._open_at):
                    self._results.clear()
                    self._open_completions = 0
                    self._transition("open")
            elif self._state == "open":
                self._open_completions += 1
                if self._open_completions >= self.cooldown:
                    self._probe_inflight = False
                    self._transition("half_open")
            elif mode == "probe":
                self._probe_inflight = False
                if unhealthy:
                    self._open_completions = 0
                    self._transition("open")
                else:
                    self._results.clear()
                    self._transition("closed")
            # Degraded completions while half-open carry no verdict.

    def stats(self):
        """JSON-safe snapshot of the breaker's state and history."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "state": self._state,
                "window": self.window,
                "open_threshold": self.open_threshold,
                "cooldown": self.cooldown,
                "completions": self._completions,
                "window_unhealthy": int(sum(self._results)),
                "transitions": [dict(t) for t in self.transitions],
            }

"""Seeded closed-loop load generator for :class:`RenderService`.

``N`` synthetic client threads each submit a deterministic, seeded mix
of trajectory requests and wait for every response (closed loop: one
request in flight per client, the realistic regime for a single-box
service).  Per-client request streams derive from
``random.Random(f"{seed}:{client}")``, so a fixed :class:`LoadSpec`
replays the exact same request mix regardless of scheduling — the chaos
tests and the bench suite both rely on that.

The result is a :class:`LoadReport`: every response (none may be
missing — a lost request is the one unacceptable outcome), the KPI
rollup (:meth:`LoadReport.kpis`: latency percentiles, throughput,
rejection/cache-hit rates, incident counts), and the terminal service
stats snapshot.
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np

from repro.serve.request import RenderRequest

#: Closed-loop clients hard-stop waiting for any single response after
#: this many seconds — a tripped timeout means the service *lost* a
#: request, which the report surfaces as ``lost > 0`` instead of
#: hanging the harness forever.
CLIENT_TIMEOUT_S = 600.0


class LoadSpec:
    """Deterministic description of one load-generation run.

    ``clients`` closed-loop clients submit ``requests_per_client``
    requests each, drawn per client from ``scenes`` x ``backends`` x
    ``views_choices`` with seeded RNG.  ``deadline_ms`` (optional)
    attaches a deadline to every request; ``warm_fraction`` /
    ``high_fraction`` are per-request probabilities of opting into a
    warm CROP cache or high priority.  ``think_ms`` sleeps between a
    client's requests (0 = hammer).
    """

    def __init__(self, clients=8, requests_per_client=3, scenes=("lego",),
                 backends=("hw:het+qm",), views_choices=(1, 2), seed=0,
                 deadline_ms=None, warm_fraction=0.0, high_fraction=0.0,
                 think_ms=0.0):
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if requests_per_client < 1:
            raise ValueError("requests_per_client must be >= 1, "
                             f"got {requests_per_client}")
        self.clients = int(clients)
        self.requests_per_client = int(requests_per_client)
        self.scenes = tuple(scenes)
        self.backends = tuple(backends)
        self.views_choices = tuple(int(v) for v in views_choices)
        self.seed = int(seed)
        self.deadline_ms = deadline_ms
        self.warm_fraction = float(warm_fraction)
        self.high_fraction = float(high_fraction)
        self.think_ms = float(think_ms)

    def client_requests(self, client):
        """The deterministic request list of one client (no service state).

        Exposed separately from :func:`run_load` so tests can enumerate
        the exact mix a run will submit (e.g. to precompute bit-exact
        oracles per request configuration).
        """
        rng = random.Random(f"{self.seed}:{client}")
        requests = []
        for _ in range(self.requests_per_client):
            requests.append(RenderRequest(
                scene=rng.choice(self.scenes),
                backend=rng.choice(self.backends),
                views=rng.choice(self.views_choices),
                seed=self.seed,
                deadline_ms=self.deadline_ms,
                priority=("high" if rng.random() < self.high_fraction
                          else "normal"),
                warm_crop_cache=rng.random() < self.warm_fraction))
        return requests

    def all_requests(self):
        """Every request of every client, in (client, position) order."""
        return [request for client in range(self.clients)
                for request in self.client_requests(client)]


class LoadReport:
    """Outcome of one :func:`run_load`: responses + KPI rollup."""

    def __init__(self, spec, responses, elapsed_s, service_stats,
                 submitted):
        self.spec = spec
        self.responses = list(responses)
        self.elapsed_s = float(elapsed_s)
        self.service_stats = dict(service_stats)
        self.submitted = int(submitted)

    def kpis(self):
        """The serving KPIs as a flat JSON-safe dict.

        ``lost`` counts submitted requests that never produced a typed
        response — the invariant the chaos suite pins to zero.
        Percentiles cover completed requests only (rejections resolve in
        microseconds and would flatter the latency story).
        """
        completed = [r for r in self.responses if r.status == "ok"]
        rejected = [r for r in self.responses if r.status == "rejected"]
        failed = [r for r in self.responses if r.status == "failed"]
        kpis = {
            "submitted": self.submitted,
            "resolved": len(self.responses),
            "lost": self.submitted - len(self.responses),
            "completed": len(completed),
            "rejected": len(rejected),
            "failed": len(failed),
            "rejection_rate": (len(rejected) / self.submitted
                               if self.submitted else 0.0),
            "throughput_rps": (len(completed) / self.elapsed_s
                               if self.elapsed_s > 0 else 0.0),
            "elapsed_s": self.elapsed_s,
            "incidents": sum(r.incident_summary.get("count", 0)
                             for r in completed),
            "healing_ms": sum(r.incident_summary.get("healing_ms", 0.0)
                              for r in completed),
            "from_cache": sum(1 for r in completed if r.from_cache),
            "degraded": sum(1 for r in completed if r.degraded),
            "cache_hit_rate": (sum(1 for r in completed if r.from_cache)
                               / len(completed) if completed else 0.0),
        }
        if completed:
            latencies = np.asarray([r.latency_ms for r in completed],
                                   dtype=np.float64)
            kpis["latency_p50_ms"] = float(np.percentile(latencies, 50))
            kpis["latency_p95_ms"] = float(np.percentile(latencies, 95))
            kpis["latency_p99_ms"] = float(np.percentile(latencies, 99))
            kpis["latency_mean_ms"] = float(latencies.mean())
        reasons = {}
        for response in rejected:
            reasons[response.reason] = reasons.get(response.reason, 0) + 1
        for response in failed:
            key = f"failed:{response.reason}"
            reasons[key] = reasons.get(key, 0) + 1
        kpis["by_reason"] = reasons
        return kpis


def run_load(service, spec):
    """Drive ``service`` with ``spec``'s clients; returns a :class:`LoadReport`.

    Each client thread submits its deterministic request mix closed-loop
    (awaiting each response before the next submission).  The report
    collects every typed response; a response missing after
    :data:`CLIENT_TIMEOUT_S` counts as lost rather than deadlocking the
    harness.
    """
    responses = []
    responses_lock = threading.Lock()
    submitted = [0]

    def client_loop(client):
        for position, request in enumerate(spec.client_requests(client)):
            request.request_id = f"c{client:02d}-r{position:02d}"
            if spec.think_ms > 0 and position > 0:
                time.sleep(spec.think_ms / 1e3)
            with responses_lock:
                submitted[0] += 1
            pending = service.submit(request)
            try:
                response = pending.result(timeout=CLIENT_TIMEOUT_S)
            except TimeoutError:
                continue  # lost: surfaces in the report, not as a hang
            with responses_lock:
                responses.append(response)

    threads = [threading.Thread(target=client_loop, args=(client,),
                                name=f"loadgen-{client}", daemon=True)
               for client in range(spec.clients)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = time.monotonic() - started
    return LoadReport(spec, responses, elapsed_s, service.stats(),
                      submitted[0])

"""`RenderService`: fault-tolerant single-box request serving.

The serving layer multiplexes many concurrent trajectory requests over
a bounded worker pool on top of the engine's self-healing
:class:`~repro.engine.session.RenderSession`.  Robustness is the
headline, built from four cooperating mechanisms:

**Admission control.**  A bounded FIFO queue with typed rejections:
``queue_full`` (absolute bound), ``shedding`` (soft threshold
``shed_at`` — normal-priority requests are shed while the queue is deep,
high-priority ones pass), and ``deadline_unmeetable`` (an EWMA service
model of observed per-frame cost predicts the deadline cannot be met,
so the request is refused up-front instead of burning a worker).

**Deadlines.**  An admitted deadline carries its remaining budget into
the engine's cooperative per-frame ``watchdog_ms`` (PR 7), so an
injected stall — or any runaway attempt — is cut at the next checkpoint
and the frame heals through the degradation ladder within the budget.
A deadline that expires while the request waits in the queue resolves
as a typed ``Failed(reason="deadline")``, never a silent loss.

**Graceful degradation.**  Per-request healing is the session ladder's
job; the service adds a rolling-incident-rate circuit breaker
(:class:`~repro.serve.breaker.ServiceBreaker`) that routes *new*
admissions straight onto the retained bit-exact oracle knobs
(``coherence="off"``, ``ir="legacy"``) while faults cluster, and probes
its way back.  Every response carries the structured incident trail and
``incident_summary`` (with ``healing_ms`` latency attribution).

**Residency and caching.**  Sessions live in a bounded LRU
(:class:`~repro.serve.residency.SceneResidency`) so repeat traffic for
a scene reuses the warm coherence carrier (and, opt-in, a warm CROP
cache) across requests; the shared on-disk
:class:`~repro.engine.cache.ResultCache` (now with a size-budget LRU
sweep) serves bit-exact repeat trajectories without rendering at all.

The core invariant — enforced by the chaos suite — is that **no request
is ever lost or silently wrong**: every admitted request terminates in
a bit-exact result (possibly via degraded rungs, with incidents
attached) or a typed failure, and every rejected request gets a typed
reason, under any fault plan and any concurrency.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.engine.executor import FrameLadderExhausted
from repro.engine.session import RenderSession
from repro.knobs import env as knobs_env
from repro.serve.breaker import ServiceBreaker
from repro.serve.request import (
    Completed,
    Failed,
    PendingRequest,
    Rejected,
    RenderRequest,
)
from repro.serve.residency import SceneResidency

#: EWMA smoothing for the service-time model (higher = more reactive).
_EWMA_ALPHA = 0.3


def _percentiles(values_ms):
    """p50/p95/p99 of a latency list (empty dict when no samples)."""
    if not values_ms:
        return {}
    arr = np.asarray(values_ms, dtype=np.float64)
    return {
        "latency_p50_ms": float(np.percentile(arr, 50)),
        "latency_p95_ms": float(np.percentile(arr, 95)),
        "latency_p99_ms": float(np.percentile(arr, 99)),
    }


class _QueueItem:
    """One admitted request waiting for a worker."""

    __slots__ = ("request", "pending", "submitted", "mode")

    def __init__(self, request, pending, submitted, mode):
        self.request = request
        self.pending = pending
        self.submitted = submitted  # monotonic seconds at admission
        self.mode = mode            # breaker verdict: primary/degraded/probe


class RenderService:
    """Single-box trajectory-serving scheduler (see module docstring).

    Parameters
    ----------
    workers:
        Worker-pool size (default ``$REPRO_SERVE_WORKERS`` or 2).
    queue_limit:
        Absolute queued-request bound (default ``$REPRO_SERVE_QUEUE`` or
        16); submissions beyond it are ``Rejected(reason="queue_full")``.
    shed_at:
        Soft load-shedding threshold: while the queue holds at least
        this many requests, normal-priority submissions are
        ``Rejected(reason="shedding")``.  Defaults to 3/4 of
        ``queue_limit``; ``None`` never sheds below ``queue_limit``.
    device:
        Device preset shared by every session the service builds.
    result_cache:
        Optional shared :class:`~repro.engine.cache.ResultCache`;
        repeat trajectories are then served bit-exact from disk.
    max_residents / residency_bytes:
        Budgets of the resident-scene LRU.
    breaker:
        A :class:`~repro.serve.breaker.ServiceBreaker` (default: window
        8, open at 50%, cooldown 4).  Pass ``enabled=False`` to pin it
        closed.
    default_deadline_ms:
        Deadline applied to requests that don't carry their own.

    Use as a context manager (``with RenderService(...) as svc:``) or
    call :meth:`close` explicitly; queued requests are drained (or, with
    ``drain=False``, resolved as typed shutdown rejections) — never
    dropped.
    """

    def __init__(self, workers=None, queue_limit=None, shed_at=None,
                 device="orin", result_cache=None, max_residents=4,
                 residency_bytes=None, breaker=None,
                 default_deadline_ms=None):
        if workers is None:
            workers = int(knobs_env("REPRO_SERVE_WORKERS"))
        if queue_limit is None:
            queue_limit = int(knobs_env("REPRO_SERVE_QUEUE"))
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.workers = int(workers)
        self.queue_limit = int(queue_limit)
        if shed_at is None:
            shed_at = max(1, (3 * self.queue_limit) // 4)
        elif shed_at is not False and not 1 <= int(shed_at) <= queue_limit:
            raise ValueError(
                f"shed_at must be in [1, queue_limit], got {shed_at}")
        self.shed_at = None if shed_at is False else int(shed_at)
        self.device = device
        self.result_cache = result_cache
        self.residency = SceneResidency(max_residents=max_residents,
                                        max_bytes=residency_bytes)
        self.breaker = breaker if breaker is not None else ServiceBreaker()
        self.default_deadline_ms = default_deadline_ms

        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue = deque()
        self._closed = False
        self._drain = True
        self._next_id = 0
        self._started = time.monotonic()
        self._counters = {
            "submitted": 0, "admitted": 0, "completed": 0, "failed": 0,
            "rejected": 0, "from_cache": 0, "degraded": 0, "incidents": 0,
        }
        self._rejected_by_reason = {}
        self._latencies_ms = []
        self._ewma_frame_ms = None
        self._ewma_request_ms = None
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-serve-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission and admission control
    # ------------------------------------------------------------------

    def request(self, scene=None, timeout=None, **kwargs):
        """Blocking convenience: submit and wait for the typed response.

        Accepts either a ready :class:`RenderRequest` (as ``scene``) or
        the request's keyword fields.
        """
        if isinstance(scene, RenderRequest):
            req = scene
        else:
            req = RenderRequest(scene, **kwargs)
        return self.submit(req).result(timeout)

    def submit(self, request):
        """Admit (or reject) ``request``; returns a :class:`PendingRequest`.

        Rejections resolve the handle synchronously with a typed
        :class:`Rejected` response — the handle API is uniform either
        way, and no submission path can lose a request.
        """
        pending = PendingRequest(request)
        now = time.monotonic()
        with self._lock:
            self._counters["submitted"] += 1
            if request.request_id is None:
                request.request_id = f"req-{self._next_id:06d}"
            self._next_id += 1
            rejection = self._admission_verdict(request)
            if rejection is not None:
                self._counters["rejected"] += 1
                self._rejected_by_reason[rejection.reason] = (
                    self._rejected_by_reason.get(rejection.reason, 0) + 1)
                pending._resolve(rejection)
                return pending
            self._counters["admitted"] += 1
            mode = self.breaker.admission_mode()
            self._queue.append(_QueueItem(request, pending, now, mode))
            self._not_empty.notify()
        return pending

    def _admission_verdict(self, request):
        """A typed :class:`Rejected` for ``request``, or ``None`` to admit.

        Called under the service lock.
        """
        if self._closed:
            return Rejected(request.request_id, "shutdown",
                            detail="service is shutting down")
        deadline_ms = (request.deadline_ms
                       if request.deadline_ms is not None
                       else self.default_deadline_ms)
        if deadline_ms is not None:
            if deadline_ms <= 0:
                return Rejected(request.request_id, "deadline_unmeetable",
                                detail="non-positive deadline")
            estimate = self._estimate_ms(request)
            if estimate is not None and estimate > deadline_ms:
                return Rejected(
                    request.request_id, "deadline_unmeetable",
                    detail=(f"estimated {estimate:.1f} ms service+queue "
                            f"time exceeds the {deadline_ms:g} ms "
                            "deadline"))
        depth = len(self._queue)
        if depth >= self.queue_limit:
            return Rejected(request.request_id, "queue_full",
                            detail=f"{depth} requests queued "
                                   f"(limit {self.queue_limit})")
        if (self.shed_at is not None and depth >= self.shed_at
                and request.priority != "high"):
            return Rejected(request.request_id, "shedding",
                            detail=f"{depth} requests queued "
                                   f"(shedding at {self.shed_at}; "
                                   "priority='high' bypasses)")
        return None

    def _estimate_ms(self, request):
        """EWMA prediction of queue wait + service time, or ``None``.

        ``None`` (no completions observed yet) admits optimistically —
        the model cannot reject traffic it has never measured.
        """
        if self._ewma_frame_ms is None:
            return None
        queue_ms = len(self._queue) * (self._ewma_request_ms or 0.0)
        return queue_ms + request.views * self._ewma_frame_ms

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def _worker_loop(self):
        """Worker-pool entry point: pop admitted requests and serve them.

        Every popped request is resolved exactly once — even when the
        handler itself raises, the fallback resolution turns the error
        into a typed :class:`Failed` response.
        """
        while True:
            with self._not_empty:
                while not self._queue and not self._closed:
                    self._not_empty.wait()
                if not self._queue:
                    return  # closed and drained
                item = self._queue.popleft()
            try:
                response = self._handle_request(item)
            except Exception as exc:  # never lose the request
                response = Failed(
                    item.request.request_id, "error",
                    f"{type(exc).__name__}: {exc}",
                    latency_ms=(time.monotonic() - item.submitted) * 1e3)
            self._finish(item, response)

    def _handle_request(self, item):
        """Serve one admitted request; always returns a typed response."""
        request = item.request
        started = time.monotonic()
        queue_ms = (started - item.submitted) * 1e3

        deadline_ms = (request.deadline_ms
                       if request.deadline_ms is not None
                       else self.default_deadline_ms)
        watchdog_ms = None
        if deadline_ms is not None:
            remaining = deadline_ms - queue_ms
            if remaining <= 0:
                return Failed(
                    request.request_id, "deadline",
                    f"deadline ({deadline_ms:g} ms) expired after "
                    f"{queue_ms:.1f} ms in queue",
                    latency_ms=queue_ms, queue_ms=queue_ms)
            # The watchdog budget is per frame *attempt*; splitting the
            # remaining budget across the frames keeps a single stalled
            # frame from consuming the whole request's allowance.
            watchdog_ms = remaining / request.views

        degraded = item.mode == "degraded"
        key = (request.scene, request.backend, request.baseline,
               self.device, request.seed, request.warm_crop_cache,
               degraded)
        resident = self.residency.acquire(
            key, lambda: self._build_session(request, degraded))
        try:
            session = resident.session
            session.strict = request.strict
            session.watchdog_ms = watchdog_ms
            crop_cache = (resident.warm_crop_cache()
                          if request.warm_crop_cache else None)
            try:
                result = session.run(n_views=request.views,
                                     crop_cache=crop_cache)
            except FrameLadderExhausted as exc:
                return Failed(
                    request.request_id, "ladder_exhausted", str(exc),
                    incidents=[inc.to_dict() for inc in exc.incidents],
                    latency_ms=(time.monotonic() - item.submitted) * 1e3,
                    queue_ms=queue_ms)
            except Exception as exc:
                reason = "strict" if request.strict else "error"
                return Failed(
                    request.request_id, reason,
                    f"{type(exc).__name__}: {exc}",
                    latency_ms=(time.monotonic() - item.submitted) * 1e3,
                    queue_ms=queue_ms)
        finally:
            self.residency.release(resident)
        done = time.monotonic()
        return Completed(
            request.request_id,
            aggregates=result.aggregates(),
            incidents=result.incidents(),
            incident_summary=result.incident_summary(),
            from_cache=result.from_cache,
            degraded=degraded,
            probe=item.mode == "probe",
            latency_ms=(done - item.submitted) * 1e3,
            queue_ms=queue_ms,
            service_ms=(done - started) * 1e3)

    def _build_session(self, request, degraded):
        """A fresh resident session for ``request``.

        Breaker-degraded admissions run the retained bit-exact oracle
        knobs directly — same bytes, fewer fast-path failure modes.
        """
        ir = "legacy" if degraded else None
        coherence = "off" if degraded else None
        return RenderSession(
            request.scene, backend=request.backend,
            baseline=request.baseline, device=self.device,
            seed=request.seed, warm_crop_cache=request.warm_crop_cache,
            result_cache=self.result_cache, ir=ir, coherence=coherence)

    def _finish(self, item, response):
        """Record KPIs, feed the breaker, resolve the pending handle."""
        unhealthy = response.status == "failed"
        incidents = 0
        if response.status == "ok":
            incidents = response.incident_summary.get("count", 0)
            unhealthy = incidents > 0
        self.breaker.record(item.mode, unhealthy)
        with self._lock:
            if response.status == "ok":
                self._counters["completed"] += 1
                self._counters["incidents"] += incidents
                if response.from_cache:
                    self._counters["from_cache"] += 1
                if response.degraded:
                    self._counters["degraded"] += 1
                self._latencies_ms.append(response.latency_ms)
                frame_ms = response.service_ms / item.request.views
                if self._ewma_frame_ms is None:
                    self._ewma_frame_ms = frame_ms
                    self._ewma_request_ms = response.service_ms
                else:
                    self._ewma_frame_ms += _EWMA_ALPHA * (
                        frame_ms - self._ewma_frame_ms)
                    self._ewma_request_ms += _EWMA_ALPHA * (
                        response.service_ms - self._ewma_request_ms)
            else:
                self._counters["failed"] += 1
        item.pending._resolve(response)

    # ------------------------------------------------------------------
    # Lifecycle and observability
    # ------------------------------------------------------------------

    def close(self, drain=True, timeout=None):
        """Stop accepting requests and shut the worker pool down.

        ``drain=True`` serves every queued request first; ``drain=False``
        resolves queued requests as typed shutdown rejections.  Either
        way no request is dropped.  Idempotent.
        """
        with self._lock:
            self._closed = True
            if not drain:
                while self._queue:
                    item = self._queue.popleft()
                    self._counters["admitted"] -= 1
                    self._counters["rejected"] += 1
                    self._rejected_by_reason["shutdown"] = (
                        self._rejected_by_reason.get("shutdown", 0) + 1)
                    item.pending._resolve(Rejected(
                        item.request.request_id, "shutdown",
                        detail="service closed before execution"))
            self._not_empty.notify_all()
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def queue_depth(self):
        with self._lock:
            return len(self._queue)

    def stats(self):
        """JSON-safe KPI snapshot of the service so far.

        Counters, latency percentiles over completed requests, queue
        depth, throughput since start, plus nested breaker / residency /
        result-cache snapshots — the per-request latency & health KPIs
        reported as first-class outputs.
        """
        with self._lock:
            elapsed_s = time.monotonic() - self._started
            snapshot = {
                **self._counters,
                "rejected_by_reason": dict(self._rejected_by_reason),
                "queue_depth": len(self._queue),
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "shed_at": self.shed_at,
                "elapsed_s": elapsed_s,
                "throughput_rps": (self._counters["completed"] / elapsed_s
                                   if elapsed_s > 0 else 0.0),
                "ewma_frame_ms": self._ewma_frame_ms,
                **_percentiles(self._latencies_ms),
            }
        snapshot["breaker"] = self.breaker.stats()
        snapshot["residency"] = self.residency.stats()
        if self.result_cache is not None:
            snapshot["result_cache"] = self.result_cache.stats()
        return snapshot

"""Viewpoint sets for the Figure 21 early-termination-ratio sweep.

The paper evaluates every viewpoint the datasets provide (hundreds per
scene); the procedural stand-in is an orbit around each scene's centre at
the profile's capture radius — the same geometry dataset trajectories
follow for object-centric captures.
"""

from __future__ import annotations

from repro.gaussians.camera import orbit_viewpoints
from repro.workloads.catalog import SceneProfile, get_profile


def scene_viewpoints(name_or_profile, n_views=12):
    """Cameras orbiting the scene (default 12; the paper uses the full set).

    Returns a list of :class:`~repro.gaussians.camera.Camera`.
    """
    profile = (name_or_profile if isinstance(name_or_profile, SceneProfile)
               else get_profile(name_or_profile))
    if n_views <= 0:
        raise ValueError(f"n_views must be positive, got {n_views}")
    return orbit_viewpoints(
        center=profile.camera_target,
        radius=profile.orbit_radius,
        n_views=n_views,
        height=profile.orbit_height,
        fov_x_deg=profile.fov_x_deg,
        width=profile.width,
        img_height=profile.height,
    )

"""The evaluation scenes (Table II + the Figure 23 large-scale scenes).

Each profile records the paper's published facts (dataset, full resolution,
trained Gaussian count) alongside the scaled-down procedural realisation
used here.  Layout recipes per scene type:

* **indoor** (Kitchen, Bonsai) — a central object cluster inside an
  enclosing room shell, with mid-depth furniture planes; moderate
  early-termination ratio, concentrated at the object (the paper's Bonsai
  observation).
* **outdoor** (Train, Truck) — a dominant foreground object against deep
  stacked background structure and ground; many Gaussians "beyond the
  surface", hence the highest early-termination ratios.
* **synthetic** (Lego, Palace) — a single dense object on a transparent
  background; small images, no environment.
* **city** (Building, Rubble) — block grids of layered facades at large
  scale (Mega-NeRF / CityGaussian captures).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians import synthetic


@dataclass(frozen=True)
class SceneProfile:
    """One evaluation workload.

    Paper-fact fields carry Table II's published values; the ``width``,
    ``height`` and ``n_gaussians`` fields are this reproduction's scaled
    realisation (~1/5.5 linear, so per-pixel depth statistics survive).
    """

    name: str
    dataset: str
    scene_type: str                  # indoor | outdoor | synthetic | city
    paper_resolution: tuple
    paper_gaussians: int
    width: int
    height: int
    n_gaussians: int
    camera_eye: tuple
    camera_target: tuple = (0.0, 0.0, 0.0)
    fov_x_deg: float = 60.0
    orbit_radius: float = 3.0
    orbit_height: float = 0.4
    layout_params: dict = field(default_factory=dict)

    def camera(self, eye=None):
        """The profile's default (or overridden-eye) camera."""
        return Camera.look_at(
            eye=self.camera_eye if eye is None else eye,
            target=self.camera_target,
            fov_x_deg=self.fov_x_deg,
            width=self.width,
            height=self.height,
        )


def _indoor_scene(profile, rng):
    p = profile.layout_params
    n = profile.n_gaussians
    n_object = int(n * p.get("object_frac", 0.35))
    n_shell = int(n * p.get("shell_frac", 0.25))
    n_mid = n - n_object - n_shell
    obj = synthetic.make_blob(
        rng, n_object, center=(0, 0, 0), radius=p.get("object_radius", 0.45),
        scale_mean=p.get("object_scale", 0.045),
        opacity_low=p.get("object_opacity_low", 0.55),
        opacity_high=0.97, base_color=(0.55, 0.45, 0.35))
    shell = synthetic.make_shell(
        rng, n_shell, center=(0, 0, 0), radius=p.get("room_radius", 3.2),
        scale_mean=p.get("shell_scale", 0.12), opacity_low=0.5,
        opacity_high=0.95, base_color=(0.5, 0.5, 0.55))
    mid = synthetic.make_layered_surfaces(
        rng, n_mid, center=(0, -0.1, 0.6), extent=(1.4, 0.9),
        n_layers=p.get("mid_layers", 4), layer_spacing=0.35,
        axis=(0, 0, 1), scale_mean=0.06,
        opacity_low=p.get("mid_opacity_low", 0.6), opacity_high=0.97,
        base_color=(0.6, 0.55, 0.45))
    return synthetic.compose(obj, shell, mid)


def _outdoor_scene(profile, rng):
    p = profile.layout_params
    n = profile.n_gaussians
    n_object = int(n * p.get("object_frac", 0.3))
    n_stack = int(n * p.get("stack_frac", 0.45))
    n_ground = int(n * p.get("ground_frac", 0.15))
    n_far = n - n_object - n_stack - n_ground
    obj = synthetic.make_blob(
        rng, n_object, center=(0, 0, -0.2), radius=0.55,
        scale_mean=p.get("object_scale", 0.05), opacity_low=0.6,
        opacity_high=0.98, base_color=(0.45, 0.4, 0.35))
    stack = synthetic.make_layered_surfaces(
        rng, n_stack, center=(0, 0.1, 1.2), extent=(2.2, 1.2),
        n_layers=p.get("stack_layers", 9),
        layer_spacing=p.get("stack_spacing", 0.28), axis=(0, 0, 1),
        scale_mean=p.get("stack_scale", 0.07),
        opacity_low=p.get("stack_opacity_low", 0.7), opacity_high=0.98,
        base_color=(0.5, 0.5, 0.45))
    ground = synthetic.make_plane(
        rng, n_ground, center=(0, -0.7, 0.5), normal=(0, 1, 0),
        extent=(2.5, 2.5), scale_mean=0.08, opacity_low=0.6,
        opacity_high=0.95, base_color=(0.4, 0.42, 0.35))
    far = synthetic.make_shell(
        rng, n_far, center=(0, 0.3, 0.8), radius=4.5, scale_mean=0.2,
        opacity_low=0.4, opacity_high=0.85, base_color=(0.55, 0.6, 0.7))
    return synthetic.compose(obj, stack, ground, far)


def _synthetic_scene(profile, rng):
    p = profile.layout_params
    n = profile.n_gaussians
    n_core = int(n * p.get("core_frac", 0.6))
    n_detail = n - n_core
    core = synthetic.make_blob(
        rng, n_core, center=(0, 0, 0), radius=p.get("core_radius", 0.4),
        scale_mean=p.get("core_scale", 0.04),
        opacity_low=p.get("core_opacity_low", 0.6), opacity_high=0.98,
        base_color=p.get("base_color", (0.7, 0.6, 0.3)))
    detail = synthetic.make_layered_surfaces(
        rng, n_detail, center=(0, 0, 0), extent=(0.55, 0.55),
        n_layers=p.get("detail_layers", 5), layer_spacing=0.18,
        axis=(0, 0, 1), scale_mean=0.035, opacity_low=0.65,
        opacity_high=0.98, base_color=p.get("base_color", (0.7, 0.6, 0.3)))
    return synthetic.compose(core, detail)


def _city_scene(profile, rng):
    p = profile.layout_params
    n = profile.n_gaussians
    n_blocks = p.get("n_blocks", 6)
    per_block = n // (n_blocks + 1)
    parts = []
    block_rng = np.random.default_rng(rng.integers(1 << 31))
    for b in range(n_blocks):
        angle = 2 * np.pi * b / n_blocks
        cx = 2.1 * np.cos(angle)
        cz = 0.9 + 1.6 * np.sin(angle)
        parts.append(synthetic.make_layered_surfaces(
            block_rng, per_block, center=(cx, 0.2, cz), extent=(0.8, 0.7),
            n_layers=p.get("layers_per_block", 7), layer_spacing=0.22,
            axis=(np.sin(angle) * 0.3, 0, 1), scale_mean=0.06,
            opacity_low=0.5, opacity_high=0.9,
            base_color=(0.5 + 0.05 * (b % 3), 0.5, 0.45)))
    parts.append(synthetic.make_plane(
        block_rng, n - n_blocks * per_block, center=(0, -0.6, 0.8),
        normal=(0, 1, 0), extent=(3.0, 3.0), scale_mean=0.09,
        opacity_low=0.6, opacity_high=0.95, base_color=(0.42, 0.42, 0.38)))
    return GaussianCloud.concatenate(parts)


def _bench_scene(profile, rng):
    """Dense field of *small* splats for the `repro bench` suites.

    The Table II realisations are scaled ~1/5.5 linearly but keep their
    Gaussian counts in the thousands, so each splat covers ~1000 px — two
    orders of magnitude above production 3DGS captures (millions of
    Gaussians covering tens of pixels each).  Benchmarks of per-splat
    versus batched rasterisation costs need the realistic regime, so this
    layout packs many small-scale Gaussians: a dominant foreground cloud
    plus a thin background shell.
    """
    p = profile.layout_params
    n = profile.n_gaussians
    n_fg = int(n * p.get("fg_frac", 0.8))
    fg = synthetic.make_blob(
        rng, n_fg, center=(0, 0, 0), radius=p.get("radius", 0.85),
        scale_mean=p.get("fg_scale", 0.009), opacity_low=0.5,
        opacity_high=0.95, base_color=(0.6, 0.55, 0.45))
    bg = synthetic.make_shell(
        rng, n - n_fg, center=(0, 0, 0.4), radius=p.get("bg_radius", 3.4),
        scale_mean=p.get("bg_scale", 0.02), opacity_low=0.4,
        opacity_high=0.9, base_color=(0.5, 0.55, 0.65))
    return synthetic.compose(fg, bg)


def _aerial_scene(profile, rng):
    """Sparse high-altitude overview (drone / flyover capture).

    A wide ground sheet, scattered low structure clusters and a thin
    haze shell: seen from a high orbit, most pixels are covered by a few
    ground fragments only, so depth complexity — and with it the
    early-termination ratio — stays near the workload's floor.  The
    opposite end of the fragment-load spectrum from ``garden``.
    """
    p = profile.layout_params
    n = profile.n_gaussians
    n_ground = int(n * p.get("ground_frac", 0.45))
    n_struct = int(n * p.get("struct_frac", 0.38))
    n_haze = n - n_ground - n_struct
    n_clusters = p.get("n_clusters", 9)
    parts = [synthetic.make_plane(
        rng, n_ground, center=(0, -0.55, 0.6), normal=(0, 1, 0),
        extent=(4.4, 4.4), scale_mean=p.get("ground_scale", 0.045),
        opacity_low=0.55, opacity_high=0.95, base_color=(0.42, 0.46, 0.36))]
    per_cluster = np.full(n_clusters, n_struct // n_clusters, dtype=int)
    per_cluster[: n_struct % n_clusters] += 1
    for b, count in enumerate(per_cluster):
        if count == 0:
            continue
        angle = 2 * np.pi * b / n_clusters
        radius = 0.7 + 2.2 * rng.random()
        cx = radius * np.cos(angle)
        cz = 0.6 + radius * np.sin(angle) * 0.8
        parts.append(synthetic.make_blob(
            rng, int(count), center=(cx, -0.35, cz),
            radius=p.get("cluster_radius", 0.28),
            scale_mean=p.get("cluster_scale", 0.035), opacity_low=0.5,
            opacity_high=0.95,
            base_color=(0.5 + 0.04 * (b % 3), 0.47, 0.4)))
    parts.append(synthetic.make_shell(
        rng, n_haze, center=(0, 0.4, 0.6), radius=5.2, scale_mean=0.09,
        opacity_low=0.25, opacity_high=0.6, base_color=(0.6, 0.65, 0.72)))
    return synthetic.compose(*parts)


def _garden_scene(profile, rng):
    """Dense foliage (garden / vegetation capture).

    Stacked near-horizontal canopy sheets over a thicket of bush blobs
    and a ground sheet: many translucent surfaces along every ray, the
    highest depth complexity in the catalogue — the regime where early
    termination and quad merging pay the most.
    """
    p = profile.layout_params
    n = profile.n_gaussians
    n_canopy = int(n * p.get("canopy_frac", 0.42))
    n_bushes = int(n * p.get("bush_frac", 0.38))
    n_ground = n - n_canopy - n_bushes
    n_bush_clusters = p.get("n_bushes", 7)
    canopy = synthetic.make_layered_surfaces(
        rng, n_canopy, center=(0, 0.45, 0.6), extent=(1.9, 1.5),
        n_layers=p.get("canopy_layers", 6),
        layer_spacing=p.get("canopy_spacing", 0.16), axis=(0, 1, 0.35),
        scale_mean=p.get("canopy_scale", 0.035),
        opacity_low=p.get("canopy_opacity_low", 0.5), opacity_high=0.92,
        base_color=(0.32, 0.48, 0.28))
    parts = [canopy]
    per_bush = np.full(n_bush_clusters, n_bushes // n_bush_clusters,
                       dtype=int)
    per_bush[: n_bushes % n_bush_clusters] += 1
    for b, count in enumerate(per_bush):
        if count == 0:
            continue
        angle = 2 * np.pi * b / n_bush_clusters
        radius = 0.35 + 0.9 * rng.random()
        parts.append(synthetic.make_blob(
            rng, int(count),
            center=(radius * np.cos(angle), -0.25,
                    0.5 + radius * np.sin(angle) * 0.7),
            radius=p.get("bush_radius", 0.3),
            scale_mean=p.get("bush_scale", 0.032), opacity_low=0.45,
            opacity_high=0.9, base_color=(0.3, 0.44, 0.26)))
    parts.append(synthetic.make_plane(
        rng, n_ground, center=(0, -0.55, 0.6), normal=(0, 1, 0),
        extent=(2.4, 2.4), scale_mean=0.05, opacity_low=0.6,
        opacity_high=0.95, base_color=(0.35, 0.4, 0.3)))
    return synthetic.compose(*parts)


_BUILDERS = {
    "indoor": _indoor_scene,
    "outdoor": _outdoor_scene,
    "synthetic": _synthetic_scene,
    "city": _city_scene,
    "bench": _bench_scene,
    "aerial": _aerial_scene,
    "garden": _garden_scene,
}


#: Table II scenes.
SCENES = {
    "kitchen": SceneProfile(
        name="kitchen", dataset="Mip-NeRF 360", scene_type="indoor",
        paper_resolution=(1552, 1040), paper_gaussians=1_850_000,
        width=288, height=192, n_gaussians=4600,
        camera_eye=(0.0, 0.35, -2.6), orbit_radius=2.6, orbit_height=0.5,
        layout_params={"mid_layers": 3, "mid_opacity_low": 0.45,
                       "object_opacity_low": 0.45, "shell_frac": 0.32},
    ),
    "bonsai": SceneProfile(
        name="bonsai", dataset="Mip-NeRF 360", scene_type="indoor",
        paper_resolution=(1552, 1040), paper_gaussians=1_240_000,
        width=288, height=192, n_gaussians=3800,
        camera_eye=(0.0, 0.4, -2.4), orbit_radius=2.4, orbit_height=0.6,
        layout_params={"object_frac": 0.55, "shell_frac": 0.3,
                       "mid_layers": 1, "object_opacity_low": 0.25,
                       "mid_opacity_low": 0.4, "object_radius": 0.5},
    ),
    "train": SceneProfile(
        name="train", dataset="Tanks&Temples", scene_type="outdoor",
        paper_resolution=(980, 545), paper_gaussians=1_030_000,
        width=256, height=144, n_gaussians=4600,
        camera_eye=(0.2, 0.25, -2.8), orbit_radius=2.8, orbit_height=0.4,
        layout_params={"stack_layers": 13, "stack_opacity_low": 0.85,
                       "stack_frac": 0.62, "object_frac": 0.18,
                       "stack_spacing": 0.22, "stack_scale": 0.085},
    ),
    "truck": SceneProfile(
        name="truck", dataset="Tanks&Temples", scene_type="outdoor",
        paper_resolution=(979, 546), paper_gaussians=2_540_000,
        width=256, height=144, n_gaussians=6400,
        camera_eye=(-0.3, 0.3, -2.9), orbit_radius=2.9, orbit_height=0.45,
        layout_params={"stack_layers": 8, "stack_opacity_low": 0.7,
                       "stack_frac": 0.48},
    ),
    "lego": SceneProfile(
        name="lego", dataset="Synthetic-NeRF", scene_type="synthetic",
        paper_resolution=(800, 800), paper_gaussians=358_000,
        width=160, height=160, n_gaussians=2200,
        camera_eye=(0.0, 0.45, -1.7), orbit_radius=1.7, orbit_height=0.5,
        layout_params={"detail_layers": 3, "core_opacity_low": 0.5,
                       "base_color": (0.75, 0.6, 0.2)},
    ),
    "palace": SceneProfile(
        name="palace", dataset="Synthetic-NSVF", scene_type="synthetic",
        paper_resolution=(800, 800), paper_gaussians=327_000,
        width=160, height=160, n_gaussians=2000,
        camera_eye=(0.3, 0.35, -1.8), orbit_radius=1.8, orbit_height=0.4,
        layout_params={"detail_layers": 4, "core_radius": 0.45,
                       "core_opacity_low": 0.45,
                       "base_color": (0.6, 0.55, 0.5)},
    ),
}

#: Figure 23 large-scale scenes (Mega-NeRF / CityGaussian).
LARGE_SCALE_SCENES = {
    "building": SceneProfile(
        name="building", dataset="Mega-NeRF", scene_type="city",
        paper_resolution=(1152, 864), paper_gaussians=9_060_000,
        width=280, height=168, n_gaussians=8500,
        camera_eye=(0.0, 0.9, -3.2), orbit_radius=3.2, orbit_height=1.0,
        layout_params={"n_blocks": 7, "layers_per_block": 3},
    ),
    "rubble": SceneProfile(
        name="rubble", dataset="Mega-NeRF", scene_type="city",
        paper_resolution=(1152, 864), paper_gaussians=5_210_000,
        width=280, height=168, n_gaussians=6600,
        camera_eye=(0.2, 0.8, -3.0), orbit_radius=3.0, orbit_height=0.9,
        layout_params={"n_blocks": 6, "layers_per_block": 3},
    ),
}

#: Benchmark workloads for the ``repro bench`` suites (not part of the
#: paper's figure sweeps, so deliberately kept out of :func:`scene_names`).
BENCH_SCENES = {
    "bench": SceneProfile(
        name="bench", dataset="procedural", scene_type="bench",
        paper_resolution=(1280, 720), paper_gaussians=1_000_000,
        width=480, height=270, n_gaussians=30000,
        layout_params={"fg_scale": 0.0075, "bg_scale": 0.016},
        camera_eye=(0.0, 0.3, -2.6), orbit_radius=2.6, orbit_height=0.4,
    ),
}

#: Scenario profiles beyond the paper's figure sweeps: extra coverage
#: regimes for the trajectory engine and its benchmarks (kept out of
#: :func:`scene_names` so the figure tables stay the paper's).
SCENARIO_SCENES = {
    "aerial": SceneProfile(
        name="aerial", dataset="procedural", scene_type="aerial",
        paper_resolution=(1280, 720), paper_gaussians=1_500_000,
        width=320, height=180, n_gaussians=5200,
        camera_eye=(0.0, 3.4, -1.8), camera_target=(0.0, -0.3, 0.5),
        orbit_radius=3.6, orbit_height=3.1,
        layout_params={"n_clusters": 9},
    ),
    "garden": SceneProfile(
        name="garden", dataset="procedural", scene_type="garden",
        paper_resolution=(1280, 720), paper_gaussians=2_500_000,
        width=224, height=144, n_gaussians=6000,
        camera_eye=(0.0, 0.3, -2.2), camera_target=(0.0, -0.05, 0.4),
        orbit_radius=2.3, orbit_height=0.4,
        layout_params={"canopy_layers": 6, "n_bushes": 7},
    ),
}

_ALL = {**SCENES, **LARGE_SCALE_SCENES, **BENCH_SCENES, **SCENARIO_SCENES}


def scene_names(include_large=False):
    """Evaluation scene names in the paper's figure order."""
    names = list(SCENES)
    if include_large:
        names += list(LARGE_SCALE_SCENES)
    return names


def get_profile(name):
    """Look up a profile by name (Table II or large-scale)."""
    try:
        return _ALL[name]
    except KeyError:
        raise KeyError(
            f"unknown scene {name!r}; available: {sorted(_ALL)}") from None


def build_scene(name_or_profile, seed=0):
    """Construct the Gaussian cloud for a scene profile.

    The result always holds exactly ``profile.n_gaussians`` Gaussians:
    builders round block sizes, so the cloud is trimmed or topped up
    deterministically (top-up repeats existing Gaussians in order, which
    preserves the scene's spatial statistics).
    """
    profile = (name_or_profile if isinstance(name_or_profile, SceneProfile)
               else get_profile(name_or_profile))
    # Deterministic across processes: hash() varies with PYTHONHASHSEED.
    rng = np.random.default_rng(
        zlib.crc32(profile.name.encode("ascii")) + seed)
    builder = _BUILDERS[profile.scene_type]
    cloud = builder(profile, rng)
    if len(cloud) > profile.n_gaussians:
        cloud = cloud.subset(np.arange(profile.n_gaussians))
    elif len(cloud) < profile.n_gaussians:
        if len(cloud) == 0:
            raise ValueError(
                f"builder for {profile.scene_type!r} produced an empty "
                f"cloud; cannot reach n_gaussians={profile.n_gaussians}")
        deficit = profile.n_gaussians - len(cloud)
        filler = np.arange(deficit) % len(cloud)
        cloud = GaussianCloud.concatenate([cloud, cloud.subset(filler)])
    return cloud


def default_camera(name_or_profile):
    """The scene's default evaluation viewpoint."""
    profile = (name_or_profile if isinstance(name_or_profile, SceneProfile)
               else get_profile(name_or_profile))
    return profile.camera()

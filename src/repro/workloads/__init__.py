"""Evaluation workloads: the Table II scenes and the large-scale scenes.

Trained 3DGS checkpoints are not available offline, so each paper scene is
realised as a procedural :class:`SceneProfile` whose layout and parameters
are calibrated to the scene's published statistics (resolution and Gaussian
count, scaled down ~5-6x linearly) and its qualitative behaviour in the
paper's figures (early-termination ratio ordering, fragments/pixel depth).
See DESIGN.md §2 for the substitution rationale.
"""

from repro.workloads.catalog import (
    LARGE_SCALE_SCENES,
    SCENES,
    SceneProfile,
    build_scene,
    default_camera,
    get_profile,
    scene_names,
)
from repro.workloads.viewpoints import scene_viewpoints

__all__ = [
    "LARGE_SCALE_SCENES",
    "SCENES",
    "SceneProfile",
    "build_scene",
    "default_camera",
    "get_profile",
    "scene_names",
    "scene_viewpoints",
]

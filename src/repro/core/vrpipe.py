"""VR-Pipe variants, end-to-end hardware rendering, and hardware cost.

The four evaluated variants of Figure 16 are configurations of the same
pipeline model:

========  ====================  ==================
variant   early termination      quad merging
========  ====================  ==================
baseline  off                    off
qm        off                    on (TGC + QRU)
het       on (stencil MSB)       off
het+qm    on                     on
========  ====================  ==================

:class:`HardwareRenderer` wraps preprocessing (single global sort — no
per-tile duplication) plus the pipeline simulation into the paper's
"hardware-based (OpenGL) rendering" path, with the Figure 5/17 kernel
breakdown.
"""

from __future__ import annotations

import time

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.preprocess import preprocess
from repro.hwmodel.config import GPUConfig, jetson_agx_orin
from repro.hwmodel.pipeline import DrawWorkload, GraphicsPipeline
from repro.hwmodel.prop import qru_storage_bytes
from repro.hwmodel.tgc import TileGridCoalescer
from repro.render.coherence import FrameCoherence, resolve_coherence
from repro.render.frameir import resolve_ir
from repro.render.splat_raster import rasterize_splats
from repro.swrender.renderer import SWKernelModel

#: The evaluated hardware variants: name -> (enable_het, enable_qm).
VARIANTS = {
    "baseline": (False, False),
    "qm": (False, True),
    "het": (True, False),
    "het+qm": (True, True),
}


def variant_config(variant, device=None, **overrides):
    """A :class:`GPUConfig` for one of the four variants.

    ``device`` is a base config (defaults to the Table I Orin-like GPU).
    """
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; choose from {sorted(VARIANTS)}")
    het, qm = VARIANTS[variant]
    base = device if device is not None else jetson_agx_orin()
    if not isinstance(base, GPUConfig):
        raise TypeError("device must be a GPUConfig")
    return base.variant(enable_het=het, enable_qm=qm, **overrides)


def run_variant(stream, variant, device=None, engine="batched", ir=None,
                **overrides):
    """Simulate one draw call under ``variant``; returns a DrawResult."""
    config = variant_config(variant, device, **overrides)
    return GraphicsPipeline(config).draw(stream, engine=engine, ir=ir)


def run_all_variants(stream, device=None, engine="batched", ir=None,
                     **overrides):
    """Simulate all four variants on the same stream."""
    return {name: run_variant(stream, name, device, engine=engine, ir=ir,
                              **overrides)
            for name in VARIANTS}


def speedups_over_baseline(results):
    """Speedup of each variant over ``results['baseline']`` (Figure 16)."""
    if "baseline" not in results:
        raise KeyError("results must include the 'baseline' variant")
    base = results["baseline"].cycles
    return {name: base / res.cycles for name, res in results.items()}


def hardware_cost_bytes(config=None):
    """Table III: storage cost of the VR-Pipe extensions, in bytes.

    Returns ``{"tgc": ..., "qru": ..., "total": ...}``; with the Table I
    configuration this reproduces 24.25 KB + 688 B = 24.92 KB.
    """
    config = config or jetson_agx_orin()
    tgc = TileGridCoalescer(config.n_tgc_bins, config.tgc_bin_prims)
    tgc_bytes = tgc.storage_bytes()
    qru_bytes = qru_storage_bytes(n_quad_buffer=config.tc_bin_quads)
    return {"tgc": tgc_bytes, "qru": qru_bytes,
            "total": tgc_bytes + qru_bytes}


class HWRenderResult:
    """Output of :class:`HardwareRenderer.render`.

    The blended ``image``/``alpha`` maps are materialised lazily on first
    access: the colour pass contributes nothing to the simulated cycle
    counts, so trajectory runs that only consume the numeric records
    (``keep_results=False`` sessions, the benchmark suites) never pay for
    per-frame blending.  ``wall_ms`` carries the renderer's measured
    wall-clock stage breakdown (digest / draw), which the trajectory
    benchmark aggregates into its per-stage report.
    """

    def __init__(self, draw_result, preprocess_cycles,
                 sort_cycles, stream, pre, wall_ms=None):
        self.draw = draw_result
        self.preprocess_cycles = float(preprocess_cycles)
        self.sort_cycles = float(sort_cycles)
        self.stream = stream
        self.pre = pre
        self.wall_ms = dict(wall_ms or {})
        self._image = None
        self._alpha = None

    def _blend(self):
        if self._image is None:
            config = self.draw.config
            self._image, self._alpha = self.stream.blend_image(
                early_term=config.enable_het,
                threshold=config.termination_alpha)

    @property
    def image(self):
        self._blend()
        return self._image

    @property
    def alpha(self):
        self._blend()
        return self._alpha

    @property
    def total_cycles(self):
        return self.preprocess_cycles + self.sort_cycles + self.draw.cycles

    def breakdown_ms(self):
        """Figure 5 style breakdown: preprocess / sort / rasterize in ms."""
        scale = 1e3 / self.draw.config.frequency_hz()
        return {
            "preprocess": self.preprocess_cycles * scale,
            "sort": self.sort_cycles * scale,
            "rasterize": self.draw.cycles * scale,
        }

    def total_ms(self):
        return self.total_cycles / self.draw.config.frequency_hz() * 1e3

    def fps(self):
        total = self.total_ms()
        return 1000.0 / total if total > 0 else float("inf")


class HardwareRenderer:
    """End-to-end hardware (OpenGL-path) renderer.

    Preprocessing shares the per-Gaussian kernel cost with the CUDA path
    but pays *no duplication* — the graphics hardware handles tiling — and
    the sort covers only the visible Gaussians once (Section III-A).

    Parameters
    ----------
    config:
        Pipeline configuration (pick a variant via
        :func:`variant_config`); defaults to the HET+QM VR-Pipe.
    kernel_model:
        Calibrated preprocessing/sort kernel costs (shared with
        :class:`~repro.swrender.renderer.CudaRenderer` for a fair
        comparison).
    engine:
        Flush engine of the pipeline model: ``"batched"`` (default, the
        flush-plan engine) or ``"scalar"`` (the retained per-flush path);
        both are cycle- and stat-exact against each other.
    ir:
        Digestion mode (see :mod:`repro.render.frameir`): ``"auto"``
        (default) digests streams off their FrameIR when they carry one,
        ``"frameir"`` requires it, ``"legacy"`` keeps the sort-based
        oracle path.  All modes are bit-identical.
    coherence:
        Cross-frame digestion reuse for *standalone* renderer loops (see
        :mod:`repro.render.coherence`): ``"auto"``/``"incremental"``
        attach a private :class:`~repro.render.coherence.FrameCoherence`
        carrier that serves repeated frames from digested state (bit-
        identical by construction).  The default ``None`` — like
        ``"off"`` — keeps the renderer stateless across frames; sessions
        manage their own carrier and take precedence on streams they
        already classified.
    """

    def __init__(self, config=None, kernel_model=None, engine="batched",
                 ir=None, coherence=None):
        self.config = config if config is not None else variant_config("het+qm")
        if not isinstance(self.config, GPUConfig):
            raise TypeError("config must be a GPUConfig")
        if engine not in GraphicsPipeline.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from "
                f"{GraphicsPipeline.ENGINES}")
        self.kernel_model = kernel_model or SWKernelModel()
        self.engine = engine
        # Validate explicit knob values but keep ``None`` unresolved: the
        # ``$REPRO_IR`` process default must stay best-effort (resolved at
        # digestion time), not harden into a by-name requirement here.
        self.ir = resolve_ir(ir) if ir is not None else None
        self.coherence = (resolve_coherence(coherence)
                          if coherence is not None else None)
        self._carrier = (FrameCoherence(self.coherence)
                         if self.coherence in ("auto", "incremental")
                         else None)

    def render(self, cloud, camera, crop_cache=None):
        """Render a cloud; returns an :class:`HWRenderResult`.

        ``crop_cache`` optionally carries a warm CROP cache across frames
        (see :meth:`~repro.hwmodel.pipeline.GraphicsPipeline.draw`); the
        termination stencil is still cleared per draw, as in hardware.
        """
        if not isinstance(cloud, GaussianCloud):
            raise TypeError(
                f"cloud must be a GaussianCloud, got {type(cloud).__name__}")
        if not isinstance(camera, Camera):
            raise TypeError(
                f"camera must be a Camera, got {type(camera).__name__}")
        pre = preprocess(cloud, camera)
        stream = rasterize_splats(pre.splats, camera.width, camera.height,
                                  ir=self.ir)
        return self.render_stream(stream, pre, crop_cache=crop_cache)

    def render_stream(self, stream, pre=None, crop_cache=None):
        """Render an existing fragment stream (skips re-rasterisation).

        The colour blend is deferred (see :class:`HWRenderResult`);
        accessing ``result.image`` produces exactly the image the eager
        path built.
        """
        model = self.kernel_model
        n_gaussians = (pre.n_input if pre is not None
                       else stream.prim_colors.shape[0])
        n_visible = stream.prim_colors.shape[0]
        preprocess_cycles = model.preprocess_cycles(n_gaussians, 0)
        sort_cycles = model.sort_cycles(n_visible)
        t0 = time.perf_counter()
        # A coherence carrier that classified this stream just before the
        # render stashes its pre-classification snapshot; prefer it so the
        # classification cost lands in this frame's digest breakdown.
        base_sub = stream.__dict__.pop("_substage_base", None)
        if base_sub is None:
            base_sub = dict(stream.substage_ms)
        if self._carrier is not None and stream.coherence is None:
            # Standalone renderer loop: classify the frame against this
            # renderer's private carrier.  Streams a session already
            # classified arrive with ``stream.coherence`` set and are
            # left alone.
            self._carrier.begin_frame(stream)
        workload = DrawWorkload.from_stream(stream, self.config, ir=self.ir)
        t1 = time.perf_counter()
        draw = GraphicsPipeline(self.config).draw(workload,
                                                  crop_cache=crop_cache,
                                                  engine=self.engine)
        t2 = time.perf_counter()
        wall_ms = {"digest": (t1 - t0) * 1e3, "draw": (t2 - t1) * 1e3}
        # Named digestion substages (pixel-group / arrival-alpha /
        # chunklets / quad-columns), as the *delta* the digest above added
        # to the stream's accumulators — a second render of the same
        # stream (e.g. the session's baseline pass) reports only its own
        # marginal work, not the first pass's.
        for name, ms in stream.substage_ms.items():
            delta = ms - base_sub.get(name, 0.0)
            if delta > 0.0:
                wall_ms[f"digest:{name}"] = delta
        return HWRenderResult(draw, preprocess_cycles,
                              sort_cycles, stream, pre, wall_ms=wall_ms)

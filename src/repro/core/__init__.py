"""VR-Pipe: the paper's contribution as a public API.

* :mod:`repro.core.het` — hardware early termination: the stencil-MSB
  repurposing, the alpha test unit, and the termination test/update units
  (Figure 13), as functionally testable components.
* :mod:`repro.core.quad_merge` — quad merging via warp shuffle and partial
  front-to-back blending (Figures 14/15).
* :mod:`repro.core.vrpipe` — variant configs (Baseline / QM / HET / HET+QM),
  the end-to-end hardware renderer, and the Table III cost accounting.
"""

from repro.core.het import (
    AlphaTestUnit,
    TerminationStencil,
    blend_with_het,
)
from repro.core.quad_merge import (
    merge_quad_pair,
    merge_flush_batch,
)
from repro.core.vrpipe import (
    VARIANTS,
    HardwareRenderer,
    hardware_cost_bytes,
    run_all_variants,
    run_variant,
    speedups_over_baseline,
    variant_config,
)

__all__ = [
    "AlphaTestUnit",
    "TerminationStencil",
    "blend_with_het",
    "merge_quad_pair",
    "merge_flush_batch",
    "VARIANTS",
    "HardwareRenderer",
    "hardware_cost_bytes",
    "run_all_variants",
    "run_variant",
    "speedups_over_baseline",
    "variant_config",
]

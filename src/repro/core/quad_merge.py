"""Quad merging: warp-shuffle partial blending in the fragment shader.

Front-to-back blending is associative (Equation 2):

    f_fb(f_fb(c1, c2), c3) == f_fb(c1, f_fb(c2, c3))

so two quads covering the same pixels, adjacent in blending order, can be
collapsed into one *before* the ROP: the shader threads of the later quad
fetch the earlier quad's premultiplied RGBA via warp shuffle (the QRU placed
the pair in adjacent quad slots) and blend it in front of their own.  The
ROP then blends a single merged quad, halving its workload for that pair —
with a bit-exact final image, unlike approximating schemes such as
quad-fragment merging for MSAA (Section VIII).

This module implements the merge math and the Figure 15 warp execution; the
pipeline model uses its counts, and the tests use its exactness.
"""

from __future__ import annotations

import numpy as np

from repro.hwmodel.prop import MergePlan, plan_merges
from repro.render.blending import front_to_back_blend


def merge_quad_pair(front_rgba, front_coverage, back_rgba, back_coverage):
    """Merge two quads' shaded fragments into one.

    Parameters
    ----------
    front_rgba, back_rgba:
        ``(4, 4)`` premultiplied RGBA per quad lane (lane order is the 2x2
        pixel order); lanes without coverage must be transparent black.
    front_coverage, back_coverage:
        ``(4,)`` boolean coverage per lane.

    Returns ``(merged_rgba, merged_coverage)``.  Uncovered lanes contribute
    identity (transparent black), so the blend is simply ``f_fb`` per lane.
    """
    front_rgba = np.asarray(front_rgba, dtype=np.float64)
    back_rgba = np.asarray(back_rgba, dtype=np.float64)
    if front_rgba.shape != (4, 4) or back_rgba.shape != (4, 4):
        raise ValueError("quad RGBA arrays must have shape (4, 4)")
    front_coverage = np.asarray(front_coverage, dtype=bool)
    back_coverage = np.asarray(back_coverage, dtype=bool)
    merged = front_to_back_blend(front_rgba, back_rgba)
    merged_cov = front_coverage | back_coverage
    merged[~merged_cov] = 0.0
    return merged, merged_cov


def merge_flush_batch(qpos, rgba, coverage):
    """Apply QRU pairing + shuffle merging to one flush batch.

    Parameters
    ----------
    qpos:
        ``(n,)`` quad positions within the tile (0..63), arrival order.
    rgba:
        ``(n, 4, 4)`` shaded premultiplied RGBA per quad lane.
    coverage:
        ``(n, 4)`` boolean lane coverage.

    Returns
    -------
    ``(out_rgba, out_coverage, plan)`` where the outputs hold merged pairs
    first (front quad's slot) then singles, matching the order the PROP
    forwards quads to the CROP, and ``plan`` is the
    :class:`~repro.hwmodel.prop.MergePlan`.
    """
    qpos = np.asarray(qpos)
    rgba = np.asarray(rgba, dtype=np.float64)
    coverage = np.asarray(coverage, dtype=bool)
    n = qpos.shape[0]
    if rgba.shape != (n, 4, 4) or coverage.shape != (n, 4):
        raise ValueError("rgba must be (n, 4, 4) and coverage (n, 4)")
    plan = plan_merges(qpos)
    merged_rgba = []
    merged_cov = []
    for f, s in zip(plan.first, plan.second):
        m_rgba, m_cov = merge_quad_pair(rgba[f], coverage[f],
                                        rgba[s], coverage[s])
        merged_rgba.append(m_rgba)
        merged_cov.append(m_cov)
    for idx in plan.singles:
        merged_rgba.append(rgba[idx])
        merged_cov.append(coverage[idx])
    if merged_rgba:
        out_rgba = np.stack(merged_rgba)
        out_cov = np.stack(merged_cov)
    else:
        out_rgba = np.empty((0, 4, 4))
        out_cov = np.empty((0, 4), dtype=bool)
    return out_rgba, out_cov, plan


def rop_blend_sequence(quads_rgba, quads_coverage):
    """Blend a sequence of quads into a 2x2 pixel block, ROP-style.

    Used by tests to show that merging does not change the block's final
    colour: blending the merged sequence equals blending the original one.
    Returns ``(4, 4)`` premultiplied RGBA per lane.
    """
    quads_rgba = np.asarray(quads_rgba, dtype=np.float64)
    quads_coverage = np.asarray(quads_coverage, dtype=bool)
    acc = np.zeros((4, 4))
    for rgba, cov in zip(quads_rgba, quads_coverage):
        contribution = np.where(cov[:, None], rgba, 0.0)
        acc = front_to_back_blend(acc, contribution)
    return acc


__all__ = [
    "MergePlan",
    "merge_quad_pair",
    "merge_flush_batch",
    "rop_blend_sequence",
]

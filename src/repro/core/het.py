"""Hardware early termination (HET): the Figure 13 units, functionally.

The paper's insight: early termination and the stencil test share a purpose
(kill fragments that cannot affect the output before shading/blending), and
the stencil buffer has spare bits.  Repurposing the stencil value's MSB as a
per-pixel "terminated" flag lets three small units implement early
termination with negligible hardware:

1. **Alpha test unit** (in the CROP) — after blending, check
   ``new_alpha >= threshold and old_alpha < threshold``; the double-sided
   test fires exactly once per pixel, avoiding redundant update traffic.
2. **Termination update unit** (in the ZROP) — set the MSB via a bitwise OR
   read-modify-write of the stencil byte.
3. **Termination test unit** — when a TC bin flushes, discard fragments
   whose pixel's MSB is set; a quad dies only when all four pixels are
   terminated.

These classes implement the exact bit-level semantics (including
coexistence with a conventional masked stencil test) and a sequential
``blend_with_het`` reference that drives them fragment-by-fragment — the
oracle the pipeline model's mask-based shortcut is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.render.fragstream import DEFAULT_TERMINATION_ALPHA, FragmentStream
from repro.utils.validation import check_in_range, check_positive


class TerminationStencil:
    """A stencil buffer whose MSB doubles as the termination flag.

    The remaining ``stencil_bits - 1`` low bits stay available to the
    conventional stencil test through masking, exactly as the paper
    proposes (e.g. ``glStencilMask(0x01)`` style usage keeps working).
    """

    def __init__(self, width, height, stencil_bits=8):
        self.width = int(check_positive("width", width))
        self.height = int(check_positive("height", height))
        self.stencil_bits = int(check_in_range("stencil_bits", stencil_bits, 2, 8))
        self.values = np.zeros((self.height, self.width), dtype=np.uint8)

    @property
    def termination_bit(self):
        """The MSB: ``1 << (stencil_bits - 1)``."""
        return np.uint8(1 << (self.stencil_bits - 1))

    @property
    def stencil_mask(self):
        """Mask of the bits still usable by the conventional stencil test."""
        return np.uint8(self.termination_bit - 1)

    def is_terminated(self, x, y):
        """Termination flags for pixel coordinates (vectorised)."""
        return (self.values[y, x] & self.termination_bit) != 0

    def mark_terminated(self, x, y):
        """Termination update unit: OR the MSB into the stencil value."""
        self.values[y, x] |= self.termination_bit

    def terminated_count(self):
        return int((self.values & self.termination_bit).astype(bool).sum())

    def stencil_test(self, x, y, reference, mask=None):
        """Conventional masked EQUAL stencil test on the low bits.

        Demonstrates coexistence: the test never observes the MSB because
        ``mask`` is clipped to the low bits.
        """
        mask = self.stencil_mask if mask is None else np.uint8(mask) & self.stencil_mask
        return (self.values[y, x] & mask) == (np.uint8(reference) & mask)

    def write_stencil(self, x, y, value, mask=None):
        """Masked stencil write that cannot clobber the termination flag."""
        mask = self.stencil_mask if mask is None else np.uint8(mask) & self.stencil_mask
        current = self.values[y, x]
        self.values[y, x] = (current & ~mask) | (np.uint8(value) & mask)


class AlphaTestUnit:
    """The CROP-side threshold-crossing detector.

    ``check(old, new)`` is True exactly when this blend crossed the
    threshold — both conditions matter: testing only ``new >= threshold``
    would re-signal on every subsequent blend of a saturated pixel and
    flood the ZROP with redundant updates (Section V-B).
    """

    def __init__(self, threshold=DEFAULT_TERMINATION_ALPHA):
        self.threshold = float(check_in_range("threshold", threshold, 0.0, 1.0,
                                              inclusive=False))
        self.signals_sent = 0

    def check(self, old_alpha, new_alpha):
        old_alpha = np.asarray(old_alpha, dtype=np.float64)
        new_alpha = np.asarray(new_alpha, dtype=np.float64)
        fired = (new_alpha >= self.threshold) & (old_alpha < self.threshold)
        self.signals_sent += int(np.count_nonzero(fired))
        return fired


def termination_test_quads(stencil, qx, qy):
    """Termination test unit: per-quad survival against the stencil MSB.

    ``qx, qy`` are quad coordinates; a quad survives when any of its four
    pixels (clipped to the framebuffer) is unterminated.  Returns the
    boolean survivor mask.
    """
    qx = np.asarray(qx, dtype=np.int64)
    qy = np.asarray(qy, dtype=np.int64)
    survive = np.zeros(qx.shape[0], dtype=bool)
    for dx in (0, 1):
        for dy in (0, 1):
            px = np.minimum(qx * 2 + dx, stencil.width - 1)
            py = np.minimum(qy * 2 + dy, stencil.height - 1)
            survive |= ~stencil.is_terminated(px, py)
    return survive


def blend_with_het(stream, threshold=DEFAULT_TERMINATION_ALPHA):
    """Sequential oracle: blend a stream through the HET units.

    Processes fragments in emission order, maintaining the accumulated
    alpha and the termination stencil exactly as the hardware would for a
    single in-order draw call.  Returns ``(image, alpha_map, stats)`` where
    ``stats`` reports fragments blended/discarded and update signals.

    This is O(fragments) Python — use it on test-sized streams; the
    pipeline model reproduces its counts via vectorised masks.
    """
    if not isinstance(stream, FragmentStream):
        raise TypeError(
            f"stream must be a FragmentStream, got {type(stream).__name__}")
    stencil = TerminationStencil(stream.width, stream.height)
    alpha_unit = AlphaTestUnit(threshold)
    accum = np.zeros((stream.height, stream.width), dtype=np.float64)
    image = np.zeros((stream.height, stream.width, 3), dtype=np.float64)
    blended = 0
    discarded_terminated = 0
    discarded_pruned = 0

    colors = stream.prim_colors[stream.prim_ids]
    unpruned = stream.unpruned
    for i in range(len(stream)):
        x = int(stream.x[i])
        y = int(stream.y[i])
        if stencil.is_terminated(x, y):
            discarded_terminated += 1
            continue
        if not unpruned[i]:
            discarded_pruned += 1
            continue
        alpha = float(stream.alphas[i])
        old = accum[y, x]
        transmittance = 1.0 - old
        image[y, x] += transmittance * alpha * colors[i]
        new = old + transmittance * alpha
        accum[y, x] = new
        blended += 1
        if alpha_unit.check(old, new):
            stencil.mark_terminated(x, y)

    stats = {
        "blended": blended,
        "discarded_terminated": discarded_terminated,
        "discarded_pruned": discarded_pruned,
        "termination_updates": alpha_unit.signals_sent,
        "terminated_pixels": stencil.terminated_count(),
    }
    return image, accum, stats

"""CROP-cache capacity probe (Figure 20a methodology).

The paper draws rectangles at random positions, growing the pixel-colour
working set until the CROP starts fetching from the L2; the largest
no-L2-traffic working set bounds the cache capacity ("the CROP cache has
never held more than 16 KB of data").  We run the identical experiment
against the pipeline model: rectangles are drawn *twice* (the second draw
re-touches every line), and the second draw's misses reveal whether the
working set still fits.
"""

from __future__ import annotations

import numpy as np

from repro.hwmodel.config import GPUConfig
from repro.hwmodel.pipeline import GraphicsPipeline
from repro.micro.workload import rect_stream


def _random_rects(rng, n, rect_w, rect_h, width, height):
    xs = rng.integers(0, max(width - rect_w, 1), size=n)
    ys = rng.integers(0, max(height - rect_h, 1), size=n)
    return [(int(x), int(y), rect_w, rect_h) for x, y in zip(xs, ys)]


def working_set_fits(config, rects, width, height):
    """True when re-drawing ``rects`` causes no further CROP-cache misses.

    Issues two *separate* draw calls sharing a warm CROP cache — drawing
    the duplicates inside one draw would let the TC bins coalesce them
    into a single flush and mask capacity misses.
    """
    from repro.hwmodel.caches import LRUCache

    cache = LRUCache(config.crop_cache_kb * 1024, config.cache_line_bytes)
    pipeline = GraphicsPipeline(config)
    pipeline.draw(rect_stream(rects, width, height), crop_cache=cache)
    second = pipeline.draw(rect_stream(rects, width, height),
                           crop_cache=cache)
    return second.stats.crop_cache_misses == 0


def _distinct_lines(rects, config, width):
    """Colour-buffer lines a rect set touches, at quad granularity.

    ROPs operate on 2x2 quads, so a rectangle's footprint rounds out to
    even pixel boundaries — a rect starting on an odd row drags in the
    quad's other row's cache line too, exactly as the pipeline model (and
    hardware) fetches it.
    """
    bpp = config.bytes_per_pixel
    line_bytes = config.cache_line_bytes
    lines_per_row = max(1, -(-(width * bpp) // line_bytes))
    tags = set()
    for x0, y0, w, h in rects:
        qy0, qy1 = y0 // 2, (y0 + h - 1) // 2
        qx0, qx1 = x0 // 2, (x0 + w - 1) // 2
        for qy in range(qy0, qy1 + 1):
            for qx in range(qx0, qx1 + 1):
                line = (qx * 2 * bpp) // line_bytes
                tags.add((qy * 2) * lines_per_row + line)
                tags.add((qy * 2 + 1) * lines_per_row + line)
    return len(tags)


def probe_crop_cache_capacity(rect_w, rect_h, config=None, width=512,
                              height=512, seed=0, max_rects=128, trials=3):
    """Largest random-placement working set (bytes) with no L2 traffic.

    Mirrors Figure 20(a): for the given rectangle size, add rectangles at
    random positions until re-draws start missing; report the largest data
    size that still fit, worst-case over ``trials`` random layouts (the
    figure's scatter comes from placement-dependent line sharing).
    """
    config = config or GPUConfig()
    if rect_w <= 0 or rect_h <= 0:
        raise ValueError("rectangle dimensions must be positive")
    worst_fit_bytes = None
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        rects = []
        fit_bytes = 0
        for _n in range(1, max_rects + 1):
            rects.extend(_random_rects(rng, 1, rect_w, rect_h, width, height))
            if working_set_fits(config, rects, width, height):
                fit_bytes = (_distinct_lines(rects, config, width)
                             * config.cache_line_bytes)
            else:
                break
        if worst_fit_bytes is None or fit_bytes < worst_fit_bytes:
            worst_fit_bytes = fit_bytes
    return worst_fit_bytes

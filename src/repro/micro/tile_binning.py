"""Tile-binning probe: counting TC bins via round-robin rectangles (§VII-A).

The paper draws 2x2-pixel rectangles visiting N screen tiles round-robin
and counts launched warps: while N <= 32, quads for the same tile from
different rounds coalesce into shared warps; at N = 33 every insertion
evicts a bin before it can accumulate, so every rectangle launches its own
warp ("drawing 330 rectangles across 33 screen tiles leads to the launch of
330 warps").  The probe reproduces the cliff and thereby measures the bin
count of the modelled TC unit.
"""

from __future__ import annotations

from repro.hwmodel.config import GPUConfig
from repro.hwmodel.pipeline import GraphicsPipeline
from repro.micro.workload import rect_stream


def tile_binning_probe(n_tiles, rounds=10, config=None, tile_px=16,
                       timeout_quads=None):
    """Warps launched when drawing ``n_tiles * rounds`` tiny rectangles.

    Rectangles are 2x2 px at the origin corner of each tile, visiting tiles
    0..n_tiles-1 repeatedly (``rounds`` times), matching the paper's
    experiment layout.  ``timeout_quads`` optionally enables the TC idle-
    flush rule; the resulting timeout flushes are reported separately as
    ``tc_timeouts`` (they are *not* folded into the end-of-draw flushes).
    """
    config = config or GPUConfig()
    if timeout_quads is not None:
        config = config.variant(tc_timeout_quads=timeout_quads)
    if n_tiles <= 0 or rounds <= 0:
        raise ValueError("n_tiles and rounds must be positive")
    # Arrange the target tiles on a wide-enough framebuffer.
    tiles_x = max(8, min(n_tiles, 64))
    tiles_y = -(-n_tiles // tiles_x)
    width = tiles_x * tile_px
    height = tiles_y * tile_px
    rects = []
    for _round in range(rounds):
        for t in range(n_tiles):
            ty, tx = divmod(t, tiles_x)
            rects.append((tx * tile_px, ty * tile_px, 2, 2))
    stream = rect_stream(rects, width, height)
    result = GraphicsPipeline(config).draw(stream)
    return {
        "n_tiles": n_tiles,
        "rects": len(rects),
        "warps": result.stats.warps_launched,
        "tc_evictions": result.stats.tc_flush_evict,
        "tc_timeouts": result.stats.tc_flush_timeout,
    }


def find_bin_cliff(max_tiles=40, rounds=10, config=None):
    """Scan N and report warps(N); the jump localises the bin count."""
    return {n: tile_binning_probe(n, rounds, config)["warps"]
            for n in range(2, max_tiles + 1)}

"""OpenGL-style microbenchmarks run against the hardware model (§VII-A).

The paper probes real Ampere GPUs with carefully constructed draw calls to
size the fixed-function units it must model (CROP cache capacity, ROP
format throughput, quad granularity, TC bin count).  These modules run the
same probing methodology against :mod:`repro.hwmodel` and confirm the model
exhibits the measured behaviours — the reproduction's analogue of the
authors validating Emerald against silicon.
"""

from repro.micro.workload import rect_stream, checkerboard_stream
from repro.micro.crop_cache import probe_crop_cache_capacity
from repro.micro.rop_throughput import (
    pixels_per_cycle_by_format,
    time_vs_quads_per_pixel,
)
from repro.micro.tile_binning import tile_binning_probe

__all__ = [
    "rect_stream",
    "checkerboard_stream",
    "probe_crop_cache_capacity",
    "pixels_per_cycle_by_format",
    "time_vs_quads_per_pixel",
    "tile_binning_probe",
]

"""ROP throughput probes: Figures 20(b) and 20(c).

* ``pixels_per_cycle_by_format`` — draw the same pixel count in RGBA8 and
  RGBA16F and measure CROP pixels/cycle: RGBA8 should double RGBA16F
  because the CROP cache read bandwidth, not the ROP count, limits blending.
* ``time_vs_quads_per_pixel`` — keep the blended *pixel* count constant but
  split it across ever more partially-covered quads: because four ROP units
  cooperate on one 2x2 quad, time should scale with quads, demonstrating
  quad-granular operation.
"""

from __future__ import annotations

from repro.hwmodel.config import GPUConfig
from repro.hwmodel.pipeline import GraphicsPipeline
from repro.micro.workload import checkerboard_stream, rect_stream


def pixels_per_cycle_by_format(config=None, width=256, height=256, layers=8):
    """CROP pixels/cycle for RGBA16F vs RGBA8 (Figure 20b).

    Draws ``layers`` full-screen rectangles (each pixel blended ``layers``
    times) and divides blended pixels by CROP busy cycles.
    """
    config = config or GPUConfig()
    rects = [(0, 0, width, height)] * layers
    out = {}
    for fmt in ("rgba16f", "rgba8"):
        cfg = config.variant(color_format=fmt)
        stream = rect_stream(rects, width, height)
        result = GraphicsPipeline(cfg).draw(stream)
        crop = result.stats.units["crop"]
        if crop.busy_cycles <= 0:
            raise RuntimeError("CROP recorded no busy cycles")
        out[fmt] = result.stats.fragments_blended / crop.busy_cycles
    return out


def time_vs_quads_per_pixel(config=None, width=128, height=128,
                            quad_layers=(4, 8, 16), total_pixel_layers=4):
    """Normalised render time vs quads per blended pixel (Figure 20c).

    Every configuration blends the same number of *pixels*
    (``total_pixel_layers`` full-screen layers' worth), but spreads them
    over ``q`` quad layers with ``4 * total_pixel_layers / q`` live
    fragments per quad — the paper's x-axis "quads per pixel" is
    ``q / (4 * total_pixel_layers)`` (0.25 = fully covered quads, 1.0 = one
    live fragment per quad).  Because ROPs work at quad granularity, time
    should track quads, not pixels: the defaults yield 1x, 2x, 4x.

    ``q`` must satisfy ``q >= total_pixel_layers`` and divide
    ``4 * total_pixel_layers`` evenly; infeasible entries are skipped.
    """
    config = config or GPUConfig()
    times = {}
    for q in quad_layers:
        total_frag_slots = 4 * total_pixel_layers
        if q < total_pixel_layers or total_frag_slots % q:
            continue
        live = total_frag_slots // q
        stream = checkerboard_stream(width, height, quads_per_pixel=q,
                                     live_per_quad=live)
        result = GraphicsPipeline(config).draw(stream)
        quads_per_pixel = q / total_frag_slots
        times[quads_per_pixel] = result.stats.units["crop"].busy_cycles
    if not times:
        raise ValueError("no feasible quad_layers configuration")
    densest = times[min(times)]
    return {qpp: t / densest for qpp, t in sorted(times.items())}

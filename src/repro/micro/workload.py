"""Synthetic rectangle workloads for microbenchmarking the pipeline model.

The paper's microbenchmarks "render rectangles or triangles by adjusting
various parameters, including positions, color formats, the number of
involved screen tiles and rectangle overlaps" (§VII-A).  These builders
construct the equivalent :class:`FragmentStream` directly — every pixel of
each rectangle becomes one opaque-ish fragment — so the pipeline model can
be probed without involving Gaussians at all.
"""

from __future__ import annotations

import numpy as np

from repro.render.fragstream import FragmentStream

#: Alpha assigned to microbenchmark fragments: opaque enough to always
#: survive pruning, below the 0.99 cap.
RECT_ALPHA = 0.95


def rect_stream(rects, width, height, alpha=RECT_ALPHA, colors=None):
    """Build a fragment stream from axis-aligned rectangles.

    Parameters
    ----------
    rects:
        Sequence of ``(x0, y0, w, h)`` in pixels; each rectangle is one
        primitive, emitted in order.
    width, height:
        Framebuffer size.
    alpha:
        Per-fragment alpha (scalar or one per rectangle).
    colors:
        Optional ``(n, 3)`` per-rectangle colours; defaults to distinct
        hashed colours, mirroring the paper's trick of hashing colours to
        defeat colour compression.
    """
    rects = list(rects)
    n = len(rects)
    alphas_in = np.broadcast_to(np.asarray(alpha, dtype=np.float64), (n,))
    if colors is None:
        idx = np.arange(n)
        colors = np.stack([(idx * 37 % 251) / 251.0,
                           (idx * 101 % 251) / 251.0,
                           (idx * 193 % 251) / 251.0], axis=1)
    prim_chunks, x_chunks, y_chunks, a_chunks = [], [], [], []
    for i, (x0, y0, w, h) in enumerate(rects):
        if w <= 0 or h <= 0:
            raise ValueError(f"rectangle {i} has non-positive size ({w}x{h})")
        x1 = min(int(x0) + int(w), width)
        y1 = min(int(y0) + int(h), height)
        x0 = max(int(x0), 0)
        y0 = max(int(y0), 0)
        if x1 <= x0 or y1 <= y0:
            continue
        gx, gy = np.meshgrid(np.arange(x0, x1, dtype=np.int32),
                             np.arange(y0, y1, dtype=np.int32))
        count = gx.size
        prim_chunks.append(np.full(count, i, dtype=np.int32))
        x_chunks.append(gx.ravel())
        y_chunks.append(gy.ravel())
        a_chunks.append(np.full(count, alphas_in[i], dtype=np.float32))
    if not prim_chunks:
        return FragmentStream(
            np.empty(0, np.int32), np.empty(0, np.int32),
            np.empty(0, np.int32), np.empty(0, np.float32),
            np.asarray(colors, dtype=np.float64).reshape(n, 3),
            width, height)
    return FragmentStream(
        prim_ids=np.concatenate(prim_chunks),
        x=np.concatenate(x_chunks),
        y=np.concatenate(y_chunks),
        alphas=np.concatenate(a_chunks),
        prim_colors=np.asarray(colors, dtype=np.float64).reshape(n, 3),
        width=width,
        height=height,
    )


def checkerboard_stream(width, height, quads_per_pixel, live_per_quad=4,
                        alpha=RECT_ALPHA):
    """Layers of full-screen coverage with partially-discarded quads.

    Used by the Figure 20(c) probe: every 2x2 quad keeps ``live_per_quad``
    of its four fragments (the paper controls this with a stencil test and
    primitive shapes); ``quads_per_pixel`` layers are drawn.  Because ROPs
    operate at quad granularity, rendering time should track the quad count
    rather than the live-fragment count.
    """
    if not 1 <= live_per_quad <= 4:
        raise ValueError("live_per_quad must be in 1..4")
    if quads_per_pixel < 1:
        raise ValueError("quads_per_pixel must be >= 1")
    keep_offsets = [(0, 0), (1, 1), (1, 0), (0, 1)][:live_per_quad]
    prim_chunks, x_chunks, y_chunks = [], [], []
    qx, qy = np.meshgrid(np.arange(width // 2), np.arange(height // 2))
    for layer in range(quads_per_pixel):
        xs, ys = [], []
        for dx, dy in keep_offsets:
            xs.append((qx * 2 + dx).ravel())
            ys.append((qy * 2 + dy).ravel())
        x = np.concatenate(xs).astype(np.int32)
        y = np.concatenate(ys).astype(np.int32)
        prim_chunks.append(np.full(x.size, layer, dtype=np.int32))
        x_chunks.append(x)
        y_chunks.append(y)
    n = quads_per_pixel
    colors = np.stack([np.linspace(0.1, 0.9, n)] * 3, axis=1)
    x = np.concatenate(x_chunks)
    return FragmentStream(
        prim_ids=np.concatenate(prim_chunks),
        x=x,
        y=np.concatenate(y_chunks),
        alphas=np.full(x.size, alpha, dtype=np.float32),
        prim_colors=colors,
        width=width,
        height=height,
    )

"""Command-line interface: render scenes, simulate variants, run experiments.

Usage::

    python -m repro render  --scene train --out train.ppm
    python -m repro simulate --scene truck [--variant het+qm] [--all]
    python -m repro trajectory --scene train --backend hw:het+qm --views 24
    python -m repro bench [--suite rasterize] [--quick] [--baseline BENCH_prev.json]
    python -m repro experiment fig16
    python -m repro list-scenes
    python -m repro lint [--format json] [--rules R1,R4]

The CLI wraps the library's main entry points so the reproduction can be
driven without writing Python.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import sys

from repro import faults
from repro.core.vrpipe import VARIANTS, run_all_variants, run_variant
from repro.engine.backends import available_backends
from repro.engine.cache import ResultCache
from repro.engine.session import RenderSession
from repro.experiments.runner import format_table
from repro.gaussians.preprocess import preprocess
from repro.hwmodel.report import compare_variants, draw_report
from repro.knobs import COHERENCE_MODES, IR_MODES
from repro.perf.report import (
    check_report,
    load_report,
    suite_report,
    write_report,
)
from repro.perf.suite import SUITES, run_suite
from repro.render.image_io import write_ppm
from repro.render.splat_raster import rasterize_splats
from repro.workloads.catalog import (
    BENCH_SCENES,
    LARGE_SCALE_SCENES,
    SCENARIO_SCENES,
    SCENES,
    build_scene,
    get_profile,
)

_ALL_SCENES = {**SCENES, **LARGE_SCALE_SCENES, **BENCH_SCENES,
               **SCENARIO_SCENES}

_EXPERIMENTS = (
    "fig01", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
    "tables", "ablations", "all",
)

_EXPERIMENT_MODULES = {
    "fig01": "fig01_unit_counts", "fig05": "fig05_sw_vs_hw",
    "fig06": "fig06_utilization", "fig07": "fig07_frags_per_pixel",
    "fig08": "fig08_cuda_early_term", "fig09": "fig09_warp_occupancy",
    "fig10": "fig10_inshader", "fig11": "fig11_multipass",
    "fig16": "fig16_speedup", "fig17": "fig17_end_to_end",
    "fig18": "fig18_reduction", "fig19": "fig19_energy",
    "fig20": "fig20_microbench", "fig21": "fig21_et_ratio",
    "fig22": "fig22_gscore", "fig23": "fig23_large_scale",
    "tables": "tables", "ablations": "ablations", "all": "run_all",
}


def _build_stream(scene_name, seed, ir=None):
    profile = get_profile(scene_name)
    cloud = build_scene(profile, seed=seed)
    camera = profile.camera()
    pre = preprocess(cloud, camera)
    stream = rasterize_splats(pre.splats, camera.width, camera.height, ir=ir)
    return profile, stream


def cmd_list_scenes(_args):
    print(f"{'scene':>9} {'type':>10} {'dataset':>15} {'repro size':>12} "
          f"{'#gaussians':>11}")
    for name, p in _ALL_SCENES.items():
        print(f"{name:>9} {p.scene_type:>10} {p.dataset:>15} "
              f"{p.width}x{p.height:<7} {p.n_gaussians:>11,}")
    return 0


def cmd_render(args):
    profile, stream = _build_stream(args.scene, args.seed)
    image, alpha = stream.blend_image(early_term=args.early_term)
    out = args.out or f"{profile.name}.ppm"
    write_ppm(out, image)
    print(f"rendered {profile.name} ({profile.width}x{profile.height}, "
          f"{len(stream):,} fragments) -> {out}")
    print(f"early-termination ratio: {stream.termination_ratio():.2f}")
    return 0


def cmd_simulate(args):
    _profile, stream = _build_stream(args.scene, args.seed, ir=args.ir)
    if args.all:
        results = run_all_variants(stream)
        print(compare_variants(results))
        return 0
    result = run_variant(stream, args.variant)
    print(draw_report(result, title=f"{args.scene} / {args.variant}"))
    return 0


def cmd_trajectory(args):
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    baseline = None if args.baseline == "none" else args.baseline
    session = RenderSession(
        args.scene, backend=args.backend, baseline=baseline,
        device=args.device, seed=args.seed,
        warm_crop_cache=args.warm_crop_cache, result_cache=cache,
        ir=args.ir, coherence=args.coherence, strict=args.strict,
        watchdog_ms=args.watchdog_ms)
    # --faults overrides any $REPRO_FAULTS plan for this run; without it
    # the environment plan (if any) stays in effect.
    plan = faults.FaultPlan.parse(args.faults) if args.faults else None
    context = (faults.active(plan) if plan is not None
               else contextlib.nullcontext())
    with context:
        trajectory = session.run(n_views=args.views, jobs=args.jobs,
                                 raster_jobs=args.raster_jobs)

    rows = []
    for rec in trajectory.records:
        rows.append([
            rec.index,
            rec.ms if rec.ms is not None else "-",
            rec.fps if rec.fps is not None else "-",
            rec.et_ratio if rec.et_ratio is not None else "-",
            rec.speedup if rec.speedup is not None else "-",
        ])
    source = " (from disk cache)" if trajectory.from_cache else ""
    print(format_table(
        ["Frame", "ms", "FPS", "ET ratio", "Speedup"], rows,
        title=(f"Trajectory: {trajectory.scene} / {trajectory.backend} "
               f"on {trajectory.device}, {trajectory.n_frames} views"
               f"{source}")))
    print()
    agg = trajectory.aggregates()
    print(format_table(
        ["Aggregate", "Value"],
        [[key, agg[key]] for key in sorted(agg)],
        title="Aggregates"))
    incidents = trajectory.incidents()
    if incidents:
        print()
        rows = [[inc["frame"], inc["rung"], inc.get("point") or "-",
                 inc.get("recovered_by") or "-",
                 f"{inc.get('wall_ms', 0.0):.1f}",
                 inc["error"]]
                for inc in incidents]
        summary = trajectory.incident_summary()
        print(format_table(
            ["Frame", "Failed rung", "Point", "Recovered by", "Lost ms",
             "Error"], rows,
            title=(f"Incidents: {summary['count']} on "
                   f"{summary.get('frames_affected', 0)} frame(s) — all "
                   "frames bit-identical to the fault-free run")))
    return 0


def cmd_bench(args):
    suites = sorted(SUITES) if args.suite == "all" else [args.suite]
    if args.out and len(suites) > 1:
        raise SystemExit(
            "--out names a single report file; with --suite all each suite "
            "writes its own BENCH_<suite>.json, so drop --out or pick one "
            "suite")
    baseline = load_report(args.baseline) if args.baseline else None
    failures = 0
    for name in suites:
        run = run_suite(name, quick=args.quick, scene=args.scene,
                        repeat=args.repeat, ir=args.ir,
                        coherence=args.coherence)
        report = suite_report(run, baseline=baseline)
        rows = []
        for row in report["benchmarks"]:
            mfrag = row.get("fragments_per_sec")
            speedup = row.get("speedup_vs_scalar")
            rows.append([
                row["name"], row["scene"], f"{row['median_ms']:.2f}",
                f"{mfrag / 1e6:.2f}" if mfrag else "-",
                f"{speedup:.2f}x" if speedup else "-",
            ])
        mode = " (quick)" if args.quick else ""
        print(format_table(
            ["Benchmark", "Scene", "Median ms", "Mfrag/s", "Speedup"],
            rows, title=f"Suite: {name}{mode}"))
        comparison = report.get("speedup_vs_baseline") or {}
        noise = report.get("noise_vs_baseline") or {}
        for bench, speedup in sorted(comparison.items()):
            verdict = noise.get(bench)
            # A delta below the combined repeat spread of the two runs is
            # scheduling jitter, not a real change — say so inline so a
            # 0.95x row doesn't read as a regression.
            tag = ""
            if verdict is not None and verdict["within_noise"]:
                tag = (f"  (within noise: ±{verdict['noise_floor']:.1%} "
                       "repeat spread)")
            print(f"  vs baseline {bench}: {speedup:.2f}x{tag}")
        out = args.out or f"BENCH_{name}.json"
        if args.check:
            # Advisory regression tripwire: compare against the checked-in
            # report instead of overwriting it.
            try:
                reference = load_report(out)
            except OSError as exc:
                raise SystemExit(
                    f"--check needs an existing reference report: {exc}")
            if bool(reference.get("quick")) != args.quick:
                raise SystemExit(
                    f"{out} was recorded with quick={reference.get('quick')}"
                    f"; rerun --check with matching sizing (quick medians "
                    "and full medians are different workloads)")
            regressions = check_report(report, reference,
                                       tolerance=args.check_tolerance)
            if regressions:
                failures += len(regressions)
                for bench, ratio in regressions:
                    print(f"  REGRESSION {bench}: {ratio:.2f}x slower than "
                          f"{out}")
            else:
                print(f"  within {args.check_tolerance:.0%} of {out}")
        else:
            write_report(report, out)
            print(f"wrote {out}")
        print()
    return 1 if failures else 0


def cmd_experiment(args):
    module_name = _EXPERIMENT_MODULES[args.name]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    module.main()
    return 0


def cmd_lint(args):
    # Deferred import: the analysis engine is only needed by this
    # subcommand and pulls in the whole-tree scanner.
    from repro.analysis import (
        BASELINE_NAME,
        counts,
        format_json,
        format_text,
        repo_root,
        run_lint,
        write_baseline,
    )

    rules = ([rule.strip() for rule in args.rules.split(",")
              if rule.strip()] if args.rules else None)
    findings = run_lint(paths=args.paths or None, rules=rules,
                        baseline=args.baseline)
    if args.write_baseline:
        target = args.baseline or str(repo_root() / BASELINE_NAME)
        written = write_baseline(target, findings)
        print(f"wrote {written} baseline entries to {target}")
        return 0
    if args.fmt == "json":
        sys.stdout.write(format_json(findings))
    else:
        print(format_text(findings, show_all=args.show_all))
    return 1 if counts(findings)["active"] else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VR-Pipe reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-scenes", help="list evaluation workloads")

    render = sub.add_parser("render", help="render a scene to a PPM image")
    render.add_argument("--scene", required=True,
                        choices=sorted(_ALL_SCENES))
    render.add_argument("--out", default=None, help="output .ppm path")
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--early-term", action="store_true",
                        help="apply early termination while blending")

    simulate = sub.add_parser(
        "simulate", help="simulate a draw call on the hardware model")
    simulate.add_argument("--scene", required=True,
                          choices=sorted(_ALL_SCENES))
    simulate.add_argument("--variant", default="het+qm",
                          choices=sorted(VARIANTS))
    simulate.add_argument("--all", action="store_true",
                          help="run and compare all four variants")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--ir", default=None,
                          choices=IR_MODES,
                          help="digestion engine: FrameIR-backed (auto/"
                               "frameir) or the legacy sort-based oracle "
                               "(bit-identical; default $REPRO_IR or auto)")

    trajectory = sub.add_parser(
        "trajectory",
        help="simulate a multi-frame orbit trajectory through one backend")
    trajectory.add_argument("--scene", required=True,
                            choices=sorted(_ALL_SCENES))
    trajectory.add_argument("--backend", default="hw:het+qm",
                            choices=available_backends())
    trajectory.add_argument("--views", type=int, default=8,
                            help="number of orbit viewpoints (default 8)")
    trajectory.add_argument("--jobs", type=int, default=1,
                            help="parallel frame workers (default serial)")
    trajectory.add_argument("--raster-jobs", type=int, default=None,
                            help="threads for the rasteriser's fragment "
                                 "blocks inside each frame (bit-identical "
                                 "streams; orthogonal to --jobs)")
    trajectory.add_argument("--seed", type=int, default=0)
    trajectory.add_argument("--device", default="orin",
                            choices=("orin", "rtx3090"))
    trajectory.add_argument(
        "--baseline", default="auto",
        choices=("auto", "none") + tuple(available_backends()),
        help="backend compared against for per-frame speedups")
    trajectory.add_argument("--warm-crop-cache", action="store_true",
                            help="persist the CROP cache across frames "
                                 "(serial only)")
    trajectory.add_argument("--cache-dir", default=None,
                            help="on-disk trajectory result cache directory")
    trajectory.add_argument("--ir", default=None,
                            choices=IR_MODES,
                            help="digestion engine (bit-identical; default "
                                 "$REPRO_IR or auto)")
    trajectory.add_argument("--coherence", default=None,
                            choices=COHERENCE_MODES,
                            help="cross-frame digestion reuse: incremental "
                                 "updates against the previous frames' "
                                 "digested state (bit-identical; serial "
                                 "only for 'incremental'; default "
                                 "$REPRO_COHERENCE or auto)")
    trajectory.add_argument("--faults", default=None,
                            help="seeded fault-injection plan, e.g. "
                                 "'seed=7; digest:raise,times=1; "
                                 "lru.replay:corrupt,p=0.5' (overrides "
                                 "$REPRO_FAULTS; see repro.faults)")
    trajectory.add_argument("--strict", action="store_true",
                            help="raise frame failures through instead of "
                                 "healing them via the degradation ladder")
    trajectory.add_argument("--watchdog-ms", type=float, default=None,
                            help="per-frame-attempt wall-clock budget; "
                                 "overruns fail the attempt and enter the "
                                 "degradation ladder")

    bench = sub.add_parser(
        "bench", help="run a performance suite and write BENCH_<suite>.json")
    bench.add_argument("--suite", default="rasterize",
                       choices=sorted(SUITES) + ["all"],
                       help="benchmark suite to run (default rasterize)")
    bench.add_argument("--quick", action="store_true",
                       help="CI-sized run: small scene, minimal repeats")
    bench.add_argument("--scene", default=None, choices=sorted(_ALL_SCENES),
                       help="override the suite's default scene")
    bench.add_argument("--repeat", type=int, default=None,
                       help="override the suite's repeat count")
    bench.add_argument("--baseline", default=None,
                       help="earlier BENCH_*.json to compute speedups against")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default BENCH_<suite>.json)")
    bench.add_argument("--check", action="store_true",
                       help="compare fresh medians against the checked-in "
                            "BENCH_<suite>.json instead of overwriting it; "
                            "exit non-zero on large regressions (advisory "
                            "tripwire, not a hard gate)")
    bench.add_argument("--check-tolerance", type=float, default=0.5,
                       help="allowed slowdown before --check fails "
                            "(default 0.5 = 50%%)")
    bench.add_argument("--ir", default=None,
                       choices=IR_MODES,
                       help="digestion engine the timed paths run under "
                            "(bit-identical; default $REPRO_IR or auto)")
    bench.add_argument("--coherence", default=None,
                       choices=COHERENCE_MODES,
                       help="cross-frame digestion reuse mode for session "
                            "suites (bit-identical; default "
                            "$REPRO_COHERENCE or auto)")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=_EXPERIMENTS)

    lint = sub.add_parser(
        "lint", help="run the repo's static invariant checker (rules "
                     "R1-R6; see README 'Static analysis')")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to scan, repo-relative "
                           "(default: src)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file of grandfathered findings "
                           "(default: .repro-lint-baseline.json at the "
                           "repo root when present)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record current active findings into the "
                           "baseline file and exit 0")
    lint.add_argument("--format", dest="fmt", default="text",
                      choices=("text", "json"),
                      help="report format; json is sorted and "
                           "timestamp-free, stable to diff across PRs")
    lint.add_argument("--show-all", action="store_true",
                      help="also list suppressed and baselined findings "
                           "in text output")
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list-scenes": cmd_list_scenes,
        "render": cmd_render,
        "simulate": cmd_simulate,
        "trajectory": cmd_trajectory,
        "bench": cmd_bench,
        "experiment": cmd_experiment,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

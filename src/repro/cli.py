"""Command-line interface: render scenes, simulate variants, run experiments.

Usage::

    python -m repro render  --scene train --out train.ppm
    python -m repro simulate --scene truck [--variant het+qm] [--all]
    python -m repro trajectory --scene train --backend hw:het+qm --views 24
    python -m repro serve --clients 8 --requests 3 [--faults PLAN] [--json]
    python -m repro bench [--suite rasterize] [--quick] [--baseline BENCH_prev.json]
    python -m repro experiment fig16
    python -m repro list-scenes
    python -m repro lint [--format json] [--rules R1,R4]

The CLI wraps the library's main entry points so the reproduction can be
driven without writing Python.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import json
import sys

from repro import faults
from repro.core.vrpipe import VARIANTS, run_all_variants, run_variant
from repro.engine.backends import available_backends
from repro.engine.cache import ResultCache
from repro.engine.session import RenderSession
from repro.experiments.runner import format_table
from repro.gaussians.preprocess import preprocess
from repro.hwmodel.report import compare_variants, draw_report
from repro.knobs import COHERENCE_MODES, IR_MODES, SWMODEL_MODES
from repro.perf.report import (
    check_report,
    load_report,
    suite_report,
    write_report,
)
from repro.perf.suite import SUITES, run_suite
from repro.render.image_io import write_ppm
from repro.render.splat_raster import rasterize_splats
from repro.workloads.catalog import (
    BENCH_SCENES,
    LARGE_SCALE_SCENES,
    SCENARIO_SCENES,
    SCENES,
    build_scene,
    get_profile,
)

_ALL_SCENES = {**SCENES, **LARGE_SCALE_SCENES, **BENCH_SCENES,
               **SCENARIO_SCENES}

_EXPERIMENTS = (
    "fig01", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
    "tables", "ablations", "all",
)

_EXPERIMENT_MODULES = {
    "fig01": "fig01_unit_counts", "fig05": "fig05_sw_vs_hw",
    "fig06": "fig06_utilization", "fig07": "fig07_frags_per_pixel",
    "fig08": "fig08_cuda_early_term", "fig09": "fig09_warp_occupancy",
    "fig10": "fig10_inshader", "fig11": "fig11_multipass",
    "fig16": "fig16_speedup", "fig17": "fig17_end_to_end",
    "fig18": "fig18_reduction", "fig19": "fig19_energy",
    "fig20": "fig20_microbench", "fig21": "fig21_et_ratio",
    "fig22": "fig22_gscore", "fig23": "fig23_large_scale",
    "tables": "tables", "ablations": "ablations", "all": "run_all",
}


def _build_stream(scene_name, seed, ir=None):
    profile = get_profile(scene_name)
    cloud = build_scene(profile, seed=seed)
    camera = profile.camera()
    pre = preprocess(cloud, camera)
    stream = rasterize_splats(pre.splats, camera.width, camera.height, ir=ir)
    return profile, stream


def cmd_list_scenes(_args):
    print(f"{'scene':>9} {'type':>10} {'dataset':>15} {'repro size':>12} "
          f"{'#gaussians':>11}")
    for name, p in _ALL_SCENES.items():
        print(f"{name:>9} {p.scene_type:>10} {p.dataset:>15} "
              f"{p.width}x{p.height:<7} {p.n_gaussians:>11,}")
    return 0


def cmd_render(args):
    profile, stream = _build_stream(args.scene, args.seed)
    image, alpha = stream.blend_image(early_term=args.early_term)
    out = args.out or f"{profile.name}.ppm"
    write_ppm(out, image)
    print(f"rendered {profile.name} ({profile.width}x{profile.height}, "
          f"{len(stream):,} fragments) -> {out}")
    print(f"early-termination ratio: {stream.termination_ratio():.2f}")
    return 0


def cmd_simulate(args):
    _profile, stream = _build_stream(args.scene, args.seed, ir=args.ir)
    if args.all:
        results = run_all_variants(stream)
        print(compare_variants(results))
        return 0
    result = run_variant(stream, args.variant)
    print(draw_report(result, title=f"{args.scene} / {args.variant}"))
    return 0


def cmd_trajectory(args):
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    baseline = None if args.baseline == "none" else args.baseline
    session = RenderSession(
        args.scene, backend=args.backend, baseline=baseline,
        device=args.device, seed=args.seed,
        warm_crop_cache=args.warm_crop_cache, result_cache=cache,
        ir=args.ir, coherence=args.coherence, swmodel=args.swmodel,
        strict=args.strict, watchdog_ms=args.watchdog_ms)
    # --faults overrides any $REPRO_FAULTS plan for this run; without it
    # the environment plan (if any) stays in effect.
    plan = faults.FaultPlan.parse(args.faults) if args.faults else None
    context = (faults.active(plan) if plan is not None
               else contextlib.nullcontext())
    with context:
        trajectory = session.run(n_views=args.views, jobs=args.jobs,
                                 raster_jobs=args.raster_jobs)

    if args.json:
        payload = {
            "scene": trajectory.scene,
            "backend": trajectory.backend,
            "baseline": trajectory.baseline,
            "device": trajectory.device,
            "views": trajectory.n_frames,
            "from_cache": trajectory.from_cache,
            "aggregates": trajectory.aggregates(),
            "incident_summary": trajectory.incident_summary(),
            "incidents": trajectory.incidents(),
        }
        if cache is not None:
            payload["cache"] = cache.stats()
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0

    rows = []
    for rec in trajectory.records:
        rows.append([
            rec.index,
            rec.ms if rec.ms is not None else "-",
            rec.fps if rec.fps is not None else "-",
            rec.et_ratio if rec.et_ratio is not None else "-",
            rec.speedup if rec.speedup is not None else "-",
        ])
    source = " (from disk cache)" if trajectory.from_cache else ""
    print(format_table(
        ["Frame", "ms", "FPS", "ET ratio", "Speedup"], rows,
        title=(f"Trajectory: {trajectory.scene} / {trajectory.backend} "
               f"on {trajectory.device}, {trajectory.n_frames} views"
               f"{source}")))
    print()
    agg = trajectory.aggregates()
    print(format_table(
        ["Aggregate", "Value"],
        [[key, agg[key]] for key in sorted(agg)],
        title="Aggregates"))
    incidents = trajectory.incidents()
    if incidents:
        print()
        rows = [[inc["frame"], inc["rung"], inc.get("point") or "-",
                 inc.get("recovered_by") or "-",
                 f"{inc.get('wall_ms', 0.0):.1f}",
                 inc["error"]]
                for inc in incidents]
        summary = trajectory.incident_summary()
        print(format_table(
            ["Frame", "Failed rung", "Point", "Recovered by", "Lost ms",
             "Error"], rows,
            title=(f"Incidents: {summary['count']} on "
                   f"{summary.get('frames_affected', 0)} frame(s) — all "
                   "frames bit-identical to the fault-free run")))
    if cache is not None:
        stats = cache.stats()
        print()
        print(format_table(
            ["Cache", "Value"],
            [[key, stats[key]] for key in sorted(stats)],
            title=f"Result cache: {args.cache_dir}"))
    return 0


def cmd_serve(args):
    # Deferred import: the serving layer pulls in the worker pool and
    # load generator, which only this subcommand needs.
    from repro.serve import LoadSpec, RenderService, run_load

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    plan = faults.FaultPlan.parse(args.faults) if args.faults else None
    context = (faults.active(plan) if plan is not None
               else contextlib.nullcontext())
    spec = LoadSpec(
        clients=args.clients, requests_per_client=args.requests,
        scenes=tuple(args.scenes.split(",")),
        backends=(args.backend,),
        views_choices=tuple(int(v) for v in args.views.split(",")),
        seed=args.seed, deadline_ms=args.deadline_ms,
        warm_fraction=args.warm_fraction,
        high_fraction=args.high_fraction, think_ms=args.think_ms)
    with context:
        with RenderService(workers=args.workers,
                           queue_limit=args.queue_limit,
                           shed_at=args.shed_at, device=args.device,
                           result_cache=cache,
                           max_residents=args.max_residents) as service:
            report = run_load(service, spec)
    kpis = report.kpis()
    if args.json:
        json.dump({"kpis": kpis, "service": report.service_stats},
                  sys.stdout, indent=2, sort_keys=True, default=str)
        sys.stdout.write("\n")
        return 0 if kpis["lost"] == 0 else 1
    plan_note = f" under faults '{args.faults}'" if args.faults else ""
    print(format_table(
        ["KPI", "Value"],
        [[key, kpis[key]] for key in sorted(kpis) if key != "by_reason"],
        title=(f"repro serve: {spec.clients} clients x "
               f"{spec.requests_per_client} requests{plan_note}")))
    if kpis["by_reason"]:
        print()
        print(format_table(
            ["Outcome", "Count"],
            [[key, count]
             for key, count in sorted(kpis["by_reason"].items())],
            title="Rejections / failures by reason"))
    breaker = report.service_stats.get("breaker", {})
    if breaker.get("transitions"):
        print()
        print(format_table(
            ["Seq", "From", "To", "At completion"],
            [[t["seq"], t["from"], t["to"], t["completions"]]
             for t in breaker["transitions"]],
            title="Breaker transitions"))
    if kpis["lost"]:
        print(f"\nERROR: {kpis['lost']} request(s) lost", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args):
    suites = sorted(SUITES) if args.suite == "all" else [args.suite]
    if args.out and len(suites) > 1:
        raise SystemExit(
            "--out names a single report file; with --suite all each suite "
            "writes its own BENCH_<suite>.json, so drop --out or pick one "
            "suite")
    baseline = load_report(args.baseline) if args.baseline else None
    failures = 0
    for name in suites:
        run = run_suite(name, quick=args.quick, scene=args.scene,
                        repeat=args.repeat, ir=args.ir,
                        coherence=args.coherence, swmodel=args.swmodel)
        report = suite_report(run, baseline=baseline)
        rows = []
        for row in report["benchmarks"]:
            mfrag = row.get("fragments_per_sec")
            speedup = row.get("speedup_vs_scalar")
            rows.append([
                row["name"], row["scene"], f"{row['median_ms']:.2f}",
                f"{mfrag / 1e6:.2f}" if mfrag else "-",
                f"{speedup:.2f}x" if speedup else "-",
            ])
        mode = " (quick)" if args.quick else ""
        print(format_table(
            ["Benchmark", "Scene", "Median ms", "Mfrag/s", "Speedup"],
            rows, title=f"Suite: {name}{mode}"))
        comparison = report.get("speedup_vs_baseline") or {}
        noise = report.get("noise_vs_baseline") or {}
        for bench, speedup in sorted(comparison.items()):
            verdict = noise.get(bench)
            # A delta below the combined repeat spread of the two runs is
            # scheduling jitter, not a real change — say so inline so a
            # 0.95x row doesn't read as a regression.
            tag = ""
            if verdict is not None and verdict["within_noise"]:
                tag = (f"  (within noise: ±{verdict['noise_floor']:.1%} "
                       "repeat spread)")
            print(f"  vs baseline {bench}: {speedup:.2f}x{tag}")
        out = args.out or f"BENCH_{name}.json"
        if args.check:
            # Advisory regression tripwire: compare against the checked-in
            # report instead of overwriting it.
            try:
                reference = load_report(out)
            except OSError as exc:
                raise SystemExit(
                    f"--check needs an existing reference report: {exc}")
            if bool(reference.get("quick")) != args.quick:
                raise SystemExit(
                    f"{out} was recorded with quick={reference.get('quick')}"
                    f"; rerun --check with matching sizing (quick medians "
                    "and full medians are different workloads)")
            regressions = check_report(report, reference,
                                       tolerance=args.check_tolerance)
            if regressions:
                failures += len(regressions)
                for bench, ratio in regressions:
                    print(f"  REGRESSION {bench}: {ratio:.2f}x slower than "
                          f"{out}")
            else:
                print(f"  within {args.check_tolerance:.0%} of {out}")
        else:
            write_report(report, out)
            print(f"wrote {out}")
        print()
    return 1 if failures else 0


def cmd_experiment(args):
    module_name = _EXPERIMENT_MODULES[args.name]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    module.main()
    return 0


def cmd_lint(args):
    # Deferred import: the analysis engine is only needed by this
    # subcommand and pulls in the whole-tree scanner.
    from repro.analysis import (
        BASELINE_NAME,
        counts,
        format_json,
        format_text,
        repo_root,
        run_lint,
        write_baseline,
    )

    rules = ([rule.strip() for rule in args.rules.split(",")
              if rule.strip()] if args.rules else None)
    findings = run_lint(paths=args.paths or None, rules=rules,
                        baseline=args.baseline)
    if args.write_baseline:
        target = args.baseline or str(repo_root() / BASELINE_NAME)
        written = write_baseline(target, findings)
        print(f"wrote {written} baseline entries to {target}")
        return 0
    if args.fmt == "json":
        sys.stdout.write(format_json(findings))
    else:
        print(format_text(findings, show_all=args.show_all))
    return 1 if counts(findings)["active"] else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VR-Pipe reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-scenes", help="list evaluation workloads")

    render = sub.add_parser("render", help="render a scene to a PPM image")
    render.add_argument("--scene", required=True,
                        choices=sorted(_ALL_SCENES))
    render.add_argument("--out", default=None, help="output .ppm path")
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--early-term", action="store_true",
                        help="apply early termination while blending")

    simulate = sub.add_parser(
        "simulate", help="simulate a draw call on the hardware model")
    simulate.add_argument("--scene", required=True,
                          choices=sorted(_ALL_SCENES))
    simulate.add_argument("--variant", default="het+qm",
                          choices=sorted(VARIANTS))
    simulate.add_argument("--all", action="store_true",
                          help="run and compare all four variants")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--ir", default=None,
                          choices=IR_MODES,
                          help="digestion engine: FrameIR-backed (auto/"
                               "frameir) or the legacy sort-based oracle "
                               "(bit-identical; default $REPRO_IR or auto)")

    trajectory = sub.add_parser(
        "trajectory",
        help="simulate a multi-frame orbit trajectory through one backend")
    trajectory.add_argument("--scene", required=True,
                            choices=sorted(_ALL_SCENES))
    trajectory.add_argument("--backend", default="hw:het+qm",
                            choices=available_backends())
    trajectory.add_argument("--views", type=int, default=8,
                            help="number of orbit viewpoints (default 8)")
    trajectory.add_argument("--jobs", type=int, default=1,
                            help="parallel frame workers (default serial)")
    trajectory.add_argument("--raster-jobs", type=int, default=None,
                            help="threads for the rasteriser's fragment "
                                 "blocks inside each frame (bit-identical "
                                 "streams; orthogonal to --jobs)")
    trajectory.add_argument("--seed", type=int, default=0)
    trajectory.add_argument("--device", default="orin",
                            choices=("orin", "rtx3090"))
    trajectory.add_argument(
        "--baseline", default="auto",
        choices=("auto", "none") + tuple(available_backends()),
        help="backend compared against for per-frame speedups")
    trajectory.add_argument("--warm-crop-cache", action="store_true",
                            help="persist the CROP cache across frames "
                                 "(serial only)")
    trajectory.add_argument("--cache-dir", default=None,
                            help="on-disk trajectory result cache directory")
    trajectory.add_argument("--ir", default=None,
                            choices=IR_MODES,
                            help="digestion engine (bit-identical; default "
                                 "$REPRO_IR or auto)")
    trajectory.add_argument("--coherence", default=None,
                            choices=COHERENCE_MODES,
                            help="cross-frame digestion reuse: incremental "
                                 "updates against the previous frames' "
                                 "digested state (bit-identical; serial "
                                 "only for 'incremental'; default "
                                 "$REPRO_COHERENCE or auto)")
    trajectory.add_argument("--swmodel", default=None,
                            choices=SWMODEL_MODES,
                            help="software-path model engine of the cuda "
                                 "backends: FrameIR-native (auto/frameir) "
                                 "or the legacy fragment-sort oracle "
                                 "(bit-identical; default $REPRO_SWMODEL "
                                 "or auto)")
    trajectory.add_argument("--faults", default=None,
                            help="seeded fault-injection plan, e.g. "
                                 "'seed=7; digest:raise,times=1; "
                                 "lru.replay:corrupt,p=0.5' (overrides "
                                 "$REPRO_FAULTS; see repro.faults)")
    trajectory.add_argument("--strict", action="store_true",
                            help="raise frame failures through instead of "
                                 "healing them via the degradation ladder")
    trajectory.add_argument("--watchdog-ms", type=float, default=None,
                            help="per-frame-attempt wall-clock budget; "
                                 "overruns fail the attempt and enter the "
                                 "degradation ladder")
    trajectory.add_argument("--json", action="store_true",
                            help="emit aggregates, incident summary and "
                                 "cache stats as JSON instead of tables")

    serve = sub.add_parser(
        "serve",
        help="drive the request-serving layer with synthetic clients and "
             "report serving KPIs (admission, deadlines, breaker, "
             "residency)")
    serve.add_argument("--clients", type=int, default=4,
                       help="closed-loop synthetic clients (default 4)")
    serve.add_argument("--requests", type=int, default=2,
                       help="requests submitted per client (default 2)")
    serve.add_argument("--scenes", default="lego",
                       help="comma-separated scene mix (default lego)")
    serve.add_argument("--backend", default="hw:het+qm",
                       choices=available_backends())
    serve.add_argument("--views", default="1,2",
                       help="comma-separated per-request view-count "
                            "choices (default 1,2)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker-pool size (default $REPRO_SERVE_WORKERS "
                            "or 2)")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="bounded queue depth (default $REPRO_SERVE_QUEUE "
                            "or 16)")
    serve.add_argument("--shed-at", type=int, default=None,
                       help="queue depth at which normal-priority requests "
                            "are shed (default 3/4 of the queue limit)")
    serve.add_argument("--max-residents", type=int, default=4,
                       help="bounded LRU size of resident scenes (default 4)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline applied to every "
                            "generated request")
    serve.add_argument("--warm-fraction", type=float, default=0.0,
                       help="fraction of requests opting into the resident "
                            "warm CROP cache")
    serve.add_argument("--high-fraction", type=float, default=0.0,
                       help="fraction of requests submitted at high "
                            "priority (bypasses shedding)")
    serve.add_argument("--think-ms", type=float, default=0.0,
                       help="client think time between requests")
    serve.add_argument("--seed", type=int, default=0,
                       help="load-mix seed (per-client request streams "
                            "derive deterministically from it)")
    serve.add_argument("--device", default="orin",
                       choices=("orin", "rtx3090"))
    serve.add_argument("--cache-dir", default=None,
                       help="shared on-disk trajectory result cache "
                            "directory")
    serve.add_argument("--faults", default=None,
                       help="seeded fault-injection plan active for the "
                            "whole run (see repro.faults)")
    serve.add_argument("--json", action="store_true",
                       help="emit the KPI report as JSON")

    bench = sub.add_parser(
        "bench", help="run a performance suite and write BENCH_<suite>.json")
    bench.add_argument("--suite", default="rasterize",
                       choices=sorted(SUITES) + ["all"],
                       help="benchmark suite to run (default rasterize)")
    bench.add_argument("--quick", action="store_true",
                       help="CI-sized run: small scene, minimal repeats")
    bench.add_argument("--scene", default=None, choices=sorted(_ALL_SCENES),
                       help="override the suite's default scene")
    bench.add_argument("--repeat", type=int, default=None,
                       help="override the suite's repeat count")
    bench.add_argument("--baseline", default=None,
                       help="earlier BENCH_*.json to compute speedups against")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default BENCH_<suite>.json)")
    bench.add_argument("--check", action="store_true",
                       help="compare fresh medians against the checked-in "
                            "BENCH_<suite>.json instead of overwriting it; "
                            "exit non-zero on large regressions (advisory "
                            "tripwire, not a hard gate)")
    bench.add_argument("--check-tolerance", type=float, default=0.5,
                       help="allowed slowdown before --check fails "
                            "(default 0.5 = 50%%)")
    bench.add_argument("--ir", default=None,
                       choices=IR_MODES,
                       help="digestion engine the timed paths run under "
                            "(bit-identical; default $REPRO_IR or auto)")
    bench.add_argument("--coherence", default=None,
                       choices=COHERENCE_MODES,
                       help="cross-frame digestion reuse mode for session "
                            "suites (bit-identical; default "
                            "$REPRO_COHERENCE or auto)")
    bench.add_argument("--swmodel", default=None,
                       choices=SWMODEL_MODES,
                       help="software-path model engine of the trajectory "
                            "suite's cuda rows (bit-identical; default "
                            "$REPRO_SWMODEL or auto)")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=_EXPERIMENTS)

    lint = sub.add_parser(
        "lint", help="run the repo's static invariant checker (rules "
                     "R1-R6; see README 'Static analysis')")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to scan, repo-relative "
                           "(default: src)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file of grandfathered findings "
                           "(default: .repro-lint-baseline.json at the "
                           "repo root when present)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record current active findings into the "
                           "baseline file and exit 0")
    lint.add_argument("--format", dest="fmt", default="text",
                      choices=("text", "json"),
                      help="report format; json is sorted and "
                           "timestamp-free, stable to diff across PRs")
    lint.add_argument("--show-all", action="store_true",
                      help="also list suppressed and baselined findings "
                           "in text output")
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list-scenes": cmd_list_scenes,
        "render": cmd_render,
        "simulate": cmd_simulate,
        "trajectory": cmd_trajectory,
        "serve": cmd_serve,
        "bench": cmd_bench,
        "experiment": cmd_experiment,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

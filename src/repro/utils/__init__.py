"""Shared utilities: argument validation and segmented array reductions."""

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_shape,
)
from repro.utils.arrays import (
    segment_boundaries,
    segmented_cumprod_exclusive,
    segmented_cumsum,
    segmented_first_index_where,
    segmented_sum,
)

__all__ = [
    "check_in_range",
    "check_positive",
    "check_shape",
    "segment_boundaries",
    "segmented_cumprod_exclusive",
    "segmented_cumsum",
    "segmented_first_index_where",
    "segmented_sum",
]

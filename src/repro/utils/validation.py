"""Small argument-validation helpers used across the library.

These exist so public entry points fail fast with clear messages instead of
propagating cryptic NumPy broadcasting errors from deep inside a simulator.
"""

from __future__ import annotations

import numpy as np


def check_positive(name, value, allow_zero=False):
    """Raise ``ValueError`` unless ``value`` is a positive (or non-negative) scalar.

    Returns the value unchanged so it can be used inline::

        self.width = check_positive("width", width)
    """
    if not np.isscalar(value) and not isinstance(value, (int, float, np.integer, np.floating)):
        raise TypeError(f"{name} must be a scalar, got {type(value).__name__}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    else:
        if value <= 0:
            raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_in_range(name, value, low, high, inclusive=True):
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict)."""
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value}")
    return value


def check_shape(name, array, shape):
    """Raise ``ValueError`` unless ``array.shape`` matches ``shape``.

    ``shape`` entries of ``None`` act as wildcards, e.g. ``(None, 3)`` accepts
    any number of rows of width three.
    """
    array = np.asarray(array)
    if len(array.shape) != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {array.shape}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} has shape {array.shape}; expected {expected} along axis {axis}"
            )
    return array

"""Segmented (per-group) array reductions on sorted segment ids.

The functional rendering core groups millions of fragments by pixel and needs
per-pixel prefix products of transmittance and per-pixel sums of weighted
colours.  These helpers implement the classic "segmented scan" primitives on
top of NumPy: all of them take a ``segment_ids`` array that must be sorted
ascending (fragments are lexsorted by pixel first), and operate within each
run of equal ids.
"""

from __future__ import annotations

import numpy as np


def popcount4(masks):
    """Population count of 4-bit coverage masks (vectorised).

    Shared by the hardware-unit models and the FrameIR group derivation
    (one implementation, so mask-width changes cannot diverge).
    """
    masks = np.asarray(masks)
    return ((masks & 1) + ((masks >> 1) & 1)
            + ((masks >> 2) & 1) + ((masks >> 3) & 1))


def segment_boundaries(segment_ids):
    """Return ``starts`` indices of each segment in a sorted id array.

    ``segment_ids`` must be 1-D and sorted ascending.  The result is suitable
    for ``np.add.reduceat`` and friends.  An empty input yields an empty
    index array.
    """
    segment_ids = np.asarray(segment_ids)
    if segment_ids.ndim != 1:
        raise ValueError(f"segment_ids must be 1-D, got shape {segment_ids.shape}")
    if segment_ids.size == 0:
        return np.empty(0, dtype=np.int64)
    is_start = np.empty(segment_ids.shape, dtype=bool)
    is_start[0] = True
    np.not_equal(segment_ids[1:], segment_ids[:-1], out=is_start[1:])
    return np.flatnonzero(is_start)


def segmented_sum(values, segment_ids, starts=None):
    """Sum ``values`` within each segment; returns one value per segment.

    ``values`` may be 1-D ``(n,)`` or 2-D ``(n, k)`` (summed per column).
    """
    values = np.asarray(values)
    if starts is None:
        starts = segment_boundaries(segment_ids)
    if values.shape[0] == 0:
        shape = (0,) if values.ndim == 1 else (0, values.shape[1])
        return np.empty(shape, dtype=values.dtype)
    # repro-lint: ok(R1): reference helper, no golden-path float callers; grouping stable per layout
    return np.add.reduceat(values, starts, axis=0)


def segmented_cumsum(values, segment_ids, starts=None):
    """Inclusive prefix sum of ``values`` restarting at each segment start."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy()
    if starts is None:
        starts = segment_boundaries(segment_ids)
    total = np.cumsum(values)
    # Subtract the running total just before each segment start so each
    # segment's scan begins from zero.  The per-segment offset is broadcast
    # to every element of the segment with ``np.repeat``.
    lengths = np.diff(np.concatenate((starts, [values.shape[0]])))
    per_segment = np.concatenate(([0.0], total[starts[1:] - 1])) if starts.size else np.empty(0)
    offsets = np.repeat(per_segment, lengths)
    return total - offsets


def sliced_cumsum(values, bounds, out=None):
    """Inclusive prefix sums restarted at each slice boundary — computed
    with a *genuine* per-slice ``np.cumsum``, not the global-cumsum-minus-
    offset trick of :func:`segmented_cumsum`.

    The distinction matters for determinism, not speed: the subtraction
    trick makes every element's rounding depend on all preceding slices,
    while a true per-slice scan depends only on the slice's own content.
    The cross-frame digestion coherence layer reuses per-scanline arrival
    blocks verbatim, which is only bit-exact when a slice's values are a
    pure function of the slice — so slice count here is the number of
    scanlines (hundreds), and the Python loop costs microseconds per
    slice.

    ``bounds`` is an int array of slice offsets ``[b0, b1, ..., bk]`` with
    ``b0 == 0`` and ``bk == len(values)``.
    """
    values = np.asarray(values, dtype=np.float64)
    if out is None:
        out = np.empty_like(values)
    for i in range(bounds.shape[0] - 1):
        a, b = bounds[i], bounds[i + 1]
        np.cumsum(values[a:b], out=out[a:b])
    return out


def segmented_cumprod_exclusive(values, segment_ids, starts=None):
    """Exclusive prefix product within each segment.

    Element ``i`` of the result is the product of all *earlier* values in the
    same segment (1.0 for the first element of a segment).  This is exactly
    the transmittance term ``prod_{j<i} (1 - alpha_j)`` of front-to-back
    alpha blending.

    Values must be positive; zeros are clamped to a tiny epsilon so the
    computation can run in log space without producing ``-inf`` (a fragment
    with alpha exactly 1 terminates its pixel, and the clamp keeps downstream
    transmittance at ~1e-30 which is exactly zero for rendering purposes).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy()
    if starts is None:
        starts = segment_boundaries(segment_ids)
    clamped = np.maximum(values, 1e-30)
    logs = np.log(clamped)
    inclusive = segmented_cumsum(logs, segment_ids, starts=starts)
    exclusive = inclusive - logs
    return np.exp(exclusive)


def segmented_first_index_where(mask, segment_ids, starts=None):
    """Per-segment index (local rank) of the first True in ``mask``.

    Returns an int64 array with one entry per segment; segments with no True
    entries get the segment length (i.e. "never"), which makes the result
    directly usable as a per-pixel blended-fragment count under early
    termination.
    """
    mask = np.asarray(mask, dtype=bool)
    segment_ids = np.asarray(segment_ids)
    if starts is None:
        starts = segment_boundaries(segment_ids)
    n_segments = starts.size
    if mask.size == 0:
        return np.empty(0, dtype=np.int64)
    lengths = np.diff(np.concatenate((starts, [mask.size])))
    # Global index of the first True per segment via a minimum-reduction over
    # candidate indices (non-True entries get a sentinel beyond the array).
    candidates = np.where(mask, np.arange(mask.size, dtype=np.int64), np.int64(mask.size))
    first_global = np.minimum.reduceat(candidates, starts)
    local = first_global - starts
    none_found = first_global >= starts + lengths
    local[none_found] = lengths[none_found]
    return local

"""Shared scenario construction, caching, and table formatting.

Experiments share expensive intermediates (scene clouds, fragment streams,
per-variant pipeline results); this module memoises them per process.  The
cache is keyed by scene name and seed, so figure modules stay tiny and the
full experiment suite runs each simulation exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.core.vrpipe import VARIANTS, run_variant
from repro.gaussians.preprocess import preprocess
from repro.hwmodel.config import jetson_agx_orin, rtx_3090
from repro.render.splat_raster import rasterize_splats
from repro.swrender.renderer import CudaRenderer, SWKernelModel
from repro.workloads.catalog import build_scene, get_profile

_SCENARIOS = {}
_DRAWS = {}


class Scenario:
    """Everything derived from one (scene, viewpoint): cloud -> stream."""

    def __init__(self, profile, cloud, camera, pre, stream):
        self.profile = profile
        self.cloud = cloud
        self.camera = camera
        self.pre = pre
        self.stream = stream

    @property
    def name(self):
        return self.profile.name


def get_scenario(name, seed=0, camera=None, view_key=None):
    """Build (or fetch) the scenario for a scene's default viewpoint.

    ``camera``/``view_key`` support the Figure 21 viewpoint sweep: pass an
    explicit camera and a hashable key identifying it.
    """
    key = (name, seed, view_key)
    if key not in _SCENARIOS:
        profile = get_profile(name)
        cloud_key = (name, seed, "__cloud__")
        if cloud_key not in _SCENARIOS:
            _SCENARIOS[cloud_key] = build_scene(profile, seed=seed)
        cloud = _SCENARIOS[cloud_key]
        cam = camera if camera is not None else profile.camera()
        pre = preprocess(cloud, cam)
        stream = rasterize_splats(pre.splats, cam.width, cam.height)
        _SCENARIOS[key] = Scenario(profile, cloud, cam, pre, stream)
    return _SCENARIOS[key]


def get_draw(name, variant, device_name="orin", seed=0):
    """Cached pipeline simulation of ``variant`` on a scene."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    key = (name, variant, device_name, seed)
    if key not in _DRAWS:
        scenario = get_scenario(name, seed)
        device = make_device(device_name)
        _DRAWS[key] = run_variant(scenario.stream, variant, device)
    return _DRAWS[key]


def make_device(device_name):
    """Device presets used by the experiments."""
    if device_name == "orin":
        return jetson_agx_orin()
    if device_name == "rtx3090":
        return rtx_3090()
    raise ValueError(f"unknown device {device_name!r}; use 'orin' or 'rtx3090'")


def make_cuda_renderer(device_name="orin", early_term=True):
    """A CUDA-path renderer matched to the device's clock and SM count."""
    device = make_device(device_name)
    kernel = SWKernelModel(issue_slots=float(device.sm_issue_slots_per_cycle))
    return CudaRenderer(kernel_model=kernel,
                        frequency_hz=device.frequency_hz(),
                        early_term=early_term)


def clear_cache():
    """Drop all memoised scenarios and draws (tests use this)."""
    _SCENARIOS.clear()
    _DRAWS.clear()


def geomean(values):
    """Geometric mean of positive values."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(values <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


def format_table(headers, rows, title=None):
    """Plain-text table renderer for experiment output."""
    headers = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
              else len(headers[i]) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell):
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)

"""Shared experiment helpers: cached scenarios/draws and table formatting.

Scenario construction and draw memoisation live in the engine layer now
(:mod:`repro.engine.cache` — one in-process memo shared by figures,
sessions, and the CLI); this module re-exports them so figure modules
keep their historical imports, and owns the plain-text table renderer.
"""

from __future__ import annotations

from repro.engine.backends import (  # noqa: F401  (re-exports)
    make_cuda_renderer,
    make_device,
)
from repro.engine.cache import (  # noqa: F401  (re-exports)
    Scenario,
    clear_cache,
    get_scenario,
    get_draw,
)
from repro.engine.session import geomean  # noqa: F401  (re-export)


def format_table(headers, rows, title=None):
    """Plain-text table renderer for experiment output."""
    headers = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
              else len(headers[i]) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell):
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)

"""Figure 21: early-termination ratio across viewpoints.

For each scene, a :class:`~repro.engine.session.RenderSession` sweeps the
orbit trajectory and reports the ratio of fragments blended without early
termination to those blended with it.  Paper claims to reproduce: outdoor
scenes average higher than indoor/synthetic, and every scene's average
exceeds 1.5 (>= 33% of fragments eliminable).

Routing through the session means each viewpoint is rendered (one
vectorised reference blend) rather than only ratio-counted — the price
of sharing the engine's trajectory machinery, parallelism (``jobs``),
and disk cache with every other consumer.
"""

from __future__ import annotations

from repro.engine.session import RenderSession
from repro.experiments.runner import format_table
from repro.workloads.catalog import scene_names


def run(scenes=None, n_views=8, jobs=1):
    """``{scene: {"ratios": [...], "mean": m, "min": lo, "max": hi}}``."""
    scenes = list(scenes) if scenes is not None else scene_names()
    out = {}
    for name in scenes:
        session = RenderSession(name, backend="reference", baseline=None)
        trajectory = session.run(n_views=n_views, jobs=jobs)
        agg = trajectory.aggregates()
        out[name] = {
            "ratios": [r.et_ratio for r in trajectory.records],
            "mean": agg["et_ratio_mean"],
            "min": agg["et_ratio_min"],
            "max": agg["et_ratio_max"],
        }
    return out


def main():
    data = run()
    rows = [[name, d["mean"], d["min"], d["max"]] for name, d in data.items()]
    print(format_table(
        ["Scene", "Mean ratio", "Min", "Max"], rows,
        title="Figure 21: early-termination ratio across viewpoints"))


if __name__ == "__main__":
    main()

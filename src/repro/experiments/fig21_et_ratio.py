"""Figure 21: early-termination ratio across viewpoints.

For each scene, sweep orbit viewpoints and report the ratio of fragments
blended without early termination to those blended with it.  Paper claims
to reproduce: outdoor scenes average higher than indoor/synthetic, and
every scene's average exceeds 1.5 (>= 33% of fragments eliminable).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import format_table, get_scenario
from repro.workloads.catalog import scene_names
from repro.workloads.viewpoints import scene_viewpoints


def run(scenes=None, n_views=8):
    """``{scene: {"ratios": [...], "mean": m, "min": lo, "max": hi}}``."""
    scenes = list(scenes) if scenes is not None else scene_names()
    out = {}
    for name in scenes:
        ratios = []
        for k, camera in enumerate(scene_viewpoints(name, n_views)):
            scenario = get_scenario(name, camera=camera,
                                    view_key=f"orbit{n_views}-{k}")
            ratios.append(scenario.stream.termination_ratio())
        ratios = np.asarray(ratios)
        out[name] = {
            "ratios": ratios.tolist(),
            "mean": float(ratios.mean()),
            "min": float(ratios.min()),
            "max": float(ratios.max()),
        }
    return out


def main():
    data = run()
    rows = [[name, d["mean"], d["min"], d["max"]] for name, d in data.items()]
    print(format_table(
        ["Scene", "Mean ratio", "Min", "Max"], rows,
        title="Figure 21: early-termination ratio across viewpoints"))


if __name__ == "__main__":
    main()

"""Figure 11: software early termination via multi-pass rendering.

Speedup over the single-pass baseline as the pass count N grows.  The
paper's shape: scenes with high fragment reduction (Train, Truck) peak
modestly above 1x at an intermediate N; low-reduction or small scenes
(Bonsai, Lego, Palace) hover at or below 1x — and the best N varies per
scene, which is the practicality argument for hardware support.
"""

from __future__ import annotations

from repro.experiments.runner import format_table, get_scenario, make_device
from repro.swopt.multipass import multipass_sweep
from repro.workloads.catalog import scene_names

DEFAULT_PASS_COUNTS = (1, 2, 3, 5, 8, 10, 15, 20, 25, 30)


def run(scenes=None, pass_counts=DEFAULT_PASS_COUNTS, device_name="orin"):
    """``{scene: {N: speedup}}``."""
    scenes = list(scenes) if scenes is not None else scene_names()
    device = make_device(device_name)
    out = {}
    for name in scenes:
        scenario = get_scenario(name)
        out[name] = multipass_sweep(scenario.stream, pass_counts, device)
    return out


def best_pass_count(sweep):
    """The N with the highest speedup for one scene's sweep."""
    return max(sweep, key=sweep.get)


def main():
    data = run()
    counts = sorted(next(iter(data.values())))
    rows = [[name] + [d[n] for n in counts] + [best_pass_count(d)]
            for name, d in data.items()]
    print(format_table(
        ["Scene"] + [f"N={n}" for n in counts] + ["best N"], rows,
        title="Figure 11: multi-pass early termination speedup"))


if __name__ == "__main__":
    main()

"""Figure 17: end-to-end rendering — SW (CUDA), HW (OpenGL), VR-Pipe.

End-to-end includes preprocessing and sorting.  Per the paper's protocol,
the software path *uses* early termination while the plain hardware path
does not (the baseline lacks native support); VR-Pipe is HET+QM.  Reports
VR-Pipe's speedup over both and its absolute FPS.
"""

from __future__ import annotations

from repro.core.vrpipe import HardwareRenderer, variant_config
from repro.experiments.runner import (
    format_table,
    geomean,
    get_scenario,
    make_cuda_renderer,
    make_device,
)
from repro.swrender.renderer import SWKernelModel
from repro.workloads.catalog import scene_names


def run(scenes=None, device_name="orin"):
    """``{scene: {"speedup_vs_sw", "speedup_vs_hw", "fps", ...}}``."""
    scenes = list(scenes) if scenes is not None else scene_names()
    device = make_device(device_name)
    kernel = SWKernelModel(issue_slots=float(device.sm_issue_slots_per_cycle))
    cuda = make_cuda_renderer(device_name, early_term=True)
    hw_plain = HardwareRenderer(
        config=variant_config("baseline", device), kernel_model=kernel)
    vrpipe = HardwareRenderer(
        config=variant_config("het+qm", device), kernel_model=kernel)
    out = {}
    for name in scenes:
        scenario = get_scenario(name)
        sw = cuda.render_stream(scenario.stream, scenario.pre)
        hw = hw_plain.render_stream(scenario.stream, scenario.pre)
        vp = vrpipe.render_stream(scenario.stream, scenario.pre)
        out[name] = {
            "sw_ms": sw.timing.total_ms(),
            "hw_ms": hw.total_ms(),
            "vrpipe_ms": vp.total_ms(),
            "speedup_vs_sw": sw.timing.total_ms() / vp.total_ms(),
            "speedup_vs_hw": hw.total_ms() / vp.total_ms(),
            "fps": vp.fps(),
        }
    out["geomean"] = {
        "speedup_vs_sw": geomean(out[n]["speedup_vs_sw"] for n in scenes),
        "speedup_vs_hw": geomean(out[n]["speedup_vs_hw"] for n in scenes),
    }
    return out


def main():
    data = run()
    rows = []
    for name, d in data.items():
        if name == "geomean":
            rows.append([name, "-", "-", "-", d["speedup_vs_sw"],
                         d["speedup_vs_hw"], "-"])
        else:
            rows.append([name, d["sw_ms"], d["hw_ms"], d["vrpipe_ms"],
                         d["speedup_vs_sw"], d["speedup_vs_hw"], d["fps"]])
    print(format_table(
        ["Scene", "SW (ms)", "HW (ms)", "VR-Pipe (ms)", "vs SW", "vs HW",
         "FPS"],
        rows, title="Figure 17: end-to-end speedups and FPS"))


if __name__ == "__main__":
    main()

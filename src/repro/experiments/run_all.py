"""Run every experiment and print every table/figure in paper order.

Usage::

    python -m repro.experiments.run_all

Shared scenarios are cached in :mod:`repro.experiments.runner`, so the full
sweep simulates each (scene, variant) pair once.  Expect a few minutes for
the complete set.
"""

from __future__ import annotations

from repro.experiments import (
    ablations,
    fig01_unit_counts,
    fig05_sw_vs_hw,
    fig06_utilization,
    fig07_frags_per_pixel,
    fig08_cuda_early_term,
    fig09_warp_occupancy,
    fig10_inshader,
    fig11_multipass,
    fig16_speedup,
    fig17_end_to_end,
    fig18_reduction,
    fig19_energy,
    fig20_microbench,
    fig21_et_ratio,
    fig22_gscore,
    fig23_large_scale,
    tables,
)

#: (label, module) in paper order; each module prints its own artefact.
EXPERIMENT_SEQUENCE = (
    ("Figure 1", fig01_unit_counts),
    ("Figure 5", fig05_sw_vs_hw),
    ("Figure 6", fig06_utilization),
    ("Figure 7", fig07_frags_per_pixel),
    ("Figure 8", fig08_cuda_early_term),
    ("Figure 9", fig09_warp_occupancy),
    ("Figure 10", fig10_inshader),
    ("Figure 11", fig11_multipass),
    ("Tables I-III", tables),
    ("Figure 16", fig16_speedup),
    ("Figure 17", fig17_end_to_end),
    ("Figure 18", fig18_reduction),
    ("Figure 19", fig19_energy),
    ("Figure 20 + binning probe", fig20_microbench),
    ("Figure 21", fig21_et_ratio),
    ("Figure 22", fig22_gscore),
    ("Figure 23", fig23_large_scale),
    ("Ablations", ablations),
)


def main():
    for label, module in EXPERIMENT_SEQUENCE:
        print("=" * 72)
        print(label)
        print("=" * 72)
        module.main()
        print()


if __name__ == "__main__":
    main()

"""Figure 5: CUDA (software) vs OpenGL (hardware) rendering, two devices.

Per scene and device, the three-kernel breakdown (preprocess / Gaussian
sort / rasterise) for both paths.  The paper's findings to reproduce:
hardware rendering is generally comparable-or-faster end to end because it
avoids per-tile duplication in preprocessing/sorting, and rasterisation
dominates the hardware path's time.
"""

from __future__ import annotations

from repro.core.vrpipe import HardwareRenderer, variant_config
from repro.experiments.runner import (
    format_table,
    get_scenario,
    make_cuda_renderer,
    make_device,
)
from repro.swrender.renderer import SWKernelModel
from repro.workloads.catalog import scene_names


def run(scenes=None, devices=("orin", "rtx3090")):
    """Breakdowns in ms: ``{device: {scene: {"cuda": {...}, "opengl": {...}}}}``."""
    scenes = list(scenes) if scenes is not None else scene_names()
    out = {}
    for device_name in devices:
        device = make_device(device_name)
        kernel = SWKernelModel(
            issue_slots=float(device.sm_issue_slots_per_cycle))
        cuda = make_cuda_renderer(device_name, early_term=True)
        gl = HardwareRenderer(
            config=variant_config("baseline", device), kernel_model=kernel)
        per_scene = {}
        for name in scenes:
            scenario = get_scenario(name)
            sw = cuda.render_stream(scenario.stream, scenario.pre)
            hw = gl.render_stream(scenario.stream, scenario.pre)
            per_scene[name] = {
                "cuda": sw.timing.breakdown_ms(),
                "cuda_total": sw.timing.total_ms(),
                "opengl": hw.breakdown_ms(),
                "opengl_total": hw.total_ms(),
            }
        out[device_name] = per_scene
    return out


def main():
    data = run()
    for device, per_scene in data.items():
        rows = []
        for name, d in per_scene.items():
            for path in ("cuda", "opengl"):
                b = d[path]
                rows.append([name, path.upper(), b["preprocess"], b["sort"],
                             b["rasterize"], d[f"{path}_total"]])
        print(format_table(
            ["Scene", "Path", "Preprocess (ms)", "Sort (ms)",
             "Rasterize (ms)", "Total (ms)"],
            rows, title=f"Figure 5 ({device}): SW vs HW rendering breakdown"))
        print()


if __name__ == "__main__":
    main()

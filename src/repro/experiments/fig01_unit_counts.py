"""Figure 1: shader cores vs render output units across GPU generations.

Static published specifications (the figure's labels); the point of the
figure is that ROP counts grow far slower than shader counts — 2x vs 4.6x
from Pascal to Ada — which is why volume rendering, which hammers ROPs,
outgrows the hardware.
"""

from __future__ import annotations

from repro.experiments.runner import format_table

#: (GPU, architecture/process, shading units, render output units).
GPU_GENERATIONS = [
    ("GTX 1080 Ti", "Pascal; 16 nm", 3584, 88),
    ("RTX 2080 Ti", "Turing; 12 nm", 4608, 96),
    ("RTX 3090 Ti", "Ampere; 8 nm", 10752, 112),
    ("RTX 4090", "Ada Lovelace; 5 nm", 16384, 176),
]


def run():
    """Returns per-GPU counts and growth normalised to the 1080 Ti."""
    base_su = GPU_GENERATIONS[0][2]
    base_rop = GPU_GENERATIONS[0][3]
    rows = []
    for name, arch, su, rop in GPU_GENERATIONS:
        rows.append({
            "gpu": name,
            "architecture": arch,
            "shading_units": su,
            "rops": rop,
            "shading_norm": su / base_su,
            "rop_norm": rop / base_rop,
        })
    return {"rows": rows}


def main():
    data = run()
    print(format_table(
        ["GPU", "Architecture", "Shading units", "ROPs",
         "SU (norm)", "ROP (norm)"],
        [[r["gpu"], r["architecture"], r["shading_units"], r["rops"],
          r["shading_norm"], r["rop_norm"]] for r in data["rows"]],
        title="Figure 1: shader vs ROP growth across GPU generations"))


if __name__ == "__main__":
    main()

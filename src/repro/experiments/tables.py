"""Tables I-III: simulation configuration, workloads, hardware cost."""

from __future__ import annotations

from repro.core.vrpipe import hardware_cost_bytes
from repro.experiments.runner import format_table
from repro.hwmodel.config import jetson_agx_orin
from repro.workloads.catalog import LARGE_SCALE_SCENES, SCENES


def table1():
    """Table I: the simulated GPU configuration."""
    cfg = jetson_agx_orin()
    return {
        "# GPC": cfg.n_gpc,
        "# SIMT Cores": cfg.n_sm,
        "SIMT Core Freq. (MHz)": cfg.sm_freq_mhz,
        "Lanes per SIMT Core": cfg.lanes_per_sm,
        "Warp schedulers per core": cfg.warp_schedulers_per_sm,
        "Shared L2 (KB)": cfg.l2_kb,
        "CROP Cache (KB)": cfg.crop_cache_kb,
        "Raster Tile (px)": cfg.raster_tile_px,
        "Screen Tile (px)": cfg.screen_tile_px,
        "Tile Grid (tiles)": cfg.tile_grid_tiles,
        "# TGC Bins": cfg.n_tgc_bins,
        "TGC Bin Size (prims)": cfg.tgc_bin_prims,
        "# TC Bins": cfg.n_tc_bins,
        "TC Bin Size (quads)": cfg.tc_bin_quads,
        "ROP Throughput (quads/cycle, RGBA16F)": cfg.rop_quads_per_cycle,
    }


def table2(include_large=True):
    """Table II: evaluated workloads (paper facts + scaled realisation)."""
    rows = []
    scenes = dict(SCENES)
    if include_large:
        scenes.update(LARGE_SCALE_SCENES)
    for name, p in scenes.items():
        rows.append({
            "scene": name,
            "dataset": p.dataset,
            "type": p.scene_type,
            "paper_resolution": f"{p.paper_resolution[0]}x{p.paper_resolution[1]}",
            "paper_gaussians": p.paper_gaussians,
            "repro_resolution": f"{p.width}x{p.height}",
            "repro_gaussians": p.n_gaussians,
        })
    return rows


def table3():
    """Table III: hardware cost of the VR-Pipe extensions."""
    cost = hardware_cost_bytes()
    return {
        "Tile Grid Coalescing Unit (B)": cost["tgc"],
        "Quad Reorder Unit (B)": cost["qru"],
        "Total (KB)": cost["total"] / 1024.0,
    }


def main():
    print(format_table(["Parameter", "Value"],
                       [[k, v] for k, v in table1().items()],
                       title="Table I: simulation configuration"))
    print()
    rows = table2()
    print(format_table(
        ["Scene", "Dataset", "Type", "Paper res", "Paper #G",
         "Repro res", "Repro #G"],
        [[r["scene"], r["dataset"], r["type"], r["paper_resolution"],
          r["paper_gaussians"], r["repro_resolution"], r["repro_gaussians"]]
         for r in rows],
        title="Table II: evaluated workloads"))
    print()
    print(format_table(["Component", "Size"],
                       [[k, v] for k, v in table3().items()],
                       title="Table III: hardware cost of VR-Pipe"))


if __name__ == "__main__":
    main()

"""Figure 18: reduction in quads and fragments blended by the ROP.

Per scene and variant, the ratio ``baseline_count / variant_count`` for
both quads and fragments — the mechanism behind Figure 16's speedups.
Paper shape: HET reduces fragments ~2.5x and quads ~1.9x (quads drop less
because a quad survives unless *all* its fragments terminate); QM stacks a
further ~1.3x on both by pairing overlapping quads.
"""

from __future__ import annotations

from repro.core.vrpipe import VARIANTS
from repro.experiments.runner import format_table, get_draw
from repro.workloads.catalog import scene_names


def run(scenes=None, device_name="orin"):
    """``{scene: {variant: {"quad_reduction", "fragment_reduction"}}}``."""
    scenes = list(scenes) if scenes is not None else scene_names()
    out = {}
    for name in scenes:
        base = get_draw(name, "baseline", device_name)
        base_quads = base.stats.quads_to_crop
        base_frags = base.stats.fragments_blended
        out[name] = {}
        for variant in VARIANTS:
            res = get_draw(name, variant, device_name)
            out[name][variant] = {
                "quad_reduction": base_quads / max(res.stats.quads_to_crop, 1),
                "fragment_reduction": (base_frags
                                       / max(res.stats.fragments_blended, 1)),
            }
    return out


def main():
    data = run()
    rows = []
    for name, per_variant in data.items():
        for variant, d in per_variant.items():
            rows.append([name, variant.upper(), d["fragment_reduction"],
                         d["quad_reduction"]])
    print(format_table(
        ["Scene", "Variant", "Fragment reduction", "Quad reduction"], rows,
        title="Figure 18: ROP workload reduction ratios"))


if __name__ == "__main__":
    main()

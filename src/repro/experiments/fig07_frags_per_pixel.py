"""Figure 7: per-pixel blended-fragment counts with/without early termination.

The paper shows heat maps for Bonsai; we return both maps plus their
summary statistics.  Early termination should slash the counts where the
scene is opaque (the object) and leave transparent background pixels alone.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import format_table, get_scenario


def run(scene="bonsai"):
    """Maps and stats: ``{"without_et": map, "with_et": map, ...}``."""
    scenario = get_scenario(scene)
    stream = scenario.stream
    without = stream.fragments_per_pixel("unpruned")
    with_et = stream.fragments_per_pixel("early_term")
    return {
        "scene": scene,
        "without_et": without,
        "with_et": with_et,
        "stats": {
            "mean_without": float(without.mean()),
            "mean_with": float(with_et.mean()),
            "max_without": int(without.max()),
            "max_with": int(with_et.max()),
            "reduction": float(without.sum() / max(with_et.sum(), 1)),
        },
    }


def ascii_heatmap(counts, cols=48):
    """Render a fragment-count map as ASCII (for terminal inspection)."""
    counts = np.asarray(counts, dtype=np.float64)
    h, w = counts.shape
    step_x = max(1, w // cols)
    step_y = max(1, 2 * step_x)
    shades = " .:-=+*#%@"
    peak = counts.max() or 1.0
    lines = []
    for y in range(0, h, step_y):
        row = ""
        for x in range(0, w, step_x):
            block = counts[y:y + step_y, x:x + step_x]
            level = int(block.mean() / peak * (len(shades) - 1))
            row += shades[level]
        lines.append(row)
    return "\n".join(lines)


def main():
    data = run()
    s = data["stats"]
    print(format_table(
        ["Metric", "w/o early term", "w/ early term"],
        [["mean frags/pixel", s["mean_without"], s["mean_with"]],
         ["max frags/pixel", s["max_without"], s["max_with"]],
         ["total reduction", 1.0, s["reduction"]]],
        title=f"Figure 7 ({data['scene']}): fragments per pixel"))
    print("\nWithout early termination:")
    print(ascii_heatmap(data["without_et"]))
    print("\nWith early termination:")
    print(ascii_heatmap(data["with_et"]))


if __name__ == "__main__":
    main()

"""Figure 10: in-shader blending vs ROP-based blending (log scale).

The interlock-guarded path must land several times slower than ROP
blending; the unguarded (incorrect) path lands close to or below it —
demonstrating the cost is the lock, not the raster operations.
"""

from __future__ import annotations

from repro.engine.cache import get_draw
from repro.experiments.runner import format_table, get_scenario, make_device
from repro.swopt.inshader import inshader_comparison
from repro.workloads.catalog import scene_names


def run(scenes=None, device_name="orin"):
    """``{scene: {"rop": 1.0, "interlock": x, "no_interlock": y}}``."""
    scenes = list(scenes) if scenes is not None else scene_names()
    device = make_device(device_name)
    out = {}
    for name in scenes:
        scenario = get_scenario(name)
        # The ROP-based reference is the plain baseline draw — reuse the
        # engine's memoised simulation instead of re-running the pipeline.
        cmp = inshader_comparison(
            scenario.stream, device,
            baseline_draw=get_draw(name, "baseline", device_name))
        out[name] = {
            "rop": 1.0,
            "interlock": cmp["interlock_normalized"],
            "no_interlock": cmp["no_interlock_normalized"],
        }
    return out


def main():
    data = run()
    rows = [[name, d["rop"], d["interlock"], d["no_interlock"]]
            for name, d in data.items()]
    print(format_table(
        ["Scene", "ROP-based", "In-shader w/ ext", "In-shader w/o ext"],
        rows, title="Figure 10: normalized rasterization time"))


if __name__ == "__main__":
    main()

"""Experiment reproductions: one module per paper table/figure.

Every module exposes ``run(...) -> dict`` returning the figure's data and a
``main()`` that prints it as the paper's rows/series.  The benchmark suite
(``benchmarks/``) wraps these, and EXPERIMENTS.md records paper-vs-measured.

Shared scene construction and simulation results are cached per process in
:mod:`repro.experiments.runner` so multi-figure runs don't recompute.
"""

from repro.experiments import runner

__all__ = ["runner"]

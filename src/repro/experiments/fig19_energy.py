"""Figure 19: energy efficiency of VR-Pipe over the baseline GPU.

Efficiency = baseline draw energy / VR-Pipe (HET+QM) draw energy; the
paper reports 1.65x average, up to 2.15x, with the outdoor scenes highest.
"""

from __future__ import annotations

from repro.experiments.runner import format_table, geomean, get_draw
from repro.hwmodel.energy import draw_energy, efficiency_ratio
from repro.workloads.catalog import scene_names


def run(scenes=None, device_name="orin"):
    """``{scene: efficiency}`` plus the geometric mean and breakdowns."""
    scenes = list(scenes) if scenes is not None else scene_names()
    out = {"per_scene": {}, "breakdowns": {}}
    for name in scenes:
        base = get_draw(name, "baseline", device_name)
        vrp = get_draw(name, "het+qm", device_name)
        out["per_scene"][name] = efficiency_ratio(base, vrp)
        out["breakdowns"][name] = {
            "baseline_uj": draw_energy(base).total_j * 1e6,
            "vrpipe_uj": draw_energy(vrp).total_j * 1e6,
        }
    out["geomean"] = geomean(out["per_scene"].values())
    return out


def main():
    data = run()
    rows = [[name, data["breakdowns"][name]["baseline_uj"],
             data["breakdowns"][name]["vrpipe_uj"], eff]
            for name, eff in data["per_scene"].items()]
    rows.append(["geomean", "-", "-", data["geomean"]])
    print(format_table(
        ["Scene", "Baseline (uJ)", "VR-Pipe (uJ)", "Efficiency"], rows,
        title="Figure 19: energy efficiency of VR-Pipe"))


if __name__ == "__main__":
    main()

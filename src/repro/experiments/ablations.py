"""Ablation studies on VR-Pipe's design choices.

The paper motivates several design decisions without dedicated figures;
these ablations quantify them on this model:

* **TGC contribution** — quad merging with and without the tile-grid
  coalescing unit (Section V-C argues TC bins flush prematurely without
  it, wasting merge opportunities).
* **HET in-flight lag** — how the realised speedup decays as the window
  between the threshold-crossing blend and the visible stencil update
  grows (0 = the perfect fragment-granular bound).
* **ROP width scaling** — whether simply adding ROP throughput (the
  brute-force alternative VR-Pipe argues is "costly and challenging")
  would match the extensions.
"""

from __future__ import annotations

from repro.core.vrpipe import variant_config
from repro.experiments.runner import format_table, get_scenario, make_device
from repro.hwmodel.pipeline import GraphicsPipeline


def tgc_ablation(scenes=("truck", "bonsai"), device_name="orin"):
    """Merged pairs and speedup for QM with vs without the TGC unit."""
    device = make_device(device_name)
    out = {}
    for name in scenes:
        stream = get_scenario(name).stream
        base = GraphicsPipeline(variant_config("baseline", device)).draw(stream)
        with_tgc = GraphicsPipeline(variant_config("qm", device)).draw(stream)
        without = GraphicsPipeline(
            variant_config("qm", device, qm_use_tgc=False)).draw(stream)
        out[name] = {
            "pairs_with_tgc": with_tgc.stats.quads_merged_pairs,
            "pairs_without_tgc": without.stats.quads_merged_pairs,
            "speedup_with_tgc": base.cycles / with_tgc.cycles,
            "speedup_without_tgc": base.cycles / without.cycles,
        }
    return out


def het_lag_sensitivity(scene="truck", lags=(0, 4, 8, 16, 32, 64),
                        device_name="orin"):
    """HET speedup over baseline as a function of the in-flight window."""
    device = make_device(device_name)
    stream = get_scenario(scene).stream
    base = GraphicsPipeline(variant_config("baseline", device)).draw(stream)
    out = {}
    for lag in lags:
        cfg = variant_config("het", device, het_inflight_lag=int(lag))
        res = GraphicsPipeline(cfg).draw(stream)
        out[int(lag)] = base.cycles / res.cycles
    return out


def rop_width_scaling(scene="truck", widths=(1.0, 2.0, 4.0, 8.0),
                      device_name="orin"):
    """Baseline speedup from just widening the ROPs vs VR-Pipe.

    Returns per-width baseline speedups plus the HET+QM speedup at the
    paper's width for comparison.
    """
    device = make_device(device_name)
    stream = get_scenario(scene).stream
    reference = GraphicsPipeline(variant_config("baseline", device)).draw(stream)
    out = {"widths": {}}
    for width in widths:
        cfg = variant_config("baseline", device,
                             rop_quads_per_cycle=float(width))
        res = GraphicsPipeline(cfg).draw(stream)
        out["widths"][float(width)] = reference.cycles / res.cycles
    vrp = GraphicsPipeline(variant_config("het+qm", device)).draw(stream)
    out["het+qm"] = reference.cycles / vrp.cycles
    return out


def tc_bin_count_sweep(scene="truck", bin_counts=(8, 16, 32, 64, 128),
                       device_name="orin"):
    """QM merge pairs and speedup versus the number of TC bins.

    With fewer bins, tiles evict before overlapping quads meet in a flush,
    starving the QRU — quantifying why the §VII-measured 32 bins matter to
    quad merging.
    """
    device = make_device(device_name)
    stream = get_scenario(scene).stream
    base = GraphicsPipeline(variant_config("baseline", device)).draw(stream)
    out = {}
    for n_bins in bin_counts:
        cfg = variant_config("qm", device, n_tc_bins=int(n_bins))
        res = GraphicsPipeline(cfg).draw(stream)
        out[int(n_bins)] = {
            "pairs": res.stats.quads_merged_pairs,
            "speedup": base.cycles / res.cycles,
        }
    return out


def format_sensitivity(scene="truck", device_name="orin"):
    """Variant speedups under RGBA8 vs RGBA16F colour buffers.

    §VII-A showed RGBA8 doubles CROP throughput; with a faster CROP the
    baseline is less ROP-bound, so VR-Pipe's *relative* gain shrinks —
    quantifying how the contributions depend on the blend-bandwidth wall.
    """
    device = make_device(device_name)
    stream = get_scenario(scene).stream
    out = {}
    for fmt in ("rgba16f", "rgba8"):
        base = GraphicsPipeline(
            variant_config("baseline", device, color_format=fmt)).draw(stream)
        vrp = GraphicsPipeline(
            variant_config("het+qm", device, color_format=fmt)).draw(stream)
        out[fmt] = {
            "baseline_cycles": base.cycles,
            "hetqm_cycles": vrp.cycles,
            "speedup": base.cycles / vrp.cycles,
        }
    return out


def main():
    tgc = tgc_ablation()
    print(format_table(
        ["Scene", "Pairs w/ TGC", "Pairs w/o TGC", "Speedup w/ TGC",
         "Speedup w/o TGC"],
        [[name, d["pairs_with_tgc"], d["pairs_without_tgc"],
          d["speedup_with_tgc"], d["speedup_without_tgc"]]
         for name, d in tgc.items()],
        title="Ablation: TGC unit contribution to quad merging"))
    print()
    lag = het_lag_sensitivity()
    print(format_table(
        ["In-flight lag (frags)", "HET speedup"],
        [[k, v] for k, v in lag.items()],
        title="Ablation: HET in-flight window sensitivity (truck)"))
    print()
    rop = rop_width_scaling()
    rows = [[f"{w:g} quads/cycle", s] for w, s in rop["widths"].items()]
    rows.append(["VR-Pipe HET+QM @ 2 quads/cycle", rop["het+qm"]])
    print(format_table(
        ["Configuration", "Speedup over baseline"],
        rows, title="Ablation: widening ROPs vs VR-Pipe (truck)"))
    print()
    bins = tc_bin_count_sweep()
    print(format_table(
        ["# TC bins", "Merged pairs", "QM speedup"],
        [[n, d["pairs"], d["speedup"]] for n, d in bins.items()],
        title="Ablation: TC bin count vs quad merging (truck)"))
    print()
    fmt = format_sensitivity()
    print(format_table(
        ["Format", "Baseline cycles", "HET+QM cycles", "Speedup"],
        [[f.upper(), d["baseline_cycles"], d["hetqm_cycles"], d["speedup"]]
         for f, d in fmt.items()],
        title="Ablation: colour-format sensitivity (truck)"))


if __name__ == "__main__":
    main()

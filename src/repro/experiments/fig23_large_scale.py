"""Figure 23: scalability to city-scale scenes (Building, Rubble).

(a) baseline unit utilisation — ROPs must remain the bottleneck at this
scale; (b) VR-Pipe (HET+QM) speedup — the benefit should persist (the paper
shows ~1.8-2.1x).
"""

from __future__ import annotations

from repro.engine.cache import get_draw
from repro.experiments.fig06_utilization import REPORTED_UNITS
from repro.experiments.runner import format_table
from repro.workloads.catalog import LARGE_SCALE_SCENES


def run(scenes=None, device_name="orin"):
    """``{scene: {"utilization": {...}, "speedup": x}}``."""
    scenes = list(scenes) if scenes is not None else list(LARGE_SCALE_SCENES)
    out = {}
    for name in scenes:
        base = get_draw(name, "baseline", device_name)
        vrp = get_draw(name, "het+qm", device_name)
        util = base.utilization()
        out[name] = {
            "utilization": {u: util[u] for u in REPORTED_UNITS},
            "bottleneck": base.stats.bottleneck(),
            "speedup": base.cycles / vrp.cycles,
        }
    return out


def main():
    data = run()
    rows = [[name]
            + [f"{d['utilization'][u] * 100:.1f}%" for u in REPORTED_UNITS]
            + [d["speedup"]] for name, d in data.items()]
    print(format_table(
        ["Scene", "PROP", "CROP", "Raster", "SM", "HET+QM speedup"], rows,
        title="Figure 23: large-scale scenes"))


if __name__ == "__main__":
    main()

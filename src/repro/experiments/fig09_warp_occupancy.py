"""Figure 9: % of warp threads performing blending in software rendering.

With alpha pruning plus early termination, fewer than 40% of lockstep
thread-slots do useful blending work across all scenes — shader cores are
mostly wasted, which is the motivation for letting fixed-function hardware
(at quad granularity) do the discarding instead.
"""

from __future__ import annotations

from repro.experiments.runner import format_table, get_scenario
from repro.swrender.warp_model import simulate_tile_warps
from repro.workloads.catalog import scene_names


def run(scenes=None):
    """``{scene: fraction_of_threads_blending}`` (0..1)."""
    scenes = list(scenes) if scenes is not None else scene_names()
    out = {}
    for name in scenes:
        scenario = get_scenario(name)
        warp_exec = simulate_tile_warps(scenario.stream)
        out[name] = warp_exec.blending_thread_fraction(early_term=True)
    return out


def main():
    data = run()
    rows = [[name, f"{frac * 100:.1f}%"] for name, frac in data.items()]
    print(format_table(
        ["Scene", "Threads blending in a warp"], rows,
        title="Figure 9: effective warp occupancy in CUDA rendering"))


if __name__ == "__main__":
    main()

"""Figure 22: VR-Pipe versus the GSCore dedicated accelerator.

Reports VR-Pipe's (HET+QM) slowdown relative to the GSCore analytic model:
the accelerator should win everywhere (slowdown > 1) — the price of
VR-Pipe's generality — with a geomean around ~2x.
"""

from __future__ import annotations

from repro.accel.gscore import GSCoreModel
from repro.experiments.runner import format_table, geomean, get_draw, get_scenario
from repro.workloads.catalog import scene_names


def run(scenes=None, device_name="orin"):
    """``{scene: slowdown}`` plus the geometric mean."""
    scenes = list(scenes) if scenes is not None else scene_names()
    model = GSCoreModel()
    out = {"per_scene": {}}
    for name in scenes:
        scenario = get_scenario(name)
        vrp = get_draw(name, "het+qm", device_name)
        out["per_scene"][name] = model.slowdown_of(vrp, scenario.stream)
    out["geomean"] = geomean(out["per_scene"].values())
    return out


def main():
    data = run()
    rows = [[name, s] for name, s in data["per_scene"].items()]
    rows.append(["geomean", data["geomean"]])
    print(format_table(
        ["Scene", "VR-Pipe slowdown vs GSCore"], rows,
        title="Figure 22: comparison with a dedicated 3DGS accelerator"))


if __name__ == "__main__":
    main()

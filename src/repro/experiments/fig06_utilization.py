"""Figure 6: per-unit throughput utilisation during the baseline draw call.

The paper's observation: the ROP stages (PROP, CROP) run near saturation
while the Raster Engine and SMs idle — Gaussian splatting on the hardware
pipeline is ROP-bound.
"""

from __future__ import annotations

from repro.experiments.runner import format_table, get_draw
from repro.workloads.catalog import scene_names

#: The units the paper plots.
REPORTED_UNITS = ("prop", "crop", "raster", "sm")


def run(scenes=None):
    """``{scene: {unit: utilisation}}`` for the baseline pipeline."""
    scenes = list(scenes) if scenes is not None else scene_names()
    out = {}
    for name in scenes:
        result = get_draw(name, "baseline")
        util = result.utilization()
        out[name] = {unit: util[unit] for unit in REPORTED_UNITS}
        out[name]["bottleneck"] = result.stats.bottleneck()
    return out


def main():
    data = run()
    rows = [[name] + [f"{d[u] * 100:.1f}%" for u in REPORTED_UNITS]
            + [d["bottleneck"]] for name, d in data.items()]
    print(format_table(
        ["Scene", "PROP", "CROP", "Raster", "SM", "Bottleneck"], rows,
        title="Figure 6: unit throughput utilisation (baseline)"))


if __name__ == "__main__":
    main()

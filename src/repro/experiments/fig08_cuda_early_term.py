"""Figure 8: CUDA early-termination speedup vs fragment reduction.

The gap between the two bars is the paper's point: lockstep warps cannot
convert all of the fragment reduction into speedup, because a warp only
stops when *all 32* pixels terminate.
"""

from __future__ import annotations

from repro.experiments.runner import format_table, get_scenario
from repro.swrender.warp_model import simulate_tile_warps
from repro.workloads.catalog import scene_names


def run(scenes=None):
    """``{scene: {"speedup": x, "frag_reduction": y}}``."""
    scenes = list(scenes) if scenes is not None else scene_names()
    out = {}
    for name in scenes:
        scenario = get_scenario(name)
        warp_exec = simulate_tile_warps(scenario.stream)
        out[name] = {
            "speedup": warp_exec.et_speedup(),
            "frag_reduction": scenario.stream.termination_ratio(),
        }
    return out


def main():
    data = run()
    rows = [[name, d["speedup"], d["frag_reduction"]]
            for name, d in data.items()]
    print(format_table(
        ["Scene", "Speedup in CUDA", "Reduction in #Frags"], rows,
        title="Figure 8: early termination in software rendering"))


if __name__ == "__main__":
    main()

"""Figure 20 + §VII-A probes: microbenchmarking the fixed-function units.

(a) CROP-cache capacity across rectangle sizes — all results must bound
    below ~16 KB;
(b) CROP pixels/cycle by colour format — RGBA8 should double RGBA16F;
(c) render time vs quads-per-pixel — time tracks quads (quad-granular
    ROPs);
(d) the TC-bin count probe — the warp-count cliff between 32 and 33 tiles.
"""

from __future__ import annotations

from repro.experiments.runner import format_table
from repro.micro.crop_cache import probe_crop_cache_capacity
from repro.micro.rop_throughput import (
    pixels_per_cycle_by_format,
    time_vs_quads_per_pixel,
)
from repro.micro.tile_binning import tile_binning_probe

RECT_SIZES = ((4, 4), (4, 8), (8, 4), (8, 8), (8, 16), (16, 8), (16, 16))

#: Idle-flush window of the TC timeout probe (quads streaming past).
TIMEOUT_QUADS = 8


def run(rect_sizes=RECT_SIZES, bin_probe_tiles=(16, 32, 33, 36),
        timeout_probe_tiles=(8, 16, 32)):
    """All probes' data in one dict."""
    capacity = {size: probe_crop_cache_capacity(*size, trials=2, max_rects=80)
                for size in rect_sizes}
    formats = pixels_per_cycle_by_format()
    quad_time = time_vs_quads_per_pixel()
    binning = {n: tile_binning_probe(n, rounds=10) for n in bin_probe_tiles}
    # Same round-robin layout with the idle-flush rule enabled: bins now
    # flush by timeout between visits, which the dedicated stat surfaces.
    binning_timeout = {
        n: tile_binning_probe(n, rounds=10, timeout_quads=TIMEOUT_QUADS)
        for n in timeout_probe_tiles
    }
    return {
        "crop_cache_capacity": capacity,
        "pixels_per_cycle": formats,
        "time_vs_quads_per_pixel": quad_time,
        "tile_binning": binning,
        "tile_binning_timeout": binning_timeout,
    }


def main():
    data = run()
    print(format_table(
        ["Rect size", "Max fitting data (KB)"],
        [[f"{w}x{h}", kb / 1024.0]
         for (w, h), kb in data["crop_cache_capacity"].items()],
        title="Figure 20(a): CROP cache capacity probe"))
    print()
    print(format_table(
        ["Format", "Pixels/cycle"],
        [[fmt.upper(), v] for fmt, v in data["pixels_per_cycle"].items()],
        title="Figure 20(b): ROP throughput by colour format"))
    print()
    print(format_table(
        ["Quads per pixel", "Normalized time"],
        [[q, t] for q, t in data["time_vs_quads_per_pixel"].items()],
        title="Figure 20(c): ROP quad granularity"))
    print()
    print(format_table(
        ["Screen tiles", "Rectangles", "Warps launched"],
        [[n, d["rects"], d["warps"]]
         for n, d in data["tile_binning"].items()],
        title="Tile-binning probe (SVII-A): the 32-bin cliff"))
    print()
    print(format_table(
        ["Screen tiles", "Rectangles", "Warps launched", "Timeout flushes"],
        [[n, d["rects"], d["warps"], d["tc_timeouts"]]
         for n, d in data["tile_binning_timeout"].items()],
        title=f"TC idle-flush probe (timeout after {TIMEOUT_QUADS} quads)"))


if __name__ == "__main__":
    main()

"""Figure 16: VR-Pipe speedup over the baseline GPU, per variant.

Four bars per scene — Baseline, QM, HET, HET+QM — plus the geometric mean.
Paper results to match in shape: QM up to ~1.5x, HET ~1.8x average, HET+QM
~2.07x average with the outdoor scenes (Train, Truck) highest.
"""

from __future__ import annotations

from repro.core.vrpipe import VARIANTS
from repro.engine.cache import get_draw
from repro.experiments.runner import format_table, geomean
from repro.workloads.catalog import scene_names


def run(scenes=None, device_name="orin"):
    """``{scene: {variant: speedup}}`` plus ``{"geomean": {...}}``."""
    scenes = list(scenes) if scenes is not None else scene_names()
    out = {}
    for name in scenes:
        base = get_draw(name, "baseline", device_name)
        out[name] = {}
        for variant in VARIANTS:
            result = get_draw(name, variant, device_name)
            out[name][variant] = base.cycles / result.cycles
    out["geomean"] = {
        variant: geomean(out[name][variant] for name in scenes)
        for variant in VARIANTS
    }
    return out


def main():
    data = run()
    variants = list(VARIANTS)
    rows = [[name] + [d[v] for v in variants] for name, d in data.items()]
    print(format_table(
        ["Scene"] + [v.upper() for v in variants], rows,
        title="Figure 16: speedup of VR-Pipe over the baseline GPU"))


if __name__ == "__main__":
    main()

"""``repro.analysis`` — the repo-specific static-analysis engine.

A stdlib-``ast`` invariant checker (no third-party deps) enforcing the
contracts the test suite can only sample: bit-exact reduction dtypes
(R1), determinism of iteration and randomness (R2), pinned columnar
dtypes (R3), knob/fault-point registry consistency (R4), oracle-pair
coverage (R5), and executor-shared-state hygiene (R6).  See
``README.md`` ("Static analysis") for the rule catalogue, the
``# repro-lint: ok(RULE): reason`` pragma and the baseline workflow.

Entry points: the ``repro lint`` CLI subcommand and :func:`run_lint`.
"""

from repro.analysis.engine import (
    BASELINE_NAME,
    counts,
    format_json,
    format_text,
    repo_root,
    run_lint,
)
from repro.analysis.findings import Finding, write_baseline
from repro.analysis.rules import RULE_REGISTRY

__all__ = [
    "BASELINE_NAME",
    "Finding",
    "RULE_REGISTRY",
    "counts",
    "format_json",
    "format_text",
    "repo_root",
    "run_lint",
    "write_baseline",
]

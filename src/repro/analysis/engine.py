"""The ``repro lint`` driver: scan, rule dispatch, pragmas, baseline.

:func:`run_lint` is the programmatic entry point (the CLI and the test
suite both call it).  It walks the source tree, parses every module
once, runs each registered rule's per-module and project-wide checks,
then classifies findings as ``active`` / ``suppressed`` (pragma) /
``baselined`` (key present in the committed baseline file).

The JSON report (:func:`format_json`) is **stable**: findings sort on
``(path, line, col, rule)``, the payload carries no timestamps or
absolute paths, and keys are emitted sorted — so two runs on the same
tree are byte-identical and reports diff cleanly across PRs.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.analysis.findings import (
    BASELINE_VERSION,
    load_baseline,
    parse_pragmas,
    suppressed_by_pragma,
)
from repro.analysis.rules import RULE_REGISTRY, build_parents

# Import the rule modules for their registration side effects.
from repro.analysis import rules_determinism  # noqa: F401
from repro.analysis import rules_numeric  # noqa: F401
from repro.analysis import rules_registry  # noqa: F401
from repro.analysis import rules_state  # noqa: F401

#: Default baseline filename at the repository root.
BASELINE_NAME = ".repro-lint-baseline.json"


def repo_root():
    """The repository root (parent of ``src/``), resolved from here."""
    return Path(__file__).resolve().parents[3]


class ScannedModule:
    """One parsed source module plus the derived lookup structures."""

    __slots__ = ("path", "rel", "name", "package", "source", "lines",
                 "tree", "parents", "pragmas")

    def __init__(self, path, rel, source):
        self.path = path
        self.rel = rel                      # repo-relative, posix
        self.name = rel.rsplit("/", 1)[-1]
        parts = rel.split("/")
        # src/repro/<package>/... -> "<package>"; src/repro/x.py -> "".
        self.package = parts[2] if len(parts) > 3 and parts[:2] == [
            "src", "repro"] else ""
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        self.parents = build_parents(self.tree)
        self.pragmas = parse_pragmas(self.lines)

    def walk(self, node_types):
        for node in ast.walk(self.tree):
            if isinstance(node, node_types):
                yield node

    def line(self, lineno):
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def scope_of(self, node):
        """Qualified enclosing scope: ``Class.method`` or ``<module>``."""
        names = []
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                names.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(names)) if names else "<module>"


class LintContext:
    """What project-wide rules see: the scanned tree + reference corpus."""

    __slots__ = ("modules", "ref_modules")

    def __init__(self, modules, ref_modules):
        self.modules = modules
        self.ref_modules = ref_modules

    def module_by_suffix(self, suffix):
        for module in self.modules:
            if module.rel.endswith(suffix):
                return module
        return None


def _collect(root, paths):
    """Parse every ``.py`` under ``paths`` (repo-relative), sorted."""
    modules = []
    for base in paths:
        base_path = (root / base) if not Path(base).is_absolute() else (
            Path(base))
        if base_path.is_file():
            files = [base_path]
        else:
            files = sorted(base_path.rglob("*.py"))
        for file in files:
            if "__pycache__" in file.parts:
                continue
            try:
                rel = file.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = file.as_posix()
            modules.append(ScannedModule(
                file, rel, file.read_text(encoding="utf-8")))
    return modules


def run_lint(paths=None, ref_paths=None, rules=None, baseline=None,
             root=None):
    """Lint ``paths`` and return the classified, sorted findings.

    ``paths`` defaults to ``src`` under the repo root; ``ref_paths``
    (reference corpus for coverage rules — parsed, never flagged)
    defaults to ``tests`` + ``benchmarks``.  ``rules`` restricts to the
    given ids; ``baseline`` is a baseline-file path (pass ``None`` to
    auto-use the committed one when present, ``False`` to disable).
    """
    root = Path(root) if root is not None else repo_root()
    modules = _collect(root, paths if paths is not None else ["src"])
    ref_modules = _collect(
        root, ref_paths if ref_paths is not None
        else [p for p in ("tests", "benchmarks") if (root / p).is_dir()])
    context = LintContext(modules, ref_modules)

    selected = []
    for rule_id, cls in RULE_REGISTRY.items():
        if rules is None or rule_id in rules:
            selected.append(cls())
    if rules is not None:
        unknown = set(rules) - set(RULE_REGISTRY)
        if unknown:
            raise ValueError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}")

    findings = []
    for module in modules:
        for rule in selected:
            findings.extend(rule.check(module, context))
    for rule in selected:
        findings.extend(rule.check_project(context))

    by_rel = {module.rel: module for module in modules}
    if baseline is None:
        default = root / BASELINE_NAME
        baseline = default if default.is_file() else False
    baseline_keys = load_baseline(baseline) if baseline else set()

    for finding in findings:
        module = by_rel.get(finding.path)
        if module is not None and suppressed_by_pragma(
                finding, module.pragmas):
            finding.status = "suppressed"
        elif finding.key() in baseline_keys:
            finding.status = "baselined"
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def counts(findings):
    summary = {"active": 0, "suppressed": 0, "baselined": 0}
    for finding in findings:
        summary[finding.status] += 1
    return summary


def format_text(findings, show_all=False):
    """Human-readable report; active findings only unless ``show_all``."""
    lines = []
    for finding in findings:
        if finding.status != "active" and not show_all:
            continue
        tag = "" if finding.status == "active" else f" [{finding.status}]"
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"{finding.severity}{tag}: {finding.message} "
                     f"({finding.scope})")
    summary = counts(findings)
    lines.append(f"repro lint: {summary['active']} active, "
                 f"{summary['suppressed']} suppressed, "
                 f"{summary['baselined']} baselined")
    return "\n".join(lines)


def format_json(findings):
    """Stable machine-readable report (sorted, no timestamps/abspaths)."""
    payload = {
        "version": BASELINE_VERSION,
        "rules": {rule_id: {"severity": cls.severity, "title": cls.title}
                  for rule_id, cls in sorted(RULE_REGISTRY.items())},
        "counts": counts(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"

"""Executor-shared-state rule R6.

:func:`repro.engine.executor.run_frames` fans work out to worker
threads — and the serving layer's worker pool
(:meth:`repro.serve.service.RenderService._worker_loop` and its request
handler ``_handle_request``) adds a second, longer-lived family of
concurrent entry points.  Any module-level mutable global written by
code reachable from either is shared mutable state those workers race
on.  The rule:

1. seeds a *reachability walk* at every module that defines or calls
   one of the concurrency entry points in :data:`_ENTRY_POINTS`
   (``engine/executor.py`` and ``serve/service.py`` plus their call
   sites);
2. follows the static ``import repro...`` graph from those roots — an
   over-approximation of what worker callables can touch;
3. inside every reachable module, finds module-level mutable literals
   (dict/list/set and their constructor calls) and flags function-body
   writes to them (``global`` rebinding, subscript/attribute stores,
   mutating method calls) that are not under a ``with <...lock...>:``
   block.

``threading.local()`` containers are naturally exempt (not a mutable
literal); lock-guarded writes are detected syntactically; everything
else needs a fix, an argued pragma, or a baseline entry.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import (
    Rule,
    call_name,
    dotted_name,
    enclosing_function,
    register_rule,
    under_lock,
)

#: Constructor calls whose results are shared-mutable containers.
_MUTABLE_CONSTRUCTORS = ("dict", "list", "set", "defaultdict",
                         "OrderedDict", "Counter", "deque")

#: Method names that mutate their receiver in place.
_MUTATORS = ("append", "extend", "insert", "add", "update", "setdefault",
             "pop", "popitem", "clear", "remove", "discard",
             "appendleft", "extendleft")

#: Functions whose definitions/call sites root the reachability walk:
#: the frame executor's fan-out plus the serving layer's worker-pool
#: entry point and request handler (worker threads live across requests
#: there, so anything they can import is executor-reachable too).
_ENTRY_POINTS = ("run_frames", "_worker_loop", "_handle_request")


def _is_mutable_value(node):
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    name = call_name(node)
    return name is not None and name.split(".")[-1] in (
        _MUTABLE_CONSTRUCTORS)


def _module_name(rel):
    """``src/repro/engine/cache.py`` -> ``repro.engine.cache``."""
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _imports_of(module):
    """Dotted ``repro...`` module names imported by ``module``."""
    names = set()
    for node in module.walk((ast.Import, ast.ImportFrom)):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    names.add(alias.name)
        else:
            if node.level or not node.module:
                continue
            if node.module.startswith("repro"):
                names.add(node.module)
                for alias in node.names:
                    names.add(f"{node.module}.{alias.name}")
    return names


def _base_name(target):
    """The root ``Name`` id of a subscript/attribute store target."""
    while isinstance(target, (ast.Subscript, ast.Attribute)):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id
    return None


@register_rule
class ExecutorSharedStateRule(Rule):
    """R6 — unsynchronised writes to executor-reachable module globals."""

    id = "R6"
    severity = "error"
    title = "module-level mutable global written in executor-reachable code"

    def _reachable(self, context):
        by_name = {}
        for module in context.modules:
            name = _module_name(module.rel)
            if name:
                by_name[name] = module
        roots = set()
        for module in context.modules:
            for node in module.walk(ast.Call):
                name = call_name(node)
                if name and name.split(".")[-1] in _ENTRY_POINTS:
                    roots.add(module)
            for node in module.walk((ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                if node.name in _ENTRY_POINTS:
                    roots.add(module)
        reachable, frontier = set(roots), list(roots)
        while frontier:
            module = frontier.pop()
            for imported in _imports_of(module):
                # ``repro.engine.executor`` resolves whole prefixes too,
                # so ``from repro.engine import executor`` lands on both
                # the package and the submodule.
                target = by_name.get(imported)
                if target is not None and target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        return reachable

    def check_project(self, context):
        for module in sorted(self._reachable(context),
                             key=lambda m: m.rel):
            yield from self._check_module(module)

    def _check_module(self, module):
        mutable = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and _is_mutable_value(
                    stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        mutable[target.id] = stmt
        if not mutable:
            return

        for func in module.walk((ast.FunctionDef, ast.AsyncFunctionDef)):
            declared_global = set()
            for stmt in ast.walk(func):
                if isinstance(stmt, ast.Global):
                    declared_global.update(stmt.names)
            for node in ast.walk(func):
                name = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if isinstance(target, ast.Name):
                            if target.id in declared_global and (
                                    target.id in mutable):
                                name = target.id
                        else:
                            base = _base_name(target)
                            if base in mutable:
                                name = base
                elif isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute):
                    if node.func.attr in _MUTATORS:
                        base = dotted_name(node.func.value)
                        if base in mutable:
                            name = base
                if name is None:
                    continue
                if under_lock(node, module.parents):
                    continue
                # A write inside the same statement that *created* the
                # global is impossible here (module body only), so any
                # hit is a genuine shared-state mutation site.
                enclosing = enclosing_function(node, module.parents)
                yield self.finding(
                    module, node,
                    f"global {name!r} (module-level mutable, line "
                    f"{mutable[name].lineno}) is written in "
                    f"{enclosing.name if enclosing else '<module>'}() "
                    f"without a lock; this module is reachable from "
                    f"concurrent workers (run_frames / serve pool)")

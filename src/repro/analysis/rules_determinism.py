"""Determinism rule R2: unseeded randomness and iteration-order leaks.

Three families, all of which have bitten reproducibility projects:

* ``random`` / ``np.random`` module-level calls draw from hidden global
  state — only explicitly seeded constructors (``default_rng(seed)``,
  ``RandomState(seed)``, ``Random(seed)``) are legal;
* ``os.listdir`` / ``Path.glob`` / ``iterdir`` / ``scandir`` return
  entries in filesystem order, which differs across machines — every
  listing must pass through ``sorted(...)`` in the same expression;
* building arrays straight from ``set``s or dict ``keys()/values()``
  views bakes hash-iteration order into numeric results — restricted to
  the numeric packages (``render/``, ``hwmodel/``, ``engine/``) where
  ordering reaches golden outputs.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import (
    Rule,
    call_name,
    has_ancestor_call,
    register_rule,
)

#: Seeded-constructor names exempt from the unseeded-randomness check
#: *when called with an explicit seed argument*.
_SEEDED_CONSTRUCTORS = ("default_rng", "RandomState", "SeedSequence",
                        "Random", "Generator", "Philox", "PCG64")

#: Directory-listing callables whose order is filesystem-dependent.
_FS_LISTING = ("listdir", "iterdir", "glob", "rglob", "scandir")

#: Packages where hash-order-dependent array construction is flagged.
_ORDERED_PACKAGES = ("render", "hwmodel", "engine")


def _is_random_namespace(name):
    parts = name.split(".")
    if parts[0] == "random" and len(parts) >= 2:
        return True
    return len(parts) >= 3 and parts[0] in ("np", "numpy") and (
        parts[1] == "random")


@register_rule
class DeterminismRule(Rule):
    """R2 — nondeterministic randomness / iteration order."""

    id = "R2"
    severity = "error"
    title = "nondeterministic source: unseeded RNG or unordered iteration"

    def check(self, module, context):
        in_numeric_pkg = module.package in _ORDERED_PACKAGES
        for node in module.walk(ast.Call):
            name = call_name(node)
            if name is None:
                continue
            bare = name.split(".")[-1]

            # -- unseeded randomness --------------------------------
            if _is_random_namespace(name):
                if bare in _SEEDED_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module, node,
                            f"{name}() without a seed draws OS entropy — "
                            f"pass an explicit seed")
                else:
                    yield self.finding(
                        module, node,
                        f"{name} uses the hidden global RNG state — use "
                        f"an explicitly seeded generator instance")

            # -- filesystem iteration order -------------------------
            if bare in _FS_LISTING and (
                    name.startswith("os.") or "." in name):
                if not has_ancestor_call(node, module.parents, {"sorted"}):
                    yield self.finding(
                        module, node,
                        f"{bare}() order is filesystem-dependent — wrap "
                        f"the listing in sorted(...)")

            # -- hash-order-dependent array construction ------------
            if in_numeric_pkg and bare in ("array", "asarray", "fromiter",
                                           "stack", "column_stack"):
                parts = name.split(".")
                if parts[0] not in ("np", "numpy"):
                    continue
                source = node.args[0] if node.args else None
                if source is None:
                    continue
                if self._hash_ordered(source):
                    yield self.finding(
                        module, node,
                        f"np.{bare} over a set/dict view bakes hash "
                        f"iteration order into array contents — sort "
                        f"the elements first")

    @staticmethod
    def _hash_ordered(node):
        """True when ``node`` iterates in hash order (set literal,
        ``set(...)``, or dict ``keys()/values()`` view) unsanitised."""
        if isinstance(node, ast.Set):
            return True
        name = call_name(node)
        if name is None:
            return False
        if name == "sorted":
            return False
        bare = name.split(".")[-1]
        if bare in ("set", "frozenset"):
            return name in ("set", "frozenset")
        return bare in ("keys", "values")

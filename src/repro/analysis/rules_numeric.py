"""Numeric-contract rules: R1 (float reduceat) and R3 (dtype drift).

R1 encodes the rule PR 5 learned the hard way: ``np.<ufunc>.reduceat``
and ``np.<ufunc>.reduce`` use blocked/pairwise evaluation whose grouping
is an implementation detail, so on float operands they are **not**
bit-stable across segment layouts — only integer/bool reductions (exact
arithmetic) or order-insensitive ufuncs (min/max/bitwise/logical) are
safe.  ``accumulate`` is sequential today but rides the same ufunc
machinery, so it is held to the same standard; the one deliberate float
accumulate (``hwmodel/stats.py``) carries an argued pragma.

R3 pins dtypes in the columnar modules: any array construction whose
dtype would be *inferred* (platform- and input-dependent) rather than
declared is flagged.  That includes bare python-list literals spliced
into ``np.concatenate`` — the classic ``([0], cumsum)`` idiom — whose
``[0]`` silently takes the platform default int.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import (
    Rule,
    call_name,
    dotted_name,
    enclosing_function,
    keyword_arg,
    local_assignments,
    proves_integer,
    register_rule,
)

#: ufunc reduction methods R1 inspects.
_REDUCTION_METHODS = ("reduceat", "reduce", "accumulate")

#: Order-insensitive ufuncs — safe to reduce in any grouping, any dtype.
_ORDER_SAFE_UFUNCS = {
    "minimum", "maximum", "fmin", "fmax",
    "bitwise_and", "bitwise_or", "bitwise_xor",
    "logical_and", "logical_or", "logical_xor",
    "gcd", "lcm",
}

#: Order-sensitive ufuncs — legal only on provably integer/bool operands.
_ORDER_SENSITIVE_UFUNCS = {
    "add", "subtract", "multiply", "divide", "true_divide",
    "floor_divide", "power", "hypot", "logaddexp", "logaddexp2",
    "mod", "remainder",
}


@register_rule
class FloatReduceatRule(Rule):
    """R1 — float reductions through ufunc reduce/reduceat/accumulate."""

    id = "R1"
    severity = "error"
    title = "order-sensitive ufunc reduction on possibly-float operands"

    def check(self, module, context):
        for node in module.walk(ast.Call):
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in _REDUCTION_METHODS:
                continue
            ufunc = dotted_name(node.func.value)
            if ufunc is None:
                continue
            parts = ufunc.split(".")
            if parts[0] not in ("np", "numpy") or len(parts) != 2:
                continue  # e.g. ``raster.accumulate`` — not a ufunc method
            name = parts[1]
            if name in _ORDER_SAFE_UFUNCS:
                continue
            if name not in _ORDER_SENSITIVE_UFUNCS:
                continue  # unknown attribute of np — not a ufunc reduction
            operand = node.args[0] if node.args else None
            env = local_assignments(
                enclosing_function(node, module.parents))
            if operand is not None and proves_integer(operand, env):
                continue
            yield self.finding(
                module, node,
                f"np.{name}.{method} on operands not provably integer/"
                f"bool: float ufunc reductions are grouping-dependent "
                f"and break bit-exactness (pin an integer dtype, use an "
                f"order-safe ufunc, or argue a pragma)")


#: Modules whose columnar layout contracts R3 enforces.
_COLUMNAR_MODULES = ("frameir.py", "fragstream.py", "flushplan.py",
                     "caches.py")

#: Constructors that must carry ``dtype=`` in columnar modules.
_DTYPE_REQUIRED = {
    "zeros", "ones", "empty", "full", "arange", "fromiter",
    "array", "asarray",
}


def _is_typed_literal(node):
    """True for elements already explicitly typed, e.g. ``np.int64(n)``."""
    name = call_name(node)
    if name is None:
        return False
    bare = name.split(".")[-1]
    return bare in ("int8", "int16", "int32", "int64", "uint8", "uint16",
                    "uint32", "uint64", "float32", "float64", "bool_")


@register_rule
class DtypeDriftRule(Rule):
    """R3 — inferred dtypes in the columnar modules."""

    id = "R3"
    severity = "error"
    title = "array construction without explicit dtype in columnar module"

    def check(self, module, context):
        if module.name not in _COLUMNAR_MODULES:
            return
        for node in module.walk(ast.Call):
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            bare = parts[-1]
            if (len(parts) == 2 and parts[0] in ("np", "numpy")
                    and bare in _DTYPE_REQUIRED
                    and keyword_arg(node, "dtype") is None):
                # ``np.asarray(x, values.dtype)`` positional dtype is fine.
                if bare in ("array", "asarray", "full", "fromiter") and (
                        len(node.args) >= 2):
                    continue
                yield self.finding(
                    module, node,
                    f"np.{bare} without dtype= in columnar module: the "
                    f"inferred dtype depends on inputs/platform — pin it")
            if bare == "concatenate" and len(parts) == 2 and (
                    parts[0] in ("np", "numpy")) and node.args:
                seq = node.args[0]
                if not isinstance(seq, (ast.Tuple, ast.List)):
                    continue
                for element in seq.elts:
                    if isinstance(element, ast.List) and not all(
                            _is_typed_literal(e) for e in element.elts):
                        yield self.finding(
                            module, element,
                            "bare list literal spliced into "
                            "np.concatenate: its dtype is inferred "
                            "(platform default int / upcast) — wrap in "
                            "an explicitly-typed array")

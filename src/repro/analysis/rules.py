"""Rule framework and shared AST machinery for ``repro lint``.

A rule subclasses :class:`Rule` and implements :meth:`Rule.check` (per
module) and/or :meth:`Rule.check_project` (once, over the whole scanned
tree — for cross-file registry/coverage invariants).  Rules register
themselves via :func:`register_rule`; the engine instantiates each once
per run.

The helpers here are the shared static-analysis vocabulary: a parent map
(``ast`` has no parent pointers), dotted-name resolution, enclosing-
scope naming, and a conservative *integer-dtype prover* used by rule R1
to separate provably-integer reductions (exact, associative) from
possibly-float ones (order-sensitive rounding).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

#: rule id -> Rule subclass, in registration order.
RULE_REGISTRY = {}


def register_rule(cls):
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate lint rule id {cls.id!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


class Rule:
    """Base class of one lint rule."""

    id = None
    severity = "error"
    title = ""

    def finding(self, module, node, message):
        """Build a :class:`Finding` anchored at ``node`` in ``module``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        source = module.line(line)
        return Finding(self.id, self.severity, module.rel, line, col,
                       message, scope=module.scope_of(node), source=source)

    def check(self, module, context):
        """Yield findings for one scanned module."""
        return ()

    def check_project(self, context):
        """Yield cross-file findings once per run (after every module)."""
        return ()


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

def build_parents(tree):
    """child node -> parent node map (``ast`` carries no parent links)."""
    parents = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def dotted_name(node):
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node):
    """The last identifier of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(node):
    """Dotted function name of a Call node, else ``None``."""
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return None


def keyword_arg(node, name):
    """The value of keyword ``name`` on a Call, else ``None``."""
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def str_const(node):
    """The string value of a constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def enclosing_function(node, parents):
    """The nearest enclosing function/async-function node, else ``None``."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def has_ancestor_call(node, parents, func_names, stop=None):
    """True when some ancestor (up to ``stop``) is a call to one of
    ``func_names`` (bare names, e.g. ``{"sorted"}``)."""
    current = parents.get(node)
    while current is not None and current is not stop:
        if (isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id in func_names):
            return True
        if isinstance(current, ast.stmt):
            # Sorting wrappers bind within one expression; crossing into
            # an enclosing statement means nothing re-orders the result.
            return False
        current = parents.get(current)
    return False


def under_lock(node, parents):
    """True when an ancestor ``with`` statement's context expression
    mentions a lock (name containing ``lock``, case-insensitive)."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, ast.With):
            for item in current.items:
                name = dotted_name(item.context_expr) or call_name(
                    item.context_expr) or ""
                if "lock" in name.lower():
                    return True
        current = parents.get(current)
    return False


# ----------------------------------------------------------------------
# Integer-dtype prover (rule R1)
# ----------------------------------------------------------------------

_INT_DTYPES = {
    "bool", "bool_", "int8", "int16", "int32", "int64", "intp",
    "uint8", "uint16", "uint32", "uint64", "uintp", "int", "uint",
}

#: numpy callables whose result is integer/bool regardless of input.
_INT_PRODUCERS = {
    "np.flatnonzero", "np.argsort", "np.lexsort", "np.searchsorted",
    "np.argmin", "np.argmax", "np.count_nonzero", "np.nonzero",
    "np.unique", "np.digitize", "np.left_shift", "np.right_shift",
    "numpy.flatnonzero", "numpy.argsort", "numpy.lexsort",
}

#: numpy callables that preserve the (integer) dtype of their array
#: arguments — recurse into the listed argument positions.
_DTYPE_PRESERVING = {
    "np.repeat": (0,), "np.concatenate": (0,), "np.where": (1, 2),
    "np.maximum": (0, 1), "np.minimum": (0, 1), "np.abs": (0,),
    "np.cumsum": (0,), "np.diff": (0,), "np.sort": (0,), "np.ravel": (0,),
    "np.ascontiguousarray": (0,), "np.copy": (0,),
}


def _dtype_is_int(node):
    """True when ``node`` names an integer/bool dtype (``np.int64``,
    ``bool``, ``"int32"``...)."""
    name = terminal_name(node)
    if name in _INT_DTYPES:
        return True
    value = str_const(node)
    return value is not None and value in _INT_DTYPES


def local_assignments(func):
    """name -> last assigned value expression inside ``func`` (shallow)."""
    env = {}
    if func is None:
        return env
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = stmt.value
                elif isinstance(target, ast.Tuple):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            env[element.id] = None  # unknown component
    return env


def proves_integer(node, env, depth=0):
    """Conservatively prove that ``node`` evaluates to an integer/bool
    array (or scalar).  ``env`` maps local names to their assigned
    expressions.  Returns False whenever unsure — R1 then flags the site
    and the author either fixes the dtype or argues a pragma.
    """
    if depth > 8 or node is None:
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, bool))
    if isinstance(node, (ast.List, ast.Tuple)):
        return all(proves_integer(e, env, depth + 1) for e in node.elts)
    if isinstance(node, ast.Name):
        value = env.get(node.id)
        if value is None:
            return False
        return proves_integer(value, {k: v for k, v in env.items()
                                      if k != node.id}, depth + 1)
    if isinstance(node, ast.Compare):
        return True  # -> bool
    if isinstance(node, ast.BoolOp):
        return True
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return True
        return proves_integer(node.operand, env, depth + 1)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.LShift, ast.RShift, ast.BitAnd,
                                ast.BitOr, ast.BitXor, ast.FloorDiv,
                                ast.Mod)):
            # Shifts/masks/floordiv of integers stay integers; of floats
            # they are already a different bug.  Require one side proven.
            return (proves_integer(node.left, env, depth + 1)
                    or proves_integer(node.right, env, depth + 1))
        if isinstance(node.op, ast.Div):
            return False
        return (proves_integer(node.left, env, depth + 1)
                and proves_integer(node.right, env, depth + 1))
    if isinstance(node, ast.IfExp):
        return (proves_integer(node.body, env, depth + 1)
                and proves_integer(node.orelse, env, depth + 1))
    if isinstance(node, ast.Subscript):
        # Indexing an integer array yields integers.
        return proves_integer(node.value, env, depth + 1)
    if isinstance(node, ast.Call):
        # ``<any expression>.astype(np.int32)`` proves regardless of the
        # receiver — the cast pins the dtype.
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "astype", "view"):
            if node.args and _dtype_is_int(node.args[0]):
                return True
            dtype = keyword_arg(node, "dtype")
            if dtype is not None and _dtype_is_int(dtype):
                return True
        name = call_name(node)
        if name is None:
            return False
        bare = name.split(".")[-1]
        # np.int64(x), np.uint8(x), bool(x), int(x) ...
        if bare in _INT_DTYPES or name in ("int", "bool", "len"):
            return True
        if name in _INT_PRODUCERS:
            return True
        if bare == "bincount":
            return keyword_arg(node, "weights") is None
        if bare == "arange":
            dtype = keyword_arg(node, "dtype")
            if dtype is not None:
                return _dtype_is_int(dtype)
            return all(proves_integer(a, env, depth + 1) for a in node.args)
        if bare in ("zeros", "ones", "empty", "full", "array", "asarray",
                    "fromiter", "full_like", "zeros_like", "ones_like",
                    "empty_like"):
            dtype = keyword_arg(node, "dtype")
            if dtype is not None:
                return _dtype_is_int(dtype)
            if bare == "full" and len(node.args) >= 2:
                return proves_integer(node.args[1], env, depth + 1)
            if bare in ("array", "asarray", "zeros_like", "ones_like",
                        "empty_like", "full_like") and node.args:
                return proves_integer(node.args[0], env, depth + 1)
            return False
        if bare in ("astype", "view"):
            return bool(node.args) and _dtype_is_int(node.args[0])
        if name in _DTYPE_PRESERVING:
            positions = _DTYPE_PRESERVING[name]
            args = node.args
            checked = []
            for position in positions:
                if position < len(args):
                    checked.append(args[position])
            if not checked:
                return False
            # concatenate takes a tuple/list of arrays as its first arg.
            if name == "np.concatenate" and isinstance(
                    checked[0], (ast.Tuple, ast.List)):
                checked = checked[0].elts
            return all(proves_integer(a, env, depth + 1) for a in checked)
        if bare in ("segment_boundaries", "popcount4"):
            # Library helpers with pinned integer outputs.
            return True
    return False

"""Registry-consistency rules: R4 (knobs/fault points) and R5 (oracles).

Both rules cross-check the tree against the central declarations in
:mod:`repro.knobs` and :mod:`repro.faults.plan` — the point is that an
undeclared knob, a misspelled fault point, or an oracle path no test
exercises becomes a lint failure instead of a silent convention.

R4 (per module)
    * ``faults.checkpoint("<point>")`` string literals must name a
      registered :data:`repro.faults.plan.POINTS` entry;
    * any ``os.environ`` / ``os.getenv`` read of a ``REPRO_*`` name
      outside :mod:`repro.knobs` bypasses the registry;
    * ``knobs.env("<name>")`` literals must be registered in
      :data:`repro.knobs.ENV_KNOBS`.

R5 (project-wide)
    * every string literal compared/passed to an ``ir=`` / ``coherence``
      / ``engine=`` knob must belong to that knob's declared mode set;
    * every declared mode must be *used* somewhere in ``src`` or the
      test corpus (a declared-but-dead branch is a coverage hole);
    * every declared scalar/legacy oracle symbol must exist in ``src``
      and be exercised from ``tests/`` — by direct reference or through
      its knob's oracle mode.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import (
    Rule,
    call_name,
    register_rule,
    str_const,
    terminal_name,
)
from repro.faults.plan import POINTS
from repro.knobs import ENV_KNOBS, MODE_KNOBS, ORACLES

#: The module holding the sanctioned ``os.environ`` access path.
_KNOBS_MODULE = "src/repro/knobs.py"


def _environ_read_name(node):
    """The string key of an ``os.environ`` read at ``node``, else None."""
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("os.environ.get", "os.getenv") and node.args:
            return str_const(node.args[0])
    if isinstance(node, ast.Subscript):
        base = node.value
        if (isinstance(base, ast.Attribute) and base.attr == "environ"
                and isinstance(base.value, ast.Name)
                and base.value.id == "os"):
            return str_const(node.slice)
    return None


@register_rule
class RegistryRule(Rule):
    """R4 — fault-point and environment-knob registry consistency."""

    id = "R4"
    severity = "error"
    title = "unregistered fault point or out-of-registry environment read"

    def check(self, module, context):
        for node in module.walk((ast.Call, ast.Subscript)):
            env_name = _environ_read_name(node)
            if env_name is not None and env_name.startswith("REPRO_"):
                if module.rel != _KNOBS_MODULE:
                    yield self.finding(
                        module, node,
                        f"direct os.environ read of {env_name!r} bypasses "
                        f"the knob registry — use repro.knobs.env()")
                elif env_name not in ENV_KNOBS:
                    yield self.finding(
                        module, node,
                        f"{env_name!r} read in knobs.py but missing from "
                        f"ENV_KNOBS")
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            bare = name.split(".")[-1]
            if bare == "checkpoint" and node.args:
                point = str_const(node.args[0])
                if point is not None and point not in POINTS:
                    yield self.finding(
                        module, node,
                        f"faults.checkpoint({point!r}) names a point not "
                        f"registered in repro.faults.plan.POINTS")
            if bare == "env" and name in ("env", "knobs.env", "repro.knobs.env"):
                knob = str_const(node.args[0]) if node.args else None
                if knob is not None and knob.startswith("REPRO_") and (
                        knob not in ENV_KNOBS):
                    yield self.finding(
                        module, node,
                        f"knobs.env({knob!r}) names an unregistered knob "
                        f"— declare it in repro.knobs.ENV_KNOBS")

    def check_project(self, context):
        # Warn on registered fault points no src site ever checkpoints.
        seen = set()
        for module in context.modules:
            for node in module.walk(ast.Call):
                name = call_name(node)
                if name and name.split(".")[-1] == "checkpoint" and node.args:
                    point = str_const(node.args[0])
                    if point is not None:
                        seen.add(point)
        missing = [point for point in POINTS if point not in seen]
        if missing:
            anchor = context.module_by_suffix("faults/plan.py")
            if anchor is not None:
                finding = self.finding(
                    anchor, anchor.tree,
                    f"registered fault points never checkpointed in src: "
                    f"{', '.join(sorted(missing))}")
                finding.severity = "warning"
                yield finding


#: Parameter/attribute names treated as mode knobs (keys of MODE_KNOBS).
_KNOB_NAMES = tuple(MODE_KNOBS)


def _mode_literals(node):
    """String constants on the value side of a knob comparison."""
    if isinstance(node, ast.Constant):
        value = str_const(node)
        return [value] if value is not None else []
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        literals = []
        for element in node.elts:
            value = str_const(element)
            if value is not None:
                literals.append(value)
        return literals
    return []


def _knob_usages(module):
    """Yield ``(knob, literal, node)`` mode-literal usages in a module."""
    for node in module.walk(ast.Compare):
        knob = terminal_name(node.left)
        if knob in _KNOB_NAMES:
            for comparator in node.comparators:
                for literal in _mode_literals(comparator):
                    yield knob, literal, node
        else:
            # ``"scalar" == engine`` (reversed) — rare but legal.
            for comparator in node.comparators:
                rknob = terminal_name(comparator)
                if rknob in _KNOB_NAMES:
                    for literal in _mode_literals(node.left):
                        yield rknob, literal, node
    for node in module.walk(ast.Call):
        for kw in node.keywords:
            if kw.arg in _KNOB_NAMES:
                value = str_const(kw.value)
                if value is not None:
                    yield kw.arg, value, node
    for node in module.walk((ast.FunctionDef, ast.AsyncFunctionDef)):
        arguments = node.args
        positional = arguments.posonlyargs + arguments.args
        defaults = arguments.defaults
        for arg, default in zip(positional[len(positional)
                                           - len(defaults):], defaults):
            if arg.arg in _KNOB_NAMES:
                value = str_const(default)
                if value is not None:
                    yield arg.arg, value, node
        for arg, default in zip(arguments.kwonlyargs,
                                arguments.kw_defaults):
            if default is not None and arg.arg in _KNOB_NAMES:
                value = str_const(default)
                if value is not None:
                    yield arg.arg, value, node


@register_rule
class OracleCoverageRule(Rule):
    """R5 — mode-knob branch completeness and oracle test coverage."""

    id = "R5"
    severity = "error"
    title = "undeclared mode literal / untested oracle path"

    def check(self, module, context):
        for knob, literal, node in _knob_usages(module):
            if literal not in MODE_KNOBS[knob]["modes"]:
                yield self.finding(
                    module, node,
                    f"{knob}={literal!r} is not a declared mode "
                    f"(knobs.MODE_KNOBS[{knob!r}] allows "
                    f"{', '.join(MODE_KNOBS[knob]['modes'])})")

    def check_project(self, context):
        used = {knob: set() for knob in _KNOB_NAMES}
        for module in list(context.modules) + list(context.ref_modules):
            for knob, literal, _node in _knob_usages(module):
                used[knob].add(literal)
        anchor = context.module_by_suffix("repro/knobs.py")
        for knob in _KNOB_NAMES:
            dead = [mode for mode in MODE_KNOBS[knob]["modes"]
                    if mode not in used[knob]]
            if dead and anchor is not None:
                yield self.finding(
                    anchor, anchor.tree,
                    f"declared {knob} mode(s) never used in src or "
                    f"tests: {', '.join(dead)} — dead branch or missing "
                    f"coverage")

        definitions = {}
        for module in context.modules:
            for node in module.walk((ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                definitions.setdefault(node.name, (module, node))
        ref_text = "\n".join(m.source for m in context.ref_modules
                             if "tests/" in m.rel)
        ref_usage = {(knob, literal)
                     for module in context.ref_modules
                     if "tests/" in module.rel
                     for knob, literal, _n in _knob_usages(module)}
        for oracle in ORACLES:
            symbol = oracle["symbol"]
            if symbol not in definitions:
                if anchor is not None:
                    yield self.finding(
                        anchor, anchor.tree,
                        f"declared oracle symbol {symbol!r} (pair of "
                        f"{oracle['pair']!r}) is not defined anywhere "
                        f"in src")
                continue
            module, node = definitions[symbol]
            covered = symbol in ref_text
            if not covered and oracle["knob"] is not None:
                covered = (oracle["knob"], oracle["mode"]) in ref_usage
            if not covered:
                yield self.finding(
                    module, node,
                    f"oracle {symbol!r} (bit-exact reference of "
                    f"{oracle['pair']!r}) is never exercised from "
                    f"tests/ — golden equality is unguarded")

"""Findings, suppression pragmas and the committed baseline.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.key` deliberately omits the line *number*: the key is
``rule | path | enclosing scope | normalised source line``, so baselined
findings survive unrelated edits that shift lines, while any change to
the offending line itself (or moving it to another function) re-raises
the finding for review.

Suppression pragma
------------------
A finding is suppressed in source with::

    something_flagged()  # repro-lint: ok(R1): reason why this is safe

on the offending line or the line directly above it.  Multiple rules:
``ok(R1,R6)``.  The reason text after the colon is optional but
conventional — the pragma is an *argued* exemption, not a mute button.

Baseline
--------
``repro lint --write-baseline`` records every currently-active finding
key into a JSON file (committed as ``.repro-lint-baseline.json``).  On
later runs, baselined findings report with status ``baselined`` and do
not fail the gate; anything new does.  The file is sorted and versioned
so its diffs stay reviewable across PRs.
"""

from __future__ import annotations

import json
import re

#: Finding severities, most severe first.
SEVERITIES = ("error", "warning")

#: ``# repro-lint: ok(R1)`` / ``ok(R1,R6): reason`` suppression pragma.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*ok\(\s*([A-Za-z0-9_,\s]+?)\s*\)(?::.*)?")

#: Schema version of the baseline file and the JSON report.
BASELINE_VERSION = 1


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule", "severity", "path", "line", "col", "message",
                 "scope", "source", "status")

    def __init__(self, rule, severity, path, line, col, message,
                 scope="<module>", source=""):
        self.rule = rule
        self.severity = severity
        self.path = path          # repo-relative, posix separators
        self.line = int(line)
        self.col = int(col)
        self.message = message
        self.scope = scope
        self.source = source      # offending source line, stripped
        self.status = "active"    # active | suppressed | baselined

    def key(self):
        """Line-number-free identity used by the baseline file."""
        norm = re.sub(r"\s+", " ", self.source).strip()
        return f"{self.rule}|{self.path}|{self.scope}|{norm}"

    def to_dict(self):
        return {
            "rule": self.rule, "severity": self.severity,
            "path": self.path, "line": self.line, "col": self.col,
            "scope": self.scope, "message": self.message,
            "key": self.key(), "status": self.status,
        }

    def location(self):
        return f"{self.path}:{self.line}:{self.col}"

    def __repr__(self):
        return (f"Finding({self.rule} {self.location()} "
                f"[{self.status}] {self.message!r})")


def parse_pragmas(source_lines):
    """Map 1-based line number -> set of rule ids suppressed there."""
    pragmas = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        pragmas[lineno] = rules
    return pragmas


def suppressed_by_pragma(finding, pragmas):
    """True when a pragma on the finding's line (or the line above) names
    the finding's rule."""
    for lineno in (finding.line, finding.line - 1):
        rules = pragmas.get(lineno)
        if rules and finding.rule in rules:
            return True
    return False


def load_baseline(path):
    """The set of baselined finding keys stored at ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path} is not a repro-lint baseline file")
    entries = payload["entries"]
    keys = set()
    for entry in entries:
        # Entries are either bare keys or {"key": ..., "reason": ...}.
        keys.add(entry["key"] if isinstance(entry, dict) else str(entry))
    return keys


def write_baseline(path, findings):
    """Persist the active findings' keys (sorted, with context) to ``path``."""
    entries = sorted(
        {f.key(): {"key": f.key(), "rule": f.rule, "message": f.message}
         for f in findings if f.status == "active"}.values(),
        key=lambda entry: entry["key"])
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)

"""EWA projection of 3D Gaussians to screen-space 2D splats.

This is the "splatting" half of the preprocessing step in Figure 4 of the
paper: each visible Gaussian becomes a 2D anisotropic Gaussian (an ellipse)
on the image plane, described by a centre, a 2x2 covariance, its inverse (the
*conic*), and a *tight oriented bounding box* whose boundary is the
``alpha == 1/255`` iso-contour — the same tight-OBB optimisation the paper
applies to both its CUDA and OpenGL implementations (Section III-A).
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud

#: Fragments with alpha below this threshold are pruned (1/255).
ALPHA_EPS = 1.0 / 255.0

#: Low-pass filter added to the projected covariance diagonal, matching the
#: 3DGS reference (ensures every splat covers at least ~one pixel).
COV_BLUR = 0.3

#: Alpha values are capped below 1 so transmittance never reaches exact zero
#: in a single blend (3DGS caps at 0.99).
ALPHA_MAX = 0.99


class Splat2D:
    """Screen-space splats as parallel arrays (one row per splat).

    Attributes
    ----------
    centers:
        ``(n, 2)`` pixel coordinates of splat centres.
    conics:
        ``(n, 3)`` packed inverse covariances ``(a, b, c)`` for the matrix
        ``[[a, b], [b, c]]``; fragment alpha is
        ``opacity * exp(-0.5 * (a dx^2 + 2 b dx dy + c dy^2))``.
    axes:
        ``(n, 2, 2)`` unit eigenvectors of the covariance (rows: major,
        minor axis).
    radii:
        ``(n, 2)`` OBB half-extents along the two axes, in pixels, at the
        ``alpha == ALPHA_EPS`` boundary.
    depths:
        ``(n,)`` camera-space z of the Gaussian centre (the sort key).
    colors:
        ``(n, 3)`` RGB colour evaluated during preprocessing.
    opacities:
        ``(n,)`` per-splat opacity.
    """

    def __init__(self, centers, conics, axes, radii, depths, colors, opacities):
        self.centers = centers
        self.conics = conics
        self.axes = axes
        self.radii = radii
        self.depths = depths
        self.colors = colors
        self.opacities = opacities

    def __len__(self):
        return self.centers.shape[0]

    def __repr__(self):
        return f"Splat2D(n={len(self)})"

    def subset(self, index):
        """Select splats by boolean mask or index array."""
        return Splat2D(
            self.centers[index], self.conics[index], self.axes[index],
            self.radii[index], self.depths[index], self.colors[index],
            self.opacities[index],
        )

    def bounding_boxes(self):
        """Axis-aligned pixel bounds ``(n, 4)`` as (xmin, ymin, xmax, ymax).

        These are the AABBs *of the OBBs* — used for rasteriser bound
        computation and for the CUDA path's tile assignment.
        """
        # Extent of a rotated rectangle along x/y is the sum of the
        # projections of its half-axes.
        half = np.abs(self.axes * self.radii[:, :, None]).sum(axis=1)
        mins = self.centers - half
        maxs = self.centers + half
        return np.concatenate([mins, maxs], axis=1)


def _eigendecompose_2x2(a, b, c):
    """Eigen-decomposition of symmetric 2x2 matrices ``[[a, b], [b, c]]``.

    Returns ``(eigvals, eigvecs)`` with ``eigvals`` shaped ``(n, 2)``
    descending and ``eigvecs`` shaped ``(n, 2, 2)`` (rows are unit
    eigenvectors matching the eigenvalue order).
    """
    mid = 0.5 * (a + c)
    half_diff = 0.5 * (a - c)
    disc = np.sqrt(half_diff ** 2 + b ** 2)
    lam1 = mid + disc
    lam2 = np.maximum(mid - disc, 1e-12)
    # Eigenvector for lam1: (b, lam1 - a) unless b == 0, in which case the
    # matrix is already diagonal and the axes are the coordinate axes.
    vx = np.where(np.abs(b) > 1e-12, b, np.where(a >= c, 1.0, 0.0))
    vy = np.where(np.abs(b) > 1e-12, lam1 - a, np.where(a >= c, 0.0, 1.0))
    norm = np.sqrt(vx ** 2 + vy ** 2)
    norm = np.where(norm < 1e-12, 1.0, norm)
    major = np.stack([vx / norm, vy / norm], axis=1)
    minor = np.stack([-major[:, 1], major[:, 0]], axis=1)
    eigvals = np.stack([lam1, lam2], axis=1)
    eigvecs = np.stack([major, minor], axis=1)
    return eigvals, eigvecs


def project_gaussians(cloud, camera, colors=None):
    """Project a cloud to 2D splats for ``camera`` (no culling, no sorting).

    Parameters
    ----------
    cloud:
        The :class:`GaussianCloud` to project.
    camera:
        Target :class:`Camera`.
    colors:
        Optional ``(n, 3)`` precomputed RGB; if omitted, splats get colour
        zero and callers are expected to fill it (``preprocess`` evaluates
        SH before projecting).

    Returns
    -------
    A :class:`Splat2D` with one entry per input Gaussian, in input order.
    Entries behind the camera get zero radii (they never rasterise); callers
    normally cull first.
    """
    if not isinstance(cloud, GaussianCloud):
        raise TypeError(f"cloud must be a GaussianCloud, got {type(cloud).__name__}")
    if not isinstance(camera, Camera):
        raise TypeError(f"camera must be a Camera, got {type(camera).__name__}")
    n = len(cloud)
    cam_pos = camera.to_camera_space(cloud.positions)
    tx, ty, tz = cam_pos[:, 0], cam_pos[:, 1], cam_pos[:, 2]
    safe_z = np.where(tz > camera.znear, tz, np.inf)

    centers = np.stack([
        camera.fx * tx / safe_z + camera.cx,
        camera.fy * ty / safe_z + camera.cy,
    ], axis=1)

    # EWA: Sigma' = J W Sigma W^T J^T with J the perspective Jacobian.
    cov3d = cloud.covariances()
    w_rot = camera.rotation
    inv_z = 1.0 / safe_z
    inv_z2 = inv_z ** 2
    jac = np.zeros((n, 2, 3), dtype=np.float64)
    jac[:, 0, 0] = camera.fx * inv_z
    jac[:, 0, 2] = -camera.fx * tx * inv_z2
    jac[:, 1, 1] = camera.fy * inv_z
    jac[:, 1, 2] = -camera.fy * ty * inv_z2
    jw = jac @ w_rot
    cov2d = jw @ cov3d @ np.transpose(jw, (0, 2, 1))
    a = cov2d[:, 0, 0] + COV_BLUR
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1] + COV_BLUR

    det = a * c - b * b
    det = np.where(det > 1e-12, det, np.inf)
    conics = np.stack([c / det, -b / det, a / det], axis=1)

    eigvals, eigvecs = _eigendecompose_2x2(a, b, c)
    # Tight OBB: alpha = o * exp(-d^2/2) == ALPHA_EPS at
    # d^2 = 2 ln(o / ALPHA_EPS); radius along an axis scales with sqrt(eig).
    opacity = np.clip(cloud.opacities, 0.0, ALPHA_MAX)
    ratio = np.maximum(opacity / ALPHA_EPS, 1.0)
    max_d2 = 2.0 * np.log(ratio)
    radii = np.sqrt(np.maximum(eigvals, 0.0)) * np.sqrt(max_d2)[:, None]
    behind = tz <= camera.znear
    radii[behind] = 0.0

    if colors is None:
        colors = np.zeros((n, 3), dtype=np.float64)
    else:
        colors = np.asarray(colors, dtype=np.float64)
        if colors.shape != (n, 3):
            raise ValueError(f"colors must have shape ({n}, 3), got {colors.shape}")

    return Splat2D(
        centers=centers,
        conics=conics,
        axes=eigvecs,
        radii=radii,
        depths=tz.copy(),
        colors=colors,
        opacities=opacity.astype(np.float64),
    )

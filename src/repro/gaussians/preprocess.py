"""The full preprocessing step: cull -> SH colour -> project -> sort.

Mirrors Figure 4 of the paper: before the draw call, Gaussians are frustum
culled, assigned a depth (camera-space z of the centre), splatted to screen
space, coloured from SH coefficients and the viewing direction, and sorted
front-to-back.  The output is ready for either rendering path.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.culling import frustum_cull
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.projection import Splat2D, project_gaussians
from repro.gaussians.sh import eval_sh
from repro.gaussians.sorting import depth_sort_indices


class PreprocessResult:
    """Output of :func:`preprocess`.

    Attributes
    ----------
    splats:
        :class:`Splat2D` sorted front-to-back — the draw-call input.
    n_input:
        Gaussians in the original cloud.
    n_visible:
        Gaussians surviving frustum/opacity culling (== ``len(splats)``).
    kept_indices:
        Indices into the original cloud for each splat, in sorted order.
    """

    def __init__(self, splats, n_input, kept_indices):
        self.splats = splats
        self.n_input = int(n_input)
        self.kept_indices = kept_indices

    @property
    def n_visible(self):
        return len(self.splats)

    def __repr__(self):
        return (f"PreprocessResult(n_input={self.n_input}, "
                f"n_visible={self.n_visible})")


def preprocess(cloud, camera):
    """Cull, colour, project, and depth-sort a Gaussian cloud for a camera.

    Returns a :class:`PreprocessResult` whose splats are sorted
    front-to-back, ready to be drawn by any of the renderers in this
    library.
    """
    if not isinstance(cloud, GaussianCloud):
        raise TypeError(f"cloud must be a GaussianCloud, got {type(cloud).__name__}")
    if not isinstance(camera, Camera):
        raise TypeError(f"camera must be a Camera, got {type(camera).__name__}")

    keep = frustum_cull(cloud, camera)
    kept_indices = np.flatnonzero(keep)
    visible = cloud.subset(kept_indices)

    directions = visible.positions - camera.position[None, :]
    colors = eval_sh(visible.sh, directions)

    splats = project_gaussians(visible, camera, colors=colors)
    order = depth_sort_indices(splats.depths, front_to_back=True)
    return PreprocessResult(
        splats=splats.subset(order),
        n_input=len(cloud),
        kept_indices=kept_indices[order],
    )

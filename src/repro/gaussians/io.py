"""Scene I/O: the 3DGS PLY checkpoint format and a compact NPZ format.

``write_ply``/``read_ply`` speak the de-facto standard layout produced by
the 3D Gaussian splatting reference trainer (binary little-endian PLY with
``x y z``, ``f_dc_*``/``f_rest_*`` SH coefficients, ``opacity`` as a logit,
``scale_*`` as logs, and ``rot_*`` quaternions), so clouds trained elsewhere
can be loaded and real exports of synthetic scenes can be inspected in
standard point-cloud tools.  ``write_npz``/``read_npz`` are the fast native
round-trip.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.sh import num_sh_coeffs


def write_npz(path, cloud):
    """Save a cloud to a compressed NPZ archive."""
    if not isinstance(cloud, GaussianCloud):
        raise TypeError(f"cloud must be a GaussianCloud, got {type(cloud).__name__}")
    np.savez_compressed(
        path,
        positions=cloud.positions,
        scales=cloud.scales,
        quaternions=cloud.quaternions,
        opacities=cloud.opacities,
        sh=cloud.sh,
    )
    return path


def read_npz(path):
    """Load a cloud from :func:`write_npz` output."""
    with np.load(path) as data:
        return GaussianCloud(
            positions=data["positions"],
            scales=data["scales"],
            quaternions=data["quaternions"],
            opacities=data["opacities"],
            sh=data["sh"],
        )


def _ply_property_names(sh_degree):
    """Per-vertex property names in 3DGS checkpoint order."""
    names = ["x", "y", "z", "nx", "ny", "nz"]
    names += [f"f_dc_{i}" for i in range(3)]
    n_rest = (num_sh_coeffs(sh_degree) - 1) * 3
    names += [f"f_rest_{i}" for i in range(n_rest)]
    names += ["opacity"]
    names += [f"scale_{i}" for i in range(3)]
    names += [f"rot_{i}" for i in range(4)]
    return names


def _logit(p, eps=1e-7):
    p = np.clip(p, eps, 1.0 - eps)
    return np.log(p / (1.0 - p))


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def write_ply(path, cloud):
    """Save a cloud in the 3DGS checkpoint PLY layout (binary LE float32).

    Activations are inverted on write (opacity -> logit, scale -> log), so
    a round-trip through :func:`read_ply` reproduces the cloud, and files
    interchange with the reference 3DGS tooling.
    """
    if not isinstance(cloud, GaussianCloud):
        raise TypeError(f"cloud must be a GaussianCloud, got {type(cloud).__name__}")
    n = len(cloud)
    degree = cloud.sh_degree
    names = _ply_property_names(degree)

    columns = [cloud.positions, np.zeros((n, 3))]          # x y z, normals
    # DC coefficients are stored (n, 3); rest are channel-major:
    # f_rest_{c * (k-1) + j} = sh[:, 1 + j, c] in the reference layout.
    columns.append(cloud.sh[:, 0, :])
    k = cloud.sh.shape[1]
    if k > 1:
        rest = np.transpose(cloud.sh[:, 1:, :], (0, 2, 1)).reshape(n, -1)
        columns.append(rest)
    columns.append(_logit(cloud.opacities)[:, None])
    columns.append(np.log(cloud.scales))
    columns.append(cloud.quaternions)
    table = np.concatenate(columns, axis=1).astype("<f4")
    if table.shape[1] != len(names):
        raise AssertionError(
            f"internal layout mismatch: {table.shape[1]} vs {len(names)}")

    header_lines = ["ply", "format binary_little_endian 1.0",
                    f"element vertex {n}"]
    header_lines += [f"property float {name}" for name in names]
    header_lines += ["end_header", ""]
    with open(path, "wb") as handle:
        handle.write("\n".join(header_lines).encode("ascii"))
        handle.write(table.tobytes())
    return path


def read_ply(path):
    """Load a 3DGS checkpoint PLY (as written by :func:`write_ply` or the
    reference trainer)."""
    with open(path, "rb") as handle:
        if handle.readline().strip() != b"ply":
            raise ValueError(f"not a PLY file: {path}")
        fmt = handle.readline().strip()
        if fmt != b"format binary_little_endian 1.0":
            raise ValueError(f"unsupported PLY format: {fmt.decode()}")
        n = None
        names = []
        while True:
            line = handle.readline()
            if not line:
                raise ValueError("unexpected end of PLY header")
            line = line.strip()
            if line.startswith(b"element vertex"):
                n = int(line.split()[-1])
            elif line.startswith(b"property float"):
                names.append(line.split()[-1].decode("ascii"))
            elif line == b"end_header":
                break
        if n is None:
            raise ValueError("PLY header missing vertex element")
        data = np.frombuffer(handle.read(n * len(names) * 4),
                             dtype="<f4").reshape(n, len(names))

    index = {name: i for i, name in enumerate(names)}
    required = ("x", "f_dc_0", "opacity", "scale_0", "rot_0")
    for name in required:
        if name not in index:
            raise ValueError(f"PLY file missing 3DGS property {name!r}")
    n_rest = sum(1 for name in names if name.startswith("f_rest_"))
    if n_rest % 3:
        raise ValueError(f"f_rest property count {n_rest} is not divisible by 3")
    k = 1 + n_rest // 3
    if int(np.sqrt(k)) ** 2 != k:
        raise ValueError(f"SH coefficient count {k} is not a perfect square")

    positions = data[:, [index["x"], index["y"], index["z"]]].astype(np.float64)
    sh = np.zeros((n, k, 3))
    sh[:, 0, :] = data[:, [index[f"f_dc_{i}"] for i in range(3)]]
    if k > 1:
        rest = data[:, [index[f"f_rest_{i}"] for i in range(n_rest)]]
        sh[:, 1:, :] = np.transpose(
            rest.reshape(n, 3, k - 1), (0, 2, 1))
    opacities = _sigmoid(data[:, index["opacity"]].astype(np.float64))
    scales = np.exp(data[:, [index[f"scale_{i}"] for i in range(3)]]
                    .astype(np.float64))
    quats = data[:, [index[f"rot_{i}"] for i in range(4)]].astype(np.float64)
    return GaussianCloud(positions=positions, scales=scales,
                         quaternions=quats, opacities=opacities, sh=sh)

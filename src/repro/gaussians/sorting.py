"""Depth sorting of splats.

The hardware (OpenGL) rendering path needs exactly one global front-to-back
sort of the visible Gaussians by centre depth — one of the efficiency
arguments the paper makes versus the CUDA path, which must duplicate and
sort per tile (Section III-A).
"""

from __future__ import annotations

import numpy as np


def depth_sort_indices(depths, front_to_back=True):
    """Return indices sorting ``depths`` with an explicitly *stable* sort.

    Parameters
    ----------
    depths:
        ``(n,)`` camera-space depths.
    front_to_back:
        Sort nearest-first when True (the order required by front-to-back
        alpha blending); farthest-first otherwise.

    Why stability matters
    ---------------------
    Draw order **is** blend order: every renderer in this library blends
    fragments in the order splats are submitted, so two splats at the same
    depth must keep their submission order for the composite to be
    deterministic across runs, platforms, and rasteriser implementations
    (alpha blending does not commute — swapping equal-depth splats changes
    the image).  ``np.argsort(kind="stable")`` guarantees exactly that;
    the default introsort does not.  The farthest-first direction sorts the
    *negated* depths stably rather than reversing the nearest-first order,
    because reversing a stable sort would flip the submission order of
    equal-depth splats.
    """
    depths = np.asarray(depths)
    if depths.ndim != 1:
        raise ValueError(f"depths must be 1-D, got shape {depths.shape}")
    if front_to_back:
        return np.argsort(depths, kind="stable")
    return np.argsort(-depths, kind="stable")


def sort_cost_model(n_items, comparisons_per_cycle=32.0):
    """Analytic cycle estimate of a GPU radix/merge sort of ``n_items`` keys.

    Used by the end-to-end timing model (Figure 5 / 17): the CUB device sort
    the paper uses is bandwidth-bound and roughly linear in item count for
    fixed key width, so we model ``cycles = c * n`` with the constant set so
    one item costs ``1 / comparisons_per_cycle`` cycles.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if comparisons_per_cycle <= 0:
        raise ValueError("comparisons_per_cycle must be positive")
    return float(n_items) / float(comparisons_per_cycle)

"""Rigid/similarity transforms and editing operations on Gaussian clouds.

Scene-composition utilities a downstream user needs: place objects
(translate/rotate/scale), merge scenes, and prune low-contribution
Gaussians — all returning new clouds (inputs are never mutated).
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.gaussian import GaussianCloud
from repro.utils.validation import check_positive, check_shape


def _quaternion_multiply(q1, q2):
    """Hamilton product ``q1 (x) q2`` of a ``(4,)`` by ``(n, 4)`` batch.

    Composing rotations: the result rotates by ``q2`` first, then ``q1``.
    """
    w1, x1, y1, z1 = np.asarray(q1, dtype=np.float64)
    w2, x2, y2, z2 = np.asarray(q2, dtype=np.float64).T
    return np.stack([
        w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
        w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
        w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
    ], axis=1)


def _rotation_to_quaternion(rot):
    """Single 3x3 rotation matrix to a (w, x, y, z) quaternion."""
    rot = np.asarray(rot, dtype=np.float64)
    trace = rot[0, 0] + rot[1, 1] + rot[2, 2]
    if trace > 0:
        s = 0.5 / np.sqrt(trace + 1.0)
        return np.array([0.25 / s,
                         (rot[2, 1] - rot[1, 2]) * s,
                         (rot[0, 2] - rot[2, 0]) * s,
                         (rot[1, 0] - rot[0, 1]) * s])
    i = int(np.argmax([rot[0, 0], rot[1, 1], rot[2, 2]]))
    j, k = (i + 1) % 3, (i + 2) % 3
    s = 2.0 * np.sqrt(max(1.0 + rot[i, i] - rot[j, j] - rot[k, k], 1e-12))
    quat = np.empty(4)
    quat[0] = (rot[k, j] - rot[j, k]) / s
    quat[1 + i] = 0.25 * s
    quat[1 + j] = (rot[j, i] + rot[i, j]) / s
    quat[1 + k] = (rot[k, i] + rot[i, k]) / s
    return quat


def translate(cloud, offset):
    """Shift every Gaussian by ``offset`` (3-vector)."""
    offset = check_shape("offset", np.asarray(offset, dtype=np.float64), (3,))
    return GaussianCloud(cloud.positions + offset, cloud.scales,
                         cloud.quaternions, cloud.opacities, cloud.sh)


def scale(cloud, factor, origin=(0.0, 0.0, 0.0)):
    """Uniformly scale positions and splat sizes about ``origin``."""
    check_positive("factor", factor)
    origin = np.asarray(origin, dtype=np.float64)
    positions = (cloud.positions - origin) * factor + origin
    return GaussianCloud(positions, cloud.scales * factor,
                         cloud.quaternions, cloud.opacities, cloud.sh)


def rotate(cloud, rotation, origin=(0.0, 0.0, 0.0)):
    """Rotate the cloud by a 3x3 matrix about ``origin``.

    Positions orbit the origin; each Gaussian's orientation quaternion is
    composed with the rotation so covariances transform as
    ``R Sigma R^T``.  SH coefficients above degree 0 are view-dependent and
    are *not* re-oriented (degree-0 clouds round-trip exactly; for higher
    degrees the DC colour is preserved and a warning-free approximation is
    acceptable for synthetic scenes).
    """
    rotation = check_shape("rotation",
                           np.asarray(rotation, dtype=np.float64), (3, 3))
    if not np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-9):
        raise ValueError("rotation must be orthonormal")
    origin = np.asarray(origin, dtype=np.float64)
    positions = (cloud.positions - origin) @ rotation.T + origin
    rot_quat = _rotation_to_quaternion(rotation)
    quats = _quaternion_multiply(rot_quat, cloud.quaternions)
    return GaussianCloud(positions, cloud.scales, quats,
                         cloud.opacities, cloud.sh)


def prune_by_opacity(cloud, min_opacity=1.0 / 255.0):
    """Drop Gaussians whose opacity can never produce a visible fragment."""
    if not 0.0 <= min_opacity <= 1.0:
        raise ValueError(f"min_opacity must be in [0, 1], got {min_opacity}")
    return cloud.subset(cloud.opacities >= min_opacity)


def prune_by_size(cloud, min_scale):
    """Drop Gaussians whose largest axis is below ``min_scale``."""
    check_positive("min_scale", min_scale)
    return cloud.subset(cloud.scales.max(axis=1) >= min_scale)


def merge(*clouds):
    """Concatenate clouds (alias of :meth:`GaussianCloud.concatenate`)."""
    return GaussianCloud.concatenate(clouds)

"""Procedural Gaussian-scene building blocks.

The paper evaluates trained 3DGS scenes (Table II).  Trained checkpoints are
not available offline, so workloads are assembled from these primitives —
blobs, planar surfaces, spherical shells, and depth-layered surface stacks —
whose parameters control exactly the statistics the experiments depend on:
splat footprint size, per-pixel depth complexity, and the amount of occluded
"beyond the surface" content that early termination can skip.
See ``repro.workloads.catalog`` for the per-scene compositions and DESIGN.md
for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.sh import num_sh_coeffs, rgb_to_sh_dc
from repro.utils.validation import check_positive


def _rng(seed_or_rng):
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def random_quaternions(rng, n):
    """Uniformly random unit quaternions, shape ``(n, 4)`` as (w, x, y, z)."""
    q = _rng(rng).normal(size=(n, 4))
    q /= np.linalg.norm(q, axis=1, keepdims=True)
    return q


def _sh_from_colors(colors, sh_degree, rng, view_dep_strength=0.0):
    """Build SH coefficients whose DC term reproduces ``colors``.

    ``view_dep_strength`` adds random higher-order terms for view-dependent
    shading when the degree allows it.
    """
    n = colors.shape[0]
    k = num_sh_coeffs(sh_degree)
    sh = np.zeros((n, k, 3))
    sh[:, 0] = rgb_to_sh_dc(colors)
    if sh_degree > 0 and view_dep_strength > 0:
        sh[:, 1:] = _rng(rng).normal(scale=view_dep_strength, size=(n, k - 1, 3))
    return sh


def make_blob(rng, n, center, radius, scale_mean=0.02, scale_sigma=0.5,
              opacity_low=0.3, opacity_high=0.95, base_color=(0.6, 0.5, 0.4),
              color_jitter=0.15, sh_degree=0, anisotropy=3.0):
    """An ellipsoidal cluster of Gaussians (an "object").

    Parameters
    ----------
    rng:
        Seed or ``numpy.random.Generator``.
    n:
        Gaussian count.
    center, radius:
        Cluster centre and standard deviation of positions.
    scale_mean, scale_sigma:
        Log-normal splat scale distribution (world units).
    opacity_low, opacity_high:
        Uniform opacity range.
    anisotropy:
        Max ratio between a Gaussian's largest and smallest axis scale.
    """
    rng = _rng(rng)
    n = int(check_positive("n", n))
    check_positive("radius", radius)
    positions = np.asarray(center, dtype=np.float64) + rng.normal(
        scale=radius, size=(n, 3))
    base = scale_mean * np.exp(rng.normal(scale=scale_sigma, size=(n, 1)))
    aniso = rng.uniform(1.0, anisotropy, size=(n, 3))
    scales = base * aniso / aniso.mean(axis=1, keepdims=True)
    opacities = rng.uniform(opacity_low, opacity_high, size=n)
    colors = np.clip(
        np.asarray(base_color) + rng.normal(scale=color_jitter, size=(n, 3)),
        0.02, 0.98)
    return GaussianCloud(
        positions=positions,
        scales=scales,
        quaternions=random_quaternions(rng, n),
        opacities=opacities,
        sh=_sh_from_colors(colors, sh_degree, rng),
    )


def make_plane(rng, n, center, normal, extent, thickness=0.01,
               scale_mean=0.03, scale_sigma=0.4, opacity_low=0.5,
               opacity_high=0.98, base_color=(0.5, 0.5, 0.5),
               color_jitter=0.1, sh_degree=0):
    """A noisy planar sheet of Gaussians (a wall, floor, or facade).

    ``extent`` may be a scalar (square) or a pair (two in-plane half-sizes).
    Splats on the plane are flattened along the normal, like trained 3DGS
    surfaces.
    """
    rng = _rng(rng)
    n = int(check_positive("n", n))
    normal = np.asarray(normal, dtype=np.float64)
    normal = normal / np.linalg.norm(normal)
    # In-plane orthonormal basis.
    helper = np.array([1.0, 0.0, 0.0])
    if abs(normal @ helper) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(normal, helper)
    u /= np.linalg.norm(u)
    v = np.cross(normal, u)
    if np.isscalar(extent):
        eu = ev = float(extent)
    else:
        eu, ev = float(extent[0]), float(extent[1])
    coords_u = rng.uniform(-eu, eu, size=n)
    coords_v = rng.uniform(-ev, ev, size=n)
    offsets = rng.normal(scale=thickness, size=n)
    positions = (np.asarray(center, dtype=np.float64)
                 + coords_u[:, None] * u
                 + coords_v[:, None] * v
                 + offsets[:, None] * normal)
    base = scale_mean * np.exp(rng.normal(scale=scale_sigma, size=n))
    scales = np.stack([base, base, np.full(n, thickness)], axis=1)
    # Orient each Gaussian so its thin axis aligns with the plane normal.
    # Build a rotation whose third column is `normal` (quaternion from the
    # frame [u, v, normal]); add small jitter for realism.
    quats = _frame_to_quaternion(u, v, normal, n, rng)
    colors = np.clip(
        np.asarray(base_color) + rng.normal(scale=color_jitter, size=(n, 3)),
        0.02, 0.98)
    return GaussianCloud(
        positions=positions,
        scales=scales,
        quaternions=quats,
        opacities=rng.uniform(opacity_low, opacity_high, size=n),
        sh=_sh_from_colors(colors, sh_degree, rng),
    )


def _frame_to_quaternion(u, v, w, n, rng, jitter=0.05):
    """Quaternions for the rotation with columns (u, v, w), with jitter."""
    rot = np.stack([u, v, w], axis=1)
    # Standard matrix-to-quaternion (trace method); the frame is orthonormal.
    trace = rot[0, 0] + rot[1, 1] + rot[2, 2]
    if trace > 0:
        s = 0.5 / np.sqrt(trace + 1.0)
        quat = np.array([
            0.25 / s,
            (rot[2, 1] - rot[1, 2]) * s,
            (rot[0, 2] - rot[2, 0]) * s,
            (rot[1, 0] - rot[0, 1]) * s,
        ])
    else:
        # Fall back to the dominant-diagonal branch.
        i = int(np.argmax([rot[0, 0], rot[1, 1], rot[2, 2]]))
        j, k = (i + 1) % 3, (i + 2) % 3
        s = 2.0 * np.sqrt(max(1.0 + rot[i, i] - rot[j, j] - rot[k, k], 1e-12))
        quat = np.empty(4)
        quat[0] = (rot[k, j] - rot[j, k]) / s
        quat[1 + i] = 0.25 * s
        quat[1 + j] = (rot[j, i] + rot[i, j]) / s
        quat[1 + k] = (rot[k, i] + rot[i, k]) / s
    quats = np.tile(quat, (n, 1))
    quats += _rng(rng).normal(scale=jitter, size=(n, 4))
    quats /= np.linalg.norm(quats, axis=1, keepdims=True)
    return quats


def make_shell(rng, n, center, radius, thickness=0.05, scale_mean=0.05,
               scale_sigma=0.4, opacity_low=0.4, opacity_high=0.9,
               base_color=(0.45, 0.5, 0.55), color_jitter=0.1, sh_degree=0):
    """A spherical shell of Gaussians (a surrounding room or environment).

    Models the "background room" structure of indoor captures like Bonsai,
    where the object of interest sits inside an enclosing surface.
    """
    rng = _rng(rng)
    n = int(check_positive("n", n))
    check_positive("radius", radius)
    dirs = rng.normal(size=(n, 3))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    radii = radius + rng.normal(scale=thickness, size=n)
    positions = np.asarray(center, dtype=np.float64) + dirs * radii[:, None]
    base = scale_mean * np.exp(rng.normal(scale=scale_sigma, size=(n, 1)))
    scales = base * rng.uniform(0.5, 1.5, size=(n, 3))
    colors = np.clip(
        np.asarray(base_color) + rng.normal(scale=color_jitter, size=(n, 3)),
        0.02, 0.98)
    return GaussianCloud(
        positions=positions,
        scales=scales,
        quaternions=random_quaternions(rng, n),
        opacities=rng.uniform(opacity_low, opacity_high, size=n),
        sh=_sh_from_colors(colors, sh_degree, rng),
    )


def make_layered_surfaces(rng, n, center, extent, n_layers, layer_spacing,
                          axis=(0.0, 0.0, 1.0), scale_mean=0.04,
                          opacity_low=0.55, opacity_high=0.98,
                          base_color=(0.55, 0.5, 0.45), sh_degree=0):
    """Several parallel planar sheets stacked along ``axis``.

    This is the workhorse for controlling the early-termination ratio: the
    front sheets occlude the back ones, so the fraction of Gaussians "beyond
    the surface" grows with ``n_layers``.  Outdoor captures (Train, Truck)
    behave like deep stacks; synthetic object scenes like shallow ones.
    """
    rng = _rng(rng)
    n = int(check_positive("n", n))
    n_layers = int(check_positive("n_layers", n_layers))
    axis = np.asarray(axis, dtype=np.float64)
    axis = axis / np.linalg.norm(axis)
    per_layer = np.full(n_layers, n // n_layers, dtype=int)
    per_layer[: n % n_layers] += 1
    layers = []
    for i, count in enumerate(per_layer):
        if count == 0:
            continue
        offset = (i - (n_layers - 1) / 2.0) * layer_spacing
        layer_center = np.asarray(center, dtype=np.float64) + offset * axis
        shade = 0.75 + 0.5 * (i / max(n_layers - 1, 1) - 0.5)
        layers.append(make_plane(
            rng, count, layer_center, axis, extent,
            scale_mean=scale_mean, opacity_low=opacity_low,
            opacity_high=opacity_high,
            base_color=tuple(np.clip(np.asarray(base_color) * shade, 0.02, 0.98)),
            sh_degree=sh_degree,
        ))
    return GaussianCloud.concatenate(layers)


def compose(*clouds):
    """Concatenate building blocks into one scene cloud."""
    return GaussianCloud.concatenate(clouds)

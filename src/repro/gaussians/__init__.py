"""3D Gaussian splatting substrate.

This subpackage implements everything the paper's preprocessing step needs:
the Gaussian scene representation, the pinhole camera, spherical-harmonics
colour evaluation, EWA projection of 3D Gaussians to 2D screen-space splats
with tight oriented bounding boxes, frustum culling, and the single global
depth sort used by the hardware (OpenGL) rendering path.
"""

from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.camera import Camera, orbit_viewpoints
from repro.gaussians.sh import eval_sh, num_sh_coeffs
from repro.gaussians.projection import Splat2D, project_gaussians
from repro.gaussians.culling import frustum_cull
from repro.gaussians.sorting import depth_sort_indices
from repro.gaussians.preprocess import PreprocessResult, preprocess
from repro.gaussians import io, synthetic, transforms

__all__ = [
    "io",
    "transforms",
    "GaussianCloud",
    "Camera",
    "orbit_viewpoints",
    "eval_sh",
    "num_sh_coeffs",
    "Splat2D",
    "project_gaussians",
    "frustum_cull",
    "depth_sort_indices",
    "PreprocessResult",
    "preprocess",
    "synthetic",
]

"""Structure-of-arrays container for a 3D Gaussian scene.

Each Gaussian is parameterised the way 3DGS training produces them: a mean
position, an anisotropic scale vector, a rotation quaternion, an opacity, and
spherical-harmonic colour coefficients.  The covariance is derived as
``Sigma = R S S^T R^T`` where ``R`` comes from the quaternion and ``S`` is the
diagonal scale matrix.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.sh import num_sh_coeffs
from repro.utils.validation import check_shape


def quaternion_to_rotation(quats):
    """Convert ``(n, 4)`` quaternions (w, x, y, z) to ``(n, 3, 3)`` rotations.

    Quaternions are normalised internally, matching 3DGS which stores
    unnormalised quaternions and normalises at covariance build time.
    """
    quats = check_shape("quats", np.asarray(quats, dtype=np.float64), (None, 4))
    norms = np.linalg.norm(quats, axis=1, keepdims=True)
    if np.any(norms < 1e-12):
        raise ValueError("quaternions must be non-zero")
    w, x, y, z = (quats / norms).T
    rot = np.empty((quats.shape[0], 3, 3), dtype=np.float64)
    rot[:, 0, 0] = 1 - 2 * (y * y + z * z)
    rot[:, 0, 1] = 2 * (x * y - w * z)
    rot[:, 0, 2] = 2 * (x * z + w * y)
    rot[:, 1, 0] = 2 * (x * y + w * z)
    rot[:, 1, 1] = 1 - 2 * (x * x + z * z)
    rot[:, 1, 2] = 2 * (y * z - w * x)
    rot[:, 2, 0] = 2 * (x * z - w * y)
    rot[:, 2, 1] = 2 * (y * z + w * x)
    rot[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return rot


class GaussianCloud:
    """A set of 3D Gaussians stored as parallel arrays.

    Parameters
    ----------
    positions:
        ``(n, 3)`` Gaussian centres (world space).
    scales:
        ``(n, 3)`` per-axis standard deviations (must be positive).
    quaternions:
        ``(n, 4)`` rotations as (w, x, y, z); normalised on use.
    opacities:
        ``(n,)`` opacity in ``[0, 1]``.
    sh:
        ``(n, k, 3)`` spherical-harmonic coefficients where ``k`` is the
        coefficient count for the cloud's SH degree (1, 4, 9, or 16).
    """

    def __init__(self, positions, scales, quaternions, opacities, sh):
        self.positions = check_shape(
            "positions", np.asarray(positions, dtype=np.float64), (None, 3))
        n = self.positions.shape[0]
        self.scales = check_shape(
            "scales", np.asarray(scales, dtype=np.float64), (n, 3))
        self.quaternions = check_shape(
            "quaternions", np.asarray(quaternions, dtype=np.float64), (n, 4))
        self.opacities = check_shape(
            "opacities", np.asarray(opacities, dtype=np.float64), (n,))
        sh = np.asarray(sh, dtype=np.float64)
        if sh.ndim != 3 or sh.shape[0] != n or sh.shape[2] != 3:
            raise ValueError(f"sh must have shape (n, k, 3), got {sh.shape}")
        valid_k = {num_sh_coeffs(d) for d in range(4)}
        if sh.shape[1] not in valid_k:
            raise ValueError(
                f"sh coefficient count {sh.shape[1]} is not one of {sorted(valid_k)}")
        self.sh = sh
        if np.any(self.scales <= 0):
            raise ValueError("scales must be strictly positive")
        if np.any((self.opacities < 0) | (self.opacities > 1)):
            raise ValueError("opacities must lie in [0, 1]")

    def __len__(self):
        return self.positions.shape[0]

    def __repr__(self):
        return (f"GaussianCloud(n={len(self)}, sh_degree={self.sh_degree}, "
                f"extent={self.extent():.2f})")

    @property
    def sh_degree(self):
        """SH degree implied by the coefficient count."""
        return int(np.sqrt(self.sh.shape[1])) - 1

    def covariances(self):
        """Return ``(n, 3, 3)`` world-space covariance matrices."""
        rot = quaternion_to_rotation(self.quaternions)
        # R @ diag(s^2) @ R^T, computed without materialising diag matrices.
        scaled = rot * (self.scales[:, None, :] ** 2)
        return scaled @ np.transpose(rot, (0, 2, 1))

    def extent(self):
        """Diagonal of the positions' bounding box; a cheap scene scale."""
        if len(self) == 0:
            return 0.0
        span = self.positions.max(axis=0) - self.positions.min(axis=0)
        return float(np.linalg.norm(span))

    def subset(self, index):
        """Return a new cloud containing the Gaussians selected by ``index``."""
        return GaussianCloud(
            self.positions[index],
            self.scales[index],
            self.quaternions[index],
            self.opacities[index],
            self.sh[index],
        )

    @classmethod
    def concatenate(cls, clouds):
        """Concatenate several clouds (all must share the SH degree)."""
        clouds = list(clouds)
        if not clouds:
            raise ValueError("need at least one cloud to concatenate")
        degrees = {c.sh.shape[1] for c in clouds}
        if len(degrees) != 1:
            raise ValueError(f"mismatched SH coefficient counts: {sorted(degrees)}")
        return cls(
            np.concatenate([c.positions for c in clouds]),
            np.concatenate([c.scales for c in clouds]),
            np.concatenate([c.quaternions for c in clouds]),
            np.concatenate([c.opacities for c in clouds]),
            np.concatenate([c.sh for c in clouds]),
        )

    @classmethod
    def empty(cls, sh_degree=0):
        """An empty cloud with the given SH degree."""
        k = num_sh_coeffs(sh_degree)
        return cls(
            np.empty((0, 3)), np.ones((0, 3)), np.tile([1.0, 0, 0, 0], (0, 1)).reshape(0, 4),
            np.empty(0), np.empty((0, k, 3)),
        )

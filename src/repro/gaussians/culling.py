"""View-frustum and opacity culling of 3D Gaussians.

Matches the paper's preprocessing step: "we first perform frustum culling to
exclude invisible Gaussians" (Section III-A).  Culling is conservative —
a Gaussian survives if any part of its projected footprint could touch the
screen.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.projection import ALPHA_EPS


def frustum_cull(cloud, camera, guard_band=1.3):
    """Return a boolean keep-mask over the cloud's Gaussians.

    A Gaussian is kept when:

    * its centre depth lies in ``(znear, zfar)``;
    * its opacity is at least ``ALPHA_EPS`` (it could produce a visible
      fragment at all); and
    * its projected centre falls within the screen rectangle expanded by a
      conservative radius estimate (``guard_band`` times the largest world
      scale, projected at the centre depth).

    Parameters
    ----------
    cloud:
        Gaussians to test.
    camera:
        Viewing camera.
    guard_band:
        Multiplier on the projected-extent estimate; larger values cull less
        aggressively.  The default matches the 1.3x guard band used by the
        3DGS reference implementation.
    """
    if not isinstance(cloud, GaussianCloud):
        raise TypeError(f"cloud must be a GaussianCloud, got {type(cloud).__name__}")
    if not isinstance(camera, Camera):
        raise TypeError(f"camera must be a Camera, got {type(camera).__name__}")
    cam = camera.to_camera_space(cloud.positions)
    z = cam[:, 2]
    in_depth = (z > camera.znear) & (z < camera.zfar)
    visible_alpha = cloud.opacities >= ALPHA_EPS

    safe_z = np.where(in_depth, z, np.inf)
    u = camera.fx * cam[:, 0] / safe_z + camera.cx
    v = camera.fy * cam[:, 1] / safe_z + camera.cy
    # Conservative projected radius: the largest 3-sigma world extent scaled
    # by focal / depth.
    world_radius = 3.0 * cloud.scales.max(axis=1)
    pix_radius = guard_band * world_radius * max(camera.fx, camera.fy) / safe_z
    on_screen = (
        (u + pix_radius >= 0.0)
        & (u - pix_radius <= camera.width)
        & (v + pix_radius >= 0.0)
        & (v - pix_radius <= camera.height)
    )
    return in_depth & visible_alpha & on_screen

"""Pinhole camera model and viewpoint trajectory helpers.

The camera follows the 3D Gaussian splatting convention: a world-to-camera
rigid transform (rotation ``R`` and translation ``t``), focal lengths in
pixels, and a principal point.  Camera space looks down +z (a point is in
front of the camera when its camera-space z exceeds ``znear``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, check_shape


class Camera:
    """A pinhole camera with a world-to-camera transform.

    Parameters
    ----------
    rotation:
        ``(3, 3)`` world-to-camera rotation matrix.
    translation:
        ``(3,)`` world-to-camera translation (``x_cam = R @ x_world + t``).
    fx, fy:
        Focal lengths in pixels.
    width, height:
        Image size in pixels.
    znear, zfar:
        Near/far clip planes in camera-space depth.
    """

    def __init__(self, rotation, translation, fx, fy, width, height,
                 znear=0.05, zfar=1000.0):
        self.rotation = np.asarray(rotation, dtype=np.float64)
        self.translation = np.asarray(translation, dtype=np.float64)
        check_shape("rotation", self.rotation, (3, 3))
        check_shape("translation", self.translation, (3,))
        self.fx = float(check_positive("fx", fx))
        self.fy = float(check_positive("fy", fy))
        self.width = int(check_positive("width", width))
        self.height = int(check_positive("height", height))
        self.znear = float(check_positive("znear", znear))
        self.zfar = float(check_positive("zfar", zfar))
        if self.zfar <= self.znear:
            raise ValueError(f"zfar ({zfar}) must exceed znear ({znear})")
        self.cx = self.width / 2.0
        self.cy = self.height / 2.0

    @classmethod
    def look_at(cls, eye, target, up=(0.0, 1.0, 0.0), fov_x_deg=60.0,
                width=256, height=256, **kwargs):
        """Build a camera at ``eye`` looking toward ``target``.

        ``fov_x_deg`` is the horizontal field of view; ``fy`` is chosen to
        keep pixels square.
        """
        eye = np.asarray(eye, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        up = np.asarray(up, dtype=np.float64)
        forward = target - eye
        norm = np.linalg.norm(forward)
        if norm < 1e-12:
            raise ValueError("eye and target coincide; cannot derive a view direction")
        forward = forward / norm
        right = np.cross(forward, up)
        right_norm = np.linalg.norm(right)
        if right_norm < 1e-12:
            raise ValueError("up vector is parallel to the view direction")
        right = right / right_norm
        true_up = np.cross(right, forward)
        # Rows of the world-to-camera rotation are the camera axes expressed
        # in world coordinates; camera looks down +z.
        rotation = np.stack([right, -true_up, forward])
        translation = -rotation @ eye
        fov_x = np.deg2rad(fov_x_deg)
        fx = (width / 2.0) / np.tan(fov_x / 2.0)
        return cls(rotation, translation, fx=fx, fy=fx, width=width,
                   height=height, **kwargs)

    @property
    def position(self):
        """World-space camera position."""
        return -self.rotation.T @ self.translation

    @property
    def resolution(self):
        """``(width, height)`` tuple."""
        return (self.width, self.height)

    def to_camera_space(self, points):
        """Transform ``(n, 3)`` world points into camera space."""
        points = check_shape("points", np.asarray(points, dtype=np.float64), (None, 3))
        return points @ self.rotation.T + self.translation

    def project(self, points):
        """Project ``(n, 3)`` world points to ``(n, 2)`` pixel coordinates.

        Points behind the near plane project to NaN rather than wrapping
        around, so callers can detect them.
        """
        cam = self.to_camera_space(points)
        z = cam[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            u = self.fx * cam[:, 0] / z + self.cx
            v = self.fy * cam[:, 1] / z + self.cy
        uv = np.stack([u, v], axis=1)
        uv[z < self.znear] = np.nan
        return uv


def orbit_viewpoints(center, radius, n_views, height=0.0, fov_x_deg=60.0,
                     width=256, img_height=256, phase=0.0):
    """Generate ``n_views`` cameras orbiting ``center`` at ``radius``.

    This mirrors the paper's Figure 21 experiment, which sweeps all dataset
    viewpoints; an orbit is the canonical synthetic stand-in.

    Parameters
    ----------
    center:
        ``(3,)`` orbit centre (the look-at target).
    radius:
        Orbit radius; must be positive.
    n_views:
        Number of evenly spaced viewpoints.
    height:
        Camera elevation above the orbit plane.
    phase:
        Angular offset of the first viewpoint in radians.
    """
    check_positive("radius", radius)
    check_positive("n_views", n_views)
    center = np.asarray(center, dtype=np.float64)
    cameras = []
    for k in range(int(n_views)):
        angle = phase + 2.0 * np.pi * k / int(n_views)
        eye = center + np.array([
            radius * np.cos(angle),
            height,
            radius * np.sin(angle),
        ])
        cameras.append(Camera.look_at(eye, center, fov_x_deg=fov_x_deg,
                                      width=width, height=img_height))
    return cameras

"""Real spherical-harmonics colour evaluation (3DGS convention).

3D Gaussian splatting stores view-dependent colour as SH coefficients up to
degree 3 and evaluates them along the normalised camera-to-Gaussian
direction, then shifts by +0.5 and clamps at zero.  The basis constants match
the reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_shape

_C0 = 0.28209479177387814
_C1 = 0.4886025119029199
_C2 = (1.0925484305920792, -1.0925484305920792, 0.31539156525252005,
       -1.0925484305920792, 0.5462742152960396)
_C3 = (-0.5900435899266435, 2.890611442640554, -0.4570457994644658,
       0.3731763325901154, -0.4570457994644658, 1.445305721320277,
       -0.5900435899266435)


def num_sh_coeffs(degree):
    """Number of SH coefficients for ``degree`` (0..3): ``(degree + 1)**2``."""
    if degree not in (0, 1, 2, 3):
        raise ValueError(f"SH degree must be 0..3, got {degree}")
    return (degree + 1) ** 2


def eval_sh(sh, directions):
    """Evaluate SH colour for each Gaussian along per-Gaussian directions.

    Parameters
    ----------
    sh:
        ``(n, k, 3)`` coefficients; ``k`` determines the degree.
    directions:
        ``(n, 3)`` unit view directions (Gaussian centre minus camera,
        normalised).  Normalisation is enforced here for safety.

    Returns
    -------
    ``(n, 3)`` RGB colours, shifted by +0.5 and clamped to ``[0, +inf)`` as in
    the 3DGS reference renderer.
    """
    sh = np.asarray(sh, dtype=np.float64)
    directions = check_shape(
        "directions", np.asarray(directions, dtype=np.float64), (None, 3))
    if sh.ndim != 3 or sh.shape[0] != directions.shape[0] or sh.shape[2] != 3:
        raise ValueError(
            f"sh must have shape (n, k, 3) matching directions, got {sh.shape}")
    k = sh.shape[1]
    degree = int(np.sqrt(k)) - 1
    if (degree + 1) ** 2 != k:
        raise ValueError(f"sh coefficient count {k} is not a perfect square")

    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms = np.where(norms < 1e-12, 1.0, norms)
    d = directions / norms
    x, y, z = d[:, 0], d[:, 1], d[:, 2]

    color = _C0 * sh[:, 0]
    if degree >= 1:
        color = (color
                 - _C1 * y[:, None] * sh[:, 1]
                 + _C1 * z[:, None] * sh[:, 2]
                 - _C1 * x[:, None] * sh[:, 3])
    if degree >= 2:
        xx, yy, zz = x * x, y * y, z * z
        xy, yz, xz = x * y, y * z, x * z
        color = (color
                 + _C2[0] * xy[:, None] * sh[:, 4]
                 + _C2[1] * yz[:, None] * sh[:, 5]
                 + _C2[2] * (2.0 * zz - xx - yy)[:, None] * sh[:, 6]
                 + _C2[3] * xz[:, None] * sh[:, 7]
                 + _C2[4] * (xx - yy)[:, None] * sh[:, 8])
    if degree >= 3:
        xx, yy, zz = x * x, y * y, z * z
        xy, yz, xz = x * y, y * z, x * z
        color = (color
                 + _C3[0] * (y * (3 * xx - yy))[:, None] * sh[:, 9]
                 + _C3[1] * (xy * z)[:, None] * sh[:, 10]
                 + _C3[2] * (y * (4 * zz - xx - yy))[:, None] * sh[:, 11]
                 + _C3[3] * (z * (2 * zz - 3 * xx - 3 * yy))[:, None] * sh[:, 12]
                 + _C3[4] * (x * (4 * zz - xx - yy))[:, None] * sh[:, 13]
                 + _C3[5] * (z * (xx - yy))[:, None] * sh[:, 14]
                 + _C3[6] * (x * (xx - 3 * yy))[:, None] * sh[:, 15])
    return np.maximum(color + 0.5, 0.0)


def rgb_to_sh_dc(rgb):
    """Convert an RGB colour to the degree-0 (DC) SH coefficient.

    Inverse of the DC term of :func:`eval_sh`: a cloud whose only SH
    coefficient is ``rgb_to_sh_dc(c)`` renders with constant colour ``c``.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    return (rgb - 0.5) / _C0

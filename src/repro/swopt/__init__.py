"""Software-only optimisations on the hardware pipeline (Section IV).

The paper evaluates two API-level attempts to fix volume rendering on
unmodified hardware and shows both fall short — motivating VR-Pipe:

* :mod:`repro.swopt.inshader` — pixel blending inside the fragment shader
  using the fragment-shader-interlock extension (Figure 10): correct but
  several times slower than ROP blending due to lock overhead.
* :mod:`repro.swopt.multipass` — Algorithm 1's N-pass rendering with a
  stencil-based early-termination check between passes (Figure 11): modest
  gains on large scenes, losses elsewhere, and a scene-dependent optimal N.
"""

from repro.swopt.inshader import InShaderModel, inshader_comparison
from repro.swopt.multipass import MultipassResult, run_multipass, multipass_sweep

__all__ = [
    "InShaderModel",
    "inshader_comparison",
    "MultipassResult",
    "run_multipass",
    "multipass_sweep",
]

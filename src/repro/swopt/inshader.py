"""In-shader blending with and without fragment-shader interlock (§IV-A).

Three ways to blend the same fragment stream:

* **ROP-based** — the normal fixed-function path (the baseline pipeline
  simulation's cycle count).
* **In-shader with interlock** — fragments blend inside the shader guarded
  by ``GL_ARB_fragment_shader_interlock`` configured for primitive-ordered
  entry.  Correct, but every surviving fragment pays the lock acquisition
  overhead, and same-pixel critical sections serialise.
* **In-shader without interlock** — fragments race; fast but produces
  non-deterministic colours (the paper runs it only to show the overhead is
  in the lock, not the raster operations).

The lock cost constant is calibrated so the with-extension slowdown lands in
the paper's 3-10x band (Figure 10, log scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hwmodel.pipeline import GraphicsPipeline
from repro.hwmodel.units import warps_for_quads
from repro.render.fragstream import FragmentStream


@dataclass
class InShaderModel:
    """Calibrated costs of the in-shader blending paths (issue slots).

    ``lock_overhead_cycles`` models ordered-interlock acquisition: the
    shader spins until every earlier fragment for any pixel in its quad has
    released the lock.  ``critical_section_cycles`` is the locked
    load-blend-store; ``plain_blend_cycles`` the unguarded read-modify-write.
    """

    lock_overhead_cycles: float = 48.0
    critical_section_cycles: float = 20.0
    plain_blend_cycles: float = 10.0
    issue_slots: float = 64.0
    frag_shader_cycles_per_warp: float = 26.0


def inshader_comparison(stream, config, model=None, baseline_draw=None):
    """Compare the three blending strategies on one fragment stream.

    ``baseline_draw`` optionally supplies a precomputed baseline-variant
    :class:`~repro.hwmodel.pipeline.DrawResult` for this stream (e.g. the
    engine's memoised ``get_draw(scene, "baseline", ...)``), saving the
    full pipeline re-simulation — it must be the same computation as the
    inline draw: ``config.variant(enable_het=False, enable_qm=False)``.

    Returns a dict with absolute cycles and times normalised to the
    ROP-based path::

        {"rop_cycles": ..., "interlock_cycles": ..., "no_interlock_cycles": ...,
         "interlock_normalized": ..., "no_interlock_normalized": ...}
    """
    if not isinstance(stream, FragmentStream):
        raise TypeError(
            f"stream must be a FragmentStream, got {type(stream).__name__}")
    model = model or InShaderModel()

    if baseline_draw is not None:
        rop_cycles = baseline_draw.cycles
    else:
        baseline_cfg = config.variant(enable_het=False, enable_qm=False)
        rop_cycles = GraphicsPipeline(baseline_cfg).draw(stream).cycles

    quads = stream.quad_table(config.termination_alpha)
    n_quads = len(quads)
    alive_frags = int(stream.unpruned.sum())

    # Shading cost shared by both in-shader paths (the raster front-end is
    # unchanged, and for these paths the SMs are the bottleneck).
    warps = warps_for_quads(n_quads)
    shade = warps * model.frag_shader_cycles_per_warp / model.issue_slots

    # Ordered interlock: per-fragment acquisition overhead, plus the longest
    # same-pixel critical-section chain (fragments for one pixel serialise).
    counts = stream.fragments_per_pixel("unpruned")
    deepest_pixel = int(counts.max()) if counts.size else 0
    interlock = shade + max(
        alive_frags * model.lock_overhead_cycles / model.issue_slots,
        deepest_pixel * model.critical_section_cycles,
    )

    no_interlock = shade + alive_frags * model.plain_blend_cycles / model.issue_slots

    return {
        "rop_cycles": float(rop_cycles),
        "interlock_cycles": float(interlock),
        "no_interlock_cycles": float(no_interlock),
        "interlock_normalized": float(interlock / rop_cycles),
        "no_interlock_normalized": float(no_interlock / rop_cycles),
    }

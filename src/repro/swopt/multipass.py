"""Multi-pass rendering with stencil-based early termination (Algorithm 1).

The depth-sorted splats are split into N equal batches.  Each pass issues
two draw calls: (1) draw the batch, with the stencil test discarding
fragments of pixels terminated in *earlier* passes, and (2) draw a
screen-sized rectangle whose shader reads each pixel's accumulated alpha and
sets the stencil for newly terminated pixels.  Termination state therefore
only advances at pass boundaries — the reason the software approach cannot
match fragment-granular HET — while each extra pass adds a full-screen
stencil-update draw and a pipeline drain (the paper's "overhead from
additional draw calls").

Cycle costs reuse the hardware model's unit constants through a closed-form
streaming-bottleneck evaluation per pass (bin dynamics are skipped; they do
not change at pass granularity, and the full simulator confirms the N=1
case).

Two engines, selected by the ``swmodel`` knob (shared with the warp model,
see :func:`repro.swrender.warp_model.resolve_swmodel`):

* :func:`_multipass_workspace_ir` reads the quad/batch structure off the
  stream's :class:`~repro.render.frameir.FrameIR` quad table and
  digestion's cached pixel-sorted arrival chain — no fragment lexsort and
  no ``np.unique`` over quad keys;
* :func:`_multipass_workspace_legacy` is the retained fragment-sort
  oracle (lexsort + ``np.unique``), kept bit-exact for the equivalence
  tests.

Either workspace holds every stream-dependent, N-independent structure,
so :func:`multipass_sweep` builds it once and reuses it across all pass
counts instead of re-sorting the stream per N.
"""

from __future__ import annotations

import numpy as np

from repro.hwmodel.config import GPUConfig
from repro.hwmodel.units import warps_for_quads
from repro.render.fragstream import FragmentStream


#: Pipeline drain + render-target barrier + driver overhead charged per
#: draw call, in cycles.  The stencil handshake forces a wait-for-idle and
#: a render-target barrier between the batch draw and the stencil-update
#: draw; on real hardware this is fixed time (~tens of microseconds), so at
#: this reproduction's reduced scene scale it is *relatively* larger than in
#: the paper — the calibration keeps the Figure 11 shape (peak at an
#: intermediate N, modest maxima, losses for small scenes).
DRAW_CALL_OVERHEAD_CYCLES = 18000.0


class MultipassResult:
    """Outcome of an N-pass render."""

    def __init__(self, n_passes, batch_cycles, stencil_cycles, total_cycles,
                 fragments_blended):
        self.n_passes = int(n_passes)
        self.batch_cycles = batch_cycles
        self.stencil_cycles = stencil_cycles
        self.total_cycles = float(total_cycles)
        self.fragments_blended = int(fragments_blended)

    def speedup_over(self, baseline_cycles):
        return baseline_cycles / self.total_cycles


def _pass_cycles(config, n_prims, quads_total, quads_to_sm, quads_to_crop):
    """Closed-form streaming-bottleneck cycles for one batch draw call.

    The stencil test kills fragments *before shading*, so only the SM and
    CROP see the reduced counts; the rasteriser, TC/PROP dispatch path and
    the ZROP stencil test still process every rasterised quad of the batch
    — the structural reason multi-pass rendering cannot match HET even
    before overheads.
    """
    cfg = config
    busy = {
        "raster": max(n_prims * cfg.setup_cycles_per_prim,
                      quads_total / cfg.fine_raster_quads_per_cycle),
        "prop": ((cfg.prop_dispatch_weight * quads_total + quads_to_crop)
                 / cfg.prop_quads_per_cycle),
        "zrop": quads_total / cfg.zrop_quads_per_cycle,  # stencil test
        "sm": (warps_for_quads(quads_to_sm) * cfg.frag_shader_cycles_per_warp
               / cfg.sm_issue_slots_per_cycle),
        "crop": quads_to_crop / cfg.crop_quads_per_cycle,
    }
    return max(busy.values()) + cfg.pipeline_fill_cycles


def _stencil_update_cycles(config, width, height):
    """Cycles for the screen-sized stencil-update draw call."""
    cfg = config
    n_quads = (width * height) // 4
    busy = {
        "raster": n_quads / cfg.fine_raster_quads_per_cycle,
        "sm": (warps_for_quads(n_quads) * cfg.frag_shader_cycles_per_warp
               / cfg.sm_issue_slots_per_cycle),
        "zrop": n_quads / cfg.zrop_quads_per_cycle,
    }
    return max(busy.values()) + cfg.pipeline_fill_cycles


class _MultipassWorkspace:
    """Stream-dependent, N-independent structure shared across a sweep.

    Everything downstream of the pixel sort and the quad identification —
    the only expensive steps — lives here: the pixel-sorted fragment view
    (pixel / primitive / arrival alpha / unpruned), the per-fragment quad
    index in the same sorted domain, and the per-quad primitive id.  The
    per-N work is then pure bincounts and boolean scatters.
    """

    __slots__ = ("pix_sorted", "prim_sorted", "arrival_sorted",
                 "unpruned_sorted", "quad_of_frag", "quad_prim", "n_quads")

    def __init__(self, pix_sorted, prim_sorted, arrival_sorted,
                 unpruned_sorted, quad_of_frag, quad_prim):
        self.pix_sorted = pix_sorted
        self.prim_sorted = prim_sorted
        self.arrival_sorted = arrival_sorted
        self.unpruned_sorted = unpruned_sorted
        self.quad_of_frag = quad_of_frag
        self.quad_prim = quad_prim
        self.n_quads = quad_prim.shape[0]


def _multipass_workspace_ir(stream):
    """Workspace off the FrameIR quad table and the cached arrival chain.

    The pixel-sorted view comes straight from digestion's shared caches
    (one radix grouping per stream, already built for the warp model and
    the hw backends); the fragment→quad map inverts the IR's four per-quad
    emission slots — the IR quads are exactly the legacy ``np.unique``
    quad set (PR 5's equality contract), so every per-batch count below is
    identical to the oracle's.
    """
    stream._ensure_arrival_sorted()
    order = stream._pixel_order
    pix_sorted = stream._cache["pix_sorted"]
    arrival_sorted = stream._cache["arrival_sorted"]

    quads = stream.frameir.quads()
    n = len(stream)
    quad_of_frag_emit = np.empty(n, dtype=np.int64)
    qidx = np.arange(len(quads), dtype=np.int64)
    for s in quads.slots():
        present = s < n
        quad_of_frag_emit[s[present]] = qidx[present]
    return _MultipassWorkspace(
        pix_sorted=pix_sorted,
        prim_sorted=stream.prim_ids[order].astype(np.int64),
        arrival_sorted=arrival_sorted,
        unpruned_sorted=stream.unpruned[order],
        quad_of_frag=quad_of_frag_emit[order],
        quad_prim=quads.meta()["prim_ids"],
    )


def _multipass_workspace_legacy(stream):
    """The retained fragment-sort oracle workspace: a full lexsort of the
    stream plus a ``np.unique`` over (prim, quad) keys.

    A quad key embeds its primitive, so every fragment of a quad shares
    one batch — the per-quad primitive id read off the unique keys
    replaces the old ``np.maximum.at`` scatter exactly.
    """
    order = np.lexsort((stream.prim_ids, stream.pixel_ids))
    qx = (stream.x // 2).astype(np.int64)
    qy = (stream.y // 2).astype(np.int64)
    quads_x = -(-stream.width // 2)
    quads_y = -(-stream.height // 2)
    quad_key = (stream.prim_ids.astype(np.int64) * (quads_x * quads_y)
                + qy * quads_x + qx)
    unique_quads, inverse = np.unique(quad_key, return_inverse=True)
    return _MultipassWorkspace(
        pix_sorted=stream.pixel_ids[order],
        prim_sorted=stream.prim_ids[order].astype(np.int64),
        arrival_sorted=stream.arrival_alpha[order],
        unpruned_sorted=stream.unpruned[order],
        quad_of_frag=inverse[order],
        quad_prim=unique_quads // (quads_x * quads_y),
    )


def _multipass_workspace(stream, swmodel):
    from repro.swrender.warp_model import resolve_swmodel

    explicit = swmodel is not None
    swmodel = resolve_swmodel(swmodel)
    if swmodel == "frameir" and stream.frameir is None and explicit:
        # Same contract as the warp model (and the ir knob): the env
        # default stays best-effort, an explicit request is strict.
        raise ValueError(
            "swmodel='frameir' requires a stream carrying a FrameIR; "
            "rasterize with ir='auto'/'frameir' or use swmodel='auto'")
    if swmodel != "legacy" and stream.frameir is not None:
        return _multipass_workspace_ir(stream)
    return _multipass_workspace_legacy(stream)


def run_multipass(stream, n_passes, config=None,
                  threshold=None, swmodel=None, _workspace=None):
    """Simulate Algorithm 1 with ``n_passes`` over a fragment stream."""
    if not isinstance(stream, FragmentStream):
        raise TypeError(
            f"stream must be a FragmentStream, got {type(stream).__name__}")
    if n_passes < 1:
        raise ValueError(f"n_passes must be >= 1, got {n_passes}")
    config = config or GPUConfig()
    threshold = config.termination_alpha if threshold is None else threshold

    n_prims = stream.prim_colors.shape[0]
    if n_prims == 0 or len(stream) == 0:
        return MultipassResult(n_passes, [], [], 0.0, 0)
    ws = _workspace if _workspace is not None \
        else _multipass_workspace(stream, swmodel)

    # Batch of each primitive: N equal slices of the depth order.  The
    # split is non-decreasing in primitive id, and fragments within a
    # pixel arrive primitive-ascending, so (pixel, batch) runs are
    # contiguous in the pixel-sorted domain — the pass-start accumulated
    # alpha (stencil state frozen at pass boundaries) is a run-boundary
    # gather, no per-N sort.
    batch_of_prim = np.minimum(
        (np.arange(n_prims, dtype=np.int64) * n_passes) // max(n_prims, 1),
        n_passes - 1)
    fb = batch_of_prim[ws.prim_sorted]
    n = fb.shape[0]
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.logical_or(ws.pix_sorted[1:] != ws.pix_sorted[:-1],
                  fb[1:] != fb[:-1], out=new_run[1:])
    run_starts = np.flatnonzero(new_run)
    lengths = np.diff(np.concatenate(
        (run_starts, np.asarray([n], dtype=np.int64))))
    pass_start = np.repeat(ws.arrival_sorted[run_starts], lengths)

    stencil_pass = pass_start < threshold
    blended = stencil_pass & ws.unpruned_sorted

    # Quad-level aggregation per batch: a quad's fragments share one
    # primitive (the quad identity embeds it), hence one batch.
    quad_sm = np.zeros(ws.n_quads, dtype=bool)
    quad_sm[ws.quad_of_frag[stencil_pass]] = True
    quad_crop = np.zeros(ws.n_quads, dtype=bool)
    quad_crop[ws.quad_of_frag[blended]] = True
    quad_batch = batch_of_prim[ws.quad_prim]

    prims_per_batch = np.bincount(batch_of_prim, minlength=n_passes)
    quads_total = np.bincount(quad_batch, minlength=n_passes)
    quads_to_sm = np.bincount(quad_batch[quad_sm], minlength=n_passes)
    quads_to_crop = np.bincount(quad_batch[quad_crop], minlength=n_passes)

    batch_cycles = []
    stencil_cycles = []
    total = 0.0
    for b in range(n_passes):
        cyc = _pass_cycles(
            config,
            n_prims=int(prims_per_batch[b]),
            quads_total=int(quads_total[b]),
            quads_to_sm=int(quads_to_sm[b]),
            quads_to_crop=int(quads_to_crop[b]),
        ) + DRAW_CALL_OVERHEAD_CYCLES
        batch_cycles.append(cyc)
        total += cyc
        if b < n_passes - 1:
            stencil = (_stencil_update_cycles(config, stream.width,
                                              stream.height)
                       + DRAW_CALL_OVERHEAD_CYCLES)
            stencil_cycles.append(stencil)
            total += stencil

    return MultipassResult(
        n_passes, batch_cycles, stencil_cycles, total,
        fragments_blended=int(blended.sum()))


def multipass_sweep(stream, pass_counts, config=None, swmodel=None):
    """Speedup over the single-pass baseline for each N (Figure 11).

    The sort/quad workspace is built once and shared across every pass
    count — the per-N work is batching arithmetic only.
    """
    config = config or GPUConfig()
    ws = None
    if stream.prim_colors.shape[0] and len(stream):
        ws = _multipass_workspace(stream, swmodel)
    baseline = run_multipass(stream, 1, config, swmodel=swmodel,
                             _workspace=ws)
    sweep = {}
    for n in pass_counts:
        result = run_multipass(stream, int(n), config, swmodel=swmodel,
                               _workspace=ws)
        sweep[int(n)] = result.speedup_over(baseline.total_cycles)
    return sweep

"""Multi-pass rendering with stencil-based early termination (Algorithm 1).

The depth-sorted splats are split into N equal batches.  Each pass issues
two draw calls: (1) draw the batch, with the stencil test discarding
fragments of pixels terminated in *earlier* passes, and (2) draw a
screen-sized rectangle whose shader reads each pixel's accumulated alpha and
sets the stencil for newly terminated pixels.  Termination state therefore
only advances at pass boundaries — the reason the software approach cannot
match fragment-granular HET — while each extra pass adds a full-screen
stencil-update draw and a pipeline drain (the paper's "overhead from
additional draw calls").

Cycle costs reuse the hardware model's unit constants through a closed-form
streaming-bottleneck evaluation per pass (bin dynamics are skipped; they do
not change at pass granularity, and the full simulator confirms the N=1
case).
"""

from __future__ import annotations

import numpy as np

from repro.hwmodel.config import GPUConfig
from repro.hwmodel.units import warps_for_quads
from repro.render.fragstream import FragmentStream
from repro.utils.arrays import segment_boundaries


#: Pipeline drain + render-target barrier + driver overhead charged per
#: draw call, in cycles.  The stencil handshake forces a wait-for-idle and
#: a render-target barrier between the batch draw and the stencil-update
#: draw; on real hardware this is fixed time (~tens of microseconds), so at
#: this reproduction's reduced scene scale it is *relatively* larger than in
#: the paper — the calibration keeps the Figure 11 shape (peak at an
#: intermediate N, modest maxima, losses for small scenes).
DRAW_CALL_OVERHEAD_CYCLES = 18000.0


class MultipassResult:
    """Outcome of an N-pass render."""

    def __init__(self, n_passes, batch_cycles, stencil_cycles, total_cycles,
                 fragments_blended):
        self.n_passes = int(n_passes)
        self.batch_cycles = batch_cycles
        self.stencil_cycles = stencil_cycles
        self.total_cycles = float(total_cycles)
        self.fragments_blended = int(fragments_blended)

    def speedup_over(self, baseline_cycles):
        return baseline_cycles / self.total_cycles


def _pass_cycles(config, n_prims, quads_total, quads_to_sm, quads_to_crop):
    """Closed-form streaming-bottleneck cycles for one batch draw call.

    The stencil test kills fragments *before shading*, so only the SM and
    CROP see the reduced counts; the rasteriser, TC/PROP dispatch path and
    the ZROP stencil test still process every rasterised quad of the batch
    — the structural reason multi-pass rendering cannot match HET even
    before overheads.
    """
    cfg = config
    busy = {
        "raster": max(n_prims * cfg.setup_cycles_per_prim,
                      quads_total / cfg.fine_raster_quads_per_cycle),
        "prop": ((cfg.prop_dispatch_weight * quads_total + quads_to_crop)
                 / cfg.prop_quads_per_cycle),
        "zrop": quads_total / cfg.zrop_quads_per_cycle,  # stencil test
        "sm": (warps_for_quads(quads_to_sm) * cfg.frag_shader_cycles_per_warp
               / cfg.sm_issue_slots_per_cycle),
        "crop": quads_to_crop / cfg.crop_quads_per_cycle,
    }
    return max(busy.values()) + cfg.pipeline_fill_cycles


def _stencil_update_cycles(config, width, height):
    """Cycles for the screen-sized stencil-update draw call."""
    cfg = config
    n_quads = (width * height) // 4
    busy = {
        "raster": n_quads / cfg.fine_raster_quads_per_cycle,
        "sm": (warps_for_quads(n_quads) * cfg.frag_shader_cycles_per_warp
               / cfg.sm_issue_slots_per_cycle),
        "zrop": n_quads / cfg.zrop_quads_per_cycle,
    }
    return max(busy.values()) + cfg.pipeline_fill_cycles


def run_multipass(stream, n_passes, config=None,
                  threshold=None):
    """Simulate Algorithm 1 with ``n_passes`` over a fragment stream."""
    if not isinstance(stream, FragmentStream):
        raise TypeError(
            f"stream must be a FragmentStream, got {type(stream).__name__}")
    if n_passes < 1:
        raise ValueError(f"n_passes must be >= 1, got {n_passes}")
    config = config or GPUConfig()
    threshold = config.termination_alpha if threshold is None else threshold

    n_prims = stream.prim_colors.shape[0]
    if n_prims == 0 or len(stream) == 0:
        return MultipassResult(n_passes, [], [], 0.0, 0)

    # Batch of each primitive: N equal slices of the depth order.
    batch_of_prim = np.minimum(
        (np.arange(n_prims, dtype=np.int64) * n_passes) // max(n_prims, 1),
        n_passes - 1)
    frag_batch = batch_of_prim[stream.prim_ids]

    # Pass-start accumulated alpha per fragment: the arrival alpha of the
    # first same-pixel fragment in the same batch (stencil state is frozen
    # at pass boundaries).
    order = np.lexsort((stream.prim_ids, stream.pixel_ids))
    run_key = stream.pixel_ids[order] * n_passes + frag_batch[order]
    starts = segment_boundaries(run_key)
    lengths = np.diff(np.concatenate((starts, [len(stream)])))
    pass_start_sorted = np.repeat(stream.arrival_alpha[order][starts], lengths)
    pass_start = np.empty(len(stream))
    pass_start[order] = pass_start_sorted

    stencil_pass = pass_start < threshold
    blended = stencil_pass & stream.unpruned

    # Quad-level aggregation per batch.
    qx = (stream.x // 2).astype(np.int64)
    qy = (stream.y // 2).astype(np.int64)
    quads_x = -(-stream.width // 2)
    quads_y = -(-stream.height // 2)
    quad_key = (stream.prim_ids.astype(np.int64) * (quads_x * quads_y)
                + qy * quads_x + qx)
    unique_quads, inverse = np.unique(quad_key, return_inverse=True)
    n_quads = unique_quads.shape[0]
    quad_batch = np.zeros(n_quads, dtype=np.int64)
    np.maximum.at(quad_batch, inverse, frag_batch)
    quad_sm = np.zeros(n_quads, dtype=bool)
    quad_sm[inverse[stencil_pass]] = True
    quad_crop = np.zeros(n_quads, dtype=bool)
    quad_crop[inverse[blended]] = True

    batch_cycles = []
    stencil_cycles = []
    total = 0.0
    prims_per_batch = np.bincount(batch_of_prim, minlength=n_passes)
    for b in range(n_passes):
        in_batch = quad_batch == b
        cyc = _pass_cycles(
            config,
            n_prims=int(prims_per_batch[b]),
            quads_total=int(in_batch.sum()),
            quads_to_sm=int((in_batch & quad_sm).sum()),
            quads_to_crop=int((in_batch & quad_crop).sum()),
        ) + DRAW_CALL_OVERHEAD_CYCLES
        batch_cycles.append(cyc)
        total += cyc
        if b < n_passes - 1:
            stencil = (_stencil_update_cycles(config, stream.width,
                                              stream.height)
                       + DRAW_CALL_OVERHEAD_CYCLES)
            stencil_cycles.append(stencil)
            total += stencil

    return MultipassResult(
        n_passes, batch_cycles, stencil_cycles, total,
        fragments_blended=int(blended.sum()))


def multipass_sweep(stream, pass_counts, config=None):
    """Speedup over the single-pass baseline for each N (Figure 11)."""
    config = config or GPUConfig()
    baseline = run_multipass(stream, 1, config)
    sweep = {}
    for n in pass_counts:
        result = run_multipass(stream, int(n), config)
        sweep[int(n)] = result.speedup_over(baseline.total_cycles)
    return sweep

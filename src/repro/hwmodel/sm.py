"""SIMT-core (SM) model: warp formation and shading cost.

The shader cores matter to the cycle model only through aggregate issue
bandwidth: a GPC with 16 SMs and 4 warp schedulers each can issue 64
warp-instructions per cycle.  Fragment warps for Gaussian splatting cost
``frag_shader_cycles_per_warp`` issue slots (the conic dot product,
exponential, pruning branch — cheap shaders, per §III-B), and merge warps
pay ``quad_merge_extra_cycles`` per pair for the warp shuffle + partial
blend of Figure 15.
"""

from __future__ import annotations

import numpy as np

from repro.hwmodel.units import (
    QUADS_PER_WARP,
    WARP_SIZE,
    ceil_div,
    warps_for_quads,
)


class ShaderArray:
    """Issue-bandwidth accounting for the GPC's SMs."""

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats

    def shade_vertex_batch(self, n_vertices):
        """Account vertex-shader work for ``n_vertices`` (4 per splat)."""
        if n_vertices == 0:
            return
        warps = ceil_div(n_vertices, WARP_SIZE)
        issue = warps * self.config.vert_shader_cycles_per_warp
        self.stats.units["sm"].add(
            warps, issue / self.config.sm_issue_slots_per_cycle)
        self.stats.n_vertices += int(n_vertices)

    def shade_fragment_batch(self, n_quads, n_merge_pairs=0):
        """Account fragment shading of one dispatch from the PROP.

        ``n_quads`` counts quads entering the shader (merge pairs count as
        two — both are shaded before the partial blend collapses them).
        """
        if n_quads == 0:
            return
        warps = warps_for_quads(n_quads)
        issue = (warps * self.config.frag_shader_cycles_per_warp
                 + n_merge_pairs * self.config.quad_merge_extra_cycles)
        self.stats.units["sm"].add(
            warps, issue / self.config.sm_issue_slots_per_cycle)
        self.stats.warps_launched += warps
        if n_merge_pairs:
            self.stats.merge_warps += min(warps, ceil_div(2 * n_merge_pairs, 8))
        self.stats.quads_to_sm += int(n_quads)
        self.stats.fragments_shaded += int(n_quads) * 4

    def shade_fragment_batches(self, n_quads, n_merge_pairs):
        """Vectorised equivalent of per-flush :meth:`shade_fragment_batch`.

        ``n_quads`` and ``n_merge_pairs`` are parallel per-flush arrays;
        flushes with zero quads contribute nothing, matching the scalar
        early return.  Issue cycles accumulate via
        :meth:`~repro.hwmodel.stats.UnitStats.add_sequence`, keeping the
        totals bit-identical to one call per flush.
        """
        n_quads = np.asarray(n_quads, dtype=np.int64)
        pairs = np.asarray(n_merge_pairs, dtype=np.int64)
        if n_quads.size == 0:
            return
        cfg = self.config
        warps = -(-n_quads // QUADS_PER_WARP)
        issue = (warps * cfg.frag_shader_cycles_per_warp
                 + pairs * cfg.quad_merge_extra_cycles)
        self.stats.units["sm"].add_sequence(
            int(warps.sum()), issue / cfg.sm_issue_slots_per_cycle)
        self.stats.warps_launched += int(warps.sum())
        self.stats.merge_warps += int(
            np.minimum(warps, -(-2 * pairs // 8)).sum())
        self.stats.quads_to_sm += int(n_quads.sum())
        self.stats.fragments_shaded += int(n_quads.sum()) * 4

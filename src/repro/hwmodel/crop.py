"""Colour ROP (CROP): blending throughput, CROP cache, alpha test unit.

Models the §VII-A findings: ROPs operate at quad granularity, blend
``rop_quads_per_cycle`` quads per cycle in RGBA16F (twice that in RGBA8,
because the CROP-cache read bandwidth is the limiter), and fetch pixel
colours through a 16 KB per-GPC cache backed by the L2.

With HET enabled, the CROP also hosts the **alpha test unit**: after each
blend it checks whether the accumulated alpha crossed the termination
threshold *on this fragment* (new >= threshold and old < threshold, the
paper's double-sided test that avoids redundant update signals) and, if so,
signals the ZROP termination update unit.
"""

from __future__ import annotations

import numpy as np

from repro.hwmodel.caches import LRUCache
from repro.hwmodel.units import as_index_array


class CropUnit:
    """Blend accounting plus an exact-LRU CROP cache.

    ``cache`` may be supplied to persist pixel-colour lines across draw
    calls (the microbenchmarks warm the cache in one draw and measure the
    next); by default each draw starts cold.
    """

    def __init__(self, config, stats, cache=None):
        self.config = config
        self.stats = stats
        self.cache = cache if cache is not None else LRUCache(
            config.crop_cache_kb * 1024, config.cache_line_bytes)
        self._owns_cache = cache is None

    def blend_batch(self, n_quads, n_fragments, line_tags):
        """Blend one flush batch's surviving quads.

        Parameters
        ----------
        n_quads:
            Quads reaching the CROP (post pruning/merge).
        n_fragments:
            Fragments actually blended into the colour buffer.
        line_tags:
            Iterable of colour-buffer line tags the batch touches (callers
            pass first-occurrence-unique tags per flush; repeats within a
            flush are guaranteed hits and carry no information).  Any
            iterable works, including one-shot generators — tags are
            normalised to an array before length or traffic accounting.
        """
        if n_quads == 0:
            return
        line_tags = as_index_array(line_tags)
        misses = self.cache.access_many(line_tags, write=True)
        hits = line_tags.shape[0] - misses
        self.stats.crop_cache_hits += hits
        self.stats.crop_cache_misses += misses
        cycles = (n_quads / self.config.crop_quads_per_cycle
                  + misses * self.config.crop_miss_stall_cycles)
        self.stats.units["crop"].add(n_quads, cycles)
        self.stats.quads_to_crop += int(n_quads)
        self.stats.fragments_blended += int(n_fragments)
        if misses:
            # Line fill plus (eventual) dirty writeback.
            bytes_moved = misses * self.config.cache_line_bytes * 2
            self.stats.dram_bytes += bytes_moved
            self.stats.units["dram"].add(
                misses, bytes_moved / self.config.dram_bytes_per_cycle)

    def blend_plan(self, n_crop_quads, n_fragments, line_tags, tag_splits):
        """Batched accounting for every per-flush CROP blend of a draw.

        ``n_crop_quads``/``n_fragments`` are parallel per-flush arrays;
        ``line_tags`` concatenates every flush's first-occurrence-unique
        line tags, with ``tag_splits`` delimiting flushes.  The replay
        runs through the real (possibly shared/warm) LRU cache, so
        hit/miss totals and the end-of-draw cache state are bit-identical
        to one :meth:`blend_batch` call per flush.  DRAM traffic is *not*
        accounted here — the caller interleaves it with the ZROP stream
        to preserve the scalar accumulation order.  Returns the per-flush
        miss counts.
        """
        n_crop_quads = np.asarray(n_crop_quads, dtype=np.int64)
        n_fragments = np.asarray(n_fragments, dtype=np.int64)
        misses = self.cache.access_segmented(line_tags, tag_splits,
                                             write=True)
        n_tags = int(np.asarray(tag_splits, dtype=np.int64)[-1])
        total_misses = int(misses.sum())
        self.stats.crop_cache_hits += n_tags - total_misses
        self.stats.crop_cache_misses += total_misses
        cycles = (n_crop_quads / self.config.crop_quads_per_cycle
                  + misses * self.config.crop_miss_stall_cycles)
        self.stats.units["crop"].add_sequence(int(n_crop_quads.sum()), cycles)
        self.stats.quads_to_crop += int(n_crop_quads.sum())
        self.stats.fragments_blended += int(n_fragments.sum())
        return misses

    def quad_line_tag_pairs(self, qx, qy, width):
        """Interleaved colour-buffer line tags per quad, *without* dedup.

        A 2x2 quad at quad coords (qx, qy) covers pixel rows ``2*qy`` and
        ``2*qy + 1``; with ``bytes_per_pixel`` from the active format, each
        row lands in one cache line horizontally (quads never straddle a
        line boundary because 128 B covers >= 16 pixels).  Returns an int64
        array of 2 tags per quad (row ``2*qy`` first).  This is the single
        definition of the tag layout: :meth:`quad_line_tags` dedups it per
        flush and the batched flush engine dedups the whole-draw stream
        per flush downstream.
        """
        qx = np.asarray(qx, dtype=np.int64)
        qy = np.asarray(qy, dtype=np.int64)
        bpp = self.config.bytes_per_pixel
        line_bytes = self.config.cache_line_bytes
        lines_per_row = max(1, -(-(width * bpp) // line_bytes))
        line_in_row = (qx * 2 * bpp) // line_bytes
        row0 = qy * 2
        tags = np.empty(qx.shape[0] * 2, dtype=np.int64)
        tags[0::2] = row0 * lines_per_row + line_in_row
        tags[1::2] = (row0 + 1) * lines_per_row + line_in_row
        return tags

    def quad_line_tags(self, qx, qy, width):
        """Line tags of :meth:`quad_line_tag_pairs`, first-occurrence-unique."""
        tags = self.quad_line_tag_pairs(qx, qy, width)
        _, first_idx = np.unique(tags, return_index=True)
        return tags[np.sort(first_idx)]

    def finish_draw(self):
        """Flush the cache at end of draw, accounting dirty writebacks.

        Shared caches (microbenchmark probes) stay warm across draws.
        """
        if not self._owns_cache:
            return
        before = self.cache.writebacks
        self.cache.flush()
        written_back = self.cache.writebacks - before
        if written_back:
            bytes_moved = written_back * self.config.cache_line_bytes
            self.stats.dram_bytes += bytes_moved
            self.stats.units["dram"].add(
                written_back, bytes_moved / self.config.dram_bytes_per_cycle)

"""Z/Stencil ROP with the VR-Pipe early-termination extension.

Baseline ZROP performs depth/stencil tests; Gaussian splatting disables
both, so the unit idles.  With HET enabled (Figure 13) it gains:

* a **termination test unit** — when a TC bin flushes, each quad's pixels
  are checked against the termination bit (the stencil MSB); quads whose
  four pixels are all terminated are discarded *before fragment shading*;
* a **termination update unit** — triggered by the CROP's alpha test when a
  blend pushes a pixel across the threshold; it read-modify-writes the
  stencil byte in the z-cache, setting the MSB.

The per-fragment termination state is supplied by the functional core (the
``mask_unterminated`` coverage bitmaps), which models the paper's
fragment-granular test; this unit accounts the work and the z-cache traffic.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.hwmodel.caches import LRUCache
from repro.hwmodel.units import as_index_array


class ZropUnit:
    """Work accounting for the stencil/termination ROP stage.

    Parameters
    ----------
    config:
        The :class:`~repro.hwmodel.config.GPUConfig`.
    stats:
        The draw call's :class:`~repro.hwmodel.stats.PipelineStats`.
    """

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats
        self.zcache = LRUCache(config.zcache_kb * 1024,
                               config.cache_line_bytes)
        # One stencil byte per pixel; a 128 B line covers 128 pixels of a
        # row, i.e. 8 screen tiles wide. Tags derive from tile rows.
        self._stencil_bytes_per_pixel = 1

    def termination_test(self, batch_masks, tile_id, width):
        """Run the flush-time termination test on one TC batch.

        ``batch_masks`` are the quads' ``mask_unterminated`` bitmaps; a quad
        survives when any pixel is still live.  Returns the survivor mask.
        Accounts test throughput and z-cache read traffic.
        """
        masks = np.asarray(batch_masks)
        survivors = masks != 0
        n = masks.shape[0]
        unit = self.stats.units["zrop"]
        unit.add(n, n / self.config.zrop_quads_per_cycle)
        self.stats.zrop_tests += n
        self.stats.quads_discarded_zrop += int(n - survivors.sum())
        # Stencil reads for the tile: the whole tile's stencil footprint is
        # a handful of lines; account one line group per flush.
        tags = self._tile_stencil_tags(tile_id, width)
        misses = self.zcache.access_many(tags, write=False)
        self._account_misses(misses)
        return survivors

    def termination_updates(self, n_updates, pixel_tags=()):
        """Account ``n_updates`` termination-bit RMWs signalled by the CROP.

        ``pixel_tags`` may be any iterable of z-cache line tags (including
        a one-shot generator); it is normalised to an index array before
        any length/traffic accounting.
        """
        if n_updates < 0:
            raise ValueError("n_updates must be >= 0")
        pixel_tags = as_index_array(pixel_tags)
        unit = self.stats.units["zrop"]
        unit.add(n_updates, n_updates * self.config.term_update_cycles)
        self.stats.termination_updates += int(n_updates)
        if pixel_tags.size:
            misses = self.zcache.access_many(pixel_tags, write=True)
            self._account_misses(misses)

    def termination_test_plan(self, flush_tiles, n_flushed, n_survivors,
                              width):
        """Batched accounting for a whole draw's per-flush termination tests.

        Mirrors one :meth:`termination_test` call per flush: unit
        throughput and test/discard counters accumulate sequentially, and
        the z-cache's stencil-line traffic is replayed exactly.  A tile's
        stencil footprint is ``screen_tile_px`` lines determined by the
        tile alone, and the line sets of distinct (tile-row, line-column)
        groups are disjoint — so when the cache holds a whole number of
        such groups and starts empty, the line stream collapses to a
        group-granular LRU (one step per flush instead of 16 line
        accesses), after which the real z-cache is primed with the final
        resident groups so the end-of-draw termination updates see the
        exact state.  Otherwise the full line stream is replayed through
        the cache directly.

        Returns the per-flush z-cache miss counts.  DRAM traffic is *not*
        accounted here: the caller interleaves it with the CROP stream to
        preserve the scalar accumulation order.
        """
        flush_tiles = np.asarray(flush_tiles, dtype=np.int64)
        n_flushed = np.asarray(n_flushed, dtype=np.int64)
        n_survivors = np.asarray(n_survivors, dtype=np.int64)
        n_total = int(n_flushed.sum())
        unit = self.stats.units["zrop"]
        unit.add_sequence(n_total,
                          n_flushed / self.config.zrop_quads_per_cycle)
        self.stats.zrop_tests += n_total
        self.stats.quads_discarded_zrop += int(
            (n_flushed - n_survivors).sum())

        n_flushes = flush_tiles.shape[0]
        if n_flushes == 0:
            return np.zeros(0, dtype=np.int64)
        tile_px = self.config.screen_tile_px
        line_bytes = self.config.cache_line_bytes
        tiles_x = -(-width // tile_px)
        bytes_per_row = width * self._stencil_bytes_per_pixel
        lines_per_row = max(1, -(-bytes_per_row // line_bytes))
        ty, tx = np.divmod(flush_tiles, tiles_x)
        line_in_row = (tx * tile_px * self._stencil_bytes_per_pixel
                       // line_bytes)
        # First line tag of each flush's group; tags are unique per
        # (tile-row, line-column) group and groups are disjoint.
        group_key = ty * tile_px * lines_per_row + line_in_row

        zcache = self.zcache
        if zcache.n_lines % tile_px == 0 and len(zcache) == 0:
            cap_groups = zcache.n_lines // tile_px
            resident = OrderedDict()
            misses = np.zeros(n_flushes, dtype=np.int64)
            for i, group in enumerate(group_key.tolist()):
                if group in resident:
                    resident.move_to_end(group)
                else:
                    if len(resident) >= cap_groups:
                        resident.popitem(last=False)
                    resident[group] = True
                    misses[i] = tile_px
            # Prime the real cache with the final resident groups (clean
            # read accesses, oldest group first, row-ascending lines) so
            # the termination-update replay starts from the exact state.
            for group in resident:
                for r in range(tile_px):
                    zcache.access_line(group + r * lines_per_row,
                                       write=False)
            # Square the cache's own counters with the full line-level
            # replay the scalar engine performs: priming counted only the
            # resident lines as misses (no hits, no evictions — the cache
            # started empty and the residents fit by construction).
            total_accesses = n_flushes * tile_px
            total_misses = int(misses.sum())
            primed = len(resident) * tile_px
            zcache.hits += total_accesses - total_misses
            zcache.misses += total_misses - primed
            zcache.evictions += total_misses - primed
            return misses
        # General fallback: replay the full per-flush line stream.
        tags = (group_key[:, None]
                + np.arange(tile_px, dtype=np.int64)[None, :] * lines_per_row)
        splits = np.arange(n_flushes + 1, dtype=np.int64) * tile_px
        return zcache.access_segmented(tags.reshape(-1), splits, write=False)

    # ------------------------------------------------------------------

    def _tile_stencil_tags(self, tile_id, width):
        """Line tags of a screen tile's stencil rows (1 B/pixel)."""
        tile_px = self.config.screen_tile_px
        tiles_x = -(-width // tile_px)
        ty, tx = divmod(int(tile_id), tiles_x)
        bytes_per_row = width * self._stencil_bytes_per_pixel
        lines_per_row = max(1, -(-bytes_per_row // self.config.cache_line_bytes))
        x_byte = tx * tile_px * self._stencil_bytes_per_pixel
        line_in_row = x_byte // self.config.cache_line_bytes
        base_row = ty * tile_px
        return [((base_row + r) * lines_per_row + line_in_row)
                for r in range(tile_px)]

    def _account_misses(self, misses):
        if misses:
            bytes_moved = misses * self.config.cache_line_bytes
            self.stats.dram_bytes += bytes_moved
            self.stats.units["dram"].add(
                misses, bytes_moved / self.config.dram_bytes_per_cycle)

"""Z/Stencil ROP with the VR-Pipe early-termination extension.

Baseline ZROP performs depth/stencil tests; Gaussian splatting disables
both, so the unit idles.  With HET enabled (Figure 13) it gains:

* a **termination test unit** — when a TC bin flushes, each quad's pixels
  are checked against the termination bit (the stencil MSB); quads whose
  four pixels are all terminated are discarded *before fragment shading*;
* a **termination update unit** — triggered by the CROP's alpha test when a
  blend pushes a pixel across the threshold; it read-modify-writes the
  stencil byte in the z-cache, setting the MSB.

The per-fragment termination state is supplied by the functional core (the
``mask_unterminated`` coverage bitmaps), which models the paper's
fragment-granular test; this unit accounts the work and the z-cache traffic.
"""

from __future__ import annotations

import numpy as np

from repro.hwmodel.caches import LRUCache


class ZropUnit:
    """Work accounting for the stencil/termination ROP stage.

    Parameters
    ----------
    config:
        The :class:`~repro.hwmodel.config.GPUConfig`.
    stats:
        The draw call's :class:`~repro.hwmodel.stats.PipelineStats`.
    """

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats
        self.zcache = LRUCache(config.zcache_kb * 1024,
                               config.cache_line_bytes)
        # One stencil byte per pixel; a 128 B line covers 128 pixels of a
        # row, i.e. 8 screen tiles wide. Tags derive from tile rows.
        self._stencil_bytes_per_pixel = 1

    def termination_test(self, batch_masks, tile_id, width):
        """Run the flush-time termination test on one TC batch.

        ``batch_masks`` are the quads' ``mask_unterminated`` bitmaps; a quad
        survives when any pixel is still live.  Returns the survivor mask.
        Accounts test throughput and z-cache read traffic.
        """
        masks = np.asarray(batch_masks)
        survivors = masks != 0
        n = masks.shape[0]
        unit = self.stats.units["zrop"]
        unit.add(n, n / self.config.zrop_quads_per_cycle)
        self.stats.zrop_tests += n
        self.stats.quads_discarded_zrop += int(n - survivors.sum())
        # Stencil reads for the tile: the whole tile's stencil footprint is
        # a handful of lines; account one line group per flush.
        tags = self._tile_stencil_tags(tile_id, width)
        misses = self.zcache.access_many(tags, write=False)
        self._account_misses(misses)
        return survivors

    def termination_updates(self, n_updates, pixel_tags=()):
        """Account ``n_updates`` termination-bit RMWs signalled by the CROP."""
        if n_updates < 0:
            raise ValueError("n_updates must be >= 0")
        unit = self.stats.units["zrop"]
        unit.add(n_updates, n_updates * self.config.term_update_cycles)
        self.stats.termination_updates += int(n_updates)
        if len(pixel_tags):
            misses = self.zcache.access_many(pixel_tags, write=True)
            self._account_misses(misses)

    # ------------------------------------------------------------------

    def _tile_stencil_tags(self, tile_id, width):
        """Line tags of a screen tile's stencil rows (1 B/pixel)."""
        tile_px = self.config.screen_tile_px
        tiles_x = -(-width // tile_px)
        ty, tx = divmod(int(tile_id), tiles_x)
        bytes_per_row = width * self._stencil_bytes_per_pixel
        lines_per_row = max(1, -(-bytes_per_row // self.config.cache_line_bytes))
        x_byte = tx * tile_px * self._stencil_bytes_per_pixel
        line_in_row = x_byte // self.config.cache_line_bytes
        base_row = ty * tile_px
        return [((base_row + r) * lines_per_row + line_in_row)
                for r in range(tile_px)]

    def _account_misses(self, misses):
        if misses:
            bytes_moved = misses * self.config.cache_line_bytes
            self.stats.dram_bytes += bytes_moved
            self.stats.units["dram"].add(
                misses, bytes_moved / self.config.dram_bytes_per_cycle)

"""A small fully-associative LRU line cache.

Used for the per-GPC CROP cache (16 KB, 128 B lines — sized by the paper's
§VII-A probe, Figure 20a) and the Z/stencil cache.  Fully-associative LRU is
the right idealisation here: the probe in the paper measures *capacity*
behaviour ("the CROP cache has never held more than 16 KB of data"), and the
real structure's associativity is unpublished.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np


class LRUCache:
    """Fully-associative LRU cache over line addresses.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    line_bytes:
        Line size; addresses are divided by this to form tags.
    """

    def __init__(self, size_bytes, line_bytes=128):
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache size and line size must be positive")
        if size_bytes < line_bytes:
            raise ValueError("cache must hold at least one line")
        self.size_bytes = int(size_bytes)
        self.line_bytes = int(line_bytes)
        self.n_lines = self.size_bytes // self.line_bytes
        self._lines = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def __len__(self):
        return len(self._lines)

    def reset_counters(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def flush(self):
        """Drop all lines (counts dirty ones as writebacks)."""
        self.writebacks += sum(1 for dirty in self._lines.values() if dirty)
        self._lines.clear()

    def access(self, address, write=False):
        """Access a byte address; returns True on hit.

        A miss inserts the line, evicting LRU if full; dirty evictions are
        counted as writebacks (blending is read-modify-write, so CROP
        accesses are writes).
        """
        tag = int(address) // self.line_bytes
        return self.access_line(tag, write=write)

    def access_line(self, tag, write=False):
        """Access by line tag directly (cheaper when callers precompute)."""
        lines = self._lines
        if tag in lines:
            self.hits += 1
            lines.move_to_end(tag)
            if write:
                lines[tag] = True
            return True
        self.misses += 1
        if len(lines) >= self.n_lines:
            _, dirty = lines.popitem(last=False)
            self.evictions += 1
            if dirty:
                self.writebacks += 1
        lines[tag] = bool(write)
        return False

    def access_many(self, tags, write=False):
        """Access a sequence of line tags; returns the number of misses."""
        before = self.misses
        for tag in tags:
            self.access_line(int(tag), write=write)
        return self.misses - before

    def access_segmented(self, tags, seg_splits, write=False):
        """Replay a segmented tag stream; returns per-segment miss counts.

        ``seg_splits`` is an ascending int array of ``n_segments + 1``
        offsets into ``tags`` (first 0, last ``len(tags)``).  Equivalent to
        one :meth:`access_many` call per segment — LRU state and the
        hit/miss/eviction/writeback counters evolve identically — but a
        single tight loop replaces per-segment (and per-line) Python call
        overhead, which is what lets the batched flush engine replay a
        whole draw's cache traffic at once.
        """
        tags = np.asarray(tags)
        bounds = np.asarray(seg_splits, dtype=np.int64)
        if bounds.ndim != 1 or bounds.shape[0] < 1:
            raise ValueError("seg_splits must be a 1-D offset array")
        if (bounds[0] != 0 or bounds[-1] != tags.shape[0]
                or np.any(np.diff(bounds) < 0)):
            raise ValueError("seg_splits must ascend from 0 to len(tags)")
        n_segments = bounds.shape[0] - 1
        out = np.zeros(n_segments, dtype=np.int64)
        lines = self._lines
        n_lines = self.n_lines
        move_to_end = lines.move_to_end
        popitem = lines.popitem
        dirty = bool(write)
        hits = misses = evictions = writebacks = 0
        tag_list = tags.tolist()
        bound_list = bounds.tolist()
        for seg in range(n_segments):
            seg_misses = 0
            for i in range(bound_list[seg], bound_list[seg + 1]):
                tag = tag_list[i]
                if tag in lines:
                    hits += 1
                    move_to_end(tag)
                    if dirty:
                        lines[tag] = True
                else:
                    seg_misses += 1
                    if len(lines) >= n_lines:
                        _, was_dirty = popitem(last=False)
                        evictions += 1
                        if was_dirty:
                            writebacks += 1
                    lines[tag] = dirty
            out[seg] = seg_misses
            misses += seg_misses
        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        self.writebacks += writebacks
        return out

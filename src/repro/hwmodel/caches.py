"""A small fully-associative LRU line cache.

Used for the per-GPC CROP cache (16 KB, 128 B lines — sized by the paper's
§VII-A probe, Figure 20a) and the Z/stencil cache.  Fully-associative LRU is
the right idealisation here: the probe in the paper measures *capacity*
behaviour ("the CROP cache has never held more than 16 KB of data"), and the
real structure's associativity is unpublished.

Two replay engines produce identical results:

* the **scalar** engine (:meth:`LRUCache.access_line` and friends) walks the
  tag stream one access at a time through an ``OrderedDict`` — the original
  reference implementation, kept as the golden oracle;
* the **vectorized** engine (:func:`replay_tag_stream`, used by
  :meth:`LRUCache.access_segmented` for long streams) computes the whole
  stream's hits, misses, evictions, dirty writebacks and the final LRU state
  in bulk.  For a fully-associative LRU a reference hits iff its stack
  (reuse) distance is ``< n_lines``, so per-access hit/miss flags follow
  from *distinct-count* queries over inter-occurrence windows; everything
  else (eviction and writeback totals, the end-of-stream cache contents in
  exact LRU order with exact dirty bits) is reconstructed combinatorially
  from those flags.  The equivalence is enforced access-for-access by the
  fuzz tests in ``tests/test_lru_vec.py`` and end-to-end by the golden
  flush-engine tests.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro import faults
from repro.knobs import LRU_ENGINES

#: Below this stream length the scalar loop wins (vectorisation overhead
#: dominates); measured crossover is ~2-4k accesses.
VECTOR_MIN_STREAM = 4096

#: Per-call budget for the exact scan rounds, in gathered elements per
#: stream element.  Real CROP/Z streams resolve >99% of accesses through
#: the O(1)-per-access certificates and use a tiny fraction of this; the
#: budget only guards adversarial streams, which fall back to the scalar
#: loop (identical results, status-quo speed).
SCAN_BUDGET_FACTOR = 24


def _scan_rounds(active, prev, window, hit, n_lines, budget, max_cap=None):
    """Resolve ``active`` queries by exact leading-prefix distinct counts.

    The distinct count of the window prefix ``(p, p+c]`` equals
    ``#{j in (p, p+c] : prev[j] <= p}`` (each such ``j`` is its tag's
    first occurrence inside the window) — a plain vectorised count over a
    gathered slice.  ``c`` grows geometrically until the count reaches
    ``n_lines`` (miss) or the prefix covers the whole window (hit), or —
    with ``max_cap`` — until the prefix budget per query is exhausted.
    Decisions are recorded into ``hit``; returns the still-unresolved
    query positions, stopping early (queries intact) once the gather
    budget is spent.
    """
    cap = 2 * n_lines
    spent = 0
    while active.size and (max_cap is None or cap <= max_cap):
        p = prev[active]
        take = np.minimum(cap, window[active])
        total = int(take.sum())
        spent += total
        if spent > budget:
            return active
        owner = np.repeat(np.arange(active.shape[0], dtype=np.int64), take)
        offsets = np.cumsum(take) - take
        local = np.arange(total, dtype=np.int64) - offsets[owner]
        gathered = prev[(p + 1)[owner] + local] <= p[owner]
        zero = np.zeros(1, dtype=np.int64)
        csum = np.concatenate((zero, np.cumsum(gathered)))
        bounds = np.concatenate((zero, np.cumsum(take)))
        distinct = csum[bounds[1:]] - csum[bounds[:-1]]
        is_miss = distinct >= n_lines
        is_hit = (~is_miss) & (take >= window[active])
        hit[active[is_hit]] = True
        active = active[~(is_miss | is_hit)]
        cap *= 4
    return active


def _stack_hits(n_accesses, n_lines, prev):
    """Per-access hit flags of a cold fully-associative LRU replay.

    ``hit[i]`` iff the access would hit, which for LRU is exactly "fewer
    than ``n_lines`` distinct tags occurred since the previous access to
    the same tag" (the stack-distance condition).  ``prev`` is the
    previous-occurrence index per position, derived from the stable tag
    sort the caller shares with its state reconstruction.

    The classification runs in escalating exact tiers:

    1. first occurrences miss; re-references whose whole inter-occurrence
       window holds fewer than ``n_lines`` accesses hit;
    2. a trailing-window certificate: the distinct count of the last
       ``n_lines`` accesses before ``i`` (computed for every position at
       once with a difference array + cumsum) is a lower bound on the
       window's distinct count, so reaching ``n_lines`` certifies a miss —
       this resolves virtually every access of a thrashing stream;
    3. exact scan rounds (:func:`_scan_rounds`) under a gather budget;
    4. if the budget trips — streams dwelling on few tags for long
       stretches, where confirming a hit means walking a huge window — a
       geometric ladder of fixed-size window-distinct arrays: for window
       length w, trailing/leading counts at K <= w are lower bounds
       (subwindows) and their sum at 2K >= w >= K an upper bound (a
       cover), so the dwells certify in O(N) per level instead of O(w)
       per query; a final budgeted scan pass mops up the leftovers.

    Returns ``None`` when even the escalation exceeds its budget
    (adversarial streams); callers then use the scalar loop.
    """
    N = int(n_accesses)
    pos = np.arange(N, dtype=np.int64)
    window = pos - prev - 1  # accesses strictly between the occurrences
    hit = np.zeros(N, dtype=bool)
    seen = prev >= 0
    hit[seen & (window < n_lines)] = True
    undecided = np.flatnonzero(seen & (window >= n_lines))
    if not undecided.size:
        return hit

    def window_distinct(K):
        # Exact distinct count of the trailing window [i-K, i-1] for every
        # i: position j is the first in-window occurrence of its tag
        # exactly when prev[j] < i - K, i.e. over the i-interval
        # (max(j, prev[j] + K), j + K] — one difference array + cumsum.
        lo = np.minimum(np.maximum(pos + 1, prev + K + 1), N)
        hi = np.minimum(pos + K + 1, N)
        diff = (np.bincount(lo, minlength=N + 1)
                - np.bincount(hi, minlength=N + 1))
        return np.cumsum(diff[:N])

    counts = window_distinct(n_lines)
    rest = undecided[counts[undecided] < n_lines]
    if not rest.size:
        return hit

    # Short scans first: cheap and decisive for fast-diversifying windows.
    budget = SCAN_BUDGET_FACTOR * N + (n_lines << 4)
    rest = _scan_rounds(rest, prev, window, hit, n_lines, budget,
                        max_cap=4 * n_lines)
    if not rest.size:
        return hit

    # Ladder escalation for scan-resistant (large, low-diversity) windows:
    # the same window-distinct arrays, read as trailing (at i) and leading
    # (at p + K + 1) certificates.  Only the K octaves some survivor's
    # window length actually occupies are computed.
    while rest.size:
        w = window[rest]
        k_exp = int(np.floor(np.log2(max(int(w.min()), n_lines) / n_lines)))
        K = n_lines << max(k_exp, 1)
        if K >= 2 * N:
            break
        counts = window_distinct(K)
        p = prev[rest]
        applicable = K <= w
        trail = counts[rest]
        lead = counts[np.minimum(p + K + 1, N - 1)]
        certain_miss = applicable & (np.maximum(trail, lead) >= n_lines)
        covered = applicable & (2 * K >= w)
        certain_hit = covered & (lead + trail < n_lines)
        hit[rest[certain_hit]] = True
        remaining = rest[~(certain_miss | certain_hit)]
        if remaining.shape[0] == rest.shape[0] and not (
                certain_miss.any() or certain_hit.any()):
            # No progress at this level: the covered-but-uncertified
            # windows need exact scans; larger K cannot help them.
            w_left = window[remaining]
            stuck = remaining[2 * K >= w_left]
            moved = remaining[2 * K < w_left]
            stuck = _scan_rounds(stuck, prev, window, hit, n_lines, budget)
            if stuck.size:
                return None
            rest = moved
        else:
            rest = remaining
    if rest.size:
        rest = _scan_rounds(rest, prev, window, hit, n_lines, budget)
        if rest.size:
            return None
    return hit


def replay_tag_stream(tags, n_lines, warm_items, write):
    """Vectorised exact replay of ``tags`` through a fully-associative LRU.

    Parameters
    ----------
    tags:
        1-D int64 tag stream.
    n_lines:
        Cache capacity in lines.
    warm_items:
        ``[(tag, dirty), ...]`` — the cache contents before the stream, in
        LRU order (least recently used first), as ``OrderedDict.items()``
        yields them.
    write:
        Whether every access writes (dirties) its line.

    Returns ``(hit_flags, counters, final_items)`` where ``hit_flags`` is
    per-access, ``counters`` is ``(hits, misses, evictions, writebacks)``
    and ``final_items`` is the end-of-stream cache contents in LRU order
    with dirty bits — or ``None`` if the stream resisted vectorised
    classification (callers fall back to the scalar loop).

    The warm state is handled with a *preamble*: replaying the resident
    tags (LRU order, oldest first) before the stream reproduces the warm
    stack exactly, so stack distances over the combined sequence give the
    same hits and misses a warm scalar replay would.  Counters, evictions
    and the final state then follow combinatorially:

    * the cache content after any prefix is the ``n_lines`` most recently
      used distinct tags, so the final contents are the top tags by last
      occurrence (ascending = LRU order) and
      ``evictions = warm + misses - final_occupancy``;
    * a line instance (one residency) is evicted exactly when the next
      access to its tag misses, or at no next access when the tag is not
      among the final residents — which turns writeback counting into a
      few per-tag reductions over the hit flags and the warm dirty bits.
    """
    if tags.shape[0] == 0:
        return np.zeros(0, dtype=bool), (0, 0, 0, 0), list(warm_items)
    warm_tags = np.fromiter((t for t, _ in warm_items), dtype=np.int64,
                            count=len(warm_items))
    n_warm = warm_tags.shape[0]
    combined = np.concatenate((warm_tags, tags)) if n_warm else tags
    N = combined.shape[0]

    # One stable tag sort serves both the stack-distance classification
    # (previous-occurrence links) and the state reconstruction
    # (factorisation, per-tag last occurrences).
    order = np.argsort(combined, kind="stable")
    sorted_tags = combined[order]
    same = np.empty(N, dtype=bool)
    same[0] = False
    np.equal(sorted_tags[1:], sorted_tags[:-1], out=same[1:])
    prev = np.full(N, -1, dtype=np.int64)
    prev[order[1:][same[1:]]] = order[:-1][same[1:]]

    hit = _stack_hits(N, n_lines, prev)
    if hit is None:
        return None
    stream_hit = hit[n_warm:]
    hits = int(stream_hit.sum())
    misses = int(tags.shape[0] - hits)

    # Factorise off the shared sort: tag ids in sorted-tag-value order.
    seg_id = np.cumsum(~same) - 1
    inverse = np.empty(N, dtype=np.int64)
    inverse[order] = seg_id
    n_tags = int(seg_id[-1]) + 1
    seg_starts = np.flatnonzero(~same)
    seg_last = np.concatenate(
        (seg_starts[1:] - 1, np.asarray([N - 1], dtype=np.int64)))
    uniq = sorted_tags[seg_starts]
    # Positions within a tag's sorted segment ascend (stable sort), so the
    # segment's last element is the tag's last occurrence.
    last_occ = order[seg_last]
    occupancy = min(n_lines, n_tags)
    evictions = n_warm + misses - occupancy

    # Per-tag reductions over the stream.
    stream_inv = inverse[n_warm:]
    miss_count = np.bincount(stream_inv[~stream_hit], minlength=n_tags)
    accessed = np.zeros(n_tags, dtype=bool)
    accessed[stream_inv] = True
    # First stream access per tag: reversed scatter makes the first win.
    first_hit = np.zeros(n_tags, dtype=bool)
    first_hit[stream_inv[::-1]] = stream_hit[::-1]
    warm = np.zeros(n_tags, dtype=bool)
    init_dirty = np.zeros(n_tags, dtype=bool)
    if n_warm:
        warm[inverse[:n_warm]] = True
        init_dirty[inverse[:n_warm]] = [d for _, d in warm_items]

    resident = np.argsort(last_occ, kind="stable")[n_tags - occupancy:]
    final = np.zeros(n_tags, dtype=bool)
    final[resident] = True

    # A warm tag's original residency survives to the end iff the tag never
    # missed during the stream and is still resident.
    warm_evicted = warm & ~(final & (miss_count == 0))
    if write:
        # Every miss-started residency is dirty; a final resident with a
        # stream miss keeps its last one.
        writebacks = misses - int((final & (miss_count >= 1)).sum())
        # An evicted warm residency is dirty if it started dirty or was
        # written by a hit before its eviction (first access hit => the
        # original residency was still live when the write landed).
        warm_dirty = init_dirty | (accessed & first_hit)
        writebacks += int((warm_evicted & warm_dirty).sum())
        final_dirty = accessed | (warm & init_dirty)
    else:
        writebacks = int((warm_evicted & init_dirty).sum())
        # Only an unbroken originally-dirty warm residency stays dirty.
        final_dirty = warm & init_dirty & (miss_count == 0)

    final_items = list(zip(uniq[resident].tolist(),
                           final_dirty[resident].tolist()))
    return stream_hit, (hits, misses, evictions, writebacks), final_items


def _corrupt_replay(counters):
    """A fault-injected perturbation of vectorized replay counters."""
    hits, misses, evictions, writebacks = counters
    return hits + 1, misses, evictions, writebacks


def _validate_replay(n, n_lines, stream_hit, counters, final_items):
    """Replay invariants (checked only while the fault harness is on).

    The hit flags, the counters and the final state are derived from one
    another, so any single-field corruption breaks a cross-check here.
    """
    hits, misses, evictions, writebacks = counters
    if (stream_hit.shape[0] != n
            or hits != int(stream_hit.sum())
            or hits + misses != n
            or evictions < 0 or writebacks < 0
            or len(final_items) > n_lines):
        faults.corrupt_detected(
            "lru.replay",
            f"vectorized LRU replay failed its invariants: n={n}, "
            f"counters={counters}, resident={len(final_items)}/{n_lines}")


class LRUCache:
    """Fully-associative LRU cache over line addresses.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    line_bytes:
        Line size; addresses are divided by this to form tags.
    """

    def __init__(self, size_bytes, line_bytes=128):
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache size and line size must be positive")
        if size_bytes < line_bytes:
            raise ValueError("cache must hold at least one line")
        self.size_bytes = int(size_bytes)
        self.line_bytes = int(line_bytes)
        self.n_lines = self.size_bytes // self.line_bytes
        self._lines = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def __len__(self):
        return len(self._lines)

    def snapshot(self):
        """Full replayable state (lines in LRU order + counters).

        With :meth:`restore` this lets a frame executor rewind a shared
        warm cache after a failed attempt mutated it mid-draw.
        """
        return (list(self._lines.items()), self.hits, self.misses,
                self.evictions, self.writebacks)

    def restore(self, state):
        """Restore a :meth:`snapshot` (contents and counters)."""
        items, self.hits, self.misses, self.evictions, self.writebacks = state
        self._lines = OrderedDict(items)

    def reset_counters(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def flush(self):
        """Drop all lines (counts dirty ones as writebacks)."""
        self.writebacks += sum(1 for dirty in self._lines.values() if dirty)
        self._lines.clear()

    def access(self, address, write=False):
        """Access a byte address; returns True on hit.

        A miss inserts the line, evicting LRU if full; dirty evictions are
        counted as writebacks (blending is read-modify-write, so CROP
        accesses are writes).
        """
        tag = int(address) // self.line_bytes
        return self.access_line(tag, write=write)

    def access_line(self, tag, write=False):
        """Access by line tag directly (cheaper when callers precompute)."""
        lines = self._lines
        if tag in lines:
            self.hits += 1
            lines.move_to_end(tag)
            if write:
                lines[tag] = True
            return True
        self.misses += 1
        if len(lines) >= self.n_lines:
            _, dirty = lines.popitem(last=False)
            self.evictions += 1
            if dirty:
                self.writebacks += 1
        lines[tag] = bool(write)
        return False

    def access_many(self, tags, write=False):
        """Access a sequence of line tags; returns the number of misses."""
        before = self.misses
        for tag in tags:
            self.access_line(int(tag), write=write)
        return self.misses - before

    def access_segmented(self, tags, seg_splits, write=False, engine="auto"):
        """Replay a segmented tag stream; returns per-segment miss counts.

        ``seg_splits`` is an ascending int array of ``n_segments + 1``
        offsets into ``tags`` (first 0, last ``len(tags)``).  Equivalent to
        one :meth:`access_many` call per segment — LRU state and the
        hit/miss/eviction/writeback counters evolve identically.

        ``engine`` selects the replay implementation: ``"auto"`` (default)
        uses the vectorized exact-LRU engine for long streams and the
        scalar loop otherwise; ``"scalar"`` forces the loop and
        ``"vector"`` starts from the vectorized engine (which still
        degrades to the scalar loop if an adversarial stream exhausts the
        exact-scan budget — the results are identical either way, only
        the speed differs).  All engines are bit-identical in every
        observable (per-segment
        misses, counters, and the cache's final contents in LRU order with
        dirty bits); the vectorized engine is what lets the batched flush
        engine replay a whole draw's cache traffic at once.
        """
        tags = np.asarray(tags, dtype=np.int64)
        bounds = np.asarray(seg_splits, dtype=np.int64)
        if bounds.ndim != 1 or bounds.shape[0] < 1:
            raise ValueError("seg_splits must be a 1-D offset array")
        if (bounds[0] != 0 or bounds[-1] != tags.shape[0]
                or np.any(np.diff(bounds) < 0)):
            raise ValueError("seg_splits must ascend from 0 to len(tags)")
        if engine not in LRU_ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        rule = faults.checkpoint("lru.replay") if faults.ENABLED else None
        use_vector = (engine == "vector"
                      or (engine == "auto"
                          and tags.shape[0] >= VECTOR_MIN_STREAM)
                      or (rule is not None and engine != "scalar"
                          and tags.shape[0] > 0))
        if use_vector:
            replay = replay_tag_stream(
                np.ascontiguousarray(tags, dtype=np.int64), self.n_lines,
                list(self._lines.items()), bool(write))
            if replay is not None:
                stream_hit, counters, final_items = replay
                if rule is not None:
                    counters = _corrupt_replay(counters)
                if faults.ENABLED:
                    _validate_replay(tags.shape[0], self.n_lines,
                                     stream_hit, counters, final_items)
                hits, misses, evictions, writebacks = counters
                self.hits += hits
                self.misses += misses
                self.evictions += evictions
                self.writebacks += writebacks
                self._lines = OrderedDict(final_items)
                miss_cum = np.concatenate(
                    (np.zeros(1, dtype=np.int64),
                     np.cumsum(~stream_hit, dtype=np.int64)))
                return miss_cum[bounds[1:]] - miss_cum[bounds[:-1]]
            # Budget exceeded (adversarial stream): scalar fallback below.
        return self._access_segmented_scalar(tags, bounds, write)

    def _access_segmented_scalar(self, tags, bounds, write):
        """The original per-access replay loop (the vector engine's oracle)."""
        n_segments = bounds.shape[0] - 1
        out = np.zeros(n_segments, dtype=np.int64)
        lines = self._lines
        n_lines = self.n_lines
        move_to_end = lines.move_to_end
        popitem = lines.popitem
        dirty = bool(write)
        hits = misses = evictions = writebacks = 0
        tag_list = tags.tolist()
        bound_list = bounds.tolist()
        for seg in range(n_segments):
            seg_misses = 0
            for i in range(bound_list[seg], bound_list[seg + 1]):
                tag = tag_list[i]
                if tag in lines:
                    hits += 1
                    move_to_end(tag)
                    if dirty:
                        lines[tag] = True
                else:
                    seg_misses += 1
                    if len(lines) >= n_lines:
                        _, was_dirty = popitem(last=False)
                        evictions += 1
                        if was_dirty:
                            writebacks += 1
                    lines[tag] = dirty
            out[seg] = seg_misses
            misses += seg_misses
        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        self.writebacks += writebacks
        return out

"""Draw-call energy accounting (Figure 19).

Energy is a linear function of the event counts the pipeline simulator
already collects: fragment/vertex shader invocations, CROP blends, ZROP
tests and termination updates, warp-shuffle merges, cache and DRAM traffic,
plus static power over the draw's wall-clock time.  Only *relative* energy
matters for the paper's claim (VR-Pipe is ~1.65x more efficient on average);
the per-op constants live in :class:`~repro.hwmodel.config.EnergyTable`.
"""

from __future__ import annotations


class EnergyBreakdown:
    """Energy per component in joules, plus the total."""

    def __init__(self, components):
        self.components = dict(components)

    @property
    def total_j(self):
        return sum(self.components.values())

    def __repr__(self):
        parts = ", ".join(f"{k}={v * 1e6:.1f}uJ"
                          for k, v in sorted(self.components.items()))
        return f"EnergyBreakdown(total={self.total_j * 1e6:.1f}uJ, {parts})"


def draw_energy(result):
    """Energy of a simulated draw call (:class:`DrawResult`).

    Returns an :class:`EnergyBreakdown`; ``total_j`` divides into the usual
    efficiency metric as ``frames_per_joule = 1 / total_j``.
    """
    stats = result.stats
    cfg = result.config
    table = cfg.energy
    pj = 1e-12
    seconds = stats.total_cycles / cfg.frequency_hz()

    # Fixed per-frame cost: clearing and resolving the colour buffer moves
    # the whole framebuffer through DRAM regardless of variant — one of the
    # reasons measured efficiency (Figure 19: 1.65x) trails the speedup
    # (Figure 16: 2.07x).
    framebuffer_bytes = (result.workload.width * result.workload.height
                         * cfg.bytes_per_pixel * 2.0)

    components = {
        "frame_fixed": table.frame_fixed_uj * 1e-6,
        "framebuffer": framebuffer_bytes * table.dram_byte_pj * pj,
        "fragment_shading": stats.fragments_shaded * table.frag_shade_pj * pj,
        "vertex_shading": stats.n_vertices * table.vert_shade_pj * pj,
        "blending": stats.fragments_blended * table.blend_pj * pj,
        "zrop": (stats.zrop_tests * table.zrop_test_pj
                 + stats.termination_updates * table.term_update_pj) * pj,
        "quad_merge": stats.quads_merged_pairs * 4 * table.warp_shuffle_pj * pj,
        "caches": ((stats.crop_cache_hits + stats.crop_cache_misses)
                   * table.cache_access_pj
                   + stats.crop_cache_misses * table.l2_access_pj) * pj,
        "dram": stats.dram_bytes * table.dram_byte_pj * pj,
        "static": table.static_w * seconds,
    }
    return EnergyBreakdown(components)


def efficiency_ratio(baseline_result, variant_result):
    """Energy-efficiency of ``variant`` relative to ``baseline`` (>1 = better).

    Defined as the ratio of energy per frame, i.e.
    ``E(baseline) / E(variant)`` — the quantity plotted in Figure 19.
    """
    base = draw_energy(baseline_result).total_j
    var = draw_energy(variant_result).total_j
    if var <= 0:
        raise ValueError("variant energy must be positive")
    return base / var

"""GPU configuration (Table I) and device presets.

Two kinds of numbers live here:

* **Paper-given facts** — everything in Table I of the paper (SIMT core
  count, frequencies, bin counts/sizes, ROP throughput, cache sizes) plus
  the §VII microbenchmark findings (quad-granularity ROPs, 16 KB CROP cache,
  32 TC bins, format-dependent pixels/cycle).
* **Calibrations** — per-op cycle/energy constants that the paper does not
  publish (shader instruction counts, interlock overhead, kernel-time
  coefficients).  Each is documented at its definition; changing them moves
  absolute numbers but not the qualitative results, which derive from unit
  workload *counts*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class EnergyTable:
    """Per-operation energy costs in picojoules (calibrated, 8 nm-class).

    Values follow the usual architecture rules of thumb (DRAM access is
    ~100x an on-chip SRAM access; an FP16 MAC is ~1 pJ) and are only used
    for *relative* efficiency (Figure 19).
    """

    frag_shade_pj: float = 18.0        # fragment-shader invocation (alpha eval)
    vert_shade_pj: float = 10.0        # vertex-shader invocation
    blend_pj: float = 4.0              # one CROP blend (RGBA16F MAC + round)
    zrop_test_pj: float = 1.0          # stencil/termination test
    term_update_pj: float = 2.0        # termination-bit RMW in the z-cache
    warp_shuffle_pj: float = 1.5       # per-lane shuffle for quad merging
    cache_access_pj: float = 6.0       # CROP/Z cache line access
    l2_access_pj: float = 18.0         # L2 line access
    dram_byte_pj: float = 10.0         # LPDDR access per byte
    static_w: float = 4.0              # static + uncore power in watts
    # Fixed per-frame energy (microjoules): CPU submission, display
    # composition, DRAM refresh over the frame interval — identical across
    # variants, which is why measured efficiency (Figure 19, 1.65x avg)
    # trails the cycle speedup (Figure 16, 2.07x avg).
    frame_fixed_uj: float = 800.0


@dataclass
class GPUConfig:
    """Full configuration of the modelled GPU (defaults == Table I).

    Feature flags ``enable_het`` / ``enable_qm`` switch on the VR-Pipe
    hardware extensions; the baseline has both off.
    """

    name: str = "jetson-agx-orin-like"

    # ----- Table I facts -------------------------------------------------
    n_gpc: int = 1
    n_sm: int = 16                      # SIMT cores (1024 CUDA cores)
    sm_freq_mhz: float = 612.0
    lanes_per_sm: int = 64
    warp_schedulers_per_sm: int = 4
    l2_kb: int = 4096
    crop_cache_kb: int = 16
    zcache_kb: int = 16                 # symmetric with the CROP cache
    cache_line_bytes: int = 128
    raster_tile_px: int = 8             # 8x8-pixel raster tiles
    screen_tile_px: int = 16            # 16x16-pixel screen tiles
    tile_grid_tiles: int = 4            # 4x4 screen tiles per tile grid
    n_tgc_bins: int = 128
    tgc_bin_prims: int = 16
    n_tc_bins: int = 32
    tc_bin_quads: int = 128
    rop_quads_per_cycle: float = 2.0    # RGBA16F; doubles for RGBA8 (§VII)
    dram_bytes_per_cycle: float = 334.0  # ~204 GB/s at 612 MHz (Orin 30 W)

    # ----- Pixel format ---------------------------------------------------
    color_format: str = "rgba16f"       # or "rgba8"

    # ----- Calibrated unit throughputs/costs ------------------------------
    # Vertex processing & operations: one splat = 4 vertices, 2 triangles.
    vpo_prims_per_cycle: float = 0.5
    vert_shader_cycles_per_warp: float = 16.0
    # Rasteriser substage throughputs.
    setup_cycles_per_prim: float = 2.0      # two triangles per splat
    coarse_raster_tiles_per_cycle: float = 1.0
    fine_raster_quads_per_cycle: float = 8.0
    # Tile coalescing insert throughput (never the bottleneck in practice).
    tc_quads_per_cycle: float = 8.0
    # TC idle-flush rule: a bin untouched while this many quads (for other
    # tiles) stream past is flushed with cause "timeout".  ``None``
    # disables the rule (capacity/eviction dominate splatting workloads);
    # the §VII microbenchmark probes enable it to mimic idle-flush
    # behaviour, and the flushes it causes are reported separately in
    # ``PipelineStats.tc_flush_timeout``.
    tc_timeout_quads: int | None = None
    # PROP handles ordering on the way into the SMs and into the CROP; a
    # quad passes it twice, and its items count both directions.  4/cycle
    # keeps the CROP the limiter for opaque RGBA8 microbenchmarks while the
    # two ROP stages run near-lockstep on splatting workloads (Figure 6).
    # Dispatch toward the SMs costs less than the ordered merge back into
    # the CROP stream (no ordering bookkeeping on the way out).
    prop_quads_per_cycle: float = 4.0
    prop_dispatch_weight: float = 0.5
    # ZROP stencil/termination test throughput and per-update RMW cost.
    # Tests read one stencil byte per pixel versus 8 B/pixel RGBA16F blends
    # in the CROP, so the same cache bandwidth sustains 8x the quads; the
    # termination check itself is a single-bit compare against cached lines.
    zrop_quads_per_cycle: float = 16.0
    term_update_cycles: float = 1.0
    # Fragment shader for Gaussian splatting: normalise pixel coords, dot
    # product with the conic, exp, pruning test (~26 issue slots per warp).
    frag_shader_cycles_per_warp: float = 26.0
    # Extra issue slots in merge warps: shuffle 4 values + ffb blend.
    quad_merge_extra_cycles: float = 8.0
    # CROP cache miss: residual occupancy per miss after the ROP's latency
    # hiding (most of the fill overlaps with blending of other quads; the
    # bandwidth cost is charged to DRAM separately).
    crop_miss_stall_cycles: float = 0.25
    # Pipeline fill/drain adder on the streaming-bottleneck total.
    pipeline_fill_cycles: float = 2000.0

    # ----- VR-Pipe features ----------------------------------------------
    enable_het: bool = False
    enable_qm: bool = False
    # Ablation switch: quad merging without the TGC unit (the QRU still
    # pairs within TC flushes, but primitives reach the rasteriser in raw
    # draw order, so bins flush prematurely and fewer overlaps coalesce).
    qm_use_tgc: bool = True
    termination_alpha: float = 0.996
    stencil_bits: int = 8               # MSB repurposed as termination flag
    # In-flight HET window: fragments per pixel that still pass the ZROP
    # test between the threshold-crossing blend and the stencil update
    # becoming visible (TC-bin residency + ROP pipeline depth).  0 would be
    # the perfect fragment-granular bound; the default is calibrated so the
    # realised HET speedup sits ~30% below the fragment-reduction potential,
    # matching the paper's Figure 16-vs-18 relation.
    het_inflight_lag: int = 16

    # ----- Energy ----------------------------------------------------------
    energy: EnergyTable = field(default_factory=EnergyTable)

    # ------------------------------------------------------------------

    def __post_init__(self):
        if self.color_format not in ("rgba16f", "rgba8"):
            raise ValueError(f"unknown color format {self.color_format!r}")
        if self.screen_tile_px % self.raster_tile_px:
            raise ValueError("screen tile must be a multiple of the raster tile")
        for name in ("n_sm", "n_tc_bins", "tc_bin_quads", "n_tgc_bins",
                     "tgc_bin_prims", "stencil_bits"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tc_timeout_quads is not None and self.tc_timeout_quads <= 0:
            raise ValueError("tc_timeout_quads must be positive or None")
        if not 0.0 < self.termination_alpha < 1.0:
            raise ValueError("termination_alpha must be in (0, 1)")

    @property
    def bytes_per_pixel(self):
        """Colour-buffer footprint per pixel for the active format."""
        return 8 if self.color_format == "rgba16f" else 4

    @property
    def crop_quads_per_cycle(self):
        """Effective CROP blend throughput for the active format.

        §VII-A: a GPC processes 16 px/cycle in RGBA8 but 8 px/cycle in
        RGBA16F — i.e. the 64 B/cycle CROP-cache read bandwidth is the
        limit, so halving bytes/pixel doubles quads/cycle.
        """
        scale = 2.0 if self.color_format == "rgba8" else 1.0
        return self.rop_quads_per_cycle * scale

    @property
    def tile_grid_px(self):
        """Tile-grid side length in pixels (4x4 screen tiles = 64)."""
        return self.screen_tile_px * self.tile_grid_tiles

    @property
    def sm_issue_slots_per_cycle(self):
        """Aggregate warp-instruction issue slots per cycle across the GPC."""
        return self.n_sm * self.warp_schedulers_per_sm

    def variant(self, **overrides):
        """Return a copy with fields replaced (e.g. ``enable_het=True``)."""
        return replace(self, **overrides)

    def frequency_hz(self):
        return self.sm_freq_mhz * 1e6


def jetson_agx_orin(**overrides):
    """The paper's simulated configuration (Table I; Orin @ 30 W)."""
    return GPUConfig(name="jetson-agx-orin-like").variant(**overrides)


def rtx_3090(**overrides):
    """A desktop-class configuration for the Figure 5(b) comparison.

    The RTX 3090 has 82 SMs, 7 GPCs and 112 ROPs at ~1.7 GHz with ~936 GB/s
    GDDR6X.  We keep the single-GPC pipeline structure and scale aggregate
    throughputs, which is what the end-to-end comparison needs.
    """
    cfg = GPUConfig(
        name="rtx-3090-like",
        n_gpc=7,
        n_sm=82,
        sm_freq_mhz=1695.0,
        rop_quads_per_cycle=2.0 * 7,     # 7 GPCs' worth of ROP partitions
        prop_quads_per_cycle=2.2 * 7,
        zrop_quads_per_cycle=2.0 * 7,
        fine_raster_quads_per_cycle=4.0 * 7,
        coarse_raster_tiles_per_cycle=1.0 * 7,
        vpo_prims_per_cycle=0.5 * 7,
        tc_quads_per_cycle=8.0 * 7,
        dram_bytes_per_cycle=552.0,      # ~936 GB/s at 1.7 GHz
        crop_cache_kb=16 * 7,
        n_tc_bins=32 * 7,
    )
    return cfg.variant(**overrides)

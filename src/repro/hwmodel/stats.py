"""Per-unit counters and the utilisation report (Figure 6's quantity).

The pipeline is modelled as a stream flowing through units; each unit
accumulates *items processed* and *busy cycles*.  Total draw time is the
streaming-bottleneck maximum over units plus a fill/drain adder, and
utilisation is ``busy / total`` — exactly the
``Measured Throughput / Max Throughput`` ratio in the paper's Figure 6.
"""

from __future__ import annotations

import numpy as np


class UnitStats:
    """Counters for one hardware unit."""

    def __init__(self, name):
        self.name = name
        self.items = 0
        self.busy_cycles = 0.0

    def add(self, items, cycles):
        """Record ``items`` processed costing ``cycles`` busy cycles."""
        if items < 0 or cycles < 0:
            raise ValueError(f"negative work recorded on {self.name}")
        self.items += int(items)
        self.busy_cycles += float(cycles)

    def add_sequence(self, items, cycles_seq):
        """Record a whole sequence of events in one call.

        ``cycles_seq`` holds one busy-cycle value per event (a NumPy array
        or any iterable); the values are accumulated with *sequential*
        left-to-right float additions, so the result is bit-identical to
        calling :meth:`add` once per event — the property the batched
        flush engine relies on for cycle-exactness against the scalar
        per-flush path.  The accumulation runs as one ``np.add.accumulate``
        seeded with the current total, which performs exactly that
        left-to-right addition order (unlike ``np.sum``'s pairwise tree)
        at vector speed.  ``items`` is the (order-insensitive) total.
        """
        if not isinstance(cycles_seq, np.ndarray):
            cycles_seq = list(cycles_seq)
        values = np.asarray(cycles_seq, dtype=np.float64).reshape(-1)
        if items < 0 or (values.size and float(values.min()) < 0):
            raise ValueError(f"negative work recorded on {self.name}")
        self.items += int(items)
        if values.size:
            seeded = np.concatenate(([self.busy_cycles], values))
            # repro-lint: ok(R1): accumulate is sequential left-to-right, matching the scalar loop
            self.busy_cycles = float(np.add.accumulate(seeded)[-1])

    def __repr__(self):
        return (f"UnitStats({self.name!r}, items={self.items}, "
                f"busy={self.busy_cycles:.0f})")


#: Canonical unit names reported by the pipeline.
UNIT_NAMES = (
    "vpo", "tgc", "raster", "tc", "prop", "zrop", "sm", "crop", "dram",
)


class PipelineStats:
    """All counters of a simulated draw call.

    Attributes beyond per-unit stats capture the event counts the paper's
    figures are built from: fragments/quads blended (Figure 18), warps
    launched (§VII tile-binning probe), TC/TGC flush causes, merge counts,
    cache hits/misses, and termination updates.
    """

    def __init__(self):
        self.units = {name: UnitStats(name) for name in UNIT_NAMES}
        self.total_cycles = 0.0

        # Workload counters.
        self.n_prims = 0
        self.n_vertices = 0
        self.quads_rasterized = 0
        self.quads_to_sm = 0
        self.quads_discarded_zrop = 0
        self.quads_merged_pairs = 0
        self.quads_to_crop = 0
        self.fragments_shaded = 0
        self.fragments_blended = 0
        self.warps_launched = 0
        self.merge_warps = 0

        # Bin dynamics.
        self.tc_flush_full = 0
        self.tc_flush_evict = 0
        self.tc_flush_timeout = 0
        self.tc_flush_final = 0
        self.tgc_flush_full = 0
        self.tgc_flush_evict = 0
        self.tgc_flush_final = 0

        # ROP memory system.
        self.crop_cache_hits = 0
        self.crop_cache_misses = 0
        self.zrop_tests = 0
        self.termination_updates = 0
        self.dram_bytes = 0.0

    # ------------------------------------------------------------------

    def finalize(self, fill_cycles):
        """Set ``total_cycles`` from the streaming-bottleneck model."""
        peak = max(unit.busy_cycles for unit in self.units.values())
        self.total_cycles = peak + float(fill_cycles)
        return self.total_cycles

    def utilization(self):
        """Per-unit ``busy / total`` ratios (Figure 6)."""
        if self.total_cycles <= 0:
            raise RuntimeError("finalize() must run before utilization()")
        return {name: unit.busy_cycles / self.total_cycles
                for name, unit in self.units.items()}

    def bottleneck(self):
        """Name of the unit with the highest busy-cycle count."""
        return max(self.units.values(), key=lambda u: u.busy_cycles).name

    def tc_flushes(self):
        return (self.tc_flush_full + self.tc_flush_evict
                + self.tc_flush_timeout + self.tc_flush_final)

    def summary(self):
        """Human-readable multi-line report."""
        lines = [f"total cycles: {self.total_cycles:,.0f} "
                 f"(bottleneck: {self.bottleneck()})"]
        util = self.utilization()
        for name in UNIT_NAMES:
            unit = self.units[name]
            lines.append(f"  {name:>6}: items={unit.items:>10,} "
                         f"busy={unit.busy_cycles:>12,.0f} "
                         f"util={util[name]:6.1%}")
        lines.append(
            f"  quads: raster={self.quads_rasterized:,} sm={self.quads_to_sm:,} "
            f"crop={self.quads_to_crop:,} merged_pairs={self.quads_merged_pairs:,}")
        lines.append(
            f"  frags: shaded={self.fragments_shaded:,} "
            f"blended={self.fragments_blended:,}")
        lines.append(
            f"  tc flushes: full={self.tc_flush_full:,} "
            f"evict={self.tc_flush_evict:,} "
            f"timeout={self.tc_flush_timeout:,} "
            f"final={self.tc_flush_final:,}; "
            f"warps={self.warps_launched:,}")
        lines.append(
            f"  crop cache: hits={self.crop_cache_hits:,} "
            f"misses={self.crop_cache_misses:,}; dram={self.dram_bytes:,.0f} B")
        return "\n".join(lines)

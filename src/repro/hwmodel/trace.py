"""Draw-call tracing: per-flush event records for bin-dynamics analysis.

The TGC/TC bin dynamics are where VR-Pipe's quad merging lives, so being
able to *see* every flush — its tile, size, cause, and how many pairs the
QRU found — matters for debugging and for reproducing the paper's binning
analysis.  Pass a :class:`DrawTrace` to
:meth:`~repro.hwmodel.pipeline.GraphicsPipeline.draw` and export the events
as CSV, or summarise them in-process.
"""

from __future__ import annotations

import csv
import io


class FlushEvent:
    """One TC-bin flush as seen by the PROP."""

    __slots__ = ("index", "tile_id", "reason", "n_quads", "n_survivors",
                 "n_pairs", "n_crop_quads")

    def __init__(self, index, tile_id, reason, n_quads, n_survivors,
                 n_pairs, n_crop_quads):
        self.index = index
        self.tile_id = tile_id
        self.reason = reason
        self.n_quads = n_quads
        self.n_survivors = n_survivors
        self.n_pairs = n_pairs
        self.n_crop_quads = n_crop_quads

    def as_row(self):
        return [self.index, self.tile_id, self.reason, self.n_quads,
                self.n_survivors, self.n_pairs, self.n_crop_quads]


class DrawTrace:
    """Collects :class:`FlushEvent` records during one simulated draw."""

    COLUMNS = ("index", "tile_id", "reason", "n_quads", "n_survivors",
               "n_pairs", "n_crop_quads")

    def __init__(self):
        self.events = []

    def record_flush(self, tile_id, reason, n_quads, n_survivors, n_pairs,
                     n_crop_quads):
        self.events.append(FlushEvent(
            len(self.events), int(tile_id), str(reason), int(n_quads),
            int(n_survivors), int(n_pairs), int(n_crop_quads)))

    def record_flushes(self, tile_ids, reasons, n_quads, n_survivors,
                       n_pairs, n_crop_quads):
        """Append one event per flush from parallel arrays.

        Used by the batched flush engine to emit a whole draw's events in
        one call; the resulting event list is identical to per-flush
        :meth:`record_flush` calls in the same order.
        """
        def as_list(values):
            return values.tolist() if hasattr(values, "tolist") else list(values)

        append = self.events.append
        base = len(self.events)
        rows = zip(as_list(tile_ids), as_list(reasons), as_list(n_quads),
                   as_list(n_survivors), as_list(n_pairs),
                   as_list(n_crop_quads))
        for offset, (tile, reason, nq, ns, npairs, ncrop) in enumerate(rows):
            append(FlushEvent(base + offset, int(tile), str(reason), int(nq),
                              int(ns), int(npairs), int(ncrop)))

    def __len__(self):
        return len(self.events)

    # ------------------------------------------------------------------

    def to_csv(self, path=None):
        """Write events as CSV to ``path``, or return the text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.COLUMNS)
        for event in self.events:
            writer.writerow(event.as_row())
        text = buffer.getvalue()
        if path is None:
            return text
        with open(path, "w", newline="") as handle:
            handle.write(text)
        return path

    def flush_size_histogram(self, bins=(1, 8, 32, 64, 128)):
        """Count flushes by size bucket (``size <= edge``)."""
        histogram = {edge: 0 for edge in bins}
        histogram["larger"] = 0
        for event in self.events:
            for edge in bins:
                if event.n_quads <= edge:
                    histogram[edge] += 1
                    break
            else:
                histogram["larger"] += 1
        return histogram

    def merge_rate(self):
        """Fraction of surviving quads that merged into pairs."""
        survivors = sum(e.n_survivors for e in self.events)
        merged = sum(2 * e.n_pairs for e in self.events)
        return merged / survivors if survivors else 0.0

    def reasons(self):
        """Flush counts per cause (full / evict / timeout / final)."""
        out = {}
        for event in self.events:
            out[event.reason] = out.get(event.reason, 0) + 1
        return out

    def summary(self):
        sizes = [e.n_quads for e in self.events]
        if not sizes:
            return "DrawTrace(empty)"
        return (f"DrawTrace({len(self.events)} flushes, "
                f"mean size {sum(sizes) / len(sizes):.1f}, "
                f"merge rate {self.merge_rate():.1%}, "
                f"reasons {self.reasons()})")

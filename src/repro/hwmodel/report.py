"""Human-readable draw-call reports and variant comparisons.

Turns :class:`~repro.hwmodel.pipeline.DrawResult` objects into the kind of
per-draw analysis an architect reads: unit occupancy, workload funnel
(rasterised -> shaded -> blended), bin-dynamics summary, memory traffic,
and side-by-side variant deltas.
"""

from __future__ import annotations

from repro.hwmodel.pipeline import DrawResult


def draw_report(result, title=None):
    """Multi-line report for one simulated draw call."""
    if not isinstance(result, DrawResult):
        raise TypeError(f"result must be a DrawResult, got {type(result).__name__}")
    stats = result.stats
    cfg = result.config
    util = result.utilization()
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(
        f"config: {cfg.name} (HET={'on' if cfg.enable_het else 'off'}, "
        f"QM={'on' if cfg.enable_qm else 'off'})")
    lines.append(
        f"cycles: {stats.total_cycles:,.0f}  ({result.time_ms():.3f} ms at "
        f"{cfg.sm_freq_mhz:.0f} MHz)  bottleneck: {stats.bottleneck()}")
    lines.append("occupancy: " + "  ".join(
        f"{name}={util[name]:.0%}"
        for name in ("prop", "crop", "zrop", "raster", "sm", "dram")))
    lines.append(
        "workload funnel: "
        f"prims={stats.n_prims:,} -> quads={stats.quads_rasterized:,} -> "
        f"shaded={stats.quads_to_sm:,} -> blended={stats.quads_to_crop:,} "
        f"quads ({stats.fragments_blended:,} fragments)")
    if stats.quads_discarded_zrop or stats.termination_updates:
        lines.append(
            f"early termination: {stats.quads_discarded_zrop:,} quads "
            f"discarded at ZROP, {stats.termination_updates:,} "
            "termination-bit updates")
    if stats.quads_merged_pairs:
        lines.append(
            f"quad merging: {stats.quads_merged_pairs:,} pairs merged "
            f"({stats.merge_warps:,} merge warps)")
    lines.append(
        f"tile coalescing: {stats.tc_flushes():,} flushes "
        f"(full={stats.tc_flush_full:,} evict={stats.tc_flush_evict:,} "
        f"timeout={stats.tc_flush_timeout:,} "
        f"final={stats.tc_flush_final:,}); warps={stats.warps_launched:,}")
    hits = stats.crop_cache_hits
    misses = stats.crop_cache_misses
    total = hits + misses
    hit_rate = hits / total if total else 0.0
    lines.append(
        f"memory: CROP cache {hit_rate:.0%} hit ({misses:,} misses); "
        f"DRAM {stats.dram_bytes / 1024:,.0f} KiB")
    return "\n".join(lines)


def compare_variants(results, baseline="baseline"):
    """Tabular comparison of several variants' key counters.

    ``results`` maps variant name -> DrawResult; the named baseline anchors
    the speedup column.
    """
    if baseline not in results:
        raise KeyError(f"results must include the {baseline!r} variant")
    base_cycles = results[baseline].stats.total_cycles
    header = (f"{'variant':>10} {'cycles':>12} {'speedup':>8} "
              f"{'quads->ROP':>11} {'frags blended':>14} {'merged':>8} "
              f"{'ET kills':>9}")
    lines = [header, "-" * len(header)]
    for name, result in results.items():
        stats = result.stats
        lines.append(
            f"{name:>10} {stats.total_cycles:>12,.0f} "
            f"{base_cycles / stats.total_cycles:>8.2f} "
            f"{stats.quads_to_crop:>11,} {stats.fragments_blended:>14,} "
            f"{stats.quads_merged_pairs:>8,} "
            f"{stats.quads_discarded_zrop:>9,}")
    return "\n".join(lines)

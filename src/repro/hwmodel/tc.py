"""Tile Coalescing (TC) unit: per-screen-tile quad bins.

The TC unit (Section V-A) aggregates quads from fine raster into bins — one
bin per screen tile (16x16 px), 32 bins of 128 quads each (Table I) — and
flushes a bin to the PROP when (1) it is full, (2) all bins are occupied and
a quad for a new tile arrives (the oldest bin is evicted), or (3) a timeout
elapses after the last incoming quad.  The §VII-A tile-binning probe
("drawing 330 rectangles across 33 screen tiles leads to 330 warps") is a
direct consequence of rule (2) and is reproduced by this model.

Quads are stored as *indices into the draw call's quad table*, so flush
batches are cheap NumPy fancy-index views.

Both coalescer flavours — the scalar :class:`TileCoalescer` that
materialises row arrays per flush and the range-level
:class:`RangeTileCoalescer` planner — share one timeout code path
(:class:`TimeoutTracker`), so the ``tc_flush_timeout`` accounting cannot
drift between the scalar and batched engines.

The (tile, start, end) group sequences both flavours consume are the
workload's (prim, tile) ranges — derived from the stream's
:class:`~repro.render.frameir.FrameIR` chunklet runs when present, or
from the legacy quad-table reductions — so the planners themselves never
touch per-fragment data.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np


class FlushBatch:
    """One TC-bin flush: the quads of a single screen tile, in order."""

    __slots__ = ("tile_id", "quad_rows", "reason")

    def __init__(self, tile_id, quad_rows, reason):
        self.tile_id = tile_id
        self.quad_rows = quad_rows
        self.reason = reason

    def __len__(self):
        return self.quad_rows.shape[0]

    def __repr__(self):
        return (f"FlushBatch(tile={self.tile_id}, quads={len(self)}, "
                f"reason={self.reason!r})")


class TimeoutTracker:
    """The TC timeout rule, shared by every coalescer implementation.

    Tracks per-tile last-arrival clocks; :meth:`expired` returns the tiles
    whose bins idled for ``timeout_quads`` or more quads, in bin-age order
    (the order the owning coalescer's ``_bins`` dict yields them) — exactly
    the scan the scalar and range coalescers used to duplicate.  With
    ``timeout_quads=None`` every call is a cheap no-op.
    """

    __slots__ = ("timeout_quads", "clock", "last_arrival")

    def __init__(self, timeout_quads):
        if timeout_quads is not None and timeout_quads <= 0:
            raise ValueError("timeout_quads must be positive or None")
        self.timeout_quads = timeout_quads
        self.clock = 0
        self.last_arrival = {}

    @property
    def enabled(self):
        return self.timeout_quads is not None

    def arrive(self, tile_id, n_quads):
        """Advance the clock by ``n_quads`` landing in ``tile_id``'s bin."""
        self.clock += n_quads
        self.last_arrival[tile_id] = self.clock

    def drop(self, tile_id):
        self.last_arrival.pop(tile_id, None)

    def expired(self, bins):
        """Tiles of ``bins`` idle past the timeout, in bin-age order."""
        if self.timeout_quads is None:
            return ()
        clock = self.clock
        timeout = self.timeout_quads
        last = self.last_arrival
        return [tile for tile in bins
                if clock - last[tile] >= timeout]


class TileCoalescer:
    """Exact-bin-dynamics model of the TC unit.

    Parameters
    ----------
    n_bins, bin_capacity:
        Table I: 32 bins x 128 quads.
    timeout_quads:
        Optional timeout model: a bin idle while this many quads (for other
        tiles) stream past is flushed.  ``None`` disables the rule (the
        capacity/eviction rules dominate for splatting workloads); the
        microbenchmarks enable it to mimic idle-flush behaviour.
    """

    FLUSH_FULL = "full"
    FLUSH_EVICT = "evict"
    FLUSH_TIMEOUT = "timeout"
    FLUSH_FINAL = "final"

    def __init__(self, n_bins=32, bin_capacity=128, timeout_quads=None):
        if n_bins <= 0 or bin_capacity <= 0:
            raise ValueError("n_bins and bin_capacity must be positive")
        self.n_bins = int(n_bins)
        self.bin_capacity = int(bin_capacity)
        self._timeout = TimeoutTracker(timeout_quads)
        # tile_id -> dict(chunks=[index arrays], count)
        self._bins = OrderedDict()
        self.flush_counts = {self.FLUSH_FULL: 0, self.FLUSH_EVICT: 0,
                             self.FLUSH_TIMEOUT: 0, self.FLUSH_FINAL: 0}
        self.quads_inserted = 0

    @property
    def timeout_quads(self):
        return self._timeout.timeout_quads

    # ------------------------------------------------------------------

    def _make_batch(self, tile_id, entry, reason):
        self.flush_counts[reason] += 1
        self._timeout.drop(tile_id)
        rows = (np.concatenate(entry["chunks"]) if len(entry["chunks"]) > 1
                else entry["chunks"][0])
        return FlushBatch(tile_id, rows, reason)

    def _check_timeouts(self):
        flushed = []
        for tile in self._timeout.expired(self._bins):
            entry = self._bins.pop(tile)
            flushed.append(self._make_batch(tile, entry, self.FLUSH_TIMEOUT))
        return flushed

    def insert(self, tile_id, quad_rows):
        """Insert the quads of one (primitive, tile) group.

        ``quad_rows`` is an int array of quad-table row indices, in
        rasteriser emission order.  Returns flushed batches (possibly
        several if the group overflows the bin capacity repeatedly).
        """
        quad_rows = np.asarray(quad_rows)
        if quad_rows.ndim != 1:
            raise ValueError("quad_rows must be a 1-D index array")
        flushed = self._check_timeouts()
        bins = self._bins
        offset = 0
        n = quad_rows.shape[0]
        self.quads_inserted += n
        while offset < n:
            if tile_id not in bins:
                if len(bins) >= self.n_bins:
                    old_tile, old_entry = bins.popitem(last=False)
                    flushed.append(self._make_batch(old_tile, old_entry,
                                                    self.FLUSH_EVICT))
                bins[tile_id] = {"chunks": [], "count": 0}
                self._timeout.arrive(tile_id, 0)
            entry = bins[tile_id]
            space = self.bin_capacity - entry["count"]
            take = min(space, n - offset)
            if take > 0:
                entry["chunks"].append(quad_rows[offset:offset + take])
                entry["count"] += take
                offset += take
                self._timeout.arrive(tile_id, take)
            if entry["count"] >= self.bin_capacity:
                bins.pop(tile_id)
                flushed.append(self._make_batch(tile_id, entry, self.FLUSH_FULL))
        # Quads streaming past other tiles' bins advance their idle clocks.
        flushed.extend(self._check_timeouts())
        return flushed

    def insert_groups(self, tile_ids, starts, ends, quad_rows):
        """Batch-insert a run of (primitive, tile) groups in draw order.

        ``tile_ids``, ``starts`` and ``ends`` are parallel arrays (one entry
        per group); group ``g`` inserts ``quad_rows[starts[g]:ends[g]]``
        into ``tile_ids[g]``'s bin.  Yields :class:`FlushBatch` objects in
        the exact order sequential :meth:`insert` calls would produce them —
        bin dynamics are identical; only the per-group Python overhead
        (index-array allocation, list plumbing) goes away, since groups
        slice one shared row array.
        """
        for tile_id, s, e in zip(tile_ids, starts, ends):
            yield from self.insert(int(tile_id), quad_rows[s:e])

    def drain(self):
        """Flush every residual bin in age order (end of draw)."""
        flushed = []
        while self._bins:
            tile_id, entry = self._bins.popitem(last=False)
            flushed.append(self._make_batch(tile_id, entry, self.FLUSH_FINAL))
        return flushed

    @property
    def occupancy(self):
        return len(self._bins)


class RangeTileCoalescer:
    """Range-level TC flush *planner* with :class:`TileCoalescer` dynamics.

    The pipeline always feeds the TC unit contiguous quad-table row ranges
    — every (primitive, tile) group is a slice ``[start, end)`` of the
    draw's row space, and bin overflow only ever splits a range into
    subranges — so the entire flush schedule can be computed without
    materialising a single row array.  Bins hold ``(start, end)`` pairs,
    and each flush appends its ranges to flat segment arrays from which
    :class:`~repro.hwmodel.flushplan.FlushPlan` later expands the row
    stream in one vectorised pass.

    Feeding the same group sequence to :class:`TileCoalescer` produces the
    identical flush sequence (tile, cause, and quad rows); the golden
    flush-engine tests enforce this equivalence on every variant.
    """

    def __init__(self, n_bins=32, bin_capacity=128, timeout_quads=None):
        if n_bins <= 0 or bin_capacity <= 0:
            raise ValueError("n_bins and bin_capacity must be positive")
        self.n_bins = int(n_bins)
        self.bin_capacity = int(bin_capacity)
        self._timeout = TimeoutTracker(timeout_quads)
        # tile_id -> [count, seg_starts, seg_ends]
        self._bins = OrderedDict()
        self.flush_counts = {
            TileCoalescer.FLUSH_FULL: 0, TileCoalescer.FLUSH_EVICT: 0,
            TileCoalescer.FLUSH_TIMEOUT: 0, TileCoalescer.FLUSH_FINAL: 0,
        }
        self.quads_inserted = 0
        # Flat plan accumulators (one entry per flush / per row segment).
        self.flush_tile = []
        self.flush_reason = []
        self.seg_starts = []
        self.seg_ends = []
        self.flush_seg_bounds = [0]

    @property
    def timeout_quads(self):
        return self._timeout.timeout_quads

    # ------------------------------------------------------------------

    def _flush(self, tile_id, entry, reason):
        self.flush_counts[reason] += 1
        self._timeout.drop(tile_id)
        self.flush_tile.append(tile_id)
        self.flush_reason.append(reason)
        self.seg_starts.extend(entry[1])
        self.seg_ends.extend(entry[2])
        self.flush_seg_bounds.append(len(self.seg_starts))

    def _check_timeouts(self):
        for tile in self._timeout.expired(self._bins):
            self._flush(tile, self._bins.pop(tile),
                        TileCoalescer.FLUSH_TIMEOUT)

    def insert_group(self, tile_id, start, end):
        """Plan the insertion of one (primitive, tile) group of rows.

        Mirrors :meth:`TileCoalescer.insert` on ``arange(start, end)``:
        identical bin occupancy, identical flush order and causes.
        """
        self._check_timeouts()
        bins = self._bins
        capacity = self.bin_capacity
        offset = 0
        n = end - start
        self.quads_inserted += n
        while offset < n:
            entry = bins.get(tile_id)
            if entry is None:
                if len(bins) >= self.n_bins:
                    old_tile, old_entry = bins.popitem(last=False)
                    self._flush(old_tile, old_entry,
                                TileCoalescer.FLUSH_EVICT)
                entry = bins[tile_id] = [0, [], []]
                self._timeout.arrive(tile_id, 0)
            take = min(capacity - entry[0], n - offset)
            if take > 0:
                entry[1].append(start + offset)
                entry[2].append(start + offset + take)
                entry[0] += take
                offset += take
                self._timeout.arrive(tile_id, take)
            if entry[0] >= capacity:
                del bins[tile_id]
                self._flush(tile_id, entry, TileCoalescer.FLUSH_FULL)
        self._check_timeouts()

    def plan_groups(self, tile_ids, starts, ends):
        """Plan a whole run of (primitive, tile) groups in one pass.

        Equivalent to one :meth:`insert_group` call per group — identical
        flush schedule, bit for bit — but the planning loop is collapsed:
        with the timeout rule disabled (the default for every variant) the
        per-group timeout scans are exact no-ops, so the loop runs fused
        with hoisted locals, and *repeated tile runs* (consecutive groups
        landing in the same bin, common under TGC grid grouping) reuse the
        resolved bin entry instead of re-walking the machinery.  This is
        the range-level planning hotspot flagged in the ROADMAP — ~29k
        groups per ``train`` draw — reduced to one tight pass.
        """
        tiles = tile_ids.tolist() if hasattr(tile_ids, "tolist") else tile_ids
        start_l = starts.tolist() if hasattr(starts, "tolist") else starts
        end_l = ends.tolist() if hasattr(ends, "tolist") else ends
        if self._timeout.enabled:
            for tile_id, start, end in zip(tiles, start_l, end_l):
                self.insert_group(tile_id, start, end)
            return
        bins = self._bins
        capacity = self.bin_capacity
        n_bins = self.n_bins
        flush = self._flush
        full = TileCoalescer.FLUSH_FULL
        evict = TileCoalescer.FLUSH_EVICT
        get = bins.get
        popitem = bins.popitem
        total = 0
        run_tile = None  # current same-tile run's resolved bin entry
        entry = None
        for tile_id, start, end in zip(tiles, start_l, end_l):
            n = end - start
            total += n
            if tile_id != run_tile or entry is None:
                run_tile = tile_id
                entry = get(tile_id)
            offset = 0
            while offset < n:
                if entry is None:
                    if len(bins) >= n_bins:
                        old_tile, old_entry = popitem(last=False)
                        flush(old_tile, old_entry, evict)
                    entry = bins[tile_id] = [0, [], []]
                take = capacity - entry[0]
                rest = n - offset
                if rest < take:
                    take = rest
                if take > 0:
                    entry[1].append(start + offset)
                    entry[2].append(start + offset + take)
                    entry[0] += take
                    offset += take
                if entry[0] >= capacity:
                    del bins[tile_id]
                    flush(tile_id, entry, full)
                    entry = None
        self.quads_inserted += total

    def drain(self):
        """Plan the end-of-draw flush of every residual bin, in age order."""
        while self._bins:
            tile_id, entry = self._bins.popitem(last=False)
            self._flush(tile_id, entry, TileCoalescer.FLUSH_FINAL)

    @property
    def occupancy(self):
        return len(self._bins)

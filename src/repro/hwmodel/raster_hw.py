"""Fixed-function rasteriser cost model: setup, coarse raster, fine raster.

The rasteriser runs four sequential, internally pipelined steps (Section
V-A): edge setup, coarse raster (which 8x8-pixel raster tiles does the
primitive touch), hierarchical-z (disabled for alpha blending — Gaussian
splatting renders with the depth test off), and fine raster (per-pixel
coverage, 2x2-quad assembly).  Because the substages pipeline against each
other, the engine's busy time over a draw call is the *maximum* of the three
substage totals, not their sum.

Coverage itself comes from the functional core; this module only accounts
cycles from primitive/raster-tile/quad counts accumulated during the draw.
"""

from __future__ import annotations


class RasterEngine:
    """Cycle accounting for the rasteriser (accumulate, then finalize)."""

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats
        self._prim_portions = 0
        self._raster_tiles = 0
        self._quads = 0
        self._finalized = False

    def accumulate(self, n_prim_portions, n_raster_tiles, n_quads):
        """Record one rasterised primitive portion.

        A *portion* is what setup runs on: the whole primitive in the
        baseline flow, or the primitive's slice within one tile grid when
        the TGC unit re-dispatches it per grid.
        """
        if self._finalized:
            raise RuntimeError("RasterEngine already finalized")
        if min(n_prim_portions, n_raster_tiles, n_quads) < 0:
            raise ValueError("raster work counts must be non-negative")
        self._prim_portions += int(n_prim_portions)
        self._raster_tiles += int(n_raster_tiles)
        self._quads += int(n_quads)
        self.stats.quads_rasterized += int(n_quads)

    def finalize(self):
        """Set the raster unit's busy cycles from the accumulated counts."""
        if self._finalized:
            return
        cfg = self.config
        setup = self._prim_portions * cfg.setup_cycles_per_prim
        coarse = self._raster_tiles / cfg.coarse_raster_tiles_per_cycle
        fine = self._quads / cfg.fine_raster_quads_per_cycle
        self.stats.units["raster"].add(self._quads, max(setup, coarse, fine))
        self._finalized = True

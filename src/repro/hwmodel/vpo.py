"""Vertex Processing & Operations (VPO): assembly and tile distribution.

After vertex shading, the VPO unit assembles splat quads into triangle
primitives, computes each primitive's screen bounding box, identifies the
intersecting screen tiles, and forwards the primitive (by Circular-Buffer
pointer) to the raster path.  Its cost scales with primitive count and is
never the bottleneck for splatting, but it appears in Figure 12 and its
counters feed the utilisation report.
"""

from __future__ import annotations


class VertexPipeline:
    """Cycle accounting for vertex shading + VPO."""

    VERTICES_PER_SPLAT = 4

    def __init__(self, config, stats, shader_array):
        self.config = config
        self.stats = stats
        self.shader_array = shader_array

    def process_prims(self, n_prims):
        """Account vertex shading and assembly for ``n_prims`` splats."""
        if n_prims == 0:
            return
        self.shader_array.shade_vertex_batch(n_prims * self.VERTICES_PER_SPLAT)
        self.stats.units["vpo"].add(
            n_prims, n_prims / self.config.vpo_prims_per_cycle)
        self.stats.n_prims += int(n_prims)
        # Vertex attribute traffic: positions + colour via the CB region
        # (4 vertices x 16 B position/attribute pointer payload).
        attr_bytes = n_prims * self.VERTICES_PER_SPLAT * 16
        self.stats.dram_bytes += attr_bytes
        self.stats.units["dram"].add(
            n_prims, attr_bytes / self.config.dram_bytes_per_cycle)

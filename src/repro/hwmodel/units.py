"""Small shared helpers for the hardware-unit models."""

from __future__ import annotations

import numpy as np

from repro.utils.arrays import popcount4

__all__ = ["WARP_SIZE", "QUAD_THREADS", "QUADS_PER_WARP", "ceil_div",
           "warps_for_quads", "as_index_array", "popcount4"]

#: Threads per warp on the modelled GPU.
WARP_SIZE = 32

#: Fragments per quad (2x2).
QUAD_THREADS = 4

#: Quads that fit in one warp.
QUADS_PER_WARP = WARP_SIZE // QUAD_THREADS


def ceil_div(a, b):
    """Integer ceiling division for non-negative operands."""
    if a < 0 or b <= 0:
        raise ValueError(f"ceil_div requires a >= 0 and b > 0, got {a}, {b}")
    return -(-int(a) // int(b))


def warps_for_quads(n_quads):
    """Warps needed to shade ``n_quads`` (8 quads of 4 threads per warp)."""
    return ceil_div(n_quads, QUADS_PER_WARP)


def as_index_array(values, dtype=np.int64):
    """Normalise an iterable of indices/tags to a 1-D integer array.

    Accepts arrays, lists, tuples and one-shot generators alike; the ROP
    units use it so documented ``Iterable`` parameters never hit
    ``len()``/``np.asarray`` pitfalls (a generator reaches ``np.asarray``
    as a 0-d object scalar and ``len()`` raises).
    """
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise ValueError(
                f"expected a 1-D index array, got shape {values.shape}")
        return values
    if not hasattr(values, "__len__"):
        values = list(values)
    return np.asarray(values, dtype=dtype).reshape(len(values))

"""GraphicsPipeline: drives one draw call through the modelled hardware.

Data flow (Figure 12 of the paper)::

    splats -> vertex shading -> VPO -> [TGC]* -> rasterizer -> TC bins
           -> PROP (-> ZROP termination test*) (-> quad reorder*)
           -> SM fragment shading (-> warp-shuffle merge*)
           -> CROP blending (-> alpha test -> ZROP termination update*)

    (* = VR-Pipe extensions, enabled by config.enable_het / enable_qm)

Functional results (which fragments blend, in what order) come from the
shared :class:`~repro.render.fragstream.FragmentStream`; this module
simulates the *mechanics* — exact TGC/TC bin dynamics, QRU pairing, cache
traffic — and accounts busy cycles per unit.  Total draw time uses the
streaming-bottleneck model (max over units + fill), which is also what
produces the utilisation report of Figure 6.
"""

from __future__ import annotations

import numpy as np

from repro.hwmodel.config import GPUConfig
from repro.knobs import PIPELINE_ENGINES
from repro.hwmodel.crop import CropUnit
from repro.hwmodel.flushplan import (
    apply_flush_counts,
    build_flush_plan,
    execute_flush_plan,
)
from repro.hwmodel.prop import plan_merges
from repro.hwmodel.raster_hw import RasterEngine
from repro.hwmodel.sm import ShaderArray
from repro.hwmodel.stats import PipelineStats
from repro.hwmodel.tc import TileCoalescer
from repro.hwmodel.tgc import TileGridCoalescer
from repro.hwmodel.units import popcount4
from repro.hwmodel.vpo import VertexPipeline
from repro.hwmodel.zrop import ZropUnit
from repro.render.fragstream import FragmentStream
from repro.utils.arrays import segment_boundaries


class DrawWorkload:
    """A draw call pre-digested for the pipeline simulator.

    Groups the quad table by (primitive, screen tile) — the granularity at
    which the rasteriser feeds the TC unit — and precomputes per-group
    raster-tile masks plus the per-pixel termination set for HET.
    """

    def __init__(self, quads, n_prims, width, height, n_terminated_pixels,
                 terminated_stencil_tags, term_source=None):
        self.quads = quads
        self.n_prims = int(n_prims)
        self.width = int(width)
        self.height = int(height)
        self._n_terminated = (None if n_terminated_pixels is None
                              else int(n_terminated_pixels))
        self._term_tags = terminated_stencil_tags
        self._term_source = term_source
        self._build_groups()

    # The termination set is consumed by the HET stencil-update pass at end
    # of draw; non-HET digestion defers the whole accumulated-alpha pass
    # behind these properties so baseline/qm draws never pay for it.
    def _compute_termination(self):
        stream, config = self._term_source
        terminated = stream.accumulated_alpha >= config.termination_alpha
        term_pixels = np.flatnonzero(terminated)
        lines_per_row = max(1, -(-stream.width // config.cache_line_bytes))
        ys, xs = np.divmod(term_pixels, stream.width)
        self._term_tags = np.unique(
            ys * lines_per_row + xs // config.cache_line_bytes)
        self._n_terminated = int(terminated.sum())

    @property
    def n_terminated_pixels(self):
        if self._n_terminated is None:
            self._compute_termination()
        return self._n_terminated

    @property
    def terminated_stencil_tags(self):
        if self._term_tags is None:
            self._compute_termination()
        return self._term_tags

    @classmethod
    def from_stream(cls, stream, config, ir=None):
        """Build a workload from a fragment stream under ``config``.

        The termination threshold baked into the quad table follows
        ``config.termination_alpha``.  ``ir`` selects the digestion path
        (see :mod:`repro.render.frameir`): on streams carrying a FrameIR
        the quad table and its (prim, tile) group ranges come off the IR
        with no fragment-level sort; ``ir="legacy"`` forces the original
        sort-based digestion.  Both produce bit-identical workloads.
        """
        if not isinstance(stream, FragmentStream):
            raise TypeError(
                f"stream must be a FragmentStream, got {type(stream).__name__}")
        lag = config.het_inflight_lag if config.enable_het else 0
        quads = stream.quad_table(config.termination_alpha, lag, ir=ir)
        n_prims = stream.prim_colors.shape[0]
        # Pixels whose accumulated alpha saturates generate exactly one
        # termination update each (the CROP alpha test's double-sided
        # condition fires once per pixel).  The stream's cached accumulated
        # alpha is the alpha map of a full blend — reusing it avoids
        # re-running the whole colour blend per draw; the pass itself is
        # deferred until the termination set is actually read (HET draws,
        # or explicit property access).
        workload = cls(quads, n_prims, stream.width, stream.height,
                       n_terminated_pixels=None,
                       terminated_stencil_tags=None,
                       term_source=(stream, config))
        if config.enable_het:
            workload._compute_termination()
        return workload

    # ------------------------------------------------------------------

    def _build_groups(self):
        quads = self.quads
        n_quads = len(quads)
        tiles_x = -(-self.width // 16)
        tiles_y = -(-self.height // 16)
        self.n_tiles = tiles_x * tiles_y
        self.quad_rows = np.arange(n_quads, dtype=np.int64)
        if n_quads == 0:
            self.group_starts = np.empty(0, dtype=np.int64)
            self.group_ends = np.empty(0, dtype=np.int64)
            self.group_prim = np.empty(0, dtype=np.int64)
            self.group_tile = np.empty(0, dtype=np.int64)
            self.group_grid = np.empty(0, dtype=np.int64)
            self.group_n_quads = np.empty(0, dtype=np.int64)
            self.group_n_rtiles = np.empty(0, dtype=np.int64)
            self.prim_group_ranges = {}
            self._prim_grids = {}
            return
        ir_groups = getattr(quads, "ir_groups", None)
        if ir_groups is not None:
            # The stream's FrameIR already derived the (prim, tile) group
            # ranges from the raster structure (bit-identical to the
            # reductions below; sortedness holds by construction).
            self.group_starts = ir_groups.starts
            self.group_ends = ir_groups.ends
            self.group_prim = ir_groups.prim
            self.group_tile = ir_groups.tile
            self.group_grid = ir_groups.grid
            self.group_n_quads = ir_groups.ends - ir_groups.starts
            self.group_n_rtiles = ir_groups.n_rtiles
        else:
            combined = quads.prim_ids * self.n_tiles + quads.tile_ids
            if np.any(np.diff(combined) < 0):
                raise ValueError("quad table is not sorted by (prim, tile)")
            starts = segment_boundaries(combined)
            ends = np.concatenate((starts[1:], [n_quads]))
            self.group_starts = starts
            self.group_ends = ends
            self.group_prim = quads.prim_ids[starts]
            self.group_tile = quads.tile_ids[starts]
            self.group_grid = quads.grid_ids[starts]
            self.group_n_quads = ends - starts
            # Raster tiles (8x8 px = 4x4 quads) within the 16x16 tile: 2x2
            # possibilities; a bitmask OR-reduce counts the distinct ones.
            rt_index = ((quads.qpos // 8) // 4) * 2 + (quads.qpos % 8) // 4
            rt_bit = np.left_shift(1, rt_index.astype(np.int64))
            rt_mask = np.bitwise_or.reduceat(rt_bit, starts)
            self.group_n_rtiles = popcount4(rt_mask)

        # Per-primitive ranges over the group arrays.
        prim_starts = segment_boundaries(self.group_prim)
        prim_ends = np.concatenate((prim_starts[1:], [self.group_prim.shape[0]]))
        self.prim_group_ranges = {
            int(self.group_prim[s]): (int(s), int(e))
            for s, e in zip(prim_starts, prim_ends)
        }
    def _build_pair_structures(self):
        """(primitive, grid) occurrence and lookup structures (TGC path).

        Deferred: only QM draws with the TGC enabled consume them.
        ``pair_prim``/``pair_grid`` flatten the occurrences in TGC
        insertion order — draw order over primitives, ascending grid id
        within each (the order ``prim_grids`` yields); groups are
        (prim, tile)-sorted, so a unique over a combined key produces
        exactly that sequence.
        """
        n_grids = int(self.group_grid.max()) + 1 if len(self.quads) else 1
        self._n_grids = n_grids
        pair_key = self.group_prim * n_grids + self.group_grid
        pairs = np.unique(pair_key)
        self._pair_prim, self._pair_grid = np.divmod(pairs, n_grids)
        # Group rows regrouped by (primitive, grid): a stable sort on the
        # pair key keeps each pair's rows in ascending group order — the
        # exact order a per-primitive `flatnonzero(grid == g)` scan yields
        # — so `select_grid_groups` becomes per-pair range lookups instead
        # of a per-flush scan over every group of every primitive.
        pair_order = np.argsort(pair_key, kind="stable")
        sorted_keys = pair_key[pair_order]
        range_starts = segment_boundaries(sorted_keys)
        range_ends = np.concatenate((range_starts[1:], [sorted_keys.shape[0]]))
        self._groups_by_pair = pair_order
        self._pair_ranges = {
            int(k): (int(s), int(e))
            for k, s, e in zip(sorted_keys[range_starts], range_starts,
                               range_ends)
        }

    @property
    def pair_prim(self):
        if not hasattr(self, "_pair_prim"):
            self._build_pair_structures()
        return self._pair_prim

    @property
    def pair_grid(self):
        if not hasattr(self, "_pair_grid"):
            self._build_pair_structures()
        return self._pair_grid

    @property
    def prim_grids(self):
        """Per-primitive ascending grid ids (TGC insertion order)."""
        if not hasattr(self, "_prim_grids"):
            self._prim_grids = {
                prim: np.unique(self.group_grid[s:e])
                for prim, (s, e) in self.prim_group_ranges.items()
            }
        return self._prim_grids

    def select_grid_groups(self, grid_id, prims):
        """(prim, tile) group indices of ``prims`` falling in ``grid_id``.

        Returns ``(sel, n_portions)``: the group rows in the per-primitive
        order a TGC flush dictates, and the number of primitives with at
        least one group in the grid.  Shared by the scalar grid-group
        rasterisation and the batched flush planner so both engines select
        identical work in identical order.
        """
        if not hasattr(self, "_pair_ranges"):
            self._build_pair_structures()
        ranges = self._pair_ranges
        by_pair = self._groups_by_pair
        n_grids = self._n_grids
        selected = []
        n_portions = 0
        for prim in prims:
            span = ranges.get(prim * n_grids + grid_id)
            if span is not None:
                n_portions += 1
                selected.append(by_pair[span[0]:span[1]])
        if not selected:
            return np.empty(0, dtype=np.int64), 0
        if len(selected) == 1:
            return selected[0], 1
        return np.concatenate(selected), n_portions

    @property
    def prims_with_quads(self):
        """Primitive rows that produced at least one quad, in draw order."""
        return sorted(self.prim_group_ranges)


class DrawResult:
    """Outcome of a simulated draw call."""

    def __init__(self, stats, config, workload):
        self.stats = stats
        self.config = config
        self.workload = workload

    @property
    def cycles(self):
        return self.stats.total_cycles

    def time_ms(self):
        """Wall-clock estimate at the configured core frequency."""
        return self.stats.total_cycles / self.config.frequency_hz() * 1e3

    def utilization(self):
        return self.stats.utilization()

    def __repr__(self):
        return (f"DrawResult(cycles={self.cycles:,.0f}, "
                f"bottleneck={self.stats.bottleneck()!r})")


class GraphicsPipeline:
    """The modelled GPU pipeline; one instance per draw call.

    Two execution engines produce identical results: the default
    ``"batched"`` engine precomputes the draw's entire flush schedule
    (:mod:`repro.hwmodel.flushplan`) and runs the per-flush math over all
    flushes at once, while ``"scalar"`` walks the TC flushes one by one —
    the original reference path, kept for validation and as the golden
    oracle of the flush-engine equivalence tests.
    """

    ENGINES = PIPELINE_ENGINES

    def __init__(self, config=None):
        self.config = config if config is not None else GPUConfig()
        if not isinstance(self.config, GPUConfig):
            raise TypeError("config must be a GPUConfig")
        self._trace = None

    # ------------------------------------------------------------------

    def draw(self, workload_or_stream, crop_cache=None, trace=None,
             engine="batched", ir=None):
        """Simulate one draw call; returns a :class:`DrawResult`.

        ``crop_cache`` optionally shares a warm CROP cache across draws
        (used by the §VII microbenchmark probes).  ``trace`` optionally
        collects per-flush events into a
        :class:`~repro.hwmodel.trace.DrawTrace`.  ``engine`` selects the
        batched flush-plan engine (default) or the scalar per-flush path;
        both are cycle-, stat- and trace-exact against each other.
        ``ir`` picks the digestion path when a raw stream is passed (see
        :meth:`DrawWorkload.from_stream`); the two paths are likewise
        bit-identical.
        """
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {self.ENGINES}")
        if isinstance(workload_or_stream, FragmentStream):
            workload = DrawWorkload.from_stream(workload_or_stream,
                                                self.config, ir=ir)
        elif isinstance(workload_or_stream, DrawWorkload):
            workload = workload_or_stream
        else:
            raise TypeError(
                "draw() accepts a FragmentStream or DrawWorkload, got "
                f"{type(workload_or_stream).__name__}")

        cfg = self.config
        self._trace = trace
        stats = PipelineStats()
        shader = ShaderArray(cfg, stats)
        vertex = VertexPipeline(cfg, stats, shader)
        raster = RasterEngine(cfg, stats)
        crop = CropUnit(cfg, stats, cache=crop_cache)
        zrop = ZropUnit(cfg, stats)

        vertex.process_prims(workload.n_prims)

        if engine == "batched":
            self._draw_batched(workload, raster, crop, zrop, shader, stats)
        else:
            self._draw_scalar(workload, raster, crop, zrop, shader, stats)

        if cfg.enable_het:
            zrop.termination_updates(workload.n_terminated_pixels,
                                     workload.terminated_stencil_tags)

        crop.finish_draw()
        raster.finalize()
        stats.finalize(cfg.pipeline_fill_cycles)
        self._trace = None
        return DrawResult(stats, cfg, workload)

    # ------------------------------------------------------------------

    def _draw_batched(self, workload, raster, crop, zrop, shader, stats):
        """Plan the flush schedule, then execute every flush at once."""
        plan = build_flush_plan(workload, self.config)
        raster.accumulate(plan.raster_portions, plan.raster_tiles,
                          plan.raster_quads)
        execute_flush_plan(plan, workload, self.config, stats, crop, zrop,
                           shader, trace=self._trace)
        apply_flush_counts(plan, stats)

    def _draw_scalar(self, workload, raster, crop, zrop, shader, stats):
        """Reference path: walk TC flushes one by one."""
        cfg = self.config
        tc = TileCoalescer(cfg.n_tc_bins, cfg.tc_bin_quads,
                           cfg.tc_timeout_quads)
        if cfg.enable_qm and cfg.qm_use_tgc:
            self._run_with_tgc(workload, raster, tc, crop, zrop, shader, stats)
        else:
            self._run_in_draw_order(workload, raster, tc, crop, zrop, shader, stats)

        for batch in tc.drain():
            self._process_flush(batch, workload, crop, zrop, shader, stats)
        stats.tc_flush_full = tc.flush_counts[TileCoalescer.FLUSH_FULL]
        stats.tc_flush_evict = tc.flush_counts[TileCoalescer.FLUSH_EVICT]
        stats.tc_flush_timeout = tc.flush_counts[TileCoalescer.FLUSH_TIMEOUT]
        stats.tc_flush_final = tc.flush_counts[TileCoalescer.FLUSH_FINAL]

    # ------------------------------------------------------------------

    def _run_in_draw_order(self, workload, raster, tc, crop, zrop, shader,
                           stats):
        """Baseline order: primitives hit the rasteriser in draw order.

        The (prim, tile) groups are already sorted in draw order, so the
        whole draw is one batch insert: raster-unit counts accumulate in a
        single call (pure sums, so identical to per-primitive calls) and
        the TC unit consumes every group through :meth:`TileCoalescer.
        insert_groups`, which yields flushes in the exact sequential order.
        """
        raster.accumulate(len(workload.prim_group_ranges),
                          int(workload.group_n_rtiles.sum()),
                          int(workload.group_n_quads.sum()))
        for batch in tc.insert_groups(workload.group_tile,
                                      workload.group_starts,
                                      workload.group_ends,
                                      workload.quad_rows):
            self._process_flush(batch, workload, crop, zrop, shader, stats)

    def _run_with_tgc(self, workload, raster, tc, crop, zrop, shader, stats):
        """VR-Pipe order: the TGC unit groups primitives per tile grid.

        The precomputed ``(pair_prim, pair_grid)`` occurrence arrays drive
        one :meth:`TileGridCoalescer.insert_pairs` pass; the simulator then
        iterates *flushed grid groups* (each rasterised as a tile batch)
        instead of looping per Gaussian.
        """
        cfg = self.config
        tgc = TileGridCoalescer(cfg.n_tgc_bins, cfg.tgc_bin_prims)
        for grid_id, prims, _reason in tgc.insert_pairs(workload.pair_grid,
                                                        workload.pair_prim):
            self._rasterize_grid_group(grid_id, prims, workload, raster,
                                       tc, crop, zrop, shader, stats)
        for grid_id, prims, _reason in tgc.drain():
            self._rasterize_grid_group(grid_id, prims, workload, raster, tc,
                                       crop, zrop, shader, stats)
        stats.tgc_flush_full = tgc.flush_counts[TileGridCoalescer.FLUSH_FULL]
        stats.tgc_flush_evict = tgc.flush_counts[TileGridCoalescer.FLUSH_EVICT]
        stats.tgc_flush_final = tgc.flush_counts[TileGridCoalescer.FLUSH_FINAL]

    def _rasterize_grid_group(self, grid_id, prims, workload, raster, tc,
                              crop, zrop, shader, stats):
        """Rasterise the portions of ``prims`` that fall in ``grid_id``.

        Selects every (prim, tile) group of the flushed primitives inside
        the grid, accumulates their raster counts once, and batch-inserts
        the groups into the TC unit in the original per-primitive order.
        """
        sel, n_portions = workload.select_grid_groups(grid_id, prims)
        if not sel.size:
            return
        raster.accumulate(n_portions,
                          int(workload.group_n_rtiles[sel].sum()),
                          int(workload.group_n_quads[sel].sum()))
        for batch in tc.insert_groups(workload.group_tile[sel],
                                      workload.group_starts[sel],
                                      workload.group_ends[sel],
                                      workload.quad_rows):
            self._process_flush(batch, workload, crop, zrop, shader, stats)

    # ------------------------------------------------------------------

    def _process_flush(self, batch, workload, crop, zrop, shader, stats):
        """One TC flush: ZROP test -> QRU -> shading -> CROP blend."""
        cfg = self.config
        quads = workload.quads
        rows = batch.quad_rows
        n_flushed = rows.shape[0]

        # TC unit insertion throughput, accounted at flush over the whole
        # batch (every flushed quad passed through the bin).
        stats.units["tc"].add(n_flushed, n_flushed / cfg.tc_quads_per_cycle)

        if cfg.enable_het:
            survivors = zrop.termination_test(
                quads.mask_unterminated[rows], batch.tile_id, workload.width)
            rows = rows[survivors]
            blend_masks = quads.mask_et[rows]
        else:
            blend_masks = quads.mask_unpruned[rows]
        if rows.shape[0] == 0:
            if self._trace is not None:
                self._trace.record_flush(batch.tile_id, batch.reason,
                                         n_flushed, 0, 0, 0)
            return

        pairs_before = stats.quads_merged_pairs
        if cfg.enable_qm:
            plan = plan_merges(quads.qpos[rows])
            shader.shade_fragment_batch(rows.shape[0], plan.n_pairs)
            stats.quads_merged_pairs += plan.n_pairs
            out_masks = np.concatenate((
                blend_masks[plan.first] | blend_masks[plan.second],
                blend_masks[plan.singles],
            ))
            out_rows = np.concatenate((rows[plan.first], rows[plan.singles]))
        else:
            shader.shade_fragment_batch(rows.shape[0], 0)
            out_masks = blend_masks
            out_rows = rows

        live = out_masks != 0
        n_crop_quads = int(live.sum())
        n_fragments = int(popcount4(out_masks[live]).sum()) if n_crop_quads else 0

        # PROP: quads pass it twice — dispatch toward the SMs (all flushed
        # quads, at the lighter dispatch weight) and the ordered return of
        # blendable quads into the CROP stream.
        prop_work = cfg.prop_dispatch_weight * n_flushed + n_crop_quads
        stats.units["prop"].add(n_flushed + n_crop_quads,
                                prop_work / cfg.prop_quads_per_cycle)

        if n_crop_quads:
            tags = crop.quad_line_tags(
                quads.qx[out_rows[live]], quads.qy[out_rows[live]],
                workload.width)
            crop.blend_batch(n_crop_quads, n_fragments, tags)

        if self._trace is not None:
            n_pairs = (stats.quads_merged_pairs - pairs_before
                       if cfg.enable_qm else 0)
            self._trace.record_flush(
                batch.tile_id, batch.reason, n_flushed, rows.shape[0],
                n_pairs, n_crop_quads)

"""Batched flush-plan engine: plan a draw's flush schedule, execute it at once.

The scalar pipeline walks ~tens of thousands of TC-bin flushes per draw,
paying ~30 µs of Python per flush for arithmetic that is tiny per flush but
identical in shape across flushes.  The TC/TGC bin dynamics, however, are
*deterministic* given the insertion sequence — which the
:class:`~repro.hwmodel.pipeline.DrawWorkload` fixes up front — so the whole
schedule can be computed first and the per-flush math vectorised after.

The engine runs in two phases:

:func:`build_flush_plan`
    Replays the bin dynamics at *range* granularity (every inserted group
    is a contiguous quad-table row slice, and bin overflow only splits
    ranges into subranges) via :class:`~repro.hwmodel.tc.RangeTileCoalescer`
    — and, for QM variants, :meth:`~repro.hwmodel.tgc.TileGridCoalescer.
    plan_groups` — producing a :class:`FlushPlan`: flat per-flush
    ``tile``/``reason`` arrays plus row-segment offsets.  The (prim,
    tile) and (prim, grid) ranges it iterates come from the workload,
    which reads them straight off the stream's
    :class:`~repro.render.frameir.FrameIR` when one is present (chunklet
    runs of the raster structure) instead of per-quad reductions.

:func:`execute_flush_plan`
    Runs the ZROP termination test, QRU pair planning, SM shading, PROP and
    CROP accounting over *all* flushes at once with ``reduceat``/``bincount``
    segment ops.  Exactness is preserved by two rules:

    * every floating-point accumulator receives its per-flush contributions
      through :meth:`~repro.hwmodel.stats.UnitStats.add_sequence`, i.e. in
      the same order and with the same sequential rounding as the scalar
      loop (skipped scalar calls become exact ``+0.0`` no-ops);
    * the exact-LRU z- and CROP-cache traffic is replayed over the
      deduplicated per-flush tag streams through the *real* cache objects
      (group-granular for the stencil cache), so hit/miss counts — and the
      warm-cache state carried across draws — stay bit-identical.

    The golden flush-engine tests enforce cycle-, stat- and trace-exact
    equivalence against the scalar path on all four hardware variants.
"""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.hwmodel.prop import plan_merges_segmented
from repro.hwmodel.tc import RangeTileCoalescer, TileCoalescer
from repro.hwmodel.tgc import TileGridCoalescer
from repro.hwmodel.units import popcount4

#: Quad positions per screen tile (8x8), the QRU pairing key space.
N_QUAD_POSITIONS = 64


class FlushPlan:
    """The complete flush schedule of one draw, as flat arrays.

    Attributes
    ----------
    tile:
        int64 ``(n_flushes,)`` — flushed screen tile per flush.
    reason:
        list of flush-cause strings (:class:`~repro.hwmodel.tc.
        TileCoalescer` constants), parallel to ``tile``.
    rows:
        int64 ``(n_rows,)`` — concatenated quad-table rows of every flush,
        in flush order (arrival order within each flush).
    row_splits:
        int64 ``(n_flushes + 1,)`` — offsets of each flush in ``rows``.
    raster_portions, raster_tiles, raster_quads:
        Rasteriser work totals (primitive portions, raster tiles, quads).
    tc_flush_counts, tgc_flush_counts:
        Flush-cause counters of the TC pass and (for QM+TGC draws) the TGC
        pass; ``tgc_flush_counts`` is ``None`` otherwise.
    """

    __slots__ = ("tile", "reason", "rows", "row_splits", "raster_portions",
                 "raster_tiles", "raster_quads", "tc_flush_counts",
                 "tgc_flush_counts", "quads_inserted")

    def __init__(self, tile, reason, rows, row_splits, raster_portions,
                 raster_tiles, raster_quads, tc_flush_counts,
                 tgc_flush_counts, quads_inserted):
        self.tile = tile
        self.reason = reason
        self.rows = rows
        self.row_splits = row_splits
        self.raster_portions = int(raster_portions)
        self.raster_tiles = int(raster_tiles)
        self.raster_quads = int(raster_quads)
        self.tc_flush_counts = tc_flush_counts
        self.tgc_flush_counts = tgc_flush_counts
        self.quads_inserted = int(quads_inserted)

    @property
    def n_flushes(self):
        return self.tile.shape[0]

    @property
    def n_rows(self):
        return self.rows.shape[0]

    def __repr__(self):
        return (f"FlushPlan(flushes={self.n_flushes}, rows={self.n_rows}, "
                f"tgc={'on' if self.tgc_flush_counts is not None else 'off'})")


def _expand_segments(seg_starts, seg_ends):
    """Concatenate ``arange(s, e)`` for every segment, vectorised."""
    starts = np.asarray(seg_starts, dtype=np.int64)
    ends = np.asarray(seg_ends, dtype=np.int64)
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    offsets = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(lengths)))
    rows = (np.arange(total, dtype=np.int64)
            + np.repeat(starts - offsets[:-1], lengths))
    return rows, offsets


def build_flush_plan(workload, config):
    """Plan the entire flush schedule of ``workload`` under ``config``.

    Follows the exact group-insertion sequence of the scalar pipeline —
    draw order, or TGC grid-group order for QM variants — through the
    range-level coalescer, so the resulting schedule is flush-for-flush
    identical to what :class:`~repro.hwmodel.tc.TileCoalescer` would emit.
    """
    if faults.ENABLED:
        rule = faults.checkpoint("flushplan")
        if rule is not None:
            # A corrupted plan would silently skew every downstream cycle
            # count; the scalar flush engine is the recovery path, so
            # model the corruption as detected here.
            faults.corrupt_detected("flushplan")
    tc = RangeTileCoalescer(config.n_tc_bins, config.tc_bin_quads,
                            config.tc_timeout_quads)
    tgc_counts = None
    if config.enable_qm and config.qm_use_tgc:
        tgc = TileGridCoalescer(config.n_tgc_bins, config.tgc_bin_prims)
        group_tile = workload.group_tile
        group_starts = workload.group_starts
        group_ends = workload.group_ends
        group_n_rtiles = workload.group_n_rtiles
        group_n_quads = workload.group_n_quads
        portions = 0
        selections = []
        for grid_id, prims, _reason in tgc.plan_groups(workload.pair_grid,
                                                       workload.pair_prim):
            sel, n_portions = workload.select_grid_groups(grid_id, prims)
            if not sel.size:
                continue
            portions += n_portions
            selections.append(sel)
        # TGC flushes only append to the TC insertion sequence, so the
        # whole grid-group schedule concatenates into one planning pass.
        sel_all = (np.concatenate(selections) if selections
                   else np.empty(0, dtype=np.int64))
        raster_tiles = int(group_n_rtiles[sel_all].sum())
        raster_quads = int(group_n_quads[sel_all].sum())
        tc.plan_groups(group_tile[sel_all], group_starts[sel_all],
                       group_ends[sel_all])
        tgc_counts = dict(tgc.flush_counts)
    else:
        portions = len(workload.prim_group_ranges)
        raster_tiles = int(workload.group_n_rtiles.sum())
        raster_quads = int(workload.group_n_quads.sum())
        tc.plan_groups(workload.group_tile, workload.group_starts,
                       workload.group_ends)
    tc.drain()

    rows, seg_offsets = _expand_segments(tc.seg_starts, tc.seg_ends)
    flush_seg_bounds = np.asarray(tc.flush_seg_bounds, dtype=np.int64)
    row_splits = seg_offsets[flush_seg_bounds]
    return FlushPlan(
        tile=np.asarray(tc.flush_tile, dtype=np.int64),
        reason=tc.flush_reason,
        rows=rows,
        row_splits=row_splits,
        raster_portions=portions,
        raster_tiles=raster_tiles,
        raster_quads=raster_quads,
        tc_flush_counts=dict(tc.flush_counts),
        tgc_flush_counts=tgc_counts,
        quads_inserted=tc.quads_inserted,
    )


def execute_flush_plan(plan, workload, config, stats, crop, zrop, shader,
                       trace=None):
    """Run every flush of ``plan`` through the modelled back half at once.

    Vectorised equivalent of calling ``GraphicsPipeline._process_flush``
    per flush — same counters, same cycle totals bit-for-bit, same trace.
    """
    n_flushes = plan.n_flushes
    if n_flushes == 0:
        return
    cfg = config
    quads = workload.quads
    rows = plan.rows
    row_splits = plan.row_splits
    n_flush = np.diff(row_splits)
    flush_of_row = np.repeat(np.arange(n_flushes, dtype=np.int64), n_flush)

    # TC insertion throughput, accounted at flush over each whole batch.
    stats.units["tc"].add_sequence(
        int(n_flush.sum()), n_flush / cfg.tc_quads_per_cycle)

    # ZROP termination test (HET): discard fully-terminated quads before
    # shading and replay the stencil-line traffic.
    if cfg.enable_het:
        surviving = quads.mask_unterminated[rows] != 0
        surv_rows = rows[surviving]
        surv_flush = flush_of_row[surviving]
        n_surv = np.bincount(surv_flush, minlength=n_flushes)
        zrop_misses = zrop.termination_test_plan(
            plan.tile, n_flush, n_surv, workload.width)
        blend_masks = quads.mask_et[surv_rows]
    else:
        surv_rows = rows
        surv_flush = flush_of_row
        n_surv = n_flush
        zrop_misses = np.zeros(n_flushes, dtype=np.int64)
        blend_masks = quads.mask_unpruned[surv_rows]

    nonempty = n_surv > 0

    # QRU pair planning + SM fragment shading.
    if cfg.enable_qm:
        merge = plan_merges_segmented(surv_flush, quads.qpos[surv_rows],
                                      n_flushes, N_QUAD_POSITIONS)
        pairs_f = merge.pairs_per_segment
        shader.shade_fragment_batches(n_surv, pairs_f)
        stats.quads_merged_pairs += int(pairs_f.sum())
        # Post-merge output stream, in the scalar per-flush order: each
        # flush's merge pairs (position-major) first, then its singles
        # (arrival order).
        singles_f = np.bincount(surv_flush[merge.singles],
                                minlength=n_flushes)
        out_counts = pairs_f + singles_f
        zero = np.zeros(1, dtype=np.int64)
        out_splits = np.concatenate(
            (zero, np.cumsum(out_counts))).astype(np.int64)
        pair_offsets = np.concatenate((zero, np.cumsum(pairs_f)))[:-1]
        single_offsets = np.concatenate((zero, np.cumsum(singles_f)))[:-1]
        f_pair = surv_flush[merge.first]
        f_single = surv_flush[merge.singles]
        pair_local = (np.arange(merge.n_pairs, dtype=np.int64)
                      - pair_offsets[f_pair])
        single_local = (np.arange(merge.singles.shape[0], dtype=np.int64)
                        - single_offsets[f_single])
        n_out = int(out_counts.sum())
        pair_pos = out_splits[f_pair] + pair_local
        single_pos = out_splits[f_single] + pairs_f[f_single] + single_local
        # One source permutation drives the whole out-stream: scatter the
        # survivor indices once, then every output column is a single
        # gather through it (a pair record carries its first member's
        # row; its mask ORs in the second's).
        out_src = np.empty(n_out, dtype=np.int64)
        out_src[pair_pos] = merge.first
        out_src[single_pos] = merge.singles
        out_rows = surv_rows[out_src]
        out_masks = blend_masks[out_src]
        out_masks[pair_pos] |= blend_masks[merge.second]
        out_flush = np.repeat(np.arange(n_flushes, dtype=np.int64),
                              out_counts)
    else:
        pairs_f = np.zeros(n_flushes, dtype=np.int64)
        shader.shade_fragment_batches(n_surv, pairs_f)
        out_rows = surv_rows
        out_masks = blend_masks
        out_flush = surv_flush

    # CROP-visible quads and fragments.
    live = out_masks != 0
    live_flush = out_flush[live]
    n_crop = np.bincount(live_flush, minlength=n_flushes)
    frag_counts = np.bincount(live_flush,
                              weights=popcount4(out_masks[live]),
                              minlength=n_flushes).astype(np.int64)

    # PROP: dispatch toward the SMs plus the ordered return into the CROP
    # stream; skipped entirely for flushes with no survivors.
    prop_work = cfg.prop_dispatch_weight * n_flush + n_crop
    prop_cycles = np.where(nonempty, prop_work / cfg.prop_quads_per_cycle,
                           0.0)
    prop_items = int((n_flush + n_crop)[nonempty].sum())
    stats.units["prop"].add_sequence(prop_items, prop_cycles)

    # CROP blends: per-flush first-occurrence-unique line tags, replayed
    # through the real LRU cache in flush order.
    live_rows = out_rows[live]
    tag_stream = crop.quad_line_tag_pairs(quads.qx[live_rows],
                                          quads.qy[live_rows],
                                          workload.width)
    tag_flush = np.repeat(live_flush, 2)
    if live_rows.shape[0]:
        if cfg.cache_line_bytes % (16 * cfg.bytes_per_pixel) == 0:
            # Structural fast path: when a cache line spans a whole number
            # of 16px screen tiles, every quad of a flush shares one
            # line-column, so a tag is identified inside its flush by the
            # pixel row alone — 16 possible rows per tile.  First
            # occurrences then come from one scatter over a dense
            # (flush, row mod 16) key space instead of a sort over the
            # whole tag stream.
            qy_live = quads.qy[live_rows]
            row_in_tile = np.empty(tag_stream.shape[0], dtype=np.int64)
            row_in_tile[0::2] = (qy_live * 2) & 15
            row_in_tile[1::2] = (qy_live * 2 + 1) & 15
            key = tag_flush * 16 + row_in_tile
            first = np.empty(n_flushes * 16, dtype=np.int64)
            idx = np.arange(key.shape[0], dtype=np.int64)
            first[key[::-1]] = idx[::-1]
            keep = first[key] == idx
        else:
            tag_space = int(tag_stream.max()) + 1
            _, first_idx = np.unique(tag_flush * tag_space + tag_stream,
                                     return_index=True)
            keep = np.zeros(tag_stream.shape[0], dtype=bool)
            keep[first_idx] = True
        dedup_tags = tag_stream[keep]
        dedup_flush = tag_flush[keep]
    else:
        dedup_tags = np.empty(0, dtype=np.int64)
        dedup_flush = np.empty(0, dtype=np.int64)
    tag_splits = np.concatenate(
        (np.zeros(1, dtype=np.int64),
         np.cumsum(np.bincount(dedup_flush,
                               minlength=n_flushes)))).astype(np.int64)
    crop_misses = crop.blend_plan(n_crop, frag_counts, dedup_tags,
                                  tag_splits)

    # DRAM: the scalar loop interleaves the ZROP stencil fills and the
    # CROP fill+writeback traffic per flush; replicate that order.
    zrop_bytes = zrop_misses * cfg.cache_line_bytes
    crop_bytes = crop_misses * cfg.cache_line_bytes * 2
    dram_cycles = np.empty(2 * n_flushes, dtype=np.float64)
    dram_cycles[0::2] = zrop_bytes / cfg.dram_bytes_per_cycle
    dram_cycles[1::2] = crop_bytes / cfg.dram_bytes_per_cycle
    stats.units["dram"].add_sequence(
        int(zrop_misses.sum() + crop_misses.sum()), dram_cycles)
    stats.dram_bytes += float(int(zrop_bytes.sum() + crop_bytes.sum()))

    if trace is not None:
        trace.record_flushes(plan.tile, plan.reason, n_flush, n_surv,
                             pairs_f, n_crop)


def apply_flush_counts(plan, stats):
    """Copy the plan's TC/TGC flush-cause counters into ``stats``."""
    tc_counts = plan.tc_flush_counts
    stats.tc_flush_full = tc_counts[TileCoalescer.FLUSH_FULL]
    stats.tc_flush_evict = tc_counts[TileCoalescer.FLUSH_EVICT]
    stats.tc_flush_timeout = tc_counts[TileCoalescer.FLUSH_TIMEOUT]
    stats.tc_flush_final = tc_counts[TileCoalescer.FLUSH_FINAL]
    if plan.tgc_flush_counts is not None:
        tgc_counts = plan.tgc_flush_counts
        stats.tgc_flush_full = tgc_counts[TileGridCoalescer.FLUSH_FULL]
        stats.tgc_flush_evict = tgc_counts[TileGridCoalescer.FLUSH_EVICT]
        stats.tgc_flush_final = tgc_counts[TileGridCoalescer.FLUSH_FINAL]

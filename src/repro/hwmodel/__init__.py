"""Cycle-approximate model of a tile-based hardware graphics pipeline.

This subpackage is the reproduction's stand-in for the (heavily modified)
Emerald simulator the paper uses: it models the pipeline stages of a
contemporary NVIDIA-like GPU — VPO, tile-grid coalescing, rasteriser, tile
coalescing, PROP with quad reordering, ZROP, shader cores, CROP with its
16 KB cache — at quad/flush granularity, with exact bin dynamics and a
streaming-bottleneck cycle model.  See DESIGN.md §5.2 for the modelling
rationale and fidelity discussion.
"""

from repro.hwmodel.config import (
    GPUConfig,
    EnergyTable,
    jetson_agx_orin,
    rtx_3090,
)
from repro.hwmodel.stats import PipelineStats, UnitStats
from repro.hwmodel.caches import LRUCache
from repro.hwmodel.flushplan import (
    FlushPlan,
    build_flush_plan,
    execute_flush_plan,
)
from repro.hwmodel.pipeline import DrawResult, GraphicsPipeline
from repro.hwmodel.energy import draw_energy
from repro.hwmodel.report import compare_variants, draw_report
from repro.hwmodel.trace import DrawTrace

__all__ = [
    "compare_variants",
    "draw_report",
    "DrawTrace",
    "FlushPlan",
    "GPUConfig",
    "EnergyTable",
    "jetson_agx_orin",
    "rtx_3090",
    "PipelineStats",
    "UnitStats",
    "LRUCache",
    "DrawResult",
    "GraphicsPipeline",
    "build_flush_plan",
    "draw_energy",
    "execute_flush_plan",
]

"""PROP-side quad reordering: the Quad Reorder Unit (QRU).

The QRU (Figure 14, right) examines the quads of one TC flush in arrival
order.  It keeps one 8-bit register (valid bit + 7-bit quad id) per quad
position of the screen tile (8x8 = 64 positions).  When a quad lands on a
position whose register already holds a valid quad id, the two quads form a
*merge pair*: they are dispatched adjacently in a warp with merge flags, the
fragment shader partially blends them via warp shuffle, and a single merged
quad reaches the CROP.  Because pairs are consecutive occupants of the same
pixel positions in front-to-back order, the associativity of the blend
equation guarantees an unchanged final image.
"""

from __future__ import annotations

import numpy as np


class MergePlan:
    """Result of QRU pairing for one flush batch.

    Attributes
    ----------
    first, second:
        Index arrays (into the flush batch) of pair members; ``first[i]``
        arrives before ``second[i]`` and both share a quad position.
    singles:
        Indices of quads left unmerged.
    """

    __slots__ = ("first", "second", "singles")

    def __init__(self, first, second, singles):
        self.first = first
        self.second = second
        self.singles = singles

    @property
    def n_pairs(self):
        return self.first.shape[0]

    @property
    def n_quads_out(self):
        """Quads forwarded to the CROP after merging."""
        return self.n_pairs + self.singles.shape[0]


def plan_merges(qpos):
    """Pair consecutive same-position quads, preserving arrival order.

    ``qpos`` is the per-quad position (0..63) within the flushed tile, in
    arrival order.  The sequential register-file scan of the hardware pairs
    occupants 1&2, 3&4, ... of each position; this vectorised equivalent
    produces identical pairs.
    """
    qpos = np.asarray(qpos)
    n = qpos.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return MergePlan(empty, empty, empty)
    order = np.argsort(qpos, kind="stable")     # groups positions, keeps arrival order
    sorted_pos = qpos[order]
    # Rank of each quad within its position group.
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_pos[1:], sorted_pos[:-1], out=is_start[1:])
    group_start = np.maximum.accumulate(np.where(is_start, np.arange(n), 0))
    rank = np.arange(n) - group_start
    # Even ranks with a same-group successor pair with that successor.
    has_next = np.zeros(n, dtype=bool)
    has_next[:-1] = ~is_start[1:]
    first_mask = (rank % 2 == 0) & has_next
    first = order[first_mask]
    second = order[np.flatnonzero(first_mask) + 1]
    paired = np.zeros(n, dtype=bool)
    paired[first] = True
    paired[second] = True
    singles = np.flatnonzero(~paired)
    return MergePlan(first=first.astype(np.int64),
                     second=second.astype(np.int64),
                     singles=singles.astype(np.int64))


class SegmentedMergePlan:
    """QRU pairing for *every* flush of a draw at once.

    ``first``/``second``/``singles`` are global indices into the input
    arrays; ``pairs_per_segment`` counts merge pairs per flush.  Restricted
    to one segment, the indices reproduce exactly what per-flush
    :func:`plan_merges` would return.
    """

    __slots__ = ("first", "second", "singles", "pairs_per_segment")

    def __init__(self, first, second, singles, pairs_per_segment):
        self.first = first
        self.second = second
        self.singles = singles
        self.pairs_per_segment = pairs_per_segment

    @property
    def n_pairs(self):
        return self.first.shape[0]


def plan_merges_segmented(segment_ids, qpos, n_segments, n_positions=64):
    """Vectorised QRU pairing across many flush batches.

    ``segment_ids`` must be non-decreasing (quads grouped by flush, in
    arrival order within each flush) and ``qpos`` in ``[0, n_positions)``.
    A single stable sort over the combined ``(segment, position)`` key
    reproduces the per-flush register-file scan: within each flush,
    ``first``/``second`` list the pairs in (position, arrival) order and
    ``singles`` the unpaired quads in arrival order — exactly the order
    :func:`plan_merges` emits, which downstream CROP-tag dedup (and hence
    the exact-LRU cache replay) depends on.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    qpos = np.asarray(qpos)
    n = qpos.shape[0]
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return SegmentedMergePlan(empty, empty, empty,
                                  np.zeros(n_segments, dtype=np.int64))
    if int(qpos.max()) >= n_positions:
        raise ValueError("qpos out of range for n_positions")
    key = segment_ids * np.int64(n_positions) + qpos
    # The combined key is bounded by n_segments * n_positions; narrowing
    # it lets numpy's stable argsort run as an LSD radix sort instead of
    # a comparison mergesort.  Key values are unchanged, so the stable
    # order — and with it every downstream pairing — is bit-identical.
    key_bound = np.int64(n_segments) * np.int64(n_positions)
    if key_bound <= np.iinfo(np.uint16).max:
        key = key.astype(np.uint16)
    elif key_bound <= np.iinfo(np.uint32).max:
        key = key.astype(np.uint32)
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=is_start[1:])
    group_start = np.maximum.accumulate(np.where(is_start, np.arange(n), 0))
    rank = np.arange(n) - group_start
    has_next = np.zeros(n, dtype=bool)
    has_next[:-1] = ~is_start[1:]
    first_mask = (rank % 2 == 0) & has_next
    first = order[first_mask]
    second = order[np.flatnonzero(first_mask) + 1]
    paired = np.zeros(n, dtype=bool)
    paired[first] = True
    paired[second] = True
    singles = np.flatnonzero(~paired)
    pairs_per_segment = np.bincount(segment_ids[first], minlength=n_segments)
    return SegmentedMergePlan(first.astype(np.int64),
                              second.astype(np.int64),
                              singles.astype(np.int64),
                              pairs_per_segment.astype(np.int64))


def qru_storage_bytes(n_quad_buffer=128, cbe_pointer_bytes=4,
                      qpos_bits=6, n_registers=64, register_bytes=1,
                      bitmap_bits=128):
    """Table III storage cost of the quad reorder unit.

    ``(4 B CBE pointer + 6-bit quad pos.) * 128 + 64 * 1 B + 16 B = 688 B``
    with the defaults.
    """
    buffer_bits = (cbe_pointer_bytes * 8 + qpos_bits) * n_quad_buffer
    register_bits = n_registers * register_bytes * 8
    return (buffer_bits + register_bits + bitmap_bits) // 8

"""Tile Grid Coalescing (TGC) unit — first half of VR-Pipe's quad merging.

The TGC unit (Figure 14, left) sits between primitive distribution and the
rasteriser.  Each of its 128 bins collects up to 16 primitives intersecting
one *tile grid* (4x4 screen tiles = 64x64 px).  When a bin fills — or must
be evicted because a primitive for a new grid arrives with no bin free — the
rasteriser processes that grid's primitives back-to-back, so the downstream
TC bins receive spatially clustered quads instead of the depth-sorted
scatter, which is what creates merge opportunities.

This model keeps exact FIFO bin dynamics; each emitted group is
``(grid_id, prim_rows, reason)`` in flush order.
"""

from __future__ import annotations

from collections import OrderedDict


class TileGridCoalescer:
    """Exact-bin-dynamics model of the TGC unit.

    Parameters
    ----------
    n_bins:
        Number of bins (Table I: 128).
    bin_capacity:
        Primitives per bin (Table I: 16).

    Use :meth:`insert` per (primitive, grid) pair in draw order and
    :meth:`drain` at the end of the draw call; both return flushed groups.
    """

    FLUSH_FULL = "full"
    FLUSH_EVICT = "evict"
    FLUSH_FINAL = "final"

    def __init__(self, n_bins=128, bin_capacity=16):
        if n_bins <= 0 or bin_capacity <= 0:
            raise ValueError("n_bins and bin_capacity must be positive")
        self.n_bins = int(n_bins)
        self.bin_capacity = int(bin_capacity)
        # grid_id -> list of primitive rows; insertion order == FIFO age.
        self._bins = OrderedDict()
        self.flush_counts = {self.FLUSH_FULL: 0, self.FLUSH_EVICT: 0,
                             self.FLUSH_FINAL: 0}
        self.prims_inserted = 0

    def insert(self, grid_id, prim_row):
        """Insert one primitive occurrence for ``grid_id``.

        Primitives spanning multiple grids are inserted once per grid (the
        paper distributes them per cluster/grid and rasterises each portion
        independently).  Returns a list of flushed groups, possibly empty.
        """
        flushed = []
        bins = self._bins
        self.prims_inserted += 1
        if grid_id not in bins:
            if len(bins) >= self.n_bins:
                old_grid, old_prims = bins.popitem(last=False)
                self.flush_counts[self.FLUSH_EVICT] += 1
                flushed.append((old_grid, old_prims, self.FLUSH_EVICT))
            bins[grid_id] = []
        bins[grid_id].append(prim_row)
        if len(bins[grid_id]) >= self.bin_capacity:
            full = bins.pop(grid_id)
            self.flush_counts[self.FLUSH_FULL] += 1
            flushed.append((grid_id, full, self.FLUSH_FULL))
        return flushed

    def insert_pairs(self, grid_ids, prim_rows):
        """Batch-insert (grid, primitive) occurrences in draw order.

        ``grid_ids`` and ``prim_rows`` are parallel arrays of per-grid
        primitive occurrences (a primitive spanning ``k`` grids contributes
        ``k`` consecutive entries).  Yields flushed ``(grid_id, prim_rows,
        reason)`` groups in the exact order sequential :meth:`insert` calls
        would, letting the pipeline iterate flushes instead of primitives.
        """
        for grid_id, prim in zip(grid_ids, prim_rows):
            yield from self.insert(int(grid_id), int(prim))

    def plan_groups(self, grid_ids, prim_rows):
        """Full flush-group schedule for a (grid, primitive) sequence.

        Equivalent to :meth:`insert_pairs` over the whole occurrence
        stream followed by :meth:`drain` — identical flush groups in
        identical order — but the per-pair loop is collapsed into one
        pass with hoisted locals and plain-int iteration, since this is
        the planning-phase inner loop of the batched flush engine (tens
        of thousands of pairs per draw).
        """
        grid_l = grid_ids.tolist() if hasattr(grid_ids, "tolist") else grid_ids
        prim_l = prim_rows.tolist() if hasattr(prim_rows, "tolist") else prim_rows
        groups = []
        append = groups.append
        bins = self._bins
        get = bins.get
        popitem = bins.popitem
        n_bins = self.n_bins
        capacity = self.bin_capacity
        counts = self.flush_counts
        full = self.FLUSH_FULL
        evict = self.FLUSH_EVICT
        n_pairs = 0
        for grid_id, prim_row in zip(grid_l, prim_l):
            n_pairs += 1
            prims = get(grid_id)
            if prims is None:
                if len(bins) >= n_bins:
                    old_grid, old_prims = popitem(last=False)
                    counts[evict] += 1
                    append((old_grid, old_prims, evict))
                prims = bins[grid_id] = []
            prims.append(prim_row)
            if len(prims) >= capacity:
                del bins[grid_id]
                counts[full] += 1
                append((grid_id, prims, full))
        self.prims_inserted += n_pairs
        groups.extend(self.drain())
        return groups

    def drain(self):
        """Flush all residual bins in age order (end of the draw call)."""
        flushed = []
        while self._bins:
            grid_id, prims = self._bins.popitem(last=False)
            self.flush_counts[self.FLUSH_FINAL] += 1
            flushed.append((grid_id, prims, self.FLUSH_FINAL))
        return flushed

    @property
    def occupancy(self):
        """Currently occupied bins."""
        return len(self._bins)

    def storage_bytes(self, cbe_pointer_bytes=4, vertices_per_prim=3,
                      grid_id_bytes=2):
        """Table III storage cost of this unit's bins.

        ``(4 B CBE pointer * 3 vertices * 16 entries + 2 B grid id) * 128``
        = 24.25 KB with the defaults.
        """
        per_bin = (cbe_pointer_bytes * vertices_per_prim * self.bin_capacity
                   + grid_id_bytes)
        return per_bin * self.n_bins

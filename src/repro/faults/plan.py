"""Fault plans: the data model of the chaos harness.

A :class:`FaultPlan` is a seeded, deterministic schedule of faults over
the *named injection points* (:data:`POINTS`) threaded through the
library's fast paths.  Plans are pure data — parsing, matching and
per-rule bookkeeping — and know nothing about threads or process state;
the runtime half (installing plans, checkpoints, the cooperative
watchdog) lives in :mod:`repro.faults`.

Grammar of the ``REPRO_FAULTS`` environment variable and the trajectory
CLI's ``--faults`` option::

    plan := item (';' item)*
    item := 'seed=' INT | rule
    rule := POINT ':' KIND (',' KEY '=' VALUE)*

``POINT`` is one of :data:`POINTS`.  ``KIND`` is one of

``raise``
    raise :class:`FaultInjected` at the point;
``corrupt``
    corrupt the point's data product in a point-specific way — a flipped
    payload digit on :class:`~repro.engine.cache.ResultCache` loads, a
    poisoned carried frame in the coherence library, perturbed replay
    counters in the vectorized LRU engine — which the consumer-side
    integrity layer (checksums, exact verification, replay invariants)
    must then *detect*; points without a data channel detect immediately
    and raise :class:`CorruptDataError`;
``stall``
    sleep ``delay`` milliseconds at the point (cooperatively
    interruptible by the frame watchdog);
``oserror``
    raise an :class:`InjectedOSError` (a transient-I/O stand-in for the
    cache store/load retry paths).

Optional rule keys: ``p`` (fire probability per evaluation, default 1),
``times`` (maximum fires, default unlimited), ``after`` (skip the first
N evaluations) and ``delay`` (stall length in ms, default 10).

Example::

    REPRO_FAULTS="seed=7; digest:raise,times=1; lru.replay:corrupt,p=0.5"

Every random decision draws from a per-rule ``random.Random`` seeded by
``(plan seed, rule index, point, kind)``, so a plan replays identically
under the same call sequence — chaos runs are reproducible.
"""

from __future__ import annotations

import random
import threading

#: The named injection points threaded through the fast paths.
POINTS = (
    "rasterize",         # rasterize_splats, the batched rasterisation path
    "digest",            # FrameIR quad digestion (legacy digestion is clean)
    "coherence.verify",  # FrameCoherence classification of a new frame
    "flushplan",         # build_flush_plan, the batched flush engine only
    "lru.replay",        # LRUCache.access_segmented (vectorized replay)
    "cache.load",        # ResultCache.load
    "cache.store",       # ResultCache.store
)

#: Supported fault kinds (see the module docstring).
KINDS = ("raise", "corrupt", "stall", "oserror")


class FaultInjected(RuntimeError):
    """An exception injected at a named point by the active fault plan."""

    def __init__(self, point, message=None, kind="raise"):
        self.point = point
        self.kind = kind
        super().__init__(message or f"injected fault at {point!r}")


class CorruptDataError(FaultInjected):
    """Corrupt data *detected* at a named point (by an integrity guard)."""

    def __init__(self, point, message=None):
        super().__init__(
            point, message or f"corrupt data detected at {point!r}",
            kind="corrupt")


class InjectedOSError(OSError):
    """A transient I/O failure injected at a named point."""

    def __init__(self, point):
        self.point = point
        super().__init__(f"injected transient OSError at {point!r}")


class WatchdogTimeout(RuntimeError):
    """The frame watchdog deadline expired at a checkpoint."""

    def __init__(self, point, budget_ms):
        self.point = point
        self.budget_ms = budget_ms
        super().__init__(
            f"frame watchdog expired at checkpoint {point!r} "
            f"(budget {budget_ms:g} ms)")


class FaultRule:
    """One plan rule: fire ``kind`` at ``point``, subject to gates.

    ``p`` gates each evaluation on a seeded coin flip, ``after`` skips
    the first N evaluations, and ``times`` caps the total fires — so
    transient faults (``times=1``), late-onset faults (``after=3``) and
    flaky faults (``p=0.25``) are all expressible.  ``delay_ms`` is the
    stall length for ``kind="stall"``.
    """

    __slots__ = ("point", "kind", "p", "times", "after", "delay_ms",
                 "evals", "fired")

    def __init__(self, point, kind, p=1.0, times=None, after=0,
                 delay_ms=10.0):
        if point not in POINTS:
            raise ValueError(
                f"unknown injection point {point!r}; choose from {POINTS}")
        if kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; choose from {KINDS}")
        if not 0.0 <= float(p) <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.point = point
        self.kind = kind
        self.p = float(p)
        self.times = None if times is None else int(times)
        self.after = int(after)
        self.delay_ms = float(delay_ms)
        self.evals = 0
        self.fired = 0

    def spec(self):
        """Canonical rule string (parses back to an equal rule)."""
        parts = [f"{self.point}:{self.kind}"]
        if self.p != 1.0:
            parts.append(f"p={self.p:g}")
        if self.times is not None:
            parts.append(f"times={self.times}")
        if self.after:
            parts.append(f"after={self.after}")
        if self.kind == "stall" and self.delay_ms != 10.0:
            parts.append(f"delay={self.delay_ms:g}")
        return ",".join(parts)

    def __repr__(self):
        return f"FaultRule({self.spec()!r}, fired={self.fired})"


class FaultPlan:
    """A seeded, deterministic fault schedule over named points.

    ``draw(point)`` evaluates the point's rules in declaration order and
    returns the first rule that fires (advancing its counters and its
    seeded RNG), or ``None``.  The evaluation is thread-safe; the RNG
    stream per rule depends only on the plan seed and the rule identity,
    so a plan replays identically for the same sequence of draws.
    """

    def __init__(self, rules=(), seed=0):
        self.seed = int(seed)
        self.rules = list(rules)
        self._by_point = {}
        for rule in self.rules:
            self._by_point.setdefault(rule.point, []).append(rule)
        self._lock = threading.Lock()
        self._rngs = {}
        self.reset()

    @classmethod
    def parse(cls, text):
        """Parse the ``REPRO_FAULTS`` grammar (see the module docstring)."""
        seed = 0
        rules = []
        for item in str(text).split(";"):
            item = item.strip()
            if not item:
                continue
            if item.startswith("seed="):
                seed = int(item[len("seed="):])
                continue
            fields = [field.strip() for field in item.split(",")]
            head = fields[0]
            if ":" not in head:
                raise ValueError(
                    f"bad fault rule {item!r}: expected 'point:kind[,k=v...]'")
            point, kind = (part.strip() for part in head.split(":", 1))
            opts = {}
            for field in fields[1:]:
                if "=" not in field:
                    raise ValueError(
                        f"bad fault rule option {field!r} in {item!r}: "
                        "expected 'key=value'")
                key, value = (part.strip() for part in field.split("=", 1))
                if key == "p":
                    opts["p"] = float(value)
                elif key == "times":
                    opts["times"] = int(value)
                elif key == "after":
                    opts["after"] = int(value)
                elif key == "delay":
                    opts["delay_ms"] = float(value)
                else:
                    raise ValueError(
                        f"unknown fault rule key {key!r} in {item!r}; "
                        "use p/times/after/delay")
            rules.append(FaultRule(point, kind, **opts))
        return cls(rules, seed=seed)

    def spec(self):
        """Canonical plan string (``FaultPlan.parse(plan.spec())`` round-trips)."""
        parts = [f"seed={self.seed}"] if self.seed else []
        parts.extend(rule.spec() for rule in self.rules)
        return ";".join(parts)

    def reset(self):
        """Rewind every rule's counters and RNG stream to the start."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                rule.evals = 0
                rule.fired = 0
                self._rngs[index] = random.Random(
                    f"{self.seed}:{index}:{rule.point}:{rule.kind}")

    def draw(self, point):
        """The first rule firing at ``point`` now, or ``None``."""
        rules = self._by_point.get(point)
        if not rules:
            return None
        with self._lock:
            for rule in rules:
                rule.evals += 1
                if rule.evals <= rule.after:
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                if rule.p < 1.0:
                    rng = self._rngs[self.rules.index(rule)]
                    if rng.random() >= rule.p:
                        continue
                rule.fired += 1
                return rule
        return None

    def fired(self, point=None):
        """Total fires so far (for ``point``, or across the whole plan)."""
        rules = self.rules if point is None else self._by_point.get(point, ())
        return sum(rule.fired for rule in rules)

    def __repr__(self):
        return f"FaultPlan({self.spec()!r})"

"""Runtime half of the chaos harness: plan installation and checkpoints.

The data model (plans, rules, the ``REPRO_FAULTS`` grammar, the
exception taxonomy) lives in :mod:`repro.faults.plan`; this module owns
the *process state*: the currently installed :class:`FaultPlan`, the
cooperative per-frame watchdog, and the :func:`checkpoint` entry point
the instrumented fast paths call.

Zero-cost when idle
-------------------
Instrumented sites guard every checkpoint with the module-level
:data:`ENABLED` flag::

    from repro import faults
    ...
    if faults.ENABLED:
        faults.checkpoint("digest")

With no plan installed and no watchdog armed, ``ENABLED`` is ``False``
and the instrumentation costs one attribute read and a predictable
branch — nothing else runs, so the fault harness stays off the hot path.
``ENABLED`` is recomputed whenever a plan is installed/cleared or a
watchdog is armed/disarmed.

Watchdog
--------
:func:`watchdog` arms a cooperative deadline for the calling thread.
Checkpoints compare ``time.monotonic()`` against the deadline and raise
:class:`WatchdogTimeout` when it has passed; injected stalls sleep in
short slices so a stall cannot outlive the budget.  The watchdog is
cooperative by design — the simulator is pure compute, and checkpoints
sit on every fast path — so no threads are killed and no signals fire.

A ``REPRO_FAULTS`` environment plan, when set, is installed at import
time; :func:`active` temporarily overrides whatever is installed (used
by the chaos tests and the ``--faults`` CLI option).
"""

from __future__ import annotations

import contextlib
import threading
import time

from repro.faults.plan import (
    KINDS,
    POINTS,
    CorruptDataError,
    FaultInjected,
    FaultPlan,
    FaultRule,
    InjectedOSError,
    WatchdogTimeout,
)
from repro.knobs import env as _knobs_env

__all__ = [
    "ENABLED", "POINTS", "KINDS",
    "FaultPlan", "FaultRule",
    "FaultInjected", "CorruptDataError", "InjectedOSError",
    "WatchdogTimeout",
    "install_plan", "clear_plan", "current_plan", "active",
    "watchdog", "checkpoint", "corrupt_detected",
]

#: Fast-path guard: True iff a plan is installed or a watchdog is armed.
ENABLED = False

_PLAN = None
_LOCK = threading.Lock()
_TLS = threading.local()
_WATCHDOGS = 0

#: Injected stalls sleep in slices this long so the watchdog can cut in.
_STALL_SLICE_S = 0.005


def _refresh():
    global ENABLED
    ENABLED = _PLAN is not None or _WATCHDOGS > 0


def install_plan(plan):
    """Install ``plan`` process-wide (``None`` clears); returns the plan."""
    global _PLAN
    if plan is not None and not isinstance(plan, FaultPlan):
        plan = FaultPlan.parse(plan)
    with _LOCK:
        _PLAN = plan
        _refresh()
    return plan


def clear_plan():
    """Remove the installed plan (watchdogs, if any, stay armed)."""
    install_plan(None)


def current_plan():
    """The installed :class:`FaultPlan`, or ``None``."""
    return _PLAN


@contextlib.contextmanager
def active(plan):
    """Temporarily install ``plan``, restoring the previous plan on exit."""
    global _PLAN
    if plan is not None and not isinstance(plan, FaultPlan):
        plan = FaultPlan.parse(plan)
    with _LOCK:
        previous = _PLAN
        _PLAN = plan
        _refresh()
    try:
        yield plan
    finally:
        with _LOCK:
            _PLAN = previous
            _refresh()


@contextlib.contextmanager
def watchdog(budget_ms):
    """Arm a cooperative deadline for this thread (``None`` is a no-op).

    Checkpoints reached after ``budget_ms`` milliseconds raise
    :class:`WatchdogTimeout`.  Nests safely: the inner deadline wins
    while active, and the outer one is restored on exit.
    """
    global _WATCHDOGS
    if budget_ms is None:
        yield
        return
    budget_ms = float(budget_ms)
    previous = getattr(_TLS, "deadline", None)
    _TLS.deadline = (time.monotonic() + budget_ms / 1e3, budget_ms)
    with _LOCK:
        _WATCHDOGS += 1
        _refresh()
    try:
        yield
    finally:
        _TLS.deadline = previous
        with _LOCK:
            _WATCHDOGS -= 1
            _refresh()


def _check_deadline(point):
    deadline = getattr(_TLS, "deadline", None)
    if deadline is not None and time.monotonic() >= deadline[0]:
        raise WatchdogTimeout(point, deadline[1])


def _stall(point, delay_ms):
    """Sleep ``delay_ms`` in watchdog-interruptible slices."""
    end = time.monotonic() + delay_ms / 1e3
    while True:
        _check_deadline(point)
        remaining = end - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(remaining, _STALL_SLICE_S))


def checkpoint(point):
    """Evaluate the harness at a named point.

    Checks the thread's watchdog deadline, then draws from the installed
    plan.  ``raise``/``oserror`` rules raise; ``stall`` rules sleep and
    return ``None``; ``corrupt`` rules return the fired
    :class:`FaultRule` so the call site can corrupt its own data product
    (sites without a corruptible data channel treat it as a detected
    :class:`CorruptDataError`).  Returns ``None`` when nothing fires.
    """
    _check_deadline(point)
    plan = _PLAN
    if plan is None:
        return None
    rule = plan.draw(point)
    if rule is None:
        return None
    if rule.kind == "raise":
        raise FaultInjected(point)
    if rule.kind == "oserror":
        raise InjectedOSError(point)
    if rule.kind == "stall":
        _stall(point, rule.delay_ms)
        return None
    return rule  # "corrupt": the site owns the corruption


def corrupt_detected(point, detail=None):
    """Raise :class:`CorruptDataError` for ``point`` (integrity guards)."""
    raise CorruptDataError(point, detail)


_ENV_PLAN = _knobs_env("REPRO_FAULTS").strip()
if _ENV_PLAN:
    install_plan(FaultPlan.parse(_ENV_PLAN))
del _ENV_PLAN

"""VR-Pipe reproduction: streamlining the hardware graphics pipeline for
volume rendering (HPCA 2025).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.gaussians` — 3D Gaussian splatting substrate.
* :mod:`repro.render` — shared functional rendering core.
* :mod:`repro.hwmodel` — cycle-approximate graphics-pipeline simulator.
* :mod:`repro.core` — the VR-Pipe contribution (HET, QM, variants).
* :mod:`repro.swrender` / :mod:`repro.swopt` — software baselines.
* :mod:`repro.accel` — GSCore comparator.
* :mod:`repro.micro` — fixed-function microbenchmarks.
* :mod:`repro.workloads` / :mod:`repro.experiments` — evaluation.
"""

from repro.core import (
    HardwareRenderer,
    hardware_cost_bytes,
    run_all_variants,
    run_variant,
    speedups_over_baseline,
    variant_config,
)
from repro.gaussians import Camera, GaussianCloud
from repro.hwmodel import GPUConfig, GraphicsPipeline, jetson_agx_orin
from repro.render import FragmentStream, render_reference
from repro.swrender import CudaRenderer

__version__ = "1.0.0"

__all__ = [
    "Camera",
    "CudaRenderer",
    "FragmentStream",
    "GaussianCloud",
    "GPUConfig",
    "GraphicsPipeline",
    "HardwareRenderer",
    "hardware_cost_bytes",
    "jetson_agx_orin",
    "render_reference",
    "run_all_variants",
    "run_variant",
    "speedups_over_baseline",
    "variant_config",
    "__version__",
]

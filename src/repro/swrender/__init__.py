"""Software (CUDA-style) Gaussian splatting renderer model.

This is the paper's comparison baseline (Section III-A): the 3DGS reference
renderer implemented as CUDA kernels — per-tile Gaussian duplication and
sorting in preprocessing, then one thread block per 16x16 screen tile whose
warps march the tile's depth-sorted Gaussian list in lockstep, blending in
registers.  The model reproduces the baseline's two structural costs:

* preprocessing/sorting scale with *duplicated* (Gaussian, tile) pairs;
* lockstep warps keep executing until every one of their 32 pixels has
  terminated, so early termination under-delivers (Figures 8 and 9).
"""

from repro.swrender.tiling import TileAssignment, assign_tiles
from repro.swrender.warp_model import WarpExecution, simulate_tile_warps
from repro.swrender.renderer import CudaRenderer, CudaRenderTiming, SWKernelModel

__all__ = [
    "TileAssignment",
    "assign_tiles",
    "WarpExecution",
    "simulate_tile_warps",
    "CudaRenderer",
    "CudaRenderTiming",
    "SWKernelModel",
]

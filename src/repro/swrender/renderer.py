"""CUDA-style renderer: kernel-time model plus functional output.

Produces the three kernel times of Figure 5's breakdown — preprocess,
Gaussian sort, rasterise — for the software path, using:

* the tile-duplication counts from :mod:`repro.swrender.tiling`
  (preprocess and sort scale with duplicated pairs);
* the lockstep-warp execution model from :mod:`repro.swrender.warp_model`
  (rasterise time scales with executed warp-rounds).

Functional output reuses the shared fragment stream, so the image is
identical to the reference renderer by construction (the CUDA renderer
computes the same math).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.preprocess import preprocess
from repro.render.fragstream import DEFAULT_TERMINATION_ALPHA
from repro.render.frameir import resolve_ir
from repro.render.splat_raster import rasterize_splats
from repro.swrender.tiling import TileAssignment, assign_tiles
from repro.swrender.warp_model import resolve_swmodel, simulate_tile_warps


@dataclass
class SWKernelModel:
    """Calibrated per-item costs of the CUDA kernels (in GPU cycles).

    The paper gives no kernel microarchitecture, so these constants are
    calibrated against Figure 5's breakdown shape: CUDA preprocessing pays
    per-duplicate work (per-tile buffers, key/index duplication), sorting is
    a linear-pass radix sort over duplicated keys, and rasterisation costs a
    fixed instruction budget per warp-round.

    ``issue_slots`` is the GPC-wide warp-instruction issue bandwidth the
    work spreads across (matching the hardware model's SM array).
    """

    preprocess_cycles_per_gaussian: float = 400.0
    preprocess_cycles_per_duplicate: float = 140.0
    sort_cycles_per_key: float = 120.0
    raster_cycles_per_warp_round: float = 190.0
    blend_extra_cycles: float = 6.0
    issue_slots: float = 64.0

    def preprocess_cycles(self, n_gaussians, n_duplicates):
        ops = (n_gaussians * self.preprocess_cycles_per_gaussian
               + n_duplicates * self.preprocess_cycles_per_duplicate)
        return ops / self.issue_slots

    def sort_cycles(self, n_keys):
        return n_keys * self.sort_cycles_per_key / self.issue_slots

    def raster_cycles(self, warp_rounds, blend_ops):
        ops = (warp_rounds * self.raster_cycles_per_warp_round
               + blend_ops * self.blend_extra_cycles)
        return ops / self.issue_slots


class CudaRenderTiming:
    """Per-kernel cycle counts for one software-rendered frame."""

    def __init__(self, preprocess_cycles, sort_cycles, raster_cycles,
                 frequency_hz):
        self.preprocess_cycles = float(preprocess_cycles)
        self.sort_cycles = float(sort_cycles)
        self.raster_cycles = float(raster_cycles)
        self.frequency_hz = float(frequency_hz)

    @property
    def total_cycles(self):
        return self.preprocess_cycles + self.sort_cycles + self.raster_cycles

    def breakdown_ms(self):
        """``{'preprocess': ms, 'sort': ms, 'rasterize': ms}``."""
        scale = 1e3 / self.frequency_hz
        return {
            "preprocess": self.preprocess_cycles * scale,
            "sort": self.sort_cycles * scale,
            "rasterize": self.raster_cycles * scale,
        }

    def total_ms(self):
        return self.total_cycles / self.frequency_hz * 1e3

    def fps(self):
        total = self.total_ms()
        return 1000.0 / total if total > 0 else float("inf")


class CudaRenderResult:
    """Timing + functional output of the CUDA-style renderer.

    The blended ``image``/``alpha`` maps are materialised lazily on first
    access (mirroring :class:`~repro.core.vrpipe.HWRenderResult`): the
    colour pass contributes nothing to the modelled kernel times, so
    trajectory runs that only consume the numeric records never pay for
    per-frame blending.  ``wall_ms`` carries the renderer's measured
    wall-clock stage breakdown (tiling / digest), which the trajectory
    benchmark aggregates into its per-stage report.
    """

    def __init__(self, timing, stream, warp_exec, tiling,
                 early_term, threshold, wall_ms=None):
        self.timing = timing
        self.stream = stream
        self.warp_exec = warp_exec
        self.tiling = tiling
        self.early_term = bool(early_term)
        self.threshold = float(threshold)
        self.wall_ms = dict(wall_ms or {})
        self._image = None
        self._alpha = None

    def _blend(self):
        if self._image is None:
            self._image, self._alpha = self.stream.blend_image(
                early_term=self.early_term, threshold=self.threshold)

    @property
    def image(self):
        self._blend()
        return self._image

    @property
    def alpha(self):
        self._blend()
        return self._alpha


class CudaRenderer:
    """The software (CUDA) rendering path of Figure 5.

    Parameters
    ----------
    kernel_model:
        Optional calibrated :class:`SWKernelModel`.
    frequency_hz:
        GPU clock used to convert cycles to milliseconds (defaults to the
        paper's 612 MHz Orin configuration).
    early_term:
        Whether the rasterise kernel applies early termination (the paper's
        end-to-end comparison enables it for the software path).
    ir / swmodel:
        Digestion and software-model engine knobs, validated eagerly;
        ``None`` stays ``None`` so the ``$REPRO_IR`` / ``$REPRO_SWMODEL``
        process defaults remain best-effort at render time.
    """

    def __init__(self, kernel_model=None, frequency_hz=612e6, early_term=True,
                 threshold=DEFAULT_TERMINATION_ALPHA, ir=None, swmodel=None):
        self.kernel_model = kernel_model or SWKernelModel()
        self.frequency_hz = float(frequency_hz)
        self.early_term = bool(early_term)
        self.threshold = float(threshold)
        self.ir = resolve_ir(ir) if ir is not None else None
        self.swmodel = resolve_swmodel(swmodel) if swmodel is not None \
            else None

    def render(self, cloud, camera):
        """Render a cloud and return a :class:`CudaRenderResult`."""
        if not isinstance(cloud, GaussianCloud):
            raise TypeError(
                f"cloud must be a GaussianCloud, got {type(cloud).__name__}")
        if not isinstance(camera, Camera):
            raise TypeError(
                f"camera must be a Camera, got {type(camera).__name__}")
        pre = preprocess(cloud, camera)
        stream = rasterize_splats(pre.splats, camera.width, camera.height,
                                  ir=self.ir)
        return self.render_stream(stream, pre)

    def render_stream(self, stream, pre=None):
        """Render from an existing fragment stream (shared with other paths).

        Tile duplication comes from ``pre`` when given; otherwise the
        stream's own :class:`~repro.render.splat_raster.TileBinning` is
        consumed directly (no re-binning).  The colour blend is deferred
        (see :class:`CudaRenderResult`).
        """
        model = self.kernel_model
        t0 = time.perf_counter()
        # A coherence carrier that classified this stream just before the
        # render stashes its pre-classification snapshot; prefer it so the
        # classification cost lands in this frame's digest breakdown.
        base_sub = stream.__dict__.pop("_substage_base", None)
        if base_sub is None:
            base_sub = dict(stream.substage_ms)
        tiling = _tiling_for(stream, pre)
        n_gaussians = stream.prim_colors.shape[0]
        t1 = time.perf_counter()
        warp_exec = simulate_tile_warps(stream, self.threshold,
                                        swmodel=self.swmodel)
        t2 = time.perf_counter()

        warp_rounds = (warp_exec.rounds_et if self.early_term
                       else warp_exec.rounds_no_et)
        blend_ops = (warp_exec.blend_ops_et if self.early_term
                     else warp_exec.blend_ops_no_et)
        timing = CudaRenderTiming(
            preprocess_cycles=model.preprocess_cycles(
                n_gaussians, tiling.n_pairs),
            sort_cycles=model.sort_cycles(tiling.n_pairs),
            raster_cycles=model.raster_cycles(warp_rounds, blend_ops),
            frequency_hz=self.frequency_hz,
        )
        wall_ms = {"tiling": (t1 - t0) * 1e3, "digest": (t2 - t1) * 1e3}
        # Named digestion substages, as the *delta* the warp model added
        # to the stream's accumulators (same bookkeeping as the hardware
        # renderer): a re-render of an already-digested stream reports
        # only its own marginal work.
        for name, ms in stream.substage_ms.items():
            delta = ms - base_sub.get(name, 0.0)
            if delta > 0.0:
                wall_ms[f"digest:{name}"] = delta
        return CudaRenderResult(timing, stream, warp_exec, tiling,
                                early_term=self.early_term,
                                threshold=self.threshold, wall_ms=wall_ms)


def _tiling_for(stream, pre):
    """Tile duplication for the sort/preprocess kernels.

    ``pre`` reproduces the conservative bbox/16-rounding estimate of
    :func:`~repro.swrender.tiling.assign_tiles` (what the CUDA kernel can
    test cheaply).  Without it, the batched rasteriser's
    :class:`~repro.render.splat_raster.TileBinning` on the stream provides
    the *exact* per-splat tile counts, consumed as-is.
    """
    if pre is not None:
        return assign_tiles(pre.splats, stream.width, stream.height)
    binning = getattr(stream, "binning", None)
    if binning is not None:
        return TileAssignment(binning.pairs_per_splat())
    raise ValueError(
        "render_stream needs the PreprocessResult to size tile duplication; "
        "pass pre=, use render(), or pass a stream produced by "
        "rasterize_splats (which carries its TileBinning)")

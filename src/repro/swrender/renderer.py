"""CUDA-style renderer: kernel-time model plus functional output.

Produces the three kernel times of Figure 5's breakdown — preprocess,
Gaussian sort, rasterise — for the software path, using:

* the tile-duplication counts from :mod:`repro.swrender.tiling`
  (preprocess and sort scale with duplicated pairs);
* the lockstep-warp execution model from :mod:`repro.swrender.warp_model`
  (rasterise time scales with executed warp-rounds).

Functional output reuses the shared fragment stream, so the image is
identical to the reference renderer by construction (the CUDA renderer
computes the same math).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.preprocess import preprocess
from repro.render.fragstream import DEFAULT_TERMINATION_ALPHA
from repro.render.splat_raster import rasterize_splats
from repro.swrender.tiling import TileAssignment, assign_tiles
from repro.swrender.warp_model import simulate_tile_warps


@dataclass
class SWKernelModel:
    """Calibrated per-item costs of the CUDA kernels (in GPU cycles).

    The paper gives no kernel microarchitecture, so these constants are
    calibrated against Figure 5's breakdown shape: CUDA preprocessing pays
    per-duplicate work (per-tile buffers, key/index duplication), sorting is
    a linear-pass radix sort over duplicated keys, and rasterisation costs a
    fixed instruction budget per warp-round.

    ``issue_slots`` is the GPC-wide warp-instruction issue bandwidth the
    work spreads across (matching the hardware model's SM array).
    """

    preprocess_cycles_per_gaussian: float = 400.0
    preprocess_cycles_per_duplicate: float = 140.0
    sort_cycles_per_key: float = 120.0
    raster_cycles_per_warp_round: float = 190.0
    blend_extra_cycles: float = 6.0
    issue_slots: float = 64.0

    def preprocess_cycles(self, n_gaussians, n_duplicates):
        ops = (n_gaussians * self.preprocess_cycles_per_gaussian
               + n_duplicates * self.preprocess_cycles_per_duplicate)
        return ops / self.issue_slots

    def sort_cycles(self, n_keys):
        return n_keys * self.sort_cycles_per_key / self.issue_slots

    def raster_cycles(self, warp_rounds, blend_ops):
        ops = (warp_rounds * self.raster_cycles_per_warp_round
               + blend_ops * self.blend_extra_cycles)
        return ops / self.issue_slots


class CudaRenderTiming:
    """Per-kernel cycle counts for one software-rendered frame."""

    def __init__(self, preprocess_cycles, sort_cycles, raster_cycles,
                 frequency_hz):
        self.preprocess_cycles = float(preprocess_cycles)
        self.sort_cycles = float(sort_cycles)
        self.raster_cycles = float(raster_cycles)
        self.frequency_hz = float(frequency_hz)

    @property
    def total_cycles(self):
        return self.preprocess_cycles + self.sort_cycles + self.raster_cycles

    def breakdown_ms(self):
        """``{'preprocess': ms, 'sort': ms, 'rasterize': ms}``."""
        scale = 1e3 / self.frequency_hz
        return {
            "preprocess": self.preprocess_cycles * scale,
            "sort": self.sort_cycles * scale,
            "rasterize": self.raster_cycles * scale,
        }

    def total_ms(self):
        return self.total_cycles / self.frequency_hz * 1e3

    def fps(self):
        total = self.total_ms()
        return 1000.0 / total if total > 0 else float("inf")


class CudaRenderResult:
    """Timing + functional output of the CUDA-style renderer."""

    def __init__(self, timing, image, alpha, stream, warp_exec, tiling):
        self.timing = timing
        self.image = image
        self.alpha = alpha
        self.stream = stream
        self.warp_exec = warp_exec
        self.tiling = tiling


class CudaRenderer:
    """The software (CUDA) rendering path of Figure 5.

    Parameters
    ----------
    kernel_model:
        Optional calibrated :class:`SWKernelModel`.
    frequency_hz:
        GPU clock used to convert cycles to milliseconds (defaults to the
        paper's 612 MHz Orin configuration).
    early_term:
        Whether the rasterise kernel applies early termination (the paper's
        end-to-end comparison enables it for the software path).
    """

    def __init__(self, kernel_model=None, frequency_hz=612e6, early_term=True,
                 threshold=DEFAULT_TERMINATION_ALPHA):
        self.kernel_model = kernel_model or SWKernelModel()
        self.frequency_hz = float(frequency_hz)
        self.early_term = bool(early_term)
        self.threshold = float(threshold)

    def render(self, cloud, camera):
        """Render a cloud and return a :class:`CudaRenderResult`."""
        if not isinstance(cloud, GaussianCloud):
            raise TypeError(
                f"cloud must be a GaussianCloud, got {type(cloud).__name__}")
        if not isinstance(camera, Camera):
            raise TypeError(
                f"camera must be a Camera, got {type(camera).__name__}")
        pre = preprocess(cloud, camera)
        stream = rasterize_splats(pre.splats, camera.width, camera.height)
        return self.render_stream(stream, pre)

    def render_stream(self, stream, pre=None):
        """Render from an existing fragment stream (shared with other paths).

        Tile duplication comes from ``pre`` when given; otherwise the
        stream's own :class:`~repro.render.splat_raster.TileBinning` is
        consumed directly (no re-binning).
        """
        model = self.kernel_model
        tiling = _tiling_for(stream, pre)
        n_gaussians = stream.prim_colors.shape[0]
        warp_exec = simulate_tile_warps(stream, self.threshold)

        warp_rounds = (warp_exec.rounds_et if self.early_term
                       else warp_exec.rounds_no_et)
        blend_ops = (warp_exec.blend_ops_et if self.early_term
                     else warp_exec.blend_ops_no_et)
        timing = CudaRenderTiming(
            preprocess_cycles=model.preprocess_cycles(
                n_gaussians, tiling.n_pairs),
            sort_cycles=model.sort_cycles(tiling.n_pairs),
            raster_cycles=model.raster_cycles(warp_rounds, blend_ops),
            frequency_hz=self.frequency_hz,
        )
        image, alpha = stream.blend_image(
            early_term=self.early_term, threshold=self.threshold)
        return CudaRenderResult(timing, image, alpha, stream, warp_exec,
                                tiling)


def _tiling_for(stream, pre):
    """Tile duplication for the sort/preprocess kernels.

    ``pre`` reproduces the conservative bbox/16-rounding estimate of
    :func:`~repro.swrender.tiling.assign_tiles` (what the CUDA kernel can
    test cheaply).  Without it, the batched rasteriser's
    :class:`~repro.render.splat_raster.TileBinning` on the stream provides
    the *exact* per-splat tile counts, consumed as-is.
    """
    if pre is not None:
        return assign_tiles(pre.splats, stream.width, stream.height)
    binning = getattr(stream, "binning", None)
    if binning is not None:
        return TileAssignment(binning.pairs_per_splat())
    raise ValueError(
        "render_stream needs the PreprocessResult to size tile duplication; "
        "pass pre=, use render(), or pass a stream produced by "
        "rasterize_splats (which carries its TileBinning)")

"""Per-tile Gaussian duplication — the CUDA path's preprocessing burden.

The CUDA renderer assigns each splat to every 16x16 screen tile its (tight)
bounding box overlaps, duplicating a (depth | tile) sort key and an index
per assignment.  The paper identifies exactly this duplication as the reason
software preprocessing and sorting are slower than the hardware path, which
needs a single global sort (Section III-A).
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.projection import Splat2D

TILE_SIZE = 16


class TileAssignment:
    """Splat-to-tile duplication summary.

    Attributes
    ----------
    pairs_per_splat:
        ``(n,)`` tiles each splat is assigned to (0 for off-screen splats).
    n_pairs:
        Total duplicated (splat, tile) pairs — the CUDA sort's key count.
    duplication_factor:
        ``n_pairs / n_splats_on_screen``.
    """

    def __init__(self, pairs_per_splat):
        self.pairs_per_splat = pairs_per_splat

    @property
    def n_pairs(self):
        return int(self.pairs_per_splat.sum())

    @property
    def duplication_factor(self):
        on_screen = int((self.pairs_per_splat > 0).sum())
        if on_screen == 0:
            return 0.0
        return self.n_pairs / on_screen


def assign_tiles(splats, width, height, tile_size=TILE_SIZE):
    """Count tile assignments per splat from tight-OBB bounding boxes.

    Mirrors the tight-OBB CUDA variant the paper evaluates: the number of
    assignments uses the axis-aligned bounds of the oriented box (what the
    kernel can test cheaply), clipped to the screen.
    """
    if not isinstance(splats, Splat2D):
        raise TypeError(f"splats must be a Splat2D, got {type(splats).__name__}")
    if width <= 0 or height <= 0 or tile_size <= 0:
        raise ValueError("width, height and tile_size must be positive")
    bboxes = splats.bounding_boxes()
    x0 = np.clip(np.floor(bboxes[:, 0] / tile_size), 0, None)
    y0 = np.clip(np.floor(bboxes[:, 1] / tile_size), 0, None)
    tiles_x = -(-width // tile_size)
    tiles_y = -(-height // tile_size)
    x1 = np.clip(np.ceil(bboxes[:, 2] / tile_size), None, tiles_x)
    y1 = np.clip(np.ceil(bboxes[:, 3] / tile_size), None, tiles_y)
    nx = np.maximum(x1 - x0, 0.0)
    ny = np.maximum(y1 - y0, 0.0)
    counts = (nx * ny).astype(np.int64)
    counts[(splats.radii <= 0).any(axis=1)] = 0
    return TileAssignment(counts)

"""Lockstep warp execution of the CUDA tile renderer.

One thread block (256 threads = 8 warps) renders each 16x16 tile; each
thread owns one pixel, and all threads iterate the tile's depth-sorted
Gaussian list together.  A warp may stop early only when *all 32* of its
pixels have terminated, so "even if only one thread (pixel) in a warp is not
terminated, all other threads in the warp still ineffectively consume shader
cores" (Section III-B).  This module computes, from the shared fragment
stream:

* per-warp executed rounds, with and without early termination
  (the CUDA rasterise-time driver, Figure 8);
* the fraction of executed thread-slots that perform blending
  (Figure 9's "threads performing blending in a warp").
"""

from __future__ import annotations

import numpy as np

from repro.render.fragstream import (
    DEFAULT_TERMINATION_ALPHA,
    FragmentStream,
)

TILE_SIZE = 16
WARP_ROWS = 2           # a warp covers a 16x2-pixel strip of the tile
WARPS_PER_TILE = TILE_SIZE // WARP_ROWS
WARP_THREADS = 32


class WarpExecution:
    """Aggregate lockstep-execution statistics for one draw.

    Attributes
    ----------
    rounds_no_et:
        Total warp-rounds executed without early termination.
    rounds_et:
        Total warp-rounds with early termination (warp exits once all its
        pixels are done).
    blend_ops_no_et / blend_ops_et:
        Thread-slots that performed a blend in each mode.
    """

    def __init__(self, rounds_no_et, rounds_et, blend_ops_no_et, blend_ops_et):
        self.rounds_no_et = int(rounds_no_et)
        self.rounds_et = int(rounds_et)
        self.blend_ops_no_et = int(blend_ops_no_et)
        self.blend_ops_et = int(blend_ops_et)

    def et_speedup(self):
        """Rasterise-time speedup from early termination (Figure 8)."""
        if self.rounds_et == 0:
            return 1.0
        return self.rounds_no_et / self.rounds_et

    def blending_thread_fraction(self, early_term=True):
        """Fraction of executed thread-slots doing useful blending (Fig. 9)."""
        rounds = self.rounds_et if early_term else self.rounds_no_et
        ops = self.blend_ops_et if early_term else self.blend_ops_no_et
        slots = rounds * WARP_THREADS
        if slots == 0:
            return 0.0
        return ops / slots


def simulate_tile_warps(stream, threshold=DEFAULT_TERMINATION_ALPHA):
    """Run the lockstep model over a fragment stream.

    The stream's primitive order is the global depth order, which is also
    each tile's processing order (the CUDA renderer sorts by (tile | depth)
    keys, yielding per-tile depth-sorted lists).
    """
    if not isinstance(stream, FragmentStream):
        raise TypeError(
            f"stream must be a FragmentStream, got {type(stream).__name__}")
    if len(stream) == 0:
        return WarpExecution(0, 0, 0, 0)

    width, height = stream.width, stream.height
    tiles_x = -(-width // TILE_SIZE)
    tiles_y = -(-height // TILE_SIZE)
    n_tiles = tiles_x * tiles_y

    tile_of_frag = ((stream.y // TILE_SIZE).astype(np.int64) * tiles_x
                    + stream.x // TILE_SIZE)

    # Round index of each fragment: rank of its primitive within its tile's
    # depth-ordered Gaussian list == rank of the (tile, prim) pair among the
    # tile's unique pairs.
    n_prims = stream.prim_colors.shape[0]
    pair_key = tile_of_frag * n_prims + stream.prim_ids
    unique_pairs, frag_pair_idx = np.unique(pair_key, return_inverse=True)
    pair_tile = unique_pairs // n_prims
    tile_pair_starts = np.zeros(n_tiles + 1, dtype=np.int64)
    counts = np.bincount(pair_tile, minlength=n_tiles)
    np.cumsum(counts, out=tile_pair_starts[1:])
    frag_round = frag_pair_idx - tile_pair_starts[pair_tile[frag_pair_idx]]
    rounds_per_tile = counts  # Gaussians assigned to each tile

    # Pixel "done" round: the round of the first fragment arriving already
    # terminated; pixels that never terminate run the whole tile list.
    pix = stream.pixel_ids
    done_round = np.full(width * height, -1, dtype=np.int64)
    tile_of_pixel = ((np.arange(width * height) // width) // TILE_SIZE * tiles_x
                     + (np.arange(width * height) % width) // TILE_SIZE)
    terminated_arrival = stream.arrival_alpha >= threshold
    if terminated_arrival.any():
        sentinel = np.iinfo(np.int64).max
        first_done = np.full(width * height, sentinel, dtype=np.int64)
        np.minimum.at(first_done, pix[terminated_arrival],
                      frag_round[terminated_arrival])
        has_done = first_done != sentinel
        done_round[has_done] = first_done[has_done]
    never = done_round < 0
    done_round[never] = rounds_per_tile[tile_of_pixel[never]]

    # Warp rounds: max done-round over the warp's 32 pixels (ET), or the
    # tile's full list length (no ET).
    ys = np.arange(width * height) // width
    warp_of_pixel = tile_of_pixel * WARPS_PER_TILE + (ys % TILE_SIZE) // WARP_ROWS
    n_warps = n_tiles * WARPS_PER_TILE
    warp_rounds_et = np.zeros(n_warps, dtype=np.int64)
    np.maximum.at(warp_rounds_et, warp_of_pixel, done_round)
    warp_rounds_no_et = np.repeat(rounds_per_tile, WARPS_PER_TILE)

    # Warps execute only if their tile has work; empty tiles cost nothing.
    rounds_no_et = int(warp_rounds_no_et.sum())
    rounds_et = int(warp_rounds_et.sum())

    blend_no_et = int(stream.unpruned.sum())
    blend_et = int(stream.et_survivor_mask(threshold).sum())
    return WarpExecution(rounds_no_et, rounds_et, blend_no_et, blend_et)

"""Lockstep warp execution of the CUDA tile renderer.

One thread block (256 threads = 8 warps) renders each 16x16 tile; each
thread owns one pixel, and all threads iterate the tile's depth-sorted
Gaussian list together.  A warp may stop early only when *all 32* of its
pixels have terminated, so "even if only one thread (pixel) in a warp is not
terminated, all other threads in the warp still ineffectively consume shader
cores" (Section III-B).  This module computes, from the shared fragment
stream:

* per-warp executed rounds, with and without early termination
  (the CUDA rasterise-time driver, Figure 8);
* the fraction of executed thread-slots that perform blending
  (Figure 9's "threads performing blending in a warp").

Two engines, selected by the ``swmodel`` knob (``"auto"`` / ``"frameir"``
/ ``"legacy"``, process default ``$REPRO_SWMODEL``):

* ``_simulate_tile_warps_ir`` reads the (prim, tile) round structure
  straight off the stream's :class:`~repro.render.frameir.FrameIR` group
  ranges — the chunklet pass already enumerated the unique (prim, tile)
  pairs in emission order, so no fragment-level ``np.unique`` sort exists
  on this path — and resolves each pixel's exit round with a single
  fragment lookup through digestion's cached pixel-sorted arrival chain;
* ``_simulate_tile_warps_legacy`` is the retained fragment-sort oracle
  (the original ``np.unique`` over (tile, prim) keys), kept bit-exact for
  the equivalence tests; its per-pixel reductions run over the same
  cached chain via ``reduceat`` instead of the old ``np.minimum.at`` /
  ``np.maximum.at`` scatters.
"""

from __future__ import annotations

import numpy as np

from repro import knobs
from repro.knobs import SWMODEL_MODES
from repro.render.fragstream import (
    DEFAULT_TERMINATION_ALPHA,
    FragmentStream,
)

TILE_SIZE = 16
WARP_ROWS = 2           # a warp covers a 16x2-pixel strip of the tile
WARPS_PER_TILE = TILE_SIZE // WARP_ROWS
WARP_THREADS = 32


def resolve_swmodel(swmodel=None):
    """Normalise a ``swmodel`` knob value, defaulting to ``$REPRO_SWMODEL``
    / auto."""
    if swmodel is None:
        swmodel = knobs.env("REPRO_SWMODEL")
    if swmodel not in SWMODEL_MODES:
        raise ValueError(
            f"unknown swmodel mode {swmodel!r}; choose from {SWMODEL_MODES}")
    return swmodel


class WarpExecution:
    """Aggregate lockstep-execution statistics for one draw.

    Attributes
    ----------
    rounds_no_et:
        Total warp-rounds executed without early termination.
    rounds_et:
        Total warp-rounds with early termination (warp exits once all its
        pixels are done).
    blend_ops_no_et / blend_ops_et:
        Thread-slots that performed a blend in each mode.
    """

    def __init__(self, rounds_no_et, rounds_et, blend_ops_no_et, blend_ops_et):
        self.rounds_no_et = int(rounds_no_et)
        self.rounds_et = int(rounds_et)
        self.blend_ops_no_et = int(blend_ops_no_et)
        self.blend_ops_et = int(blend_ops_et)

    def et_speedup(self):
        """Rasterise-time speedup from early termination (Figure 8)."""
        if self.rounds_et == 0:
            return 1.0
        return self.rounds_no_et / self.rounds_et

    def blending_thread_fraction(self, early_term=True):
        """Fraction of executed thread-slots doing useful blending (Fig. 9)."""
        rounds = self.rounds_et if early_term else self.rounds_no_et
        ops = self.blend_ops_et if early_term else self.blend_ops_no_et
        slots = rounds * WARP_THREADS
        if slots == 0:
            return 0.0
        return ops / slots


def _warp_round_totals(done_pixels, done_rounds, rounds_per_tile,
                       width, height, tiles_x, tiles_y):
    """Per-mode round totals from the pixel exit structure.

    ``done_pixels`` / ``done_rounds`` name the pixels that terminate and
    the round each one exits after; every other pixel runs its tile's
    full Gaussian list.  The ET total is the per-warp max over each
    16x2-pixel strip, taken as a blocked reshape of the padded screen —
    the pad rows/columns hold 0, below any real round, so warps that
    straddle the image edge reduce over their real pixels exactly as the
    old ``np.maximum.at`` scatter (zero-initialised accumulator) did.
    """
    rounds_no_et = WARPS_PER_TILE * int(rounds_per_tile.sum())
    done2d = np.zeros((tiles_y * TILE_SIZE, tiles_x * TILE_SIZE),
                      dtype=np.int64)
    full = np.repeat(np.repeat(rounds_per_tile.reshape(tiles_y, tiles_x),
                               TILE_SIZE, axis=0), TILE_SIZE, axis=1)
    done2d[:height, :width] = full[:height, :width]
    done2d[done_pixels // width, done_pixels % width] = done_rounds
    warp_max = done2d.reshape(tiles_y, WARPS_PER_TILE, WARP_ROWS,
                              tiles_x, TILE_SIZE).max(axis=(2, 4))
    return rounds_no_et, int(warp_max.sum())


def _simulate_tile_warps_ir(stream, threshold):
    """Round totals off the FrameIR group ranges (no fragment sort).

    The IR's (prim, tile) groups *are* the legacy model's unique
    (tile, prim) pairs — every group holds at least one fragment and
    every fragment belongs to one — listed in (prim, tile) order, so the
    per-tile round structure is a bincount plus one tiny stable sort of
    the group list (never the fragments).  A pixel's exit round is the
    round of its first already-terminated fragment; within a pixel the
    fragments share one tile and arrive prim-ascending, so rounds are
    strictly increasing and the cached per-pixel termination rank from
    digestion names that fragment directly — one gather per terminated
    pixel instead of a full-stream ``minimum.at``.
    """
    width, height = stream.width, stream.height
    tiles_x = -(-width // TILE_SIZE)
    tiles_y = -(-height // TILE_SIZE)
    n_tiles = tiles_x * tiles_y

    groups = stream.frameir.quads().groups
    g_tile = groups.tile
    n_groups = len(groups)
    rounds_per_tile = np.bincount(g_tile, minlength=n_tiles)

    # Round of each group within its tile: groups arrive (prim, tile)-
    # sorted, so a stable sort by tile keeps each tile's groups in
    # ascending-prim order — the tile's depth-ordered Gaussian list.
    t_order = np.argsort(g_tile, kind="stable")
    tile_starts = np.zeros(n_tiles + 1, dtype=np.int64)
    np.cumsum(rounds_per_tile, out=tile_starts[1:])
    round_of_group = np.empty(n_groups, dtype=np.int64)
    round_of_group[t_order] = (np.arange(n_groups, dtype=np.int64)
                               - tile_starts[g_tile[t_order]])

    _local, term_rank, order, pix_sorted = \
        stream._pixel_ranks_sorted(threshold)
    starts = stream._pixel_starts(pix_sorted)
    sentinel = np.int64(len(stream) + 1)
    done_pixels = np.flatnonzero(term_rank != sentinel)
    seg_pix = pix_sorted[starts]
    seg = np.searchsorted(seg_pix, done_pixels)
    slot = starts[seg] + term_rank[done_pixels]
    prim = stream.prim_ids[order[slot]].astype(np.int64)
    tile = (((done_pixels // width) // TILE_SIZE) * tiles_x
            + (done_pixels % width) // TILE_SIZE)
    # g_key is strictly increasing (groups are (prim, tile)-sorted), and
    # every (prim, tile) seen by a fragment has a group, so the lookup is
    # an exact searchsorted hit.
    g_key = groups.prim.astype(np.int64) * n_tiles + g_tile
    g_idx = np.searchsorted(g_key, prim * n_tiles + tile)
    done_rounds = round_of_group[g_idx]
    return _warp_round_totals(done_pixels, done_rounds, rounds_per_tile,
                              width, height, tiles_x, tiles_y)


def _simulate_tile_warps_legacy(stream, threshold):
    """The retained fragment-sort oracle: round structure via a full
    ``np.unique`` over (tile, prim) fragment keys.

    The per-pixel exit reduction runs over digestion's cached
    pixel-sorted chain with one ``reduceat`` (identical minima to the
    old ``np.minimum.at`` scatter, far faster), and the per-warp max
    shares :func:`_warp_round_totals` with the IR engine.
    """
    width, height = stream.width, stream.height
    tiles_x = -(-width // TILE_SIZE)
    tiles_y = -(-height // TILE_SIZE)
    n_tiles = tiles_x * tiles_y

    tile_of_frag = ((stream.y // TILE_SIZE).astype(np.int64) * tiles_x
                    + stream.x // TILE_SIZE)

    # Round index of each fragment: rank of its primitive within its tile's
    # depth-ordered Gaussian list == rank of the (tile, prim) pair among the
    # tile's unique pairs.
    n_prims = stream.prim_colors.shape[0]
    pair_key = tile_of_frag * n_prims + stream.prim_ids
    unique_pairs, frag_pair_idx = np.unique(pair_key, return_inverse=True)
    pair_tile = unique_pairs // n_prims
    tile_pair_starts = np.zeros(n_tiles + 1, dtype=np.int64)
    counts = np.bincount(pair_tile, minlength=n_tiles)
    np.cumsum(counts, out=tile_pair_starts[1:])
    frag_round = frag_pair_idx - tile_pair_starts[pair_tile[frag_pair_idx]]
    rounds_per_tile = counts  # Gaussians assigned to each tile

    # Pixel "done" round: the round of the first fragment arriving already
    # terminated, as a segment minimum over the pixel-sorted domain.
    stream._ensure_arrival_sorted()
    order = stream._pixel_order
    pix_sorted = stream._cache["pix_sorted"]
    starts = stream._pixel_starts(pix_sorted)
    sentinel = np.iinfo(np.int64).max
    term_sorted = stream._cache["arrival_sorted"] >= threshold
    masked = np.where(term_sorted, frag_round[order], sentinel)
    seg_min = np.minimum.reduceat(masked, starts)
    has_done = seg_min != sentinel
    done_pixels = pix_sorted[starts][has_done]
    done_rounds = seg_min[has_done]
    return _warp_round_totals(done_pixels, done_rounds, rounds_per_tile,
                              width, height, tiles_x, tiles_y)


def simulate_tile_warps(stream, threshold=DEFAULT_TERMINATION_ALPHA,
                        swmodel=None):
    """Run the lockstep model over a fragment stream.

    The stream's primitive order is the global depth order, which is also
    each tile's processing order (the CUDA renderer sorts by (tile | depth)
    keys, yielding per-tile depth-sorted lists).  ``swmodel`` selects the
    engine: ``"auto"`` reads the FrameIR whenever the stream carries one,
    ``"legacy"`` forces the fragment-sort oracle, ``"frameir"`` requires
    the IR.  Both engines are bit-exact.
    """
    if not isinstance(stream, FragmentStream):
        raise TypeError(
            f"stream must be a FragmentStream, got {type(stream).__name__}")
    explicit = swmodel is not None
    swmodel = resolve_swmodel(swmodel)
    if swmodel == "frameir" and stream.frameir is None and explicit:
        # A $REPRO_SWMODEL=frameir *process default* stays best-effort
        # (bare streams fall back to the oracle, same contract as the ir
        # knob); only a by-name request hardens into a requirement.
        raise ValueError(
            "swmodel='frameir' requires a stream carrying a FrameIR; "
            "rasterize with ir='auto'/'frameir' or use swmodel='auto'")
    if len(stream) == 0:
        return WarpExecution(0, 0, 0, 0)

    if swmodel != "legacy" and stream.frameir is not None:
        rounds_no_et, rounds_et = _simulate_tile_warps_ir(stream, threshold)
    else:
        rounds_no_et, rounds_et = _simulate_tile_warps_legacy(
            stream, threshold)

    blend_no_et = int(stream.unpruned.sum())
    blend_et = int(stream.et_survivor_mask(threshold).sum())
    return WarpExecution(rounds_no_et, rounds_et, blend_no_et, blend_et)

"""GSCore comparator and the energy model."""

import pytest

from repro.accel.gscore import GSCoreConfig, GSCoreModel
from repro.core.vrpipe import run_variant
from repro.hwmodel.energy import draw_energy, efficiency_ratio


class TestGSCore:
    def test_accelerator_faster_than_vrpipe(self, deep_stream):
        vrp = run_variant(deep_stream, "het+qm")
        slowdown = GSCoreModel().slowdown_of(vrp, deep_stream)
        assert slowdown > 1.0

    def test_cycles_positive(self, small_stream):
        assert GSCoreModel().render_cycles(small_stream) > 0

    def test_faster_config_wins(self, deep_stream):
        slow = GSCoreModel(GSCoreConfig(vru_fragments_per_cycle=1.0))
        fast = GSCoreModel(GSCoreConfig(vru_fragments_per_cycle=64.0))
        assert (slow.render_cycles(deep_stream)
                > fast.render_cycles(deep_stream))

    def test_type_check(self):
        with pytest.raises(TypeError):
            GSCoreModel().render_cycles("stream")


class TestEnergy:
    def test_breakdown_positive(self, deep_stream):
        res = run_variant(deep_stream, "baseline")
        breakdown = draw_energy(res)
        assert breakdown.total_j > 0
        assert set(breakdown.components) >= {
            "fragment_shading", "blending", "dram", "static"}
        assert all(v >= 0 for v in breakdown.components.values())

    def test_vrpipe_more_efficient(self, deep_stream):
        base = run_variant(deep_stream, "baseline")
        vrp = run_variant(deep_stream, "het+qm")
        assert efficiency_ratio(base, vrp) > 1.0

    def test_het_saves_shading_energy(self, deep_stream):
        base = draw_energy(run_variant(deep_stream, "baseline"))
        het = draw_energy(run_variant(deep_stream, "het"))
        assert (het.components["fragment_shading"]
                < base.components["fragment_shading"])
        assert het.components["blending"] < base.components["blending"]

    def test_repr(self, small_stream):
        res = run_variant(small_stream, "baseline")
        assert "total" in repr(draw_energy(res))

"""FragmentStream invariants: arrival alpha, termination masks, quads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.fragstream import (
    DEFAULT_TERMINATION_ALPHA,
    FragmentStream,
    PRUNE_EPS,
    QuadTable,
)


def make_stream(frags, width=8, height=8, n_prims=None):
    """Build a stream from (prim, x, y, alpha) tuples."""
    frags = list(frags)
    prim = np.array([f[0] for f in frags], dtype=np.int32)
    n_prims = n_prims or (int(prim.max()) + 1 if len(frags) else 1)
    return FragmentStream(
        prim_ids=prim,
        x=np.array([f[1] for f in frags], dtype=np.int32),
        y=np.array([f[2] for f in frags], dtype=np.int32),
        alphas=np.array([f[3] for f in frags], dtype=np.float32),
        prim_colors=np.linspace(0.1, 0.9, n_prims * 3).reshape(n_prims, 3),
        width=width, height=height)


class TestArrivalAlpha:
    def test_first_fragment_zero(self):
        s = make_stream([(0, 1, 1, 0.5)])
        assert s.arrival_alpha[0] == 0.0

    def test_sequence(self):
        s = make_stream([(0, 1, 1, 0.5), (1, 1, 1, 0.5), (2, 1, 1, 0.5)])
        assert s.arrival_alpha == pytest.approx([0.0, 0.5, 0.75])

    def test_pruned_fragment_does_not_accumulate(self):
        s = make_stream([(0, 1, 1, 0.5), (1, 1, 1, 0.001), (2, 1, 1, 0.5)])
        assert s.arrival_alpha[2] == pytest.approx(0.5)

    def test_pixels_independent(self):
        s = make_stream([(0, 0, 0, 0.9), (1, 1, 0, 0.9), (2, 0, 0, 0.5)])
        assert s.arrival_alpha[1] == 0.0
        assert s.arrival_alpha[2] == pytest.approx(0.9)

    def test_monotone_per_pixel(self, small_stream):
        a = small_stream.arrival_alpha
        pix = small_stream.pixel_ids
        order = np.lexsort((small_stream.prim_ids, pix))
        sorted_a = a[order]
        sorted_p = pix[order]
        same = sorted_p[1:] == sorted_p[:-1]
        assert (sorted_a[1:][same] >= sorted_a[:-1][same] - 1e-12).all()


class TestTerminationMasks:
    def test_termination_kills_following(self):
        s = make_stream([(0, 1, 1, 0.99), (1, 1, 1, 0.99), (2, 1, 1, 0.5)])
        mask = s.et_survivor_mask()
        # First two blend (0.99, then 0.9999); the third is killed.
        assert mask.tolist() == [True, True, False]

    def test_lag_delays_kill(self):
        frags = [(i, 1, 1, 0.99) for i in range(6)]
        s = make_stream(frags)
        perfect = s.het_blended_mask(lag=0)
        lagged = s.het_blended_mask(lag=2)
        assert perfect.sum() == 2
        assert lagged.sum() == 4  # two extra blends during the window

    def test_lag_superset_of_perfect(self, deep_stream):
        perfect = deep_stream.het_blended_mask(lag=0)
        lagged = deep_stream.het_blended_mask(lag=8)
        assert (lagged | ~perfect).all()  # perfect => lagged

    def test_unterminated_sees_pruned(self):
        s = make_stream([(0, 1, 1, 0.99), (1, 1, 1, 0.99),
                         (2, 1, 1, 0.0001)])
        # The pruned fragment still arrives terminated: ZROP kills it too.
        assert s.unterminated_on_arrival().tolist() == [True, True, False]

    def test_ratio_at_least_one(self, small_stream, deep_stream):
        assert small_stream.termination_ratio() >= 1.0
        assert deep_stream.termination_ratio() > 1.2

    def test_threshold_monotonicity(self, deep_stream):
        low = deep_stream.et_survivor_mask(0.9).sum()
        high = deep_stream.et_survivor_mask(0.999).sum()
        assert low <= high


class TestAccumulatedAlpha:
    def test_bit_identical_to_blend_image(self, deep_stream):
        """The cached alpha map must equal a full blend's, bit for bit —
        DrawWorkload.from_stream derives termination state from it."""
        _, alpha_map = deep_stream.blend_image(early_term=False)
        flat = deep_stream.accumulated_alpha
        assert np.array_equal(flat.view(np.uint64),
                              alpha_map.reshape(-1).view(np.uint64))

    def test_cached_across_calls(self, small_stream):
        assert small_stream.accumulated_alpha is small_stream.accumulated_alpha

    def test_blend_image_does_not_alias_cache(self, small_stream):
        _, alpha_map = small_stream.blend_image(early_term=False)
        alpha_map[:] = -1.0
        assert small_stream.accumulated_alpha.min() >= 0.0

    def test_empty_stream(self):
        stream = make_stream([])
        assert stream.accumulated_alpha.shape == (64,)
        assert stream.accumulated_alpha.sum() == 0.0


class TestBlendImage:
    def test_single_fragment(self):
        s = make_stream([(0, 2, 3, 0.5)])
        image, alpha = s.blend_image()
        assert alpha[3, 2] == pytest.approx(0.5)
        assert alpha.sum() == pytest.approx(0.5)

    def test_matches_manual_fold(self):
        s = make_stream([(0, 1, 1, 0.6), (1, 1, 1, 0.5), (2, 1, 1, 0.4)])
        image, alpha = s.blend_image()
        colors = s.prim_colors
        expected = (0.6 * colors[0] + 0.4 * 0.5 * colors[1]
                    + 0.4 * 0.5 * 0.4 * colors[2])
        assert image[1, 1] == pytest.approx(expected)

    def test_et_error_bounded(self, deep_stream):
        exact, _ = deep_stream.blend_image(early_term=False)
        et, _ = deep_stream.blend_image(early_term=True)
        assert np.abs(exact - et).max() <= 1.0 - DEFAULT_TERMINATION_ALPHA + 1e-9

    def test_fragments_per_pixel_kinds(self, deep_stream):
        all_f = deep_stream.fragments_per_pixel("all")
        unpruned = deep_stream.fragments_per_pixel("unpruned")
        et = deep_stream.fragments_per_pixel("early_term")
        assert (all_f >= unpruned).all()
        assert (unpruned >= et).all()

    def test_bad_kind(self, small_stream):
        with pytest.raises(ValueError):
            small_stream.fragments_per_pixel("bogus")


class TestValidation:
    def test_rejects_out_of_bounds(self):
        with pytest.raises(ValueError, match="outside"):
            make_stream([(0, 99, 0, 0.5)], width=8, height=8)

    def test_rejects_bad_prim_ref(self):
        with pytest.raises(ValueError, match="out of range"):
            FragmentStream(np.array([5], dtype=np.int32),
                           np.array([0], dtype=np.int32),
                           np.array([0], dtype=np.int32),
                           np.array([0.5], dtype=np.float32),
                           np.zeros((1, 3)), 8, 8)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            FragmentStream(np.zeros(2, np.int32), np.zeros(1, np.int32),
                           np.zeros(2, np.int32), np.zeros(2, np.float32),
                           np.zeros((1, 3)), 8, 8)


class TestQuadTable:
    def test_grouping(self):
        # Four fragments of one prim in one quad -> one row.
        s = make_stream([(0, 0, 0, 0.5), (0, 1, 0, 0.5),
                         (0, 0, 1, 0.5), (0, 1, 1, 0.5)])
        qt = s.quad_table()
        assert len(qt) == 1
        assert qt.n_fragments[0] == 4
        assert qt.mask_unpruned[0] == 0b1111

    def test_partial_coverage_mask(self):
        s = make_stream([(0, 0, 0, 0.5), (0, 1, 1, 0.5)])
        qt = s.quad_table()
        assert qt.n_fragments[0] == 2
        assert qt.mask_unpruned[0] == 0b1001  # bits 0 and 3

    def test_separate_prims_separate_quads(self):
        s = make_stream([(0, 0, 0, 0.5), (1, 0, 0, 0.5)])
        assert len(s.quad_table()) == 2

    def test_tile_and_grid_ids(self):
        s = make_stream([(0, 0, 0, 0.5), (0, 17, 0, 0.5)], width=64,
                        height=64)
        qt = s.quad_table()
        assert set(qt.tile_ids.tolist()) == {0, 1}
        assert set(qt.grid_ids.tolist()) == {0}

    def test_qpos_range(self, small_stream):
        qt = small_stream.quad_table()
        assert qt.qpos.min() >= 0
        assert qt.qpos.max() <= 63

    def test_counts_consistent(self, deep_stream):
        qt = deep_stream.quad_table()
        assert qt.n_unpruned.sum() == deep_stream.unpruned.sum()
        assert qt.n_et_blended.sum() == deep_stream.et_survivor_mask().sum()
        assert (qt.n_et_blended <= qt.n_unterminated).all()
        assert (qt.n_unpruned <= qt.n_fragments).all()
        assert qt.fragments_blended_het() <= qt.fragments_blended_baseline()
        assert qt.quads_blended_het() <= qt.quads_blended_baseline()

    def test_emission_sorted(self, small_stream):
        qt = small_stream.quad_table()
        key = (qt.prim_ids * 10**9 + qt.tile_ids * 10**3 + qt.qpos)
        assert (np.diff(key) > 0).all()

    def test_empty(self):
        s = make_stream([])
        qt = s.quad_table()
        assert len(qt) == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 7), st.integers(0, 7),
              st.floats(0.0, 0.99)),
    min_size=1, max_size=40))
def test_property_mask_hierarchy(frags):
    """For any stream: ET-blended <= unpruned and <= unterminated."""
    frags = sorted(frags, key=lambda f: f[0])
    s = make_stream(frags, n_prims=5)
    et = s.et_survivor_mask()
    assert (~et | s.unpruned).all()
    assert (~et | s.unterminated_on_arrival()).all()
    # Quad table aggregates agree with fragment masks.
    qt = s.quad_table()
    assert qt.n_et_blended.sum() == et.sum()
    assert qt.n_fragments.sum() == len(s)

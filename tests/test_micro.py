"""Microbenchmark probes against the hardware model (§VII-A)."""

import numpy as np
import pytest

from repro.hwmodel.config import jetson_agx_orin
from repro.micro.crop_cache import probe_crop_cache_capacity
from repro.micro.rop_throughput import (
    pixels_per_cycle_by_format,
    time_vs_quads_per_pixel,
)
from repro.micro.tile_binning import tile_binning_probe
from repro.micro.workload import checkerboard_stream, rect_stream


class TestRectStream:
    def test_fragment_count(self):
        s = rect_stream([(0, 0, 4, 4)], 32, 32)
        assert len(s) == 16

    def test_clipping(self):
        s = rect_stream([(30, 30, 8, 8)], 32, 32)
        assert len(s) == 4

    def test_order_primitive_major(self):
        s = rect_stream([(0, 0, 2, 2), (4, 4, 2, 2)], 32, 32)
        assert (np.diff(s.prim_ids) >= 0).all()

    def test_distinct_colors(self):
        s = rect_stream([(0, 0, 2, 2)] * 5, 32, 32)
        assert len({tuple(c) for c in s.prim_colors}) == 5

    def test_rejects_empty_rect(self):
        with pytest.raises(ValueError):
            rect_stream([(0, 0, 0, 4)], 32, 32)


class TestCheckerboard:
    def test_live_per_quad(self):
        s = checkerboard_stream(8, 8, quads_per_pixel=2, live_per_quad=2)
        qt = s.quad_table()
        assert (qt.n_fragments == 2).all()
        assert len(qt) == 2 * 16  # 2 layers x 16 quads

    def test_rejects_bad_live(self):
        with pytest.raises(ValueError):
            checkerboard_stream(8, 8, 1, live_per_quad=5)


class TestCropCacheProbe:
    def test_capacity_bounded_by_16kb(self):
        cap = probe_crop_cache_capacity(8, 8, trials=1, max_rects=40)
        assert 8 * 1024 <= cap <= 16 * 1024

    def test_small_rects_fill_close_to_capacity(self):
        cap = probe_crop_cache_capacity(4, 4, trials=1, max_rects=80)
        assert cap >= 12 * 1024

    def test_rejects_bad_rect(self):
        with pytest.raises(ValueError):
            probe_crop_cache_capacity(0, 4)


class TestRopThroughput:
    def test_rgba8_doubles_rgba16f(self):
        ppc = pixels_per_cycle_by_format(width=128, height=128, layers=4)
        assert ppc["rgba8"] / ppc["rgba16f"] == pytest.approx(2.0, rel=0.05)

    def test_rgba16f_near_8_per_cycle(self):
        ppc = pixels_per_cycle_by_format(width=128, height=128, layers=4)
        assert 6.0 <= ppc["rgba16f"] <= 8.0

    def test_quad_granularity(self):
        times = time_vs_quads_per_pixel(width=64, height=64)
        # Keys are quads-per-blended-pixel; time scales with quad count.
        keys = sorted(times)
        assert times[keys[0]] == pytest.approx(1.0)
        assert times[keys[-1]] == pytest.approx(
            keys[-1] / keys[0], rel=0.05)


class TestTileBinning:
    def test_cliff_at_33(self):
        at_32 = tile_binning_probe(32, rounds=10)
        at_33 = tile_binning_probe(33, rounds=10)
        # Below the bin count: quads coalesce into shared warps.
        assert at_32["warps"] < at_32["rects"] / 2
        # Above: every rectangle launches its own warp.
        assert at_33["warps"] == at_33["rects"]
        assert at_33["tc_evictions"] > 0

    def test_no_evictions_below_cliff(self):
        assert tile_binning_probe(16, rounds=5)["tc_evictions"] == 0

    def test_timeout_flushes_reported_separately(self):
        """Idle-flush regression: with the timeout rule on, the round-robin
        probe's bins flush by timeout — and those flushes must surface in
        the dedicated stat instead of being folded into the final count."""
        without = tile_binning_probe(8, rounds=6)
        with_timeout = tile_binning_probe(8, rounds=6, timeout_quads=4)
        assert without["tc_timeouts"] == 0
        assert with_timeout["tc_timeouts"] > 0
        # Every bin flushed idle before the end of the draw.
        assert with_timeout["warps"] >= without["warps"]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            tile_binning_probe(0)

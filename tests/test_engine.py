"""Engine layer: backend registry, sessions, parallel execution, caching."""

import numpy as np
import pytest

from repro.core.vrpipe import HardwareRenderer, variant_config
from repro.engine import (
    RenderSession,
    ResultCache,
    available_backends,
    clear_cache,
    create_backend,
    frame_seed,
    get_cloud,
)
from repro.engine.backends import device_kernel_model, make_device
from repro.engine.session import TrajectoryResult
from repro.workloads.catalog import get_profile


class TestRegistry:
    def test_default_backends_registered(self):
        assert {"hw:baseline", "hw:qm", "hw:het", "hw:het+qm",
                "cuda", "cuda+et", "reference"} <= set(available_backends())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("hw:turbo")

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            create_backend("hw:het", device_name="a100")

    def test_frame_result_schema(self):
        backend = create_backend("cuda+et")
        profile = get_profile("lego")
        frame = backend.render(get_cloud("lego"), profile.camera())
        assert frame.backend == "cuda+et"
        assert frame.cycles > 0 and frame.ms > 0 and frame.fps > 0
        assert set(frame.kernels) == {"preprocess", "sort", "rasterize"}
        assert frame.et_ratio > 1.0
        assert frame.pipeline_stats is None  # software path has no hw stats

    def test_reference_backend_functional_only(self):
        backend = create_backend("reference")
        profile = get_profile("lego")
        frame = backend.render(get_cloud("lego"), profile.camera())
        assert frame.cycles is None and frame.ms is None
        assert frame.image.shape == (profile.height, profile.width, 3)


class TestBackendInstances:
    def test_session_accepts_backend_instance_with_auto_baseline(self):
        """A ready backend instance works wherever a spec string does;
        baseline='auto' must resolve from the instance's spec instead of
        crashing on ``str`` methods (the old AttributeError)."""
        instance = create_backend("hw:het+qm")
        session = RenderSession("lego", backend=instance, baseline="auto")
        assert session.backend is instance
        assert session.backend_spec == "hw:het+qm"
        assert session.baseline_spec == "hw:baseline"
        result = session.run(n_views=1)
        assert result.records[0].speedup > 1.0

    def test_session_instance_baseline(self):
        baseline = create_backend("hw:baseline")
        session = RenderSession("lego", backend="hw:het",
                                baseline=baseline)
        assert session.baseline is baseline
        assert session.baseline_spec == "hw:baseline"

    def test_auto_baseline_none_for_non_hw_instance(self):
        instance = create_backend("cuda+et")
        session = RenderSession("lego", backend=instance, baseline="auto")
        assert session.baseline is None

    def test_resolve_rejects_speclike_garbage(self):
        from repro.engine.backends import resolve_backend
        with pytest.raises(TypeError, match="spec"):
            resolve_backend(object())

    def test_instance_backend_bypasses_result_cache(self, tmp_path):
        """Cache keys describe registry-built backends only; a passed
        instance (whose config could differ) must never be served a
        spec-keyed cache hit, nor populate one."""
        cache = ResultCache(tmp_path)
        spec_session = RenderSession("lego", backend="hw:het", baseline=None,
                                     result_cache=cache)
        spec_session.run(n_views=1)
        instance = create_backend("hw:het", device_name="rtx3090")
        inst_session = RenderSession("lego", backend=instance, baseline=None,
                                     result_cache=cache)
        result = inst_session.run(n_views=1)
        assert not result.from_cache
        # And the string-spec path still hits.
        again = RenderSession("lego", backend="hw:het", baseline=None,
                              result_cache=cache).run(n_views=1)
        assert again.from_cache


class TestSingleFrame:
    def test_bit_identical_to_hardware_renderer(self):
        """RenderSession frame == direct HardwareRenderer.render output."""
        session = RenderSession("lego", backend="hw:het+qm", baseline=None)
        frame = session.render_frame()

        profile = get_profile("lego")
        device = make_device("orin")
        direct = HardwareRenderer(
            config=variant_config("het+qm", device),
            kernel_model=device_kernel_model(device),
        ).render(get_cloud("lego"), profile.camera())

        assert np.array_equal(frame.image, direct.image)
        assert np.array_equal(frame.alpha, direct.alpha)
        assert frame.cycles == direct.total_cycles
        assert frame.kernels == direct.breakdown_ms()
        assert frame.pipeline_stats is direct.draw.stats or (
            frame.pipeline_stats.total_cycles == direct.draw.stats.total_cycles)


class TestTrajectory:
    @pytest.fixture(scope="class")
    def serial(self):
        return RenderSession("lego", backend="hw:het", baseline=None).run(
            n_views=4, jobs=1)

    def test_record_and_aggregate_shape(self, serial):
        assert serial.n_frames == 4
        assert [r.index for r in serial.records] == [0, 1, 2, 3]
        agg = serial.aggregates()
        assert agg["frames"] == 4
        assert agg["et_ratio_min"] <= agg["et_ratio_mean"] <= agg["et_ratio_max"]
        assert agg["fps_p5"] <= agg["fps_p50"] <= agg["fps_p95"]
        assert agg["total_ms"] == pytest.approx(
            sum(r.ms for r in serial.records))

    def test_parallel_identical_to_serial(self, serial):
        parallel = RenderSession("lego", backend="hw:het", baseline=None).run(
            n_views=4, jobs=2)
        assert [r.cycles for r in parallel.records] == [
            r.cycles for r in serial.records]
        assert parallel.aggregates() == serial.aggregates()

    def test_deterministic_frame_seeds(self, serial):
        expected = [frame_seed("lego", 0, k) for k in range(4)]
        assert [r.seed for r in serial.records] == expected

    def test_baseline_speedups(self):
        result = RenderSession("lego", backend="hw:het+qm").run(n_views=2)
        assert result.baseline == "hw:baseline"
        for rec in result.records:
            assert rec.speedup == rec.baseline_cycles / rec.cycles
            assert rec.speedup > 1.0
        assert result.aggregates()["geomean_speedup"] > 1.0

    def test_warm_crop_cache_requires_serial(self):
        session = RenderSession("lego", warm_crop_cache=True)
        with pytest.raises(ValueError, match="serial"):
            session.run(n_views=2, jobs=2)

    def test_warm_crop_cache_unsupported_backend(self):
        session = RenderSession("lego", backend="reference", baseline=None,
                                warm_crop_cache=True)
        with pytest.raises(ValueError, match="CROP cache"):
            session.run(n_views=2)

    def test_rejects_bad_view_count(self):
        with pytest.raises(ValueError):
            RenderSession("lego").run(n_views=0)


class TestDiskCache:
    def test_hit_identical_after_clear_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = RenderSession("lego", result_cache=cache).run(n_views=2)
        assert not first.from_cache
        assert len(cache) == 1

        clear_cache()  # drop every in-process memo; force the disk path
        second = RenderSession("lego", result_cache=cache).run(n_views=2)
        assert second.from_cache
        assert second.aggregates() == first.aggregates()
        assert [r.to_dict() for r in second.records] == [
            r.to_dict() for r in first.records]

    def test_key_sensitivity(self, tmp_path):
        cache = ResultCache(tmp_path)
        RenderSession("lego", result_cache=cache).run(n_views=2)
        other = RenderSession("lego", result_cache=cache, seed=1).run(n_views=2)
        assert not other.from_cache
        assert len(cache) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = RenderSession("lego", result_cache=cache).run(n_views=2)
        for path in cache.root.glob("*.json"):
            path.write_text("{not json")
        rerun = RenderSession("lego", result_cache=cache).run(n_views=2)
        assert not rerun.from_cache
        assert rerun.aggregates() == result.aggregates()

    def test_round_trip_dict(self):
        result = RenderSession("lego", backend="cuda+et", baseline=None).run(
            n_views=2)
        restored = TrajectoryResult.from_dict(result.to_dict(),
                                              from_cache=True)
        assert restored.from_cache
        assert restored.aggregates() == result.aggregates()


class TestLazyFrameImages:
    def test_hw_frame_image_materialises_lazily(self):
        backend = create_backend("hw:het")
        profile = get_profile("lego")
        frame = backend.render(get_cloud("lego"), profile.camera())
        # The blend is deferred until the image is actually read...
        assert frame._image is None
        image = frame.image
        assert image.shape == (profile.height, profile.width, 3)
        # ...and equals the stream's eager blend exactly.
        expected, alpha = frame.raw.stream.blend_image(
            early_term=True, threshold=backend.config.termination_alpha)
        assert np.array_equal(image, expected)
        assert np.array_equal(frame.alpha, alpha)

    def test_session_discards_images_without_blending(self):
        session = RenderSession("lego", backend="hw:baseline", baseline=None)
        result = session.run(n_views=1)
        record = result.records[0]
        assert record.result is None
        assert record.cycles > 0


class TestStageCollection:
    def test_collect_stages_sums_wall_clock(self):
        session = RenderSession("lego", backend="hw:het+qm", baseline=None)
        result = session.run(n_views=2, collect_stages=True)
        stages = result.stage_ms
        for key in ("preprocess", "rasterize", "render",
                    "render:digest", "render:draw"):
            assert stages[key] > 0, key
        # Sub-stages nest inside their parent stage.
        assert stages["render:digest"] + stages["render:draw"] \
            <= stages["render"] * 1.05

    def test_collect_stages_requires_serial(self):
        session = RenderSession("lego", backend="hw:baseline", baseline=None)
        with pytest.raises(ValueError, match="serial"):
            session.run(n_views=2, jobs=2, collect_stages=True)

    def test_raster_jobs_records_identical(self):
        session = RenderSession("lego", backend="hw:baseline", baseline=None)
        serial = session.run(n_views=2)
        threaded = session.run(n_views=2, raster_jobs=2)
        for a, b in zip(serial.records, threaded.records):
            assert a.cycles == b.cycles
            assert a.et_ratio == b.et_ratio

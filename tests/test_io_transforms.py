"""Scene I/O (PLY/NPZ) and cloud transforms."""

import numpy as np
import pytest

from repro.gaussians import synthetic, transforms
from repro.gaussians.io import read_npz, read_ply, write_npz, write_ply


@pytest.fixture
def cloud():
    return synthetic.make_blob(3, 40, center=(1, 2, 3), radius=0.5,
                               sh_degree=0)


@pytest.fixture
def cloud_sh2():
    base = synthetic.make_blob(4, 25, center=(0, 0, 0), radius=0.5)
    sh = np.random.default_rng(0).normal(scale=0.1, size=(25, 9, 3))
    sh[:, 0] = base.sh[:, 0]
    from repro.gaussians.gaussian import GaussianCloud
    return GaussianCloud(base.positions, base.scales, base.quaternions,
                         base.opacities, sh)


class TestNPZ:
    def test_roundtrip(self, tmp_path, cloud):
        path = tmp_path / "scene.npz"
        write_npz(path, cloud)
        back = read_npz(path)
        np.testing.assert_allclose(back.positions, cloud.positions)
        np.testing.assert_allclose(back.opacities, cloud.opacities)

    def test_type_check(self, tmp_path):
        with pytest.raises(TypeError):
            write_npz(tmp_path / "x.npz", "cloud")


class TestPLY:
    def test_roundtrip_degree0(self, tmp_path, cloud):
        path = tmp_path / "scene.ply"
        write_ply(path, cloud)
        back = read_ply(path)
        assert len(back) == len(cloud)
        np.testing.assert_allclose(back.positions, cloud.positions,
                                   atol=1e-5)
        np.testing.assert_allclose(back.scales, cloud.scales, rtol=1e-4)
        np.testing.assert_allclose(back.opacities, cloud.opacities,
                                   atol=1e-4)
        np.testing.assert_allclose(back.sh, cloud.sh, atol=1e-5)

    def test_roundtrip_degree2(self, tmp_path, cloud_sh2):
        path = tmp_path / "scene2.ply"
        write_ply(path, cloud_sh2)
        back = read_ply(path)
        assert back.sh.shape == cloud_sh2.sh.shape
        np.testing.assert_allclose(back.sh, cloud_sh2.sh, atol=1e-5)

    def test_renders_identically(self, tmp_path, cloud):
        """The checkpoint round-trip must not change the rendered image."""
        from repro.gaussians.camera import Camera
        from repro.render.reference import render_reference
        cam = Camera.look_at(eye=(1, 2, 1.5), target=(1, 2, 3), width=48,
                             height=48)
        path = tmp_path / "scene.ply"
        write_ply(path, cloud)
        a = render_reference(cloud, cam)
        b = render_reference(read_ply(path), cam)
        np.testing.assert_allclose(a.image, b.image, atol=1e-3)

    def test_quaternions_same_rotation(self, tmp_path, cloud):
        from repro.gaussians.gaussian import quaternion_to_rotation
        path = tmp_path / "scene.ply"
        write_ply(path, cloud)
        back = read_ply(path)
        np.testing.assert_allclose(
            quaternion_to_rotation(back.quaternions),
            quaternion_to_rotation(cloud.quaternions), atol=1e-4)

    def test_rejects_non_ply(self, tmp_path):
        path = tmp_path / "bad.ply"
        path.write_bytes(b"hello")
        with pytest.raises(ValueError, match="not a PLY"):
            read_ply(path)

    def test_rejects_ascii_ply(self, tmp_path):
        path = tmp_path / "ascii.ply"
        path.write_bytes(b"ply\nformat ascii 1.0\nend_header\n")
        with pytest.raises(ValueError, match="unsupported"):
            read_ply(path)


class TestTransforms:
    def test_translate(self, cloud):
        moved = transforms.translate(cloud, (1, 0, -2))
        np.testing.assert_allclose(moved.positions,
                                   cloud.positions + [1, 0, -2])
        # Original untouched.
        assert not np.allclose(moved.positions, cloud.positions)

    def test_scale_about_origin(self, cloud):
        scaled = transforms.scale(cloud, 2.0, origin=(1, 2, 3))
        np.testing.assert_allclose(
            scaled.positions - [1, 2, 3],
            2.0 * (cloud.positions - [1, 2, 3]))
        np.testing.assert_allclose(scaled.scales, 2.0 * cloud.scales)

    def test_scale_rejects_nonpositive(self, cloud):
        with pytest.raises(ValueError):
            transforms.scale(cloud, 0.0)

    def test_rotate_covariance_consistent(self, cloud):
        """Covariances must transform as R Sigma R^T."""
        angle = 0.7
        rot = np.array([
            [np.cos(angle), -np.sin(angle), 0.0],
            [np.sin(angle), np.cos(angle), 0.0],
            [0.0, 0.0, 1.0],
        ])
        rotated = transforms.rotate(cloud, rot)
        expected = rot @ cloud.covariances() @ rot.T
        np.testing.assert_allclose(rotated.covariances(), expected,
                                   atol=1e-10)

    def test_rotate_rejects_non_orthonormal(self, cloud):
        with pytest.raises(ValueError, match="orthonormal"):
            transforms.rotate(cloud, np.diag([2.0, 1.0, 1.0]))

    def test_prune_by_opacity(self):
        cloud = synthetic.make_blob(0, 100, (0, 0, 0), 1.0,
                                    opacity_low=0.01, opacity_high=0.9)
        pruned = transforms.prune_by_opacity(cloud, 0.5)
        assert len(pruned) < len(cloud)
        assert pruned.opacities.min() >= 0.5

    def test_prune_by_size(self, cloud):
        pruned = transforms.prune_by_size(cloud, cloud.scales.max())
        assert len(pruned) <= 1

    def test_merge(self, cloud):
        assert len(transforms.merge(cloud, cloud)) == 2 * len(cloud)

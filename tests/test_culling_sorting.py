"""Frustum culling and depth sorting."""

import numpy as np
import pytest

from repro.gaussians.camera import Camera
from repro.gaussians.culling import frustum_cull
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.sorting import depth_sort_indices, sort_cost_model


def _cloud(positions, opacity=0.8, scale=0.05):
    positions = np.atleast_2d(positions)
    n = positions.shape[0]
    return GaussianCloud(
        positions=positions, scales=np.full((n, 3), scale),
        quaternions=np.tile([1.0, 0, 0, 0], (n, 1)),
        opacities=np.full(n, opacity), sh=np.zeros((n, 1, 3)))


@pytest.fixture
def cam():
    return Camera.look_at(eye=(0, 0, -2), target=(0, 0, 0),
                          width=128, height=128)


class TestFrustumCull:
    def test_keeps_visible(self, cam):
        assert frustum_cull(_cloud([0, 0, 0]), cam).all()

    def test_culls_behind(self, cam):
        assert not frustum_cull(_cloud([0, 0, -5.0]), cam).any()

    def test_culls_beyond_far(self):
        cam = Camera.look_at(eye=(0, 0, -2), target=(0, 0, 0), width=64,
                             height=64, zfar=10.0)
        assert not frustum_cull(_cloud([0, 0, 100.0]), cam).any()

    def test_culls_far_off_screen(self, cam):
        assert not frustum_cull(_cloud([50.0, 0, 0]), cam).any()

    def test_keeps_marginal_offscreen_with_guard(self, cam):
        # Slightly off-screen but large: the guard band keeps it.
        cloud = _cloud([1.3, 0, 0], scale=0.4)
        assert frustum_cull(cloud, cam).all()

    def test_culls_transparent(self, cam):
        assert not frustum_cull(_cloud([0, 0, 0], opacity=1e-4), cam).any()


class TestDepthSort:
    def test_front_to_back(self):
        order = depth_sort_indices(np.array([3.0, 1.0, 2.0]))
        assert order.tolist() == [1, 2, 0]

    def test_back_to_front(self):
        order = depth_sort_indices(np.array([3.0, 1.0, 2.0]),
                                   front_to_back=False)
        assert order.tolist() == [0, 2, 1]

    def test_stability(self):
        depths = np.array([1.0, 1.0, 1.0])
        assert depth_sort_indices(depths).tolist() == [0, 1, 2]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            depth_sort_indices(np.zeros((2, 2)))


class TestSortCost:
    def test_linear(self):
        assert sort_cost_model(64, 32.0) == pytest.approx(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sort_cost_model(-1)


class TestDepthSortTies:
    """Draw order == blend order: equal depths must keep submission order."""

    def test_ties_keep_submission_order_front_to_back(self):
        depths = np.array([2.0, 1.0, 2.0, 1.0, 2.0])
        order = depth_sort_indices(depths)
        # Within each depth group the original submission order survives.
        assert order.tolist() == [1, 3, 0, 2, 4]

    def test_ties_keep_submission_order_back_to_front(self):
        depths = np.array([2.0, 1.0, 2.0, 1.0, 2.0])
        order = depth_sort_indices(depths, front_to_back=False)
        # Farthest-first sorts negated depths stably, so ties still appear
        # in submission order (a reversed stable sort would flip them).
        assert order.tolist() == [0, 2, 4, 1, 3]

    def test_all_equal_is_identity_both_directions(self):
        depths = np.full(6, 3.25)
        assert depth_sort_indices(depths).tolist() == list(range(6))
        assert depth_sort_indices(
            depths, front_to_back=False).tolist() == list(range(6))

    def test_tied_splats_render_deterministically(self):
        # Two overlapping splats at identical depth: repeated sorts must
        # agree, otherwise the non-commutative blend changes the image.
        depths = np.array([1.5, 1.5])
        for _ in range(3):
            assert depth_sort_indices(depths).tolist() == [0, 1]

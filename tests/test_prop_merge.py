"""Quad reorder unit pairing and merge exactness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quad_merge import (
    merge_flush_batch,
    merge_quad_pair,
    rop_blend_sequence,
)
from repro.hwmodel.prop import (
    plan_merges,
    plan_merges_segmented,
    qru_storage_bytes,
)
from repro.render.blending import premultiply


class TestPlanMerges:
    def test_empty(self):
        plan = plan_merges(np.array([], dtype=int))
        assert plan.n_pairs == 0 and plan.n_quads_out == 0

    def test_no_overlap_all_singles(self):
        plan = plan_merges(np.array([0, 1, 2]))
        assert plan.n_pairs == 0
        assert sorted(plan.singles.tolist()) == [0, 1, 2]

    def test_simple_pair(self):
        plan = plan_merges(np.array([5, 5]))
        assert plan.n_pairs == 1
        assert plan.first.tolist() == [0]
        assert plan.second.tolist() == [1]

    def test_pairs_consecutive_occupants(self):
        # Occupants of position 3 arrive at indices 0, 2, 4: pair (0,2).
        plan = plan_merges(np.array([3, 7, 3, 7, 3]))
        pairs = set(zip(plan.first.tolist(), plan.second.tolist()))
        assert (0, 2) in pairs
        assert (1, 3) in pairs
        assert plan.singles.tolist() == [4]

    def test_order_within_pair(self):
        plan = plan_merges(np.array([1, 1, 1, 1]))
        assert (plan.first < plan.second).all()
        assert plan.n_pairs == 2

    def test_quads_out(self):
        plan = plan_merges(np.array([0, 0, 1, 2]))
        assert plan.n_quads_out == 3  # one pair + two singles

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_segmented_matches_per_flush(self, seed):
        """Segmented pairing over many flushes == per-flush plan_merges,
        including the (position, arrival) pair order and arrival-order
        singles the CROP tag stream depends on."""
        rng = np.random.default_rng(seed)
        seg_lengths = rng.integers(0, 30, size=12)
        qpos = rng.integers(0, 64, size=int(seg_lengths.sum()))
        segment_ids = np.repeat(np.arange(12), seg_lengths)
        seg = plan_merges_segmented(segment_ids, qpos, 12)
        offset = 0
        firsts, seconds, singles = [], [], []
        for length in seg_lengths:
            plan = plan_merges(qpos[offset:offset + length])
            firsts.extend((plan.first + offset).tolist())
            seconds.extend((plan.second + offset).tolist())
            singles.extend((plan.singles + offset).tolist())
            offset += length
        assert seg.first.tolist() == firsts
        assert seg.second.tolist() == seconds
        assert seg.singles.tolist() == singles
        assert int(seg.pairs_per_segment.sum()) == len(firsts)

    def test_segmented_empty(self):
        seg = plan_merges_segmented(np.empty(0, int), np.empty(0, int), 3)
        assert seg.n_pairs == 0
        assert seg.pairs_per_segment.tolist() == [0, 0, 0]

    def test_segmented_rejects_out_of_range_qpos(self):
        with pytest.raises(ValueError):
            plan_merges_segmented(np.zeros(2, int), np.array([0, 64]), 1)

    def test_qru_storage_matches_table3(self):
        assert qru_storage_bytes() == 688


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=0, max_size=60))
def test_plan_partition_property(qpos):
    """Every quad is exactly once a pair member or a single."""
    qpos = np.array(qpos, dtype=int)
    plan = plan_merges(qpos)
    seen = np.concatenate([plan.first, plan.second, plan.singles])
    assert sorted(seen.tolist()) == list(range(len(qpos)))
    # Pair members share a position; first precedes second.
    for f, s in zip(plan.first, plan.second):
        assert qpos[f] == qpos[s]
        assert f < s


def _random_quads(rng, n, qpos_choices=(0, 1)):
    qpos = rng.choice(qpos_choices, size=n)
    coverage = rng.random((n, 4)) > 0.3
    coverage[~coverage.any(axis=1), 0] = True  # at least one lane
    colors = rng.random((n, 4, 3))
    alphas = rng.uniform(0.05, 0.9, size=(n, 4))
    rgba = np.zeros((n, 4, 4))
    for i in range(n):
        rgba[i] = premultiply(colors[i], alphas[i])
        rgba[i][~coverage[i]] = 0.0
    return qpos, rgba, coverage


class TestMergeExactness:
    def test_pair_merge_is_ffb(self):
        rng = np.random.default_rng(0)
        _, rgba, cov = _random_quads(rng, 2, qpos_choices=(0,))
        merged, merged_cov = merge_quad_pair(rgba[0], cov[0], rgba[1], cov[1])
        direct = rop_blend_sequence(rgba, cov)
        via_merge = rop_blend_sequence(merged[None], merged_cov[None])
        np.testing.assert_allclose(via_merge, direct, atol=1e-12)

    def test_merge_flush_batch_preserves_color(self):
        """Blending the merged batch == blending the original sequence.

        All quads share one position so they contribute to the same 2x2
        block; merging must not change the block's final colour.
        """
        rng = np.random.default_rng(1)
        for trial in range(5):
            n = rng.integers(1, 9)
            qpos, rgba, cov = _random_quads(rng, int(n), qpos_choices=(7,))
            out_rgba, out_cov, plan = merge_flush_batch(qpos, rgba, cov)
            direct = rop_blend_sequence(rgba, cov)
            merged = rop_blend_sequence(out_rgba, out_cov)
            np.testing.assert_allclose(merged, direct, atol=1e-12)
            assert out_rgba.shape[0] == plan.n_quads_out

    def test_merge_reduces_quads(self):
        rng = np.random.default_rng(2)
        qpos, rgba, cov = _random_quads(rng, 8, qpos_choices=(3,))
        out_rgba, _, plan = merge_flush_batch(qpos, rgba, cov)
        assert out_rgba.shape[0] == 4
        assert plan.n_pairs == 4

    def test_coverage_union(self):
        rng = np.random.default_rng(3)
        _, rgba, cov = _random_quads(rng, 2, qpos_choices=(0,))
        _, merged_cov = merge_quad_pair(rgba[0], cov[0], rgba[1], cov[1])
        assert (merged_cov == (cov[0] | cov[1])).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            merge_quad_pair(np.zeros((3, 4)), np.ones(4, bool),
                            np.zeros((4, 4)), np.ones(4, bool))
        with pytest.raises(ValueError):
            merge_flush_batch(np.zeros(2), np.zeros((2, 4, 4)),
                              np.zeros((3, 4), bool))

"""Image metrics and draw-call reports."""

import numpy as np
import pytest

from repro.core.vrpipe import run_all_variants, run_variant
from repro.hwmodel.report import compare_variants, draw_report
from repro.render.metrics import image_report, mse, psnr, ssim


class TestMetrics:
    def test_mse_zero_for_identical(self):
        img = np.random.default_rng(0).uniform(size=(16, 16, 3))
        assert mse(img, img) == 0.0

    def test_psnr_inf_identical(self):
        img = np.zeros((16, 16, 3))
        assert psnr(img, img) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((8, 8, 3))
        b = np.full((8, 8, 3), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_ssim_identical_is_one(self):
        img = np.random.default_rng(1).uniform(size=(16, 16, 3))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_ssim_decreases_with_noise(self):
        rng = np.random.default_rng(2)
        img = rng.uniform(0.2, 0.8, size=(32, 32, 3))
        small = np.clip(img + rng.normal(scale=0.02, size=img.shape), 0, 1)
        big = np.clip(img + rng.normal(scale=0.3, size=img.shape), 0, 1)
        assert ssim(img, big) < ssim(img, small) < 1.0

    def test_ssim_grayscale(self):
        img = np.random.default_rng(3).uniform(size=(16, 16))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2, 3)), np.zeros((3, 3, 3)))
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4, 3)), np.zeros((4, 4, 3)))  # below block

    def test_image_report_fields(self, deep_stream):
        exact, _ = deep_stream.blend_image(early_term=False)
        et, _ = deep_stream.blend_image(early_term=True)
        report = image_report(exact, et, label="early-term")
        assert report["label"] == "early-term"
        assert report["psnr_db"] > 40.0
        assert report["ssim"] > 0.99
        assert report["max_abs_error"] <= 0.004 + 1e-9


class TestReport:
    def test_draw_report_content(self, deep_stream):
        result = run_variant(deep_stream, "het+qm")
        text = draw_report(result, title="deep scene")
        assert "deep scene" in text
        assert "bottleneck" in text
        assert "quad merging" in text
        assert "early termination" in text

    def test_baseline_report_omits_extensions(self, deep_stream):
        result = run_variant(deep_stream, "baseline")
        text = draw_report(result)
        assert "quad merging" not in text
        assert "early termination:" not in text

    def test_compare_variants(self, deep_stream):
        results = run_all_variants(deep_stream)
        table = compare_variants(results)
        assert "baseline" in table and "het+qm" in table
        assert "1.00" in table  # baseline speedup

    def test_compare_requires_baseline(self, deep_stream):
        result = run_variant(deep_stream, "het")
        with pytest.raises(KeyError):
            compare_variants({"het": result})

    def test_report_type_check(self):
        with pytest.raises(TypeError):
            draw_report("result")

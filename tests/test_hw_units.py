"""Unit-level tests for the small hardware-unit models."""

import numpy as np
import pytest

from repro.hwmodel.config import jetson_agx_orin
from repro.hwmodel.crop import CropUnit
from repro.hwmodel.raster_hw import RasterEngine
from repro.hwmodel.sm import ShaderArray
from repro.hwmodel.stats import PipelineStats
from repro.hwmodel.units import ceil_div, popcount4, warps_for_quads
from repro.hwmodel.vpo import VertexPipeline
from repro.hwmodel.zrop import ZropUnit


@pytest.fixture
def cfg():
    return jetson_agx_orin()


@pytest.fixture
def stats():
    return PipelineStats()


class TestHelpers:
    def test_ceil_div(self):
        assert ceil_div(0, 8) == 0
        assert ceil_div(1, 8) == 1
        assert ceil_div(8, 8) == 1
        assert ceil_div(9, 8) == 2
        with pytest.raises(ValueError):
            ceil_div(-1, 8)

    def test_warps_for_quads(self):
        assert warps_for_quads(8) == 1
        assert warps_for_quads(9) == 2

    def test_popcount4(self):
        assert popcount4(np.array([0, 1, 0b1111, 0b1010])).tolist() == \
            [0, 1, 4, 2]


class TestShaderArray:
    def test_vertex_batch(self, cfg, stats):
        ShaderArray(cfg, stats).shade_vertex_batch(64)
        assert stats.n_vertices == 64
        assert stats.units["sm"].busy_cycles > 0

    def test_fragment_batch_counts(self, cfg, stats):
        ShaderArray(cfg, stats).shade_fragment_batch(16)
        assert stats.quads_to_sm == 16
        assert stats.fragments_shaded == 64
        assert stats.warps_launched == 2

    def test_merge_pairs_cost_extra(self, cfg):
        a, b = PipelineStats(), PipelineStats()
        ShaderArray(cfg, a).shade_fragment_batch(16, n_merge_pairs=0)
        ShaderArray(cfg, b).shade_fragment_batch(16, n_merge_pairs=4)
        assert b.units["sm"].busy_cycles > a.units["sm"].busy_cycles
        assert b.merge_warps > 0

    def test_empty_batch_free(self, cfg, stats):
        ShaderArray(cfg, stats).shade_fragment_batch(0)
        assert stats.units["sm"].busy_cycles == 0


class TestVertexPipeline:
    def test_process(self, cfg, stats):
        vpo = VertexPipeline(cfg, stats, ShaderArray(cfg, stats))
        vpo.process_prims(100)
        assert stats.n_prims == 100
        assert stats.n_vertices == 400
        assert stats.units["vpo"].busy_cycles == pytest.approx(200.0)
        assert stats.dram_bytes > 0


class TestRasterEngine:
    def test_max_of_substages(self, cfg, stats):
        engine = RasterEngine(cfg, stats)
        engine.accumulate(10, 40, 80)
        engine.finalize()
        expected = max(10 * cfg.setup_cycles_per_prim,
                       40 / cfg.coarse_raster_tiles_per_cycle,
                       80 / cfg.fine_raster_quads_per_cycle)
        assert stats.units["raster"].busy_cycles == pytest.approx(expected)

    def test_accumulate_after_finalize_fails(self, cfg, stats):
        engine = RasterEngine(cfg, stats)
        engine.finalize()
        with pytest.raises(RuntimeError):
            engine.accumulate(1, 1, 1)

    def test_finalize_idempotent(self, cfg, stats):
        engine = RasterEngine(cfg, stats)
        engine.accumulate(1, 1, 8)
        engine.finalize()
        once = stats.units["raster"].busy_cycles
        engine.finalize()
        assert stats.units["raster"].busy_cycles == once
        assert once == pytest.approx(max(
            cfg.setup_cycles_per_prim,
            1 / cfg.coarse_raster_tiles_per_cycle,
            8 / cfg.fine_raster_quads_per_cycle))

    def test_rejects_negative(self, cfg, stats):
        with pytest.raises(ValueError):
            RasterEngine(cfg, stats).accumulate(-1, 0, 0)


class TestCropUnit:
    def test_blend_accounting(self, cfg, stats):
        crop = CropUnit(cfg, stats)
        tags = crop.quad_line_tags(np.array([0, 1]), np.array([0, 0]), 64)
        crop.blend_batch(2, 7, tags)
        assert stats.quads_to_crop == 2
        assert stats.fragments_blended == 7
        assert stats.crop_cache_misses == len(tags)

    def test_quad_line_tags_two_rows(self, cfg, stats):
        crop = CropUnit(cfg, stats)
        tags = crop.quad_line_tags(np.array([0]), np.array([0]), 64)
        assert len(tags) == 2  # rows 0 and 1

    def test_tags_deduplicated(self, cfg, stats):
        crop = CropUnit(cfg, stats)
        tags = crop.quad_line_tags(np.array([0, 1, 2]),
                                   np.array([0, 0, 0]), 64)
        # 64px * 8B = 512B rows -> 4 lines/row; quads 0..2 share line 0.
        assert len(tags) == 2

    def test_empty_batch_noop(self, cfg, stats):
        CropUnit(cfg, stats).blend_batch(0, 0, [])
        assert stats.units["crop"].busy_cycles == 0

    def test_finish_draw_writebacks(self, cfg, stats):
        crop = CropUnit(cfg, stats)
        crop.blend_batch(1, 4, [0, 1])
        before = stats.dram_bytes
        crop.finish_draw()
        assert stats.dram_bytes > before

    def test_blend_batch_accepts_generator(self, cfg):
        """The documented Iterable contract: a one-shot generator must not
        crash on len() and must account exactly like a list."""
        stats_gen, stats_list = PipelineStats(), PipelineStats()
        CropUnit(cfg, stats_gen).blend_batch(
            2, 8, (tag for tag in (0, 1, 2)))
        CropUnit(cfg, stats_list).blend_batch(2, 8, [0, 1, 2])
        assert stats_gen.crop_cache_misses == stats_list.crop_cache_misses == 3
        assert (stats_gen.units["crop"].busy_cycles
                == stats_list.units["crop"].busy_cycles)


class TestZropUnit:
    def test_termination_test(self, cfg, stats):
        zrop = ZropUnit(cfg, stats)
        survivors = zrop.termination_test(
            np.array([0b0000, 0b0001, 0b1111]), tile_id=0, width=64)
        assert survivors.tolist() == [False, True, True]
        assert stats.zrop_tests == 3
        assert stats.quads_discarded_zrop == 1

    def test_updates(self, cfg, stats):
        zrop = ZropUnit(cfg, stats)
        zrop.termination_updates(5, [0, 1, 2])
        assert stats.termination_updates == 5
        assert stats.units["zrop"].busy_cycles == pytest.approx(
            5 * cfg.term_update_cycles)

    def test_rejects_negative_updates(self, cfg, stats):
        with pytest.raises(ValueError):
            ZropUnit(cfg, stats).termination_updates(-1)

    def test_updates_accept_generator_tags(self, cfg):
        stats_gen, stats_list = PipelineStats(), PipelineStats()
        ZropUnit(cfg, stats_gen).termination_updates(
            3, (tag for tag in (4, 5)))
        ZropUnit(cfg, stats_list).termination_updates(3, [4, 5])
        assert stats_gen.dram_bytes == stats_list.dram_bytes > 0
        assert (stats_gen.units["zrop"].busy_cycles
                == stats_list.units["zrop"].busy_cycles)

    def test_updates_empty_generator_no_traffic(self, cfg, stats):
        ZropUnit(cfg, stats).termination_updates(0, (t for t in ()))
        assert stats.dram_bytes == 0

    @pytest.mark.parametrize("width", [64, 250])
    def test_plan_replay_matches_per_flush_tests(self, cfg, width):
        """The group-granular fast path must leave the z-cache with the
        same counters and line state as per-flush termination_test calls
        — per-flush miss counts included."""
        stats_plan, stats_seq = PipelineStats(), PipelineStats()
        plan_unit = ZropUnit(cfg, stats_plan)
        seq_unit = ZropUnit(cfg, stats_seq)
        assert plan_unit.zcache.n_lines % cfg.screen_tile_px == 0
        # Enough distinct tile rows to overflow the 8-group capacity,
        # plus revisits for hits.
        tiles = list(range(0, 44, 4)) + [0, 20, 40, 0]
        n = np.full(len(tiles), 4, dtype=np.int64)
        plan_misses = plan_unit.termination_test_plan(
            np.asarray(tiles), n, n, width)
        seq_misses = []
        for tile in tiles:
            before = seq_unit.zcache.misses
            seq_unit.termination_test(np.ones(4, dtype=np.int64), tile,
                                      width)
            seq_misses.append(seq_unit.zcache.misses - before)
        assert plan_misses.tolist() == seq_misses
        for counter in ("hits", "misses", "evictions", "writebacks"):
            assert (getattr(plan_unit.zcache, counter)
                    == getattr(seq_unit.zcache, counter)), counter
        assert (list(plan_unit.zcache._lines.items())
                == list(seq_unit.zcache._lines.items()))
        for unit_stats in (stats_plan, stats_seq):
            assert unit_stats.zrop_tests == 4 * len(tiles)
        assert (stats_plan.units["zrop"].busy_cycles
                == stats_seq.units["zrop"].busy_cycles)

"""Argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import check_in_range, check_positive, check_shape


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive("x", 0)

    def test_allow_zero(self):
        assert check_positive("x", 0, allow_zero=True) == 0
        with pytest.raises(ValueError):
            check_positive("x", -1, allow_zero=True)

    def test_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            check_positive("x", [1, 2])


class TestCheckInRange:
    def test_inclusive(self):
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_below(self):
        with pytest.raises(ValueError, match="must be in"):
            check_in_range("x", -0.1, 0.0, 1.0)


class TestCheckShape:
    def test_exact(self):
        arr = check_shape("a", np.zeros((2, 3)), (2, 3))
        assert arr.shape == (2, 3)

    def test_wildcard(self):
        check_shape("a", np.zeros((7, 3)), (None, 3))

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape("a", np.zeros(3), (None, 3))

    def test_wrong_size(self):
        with pytest.raises(ValueError, match="expected 4"):
            check_shape("a", np.zeros((2, 3)), (2, 4))

"""Spherical-harmonics colour evaluation."""

import numpy as np
import pytest

from repro.gaussians.sh import eval_sh, num_sh_coeffs, rgb_to_sh_dc


class TestNumCoeffs:
    def test_values(self):
        assert [num_sh_coeffs(d) for d in range(4)] == [1, 4, 9, 16]

    def test_rejects_degree_4(self):
        with pytest.raises(ValueError):
            num_sh_coeffs(4)


class TestEvalSH:
    def test_dc_roundtrip(self):
        rgb = np.array([[0.2, 0.5, 0.9]])
        sh = rgb_to_sh_dc(rgb).reshape(1, 1, 3)
        out = eval_sh(sh, np.array([[0.0, 0.0, 1.0]]))
        assert out == pytest.approx(rgb)

    def test_dc_is_view_independent(self):
        sh = rgb_to_sh_dc(np.array([[0.3, 0.3, 0.3]])).reshape(1, 1, 3)
        a = eval_sh(sh, np.array([[1.0, 0, 0]]))
        b = eval_sh(sh, np.array([[0, 0, 1.0]]))
        assert a == pytest.approx(b)

    def test_degree1_view_dependent(self):
        sh = np.zeros((1, 4, 3))
        sh[0, 0] = rgb_to_sh_dc(np.array([0.5, 0.5, 0.5]))
        sh[0, 3] = 0.4  # x-direction coefficient
        a = eval_sh(sh, np.array([[1.0, 0, 0]]))
        b = eval_sh(sh, np.array([[-1.0, 0, 0]]))
        assert not np.allclose(a, b)

    def test_clamped_nonnegative(self):
        sh = rgb_to_sh_dc(np.array([[-5.0, -5.0, -5.0]])).reshape(1, 1, 3)
        out = eval_sh(sh, np.array([[0, 0, 1.0]]))
        assert (out >= 0).all()

    def test_direction_normalisation(self):
        sh = np.zeros((1, 4, 3))
        sh[0, 1] = 1.0
        a = eval_sh(sh, np.array([[0.0, 2.0, 0.0]]))
        b = eval_sh(sh, np.array([[0.0, 1.0, 0.0]]))
        assert a == pytest.approx(b)

    def test_degree3_runs(self):
        rng = np.random.default_rng(0)
        sh = rng.normal(scale=0.1, size=(5, 16, 3))
        dirs = rng.normal(size=(5, 3))
        out = eval_sh(sh, dirs)
        assert out.shape == (5, 3)
        assert np.isfinite(out).all()

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            eval_sh(np.zeros((2, 1, 3)), np.zeros((3, 3)))

    def test_rejects_non_square_count(self):
        with pytest.raises(ValueError):
            eval_sh(np.zeros((1, 5, 3)), np.zeros((1, 3)))

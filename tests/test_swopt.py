"""Software optimisations: in-shader blending and multi-pass ET."""

import pytest

from repro.hwmodel.config import jetson_agx_orin
from repro.swopt.inshader import InShaderModel, inshader_comparison
from repro.swopt.multipass import multipass_sweep, run_multipass


class TestInShader:
    def test_interlock_slower_than_rop(self, deep_stream):
        cmp = inshader_comparison(deep_stream, jetson_agx_orin())
        assert cmp["interlock_normalized"] > 1.5

    def test_no_interlock_close_or_faster(self, deep_stream):
        """The paper's point: the cost is the lock, not raster operations —
        the unguarded path lands close to the ROP path, the guarded one
        several times above it."""
        cmp = inshader_comparison(deep_stream, jetson_agx_orin())
        assert cmp["no_interlock_normalized"] < 1.6
        assert (cmp["no_interlock_normalized"]
                < 0.5 * cmp["interlock_normalized"])

    def test_normalisation_consistent(self, deep_stream):
        cmp = inshader_comparison(deep_stream, jetson_agx_orin())
        assert cmp["interlock_normalized"] == pytest.approx(
            cmp["interlock_cycles"] / cmp["rop_cycles"])

    def test_custom_model(self, small_stream):
        cheap = InShaderModel(lock_overhead_cycles=1.0)
        pricey = InShaderModel(lock_overhead_cycles=100.0)
        a = inshader_comparison(small_stream, jetson_agx_orin(), cheap)
        b = inshader_comparison(small_stream, jetson_agx_orin(), pricey)
        assert a["interlock_cycles"] < b["interlock_cycles"]

    def test_type_check(self):
        with pytest.raises(TypeError):
            inshader_comparison("stream", jetson_agx_orin())


class TestMultipass:
    def test_single_pass_no_stencil_draws(self, deep_stream):
        result = run_multipass(deep_stream, 1)
        assert result.n_passes == 1
        assert result.stencil_cycles == []
        assert len(result.batch_cycles) == 1

    def test_pass_count_structure(self, deep_stream):
        result = run_multipass(deep_stream, 4)
        assert len(result.batch_cycles) == 4
        assert len(result.stencil_cycles) == 3

    def test_more_passes_fewer_fragments(self, deep_stream):
        one = run_multipass(deep_stream, 1)
        many = run_multipass(deep_stream, 8)
        assert many.fragments_blended <= one.fragments_blended

    def test_fragments_bounded_by_perfect_et(self, deep_stream):
        """Pass-granular stencil ET can never beat perfect fragment ET."""
        many = run_multipass(deep_stream, 16)
        perfect = int(deep_stream.et_survivor_mask().sum())
        assert many.fragments_blended >= perfect

    def test_single_pass_equals_baseline_fragments(self, deep_stream):
        one = run_multipass(deep_stream, 1)
        assert one.fragments_blended == int(deep_stream.unpruned.sum())

    def test_sweep_normalised(self, deep_stream):
        sweep = multipass_sweep(deep_stream, [1, 2, 5])
        assert sweep[1] == pytest.approx(1.0)

    def test_overhead_eventually_wins(self, small_stream):
        """A shallow scene must lose at high pass counts."""
        sweep = multipass_sweep(small_stream, [1, 30])
        assert sweep[30] < 1.0

    def test_rejects_bad_pass_count(self, small_stream):
        with pytest.raises(ValueError):
            run_multipass(small_stream, 0)

    def test_type_check(self):
        with pytest.raises(TypeError):
            run_multipass("stream", 2)

"""Adversarial/degenerate workloads through the full pipeline.

Failure-injection-style tests: extreme stream shapes that stress bin
dynamics, merge pairing, and termination logic in ways the calibrated
scenes never do.  The pipeline must stay consistent (no crashes, counts
coherent, images exact) on all of them.
"""

import numpy as np
import pytest

from repro.core.vrpipe import run_all_variants, speedups_over_baseline
from repro.micro.workload import rect_stream
from repro.render.fragstream import FragmentStream


def _stream(frags, width, height, n_prims):
    prim = np.array([f[0] for f in frags], dtype=np.int32)
    return FragmentStream(
        prim_ids=prim,
        x=np.array([f[1] for f in frags], dtype=np.int32),
        y=np.array([f[2] for f in frags], dtype=np.int32),
        alphas=np.array([f[3] for f in frags], dtype=np.float32),
        prim_colors=np.tile([0.5, 0.4, 0.3], (n_prims, 1)),
        width=width, height=height)


class TestSinglePixelPileup:
    """Hundreds of fragments on one pixel: maximal merge/ET pressure."""

    @pytest.fixture(scope="class")
    def results(self):
        frags = [(i, 5, 5, 0.30) for i in range(400)]
        stream = _stream(frags, 32, 32, 400)
        return stream, run_all_variants(stream)

    def test_counts(self, results):
        stream, variants = results
        base = variants["baseline"].stats
        assert base.fragments_blended == 400
        assert base.quads_to_crop == 400  # one quad per primitive

    def test_het_truncates(self, results):
        stream, variants = results
        # alpha 0.3 -> terminates after ceil(log(0.004)/log(0.7)) = 16
        # blends; with the in-flight lag, HET blends 16 + lag.
        lag = variants["het"].config.het_inflight_lag
        assert variants["het"].stats.fragments_blended == 16 + lag

    def test_qm_halves_quads(self, results):
        stream, variants = results
        # All quads share one position: pairs merge 400 -> 200.
        assert variants["qm"].stats.quads_merged_pairs > 0
        assert variants["qm"].stats.quads_to_crop <= 250

    def test_speedups_sane(self, results):
        _, variants = results
        speedups = speedups_over_baseline(variants)
        assert all(s >= 0.9 for s in speedups.values())


class TestOneFragmentPerPixel:
    """Fully parallel workload: nothing to terminate, nothing to merge."""

    def test_extensions_are_no_ops(self):
        stream = rect_stream([(0, 0, 64, 64)], 64, 64)
        variants = run_all_variants(stream)
        base = variants["baseline"].stats
        assert variants["het"].stats.fragments_blended == base.fragments_blended
        assert variants["qm"].stats.quads_merged_pairs == 0
        assert variants["het"].stats.quads_discarded_zrop == 0
        # No benefit, but also no meaningful penalty.
        speedups = speedups_over_baseline(variants)
        assert all(s > 0.9 for s in speedups.values())


class TestFullyPrunedStream:
    """Every fragment below the alpha-pruning threshold."""

    def test_nothing_blends(self):
        frags = [(i, x, y, 0.001) for i in range(3)
                 for x in range(8) for y in range(8)]
        stream = _stream(frags, 16, 16, 3)
        variants = run_all_variants(stream)
        for res in variants.values():
            assert res.stats.fragments_blended == 0
            assert res.stats.quads_to_crop == 0
            # Quads still rasterised and shaded (pruning happens in-shader).
            assert res.stats.quads_rasterized > 0


class TestOpaqueFirstFragment:
    """An alpha-0.99 fragment terminates its pixel almost immediately."""

    def test_et_kills_rest(self):
        frags = [(0, 2, 2, 0.99), (1, 2, 2, 0.99)]
        frags += [(i, 2, 2, 0.5) for i in range(2, 50)]
        stream = _stream(frags, 8, 8, 50)
        # accumulated: 0.99, then 0.9999 >= 0.996 -> terminate after 2.
        assert int(stream.et_survivor_mask().sum()) == 2

    def test_image_bounded_error(self):
        frags = [(0, 2, 2, 0.99), (1, 2, 2, 0.99)]
        frags += [(i, 2, 2, 0.5) for i in range(2, 50)]
        stream = _stream(frags, 8, 8, 50)
        exact, _ = stream.blend_image(early_term=False)
        et, _ = stream.blend_image(early_term=True)
        assert np.abs(exact - et).max() <= 0.004


class TestCheckerboardTiles:
    """Primitives alternating between two far-apart tiles every quad."""

    def test_bin_thrash_free(self):
        rects = []
        for i in range(100):
            x = 0 if i % 2 == 0 else 112
            rects.append((x, 0, 2, 2))
        stream = rect_stream(rects, 128, 16)
        variants = run_all_variants(stream)
        # Two tiles, both resident: quads coalesce, no evictions.
        assert variants["baseline"].stats.tc_flush_evict == 0

    def test_qm_merges_alternating(self):
        rects = [(0, 0, 2, 2), (112, 0, 2, 2)] * 50
        stream = rect_stream(rects, 128, 16)
        variants = run_all_variants(stream)
        # Within each tile's bin the 50 stacked quads pair into 25.
        assert variants["qm"].stats.quads_merged_pairs == 50


class TestWideSplat:
    """One primitive covering the whole screen (every tile, every grid)."""

    def test_traverses_all_tiles(self):
        stream = rect_stream([(0, 0, 128, 128)], 128, 128)
        variants = run_all_variants(stream)
        base = variants["baseline"].stats
        assert base.quads_rasterized == 64 * 64
        assert base.quads_to_crop == 64 * 64
        # 8x8 = 64 tiles > 32 bins: the single wide primitive still flushes
        # cleanly (insertion order visits each tile once).
        assert base.tc_flushes() >= 64

"""Tests of the ``repro lint`` static-analysis engine (rules R1-R6).

Each rule gets a quartet of fixture checks — a positive snippet it must
flag, a negative snippet it must not, a pragma-suppressed variant, and a
baselined variant — written into a throwaway ``src/repro/...`` tree so
path-scoped rules (R3's columnar modules, R2's numeric packages) see the
layout they key on.  The suite closes with the self-check the CI gate
relies on: ``repro lint`` over the live tree reports **zero** active
(non-baselined, non-suppressed) findings.
"""

import json
import subprocess
import sys

import pytest

from repro.analysis import (
    counts,
    format_json,
    format_text,
    run_lint,
    write_baseline,
)
from repro.analysis.findings import Finding, parse_pragmas

#: Shared header so snippets parse like real modules.
_HEADER = "import numpy as np\nimport os\n\n"


def lint_snippet(tmp_path, rel, code, rules, baseline=False):
    """Write ``code`` at ``src/repro/<rel>`` under ``tmp_path``, lint it."""
    target = tmp_path / "src" / "repro" / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(_HEADER + code, encoding="utf-8")
    return run_lint(paths=["src"], ref_paths=[], rules=rules,
                    baseline=baseline, root=tmp_path)


def active(findings):
    return [f for f in findings if f.status == "active"]


class TestR1FloatReduceat:
    def test_flags_float_reduceat(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(v, s):\n    return np.add.reduceat(v, s)\n", {"R1"})
        assert [f.rule for f in active(findings)] == ["R1"]

    def test_integer_operand_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(s):\n"
            "    ones = np.ones(8, dtype=np.int32)\n"
            "    return np.add.reduceat(ones, s)\n", {"R1"})
        assert active(findings) == []

    def test_astype_cast_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(v, s):\n"
            "    return np.add.reduceat(v.astype(np.int64), s)\n", {"R1"})
        assert active(findings) == []

    def test_order_safe_ufunc_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(v, s):\n"
            "    return np.minimum.reduceat(v, s)\n", {"R1"})
        assert active(findings) == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(v, s):\n"
            "    # repro-lint: ok(R1): test fixture\n"
            "    return np.add.reduceat(v, s)\n", {"R1"})
        assert active(findings) == []
        assert [f.status for f in findings] == ["suppressed"]


class TestR2Determinism:
    def test_flags_unseeded_global_rng(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "engine/x.py",
            "def f():\n    return np.random.rand(4)\n", {"R2"})
        assert [f.rule for f in active(findings)] == ["R2"]

    def test_seeded_generator_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "engine/x.py",
            "def f():\n"
            "    return np.random.default_rng(7).random(4)\n", {"R2"})
        assert active(findings) == []

    def test_unseeded_default_rng_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "engine/x.py",
            "def f():\n    return np.random.default_rng()\n", {"R2"})
        assert len(active(findings)) == 1

    def test_flags_unsorted_glob(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "engine/x.py",
            "def f(root):\n"
            "    return [p for p in root.glob('*.json')]\n", {"R2"})
        assert [f.rule for f in active(findings)] == ["R2"]

    def test_sorted_glob_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "engine/x.py",
            "def f(root):\n"
            "    return sorted(root.glob('*.json'))\n", {"R2"})
        assert active(findings) == []

    def test_flags_array_over_set(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(s):\n    return np.asarray(set(s))\n", {"R2"})
        assert [f.rule for f in active(findings)] == ["R2"]

    def test_sorted_set_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(s):\n    return np.asarray(sorted(set(s)))\n", {"R2"})
        assert active(findings) == []

    def test_set_array_outside_numeric_packages_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "workloads/x.py",
            "def f(s):\n    return np.asarray(set(s))\n", {"R2"})
        assert active(findings) == []


class TestR3DtypeDrift:
    def test_flags_dtypeless_zeros_in_columnar_module(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/frameir.py",
            "def f():\n    return np.zeros(4)\n", {"R3"})
        assert [f.rule for f in active(findings)] == ["R3"]

    def test_explicit_dtype_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/frameir.py",
            "def f():\n    return np.zeros(4, dtype=np.int64)\n", {"R3"})
        assert active(findings) == []

    def test_non_columnar_module_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/other.py",
            "def f():\n    return np.zeros(4)\n", {"R3"})
        assert active(findings) == []

    def test_flags_bare_literal_in_concatenate(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "hwmodel/caches.py",
            "def f(c):\n"
            "    return np.concatenate(([0], np.cumsum(c)))\n", {"R3"})
        assert [f.rule for f in active(findings)] == ["R3"]

    def test_typed_literal_in_concatenate_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "hwmodel/caches.py",
            "def f(c, n):\n"
            "    return np.concatenate(([np.int64(n)], np.cumsum(c)))\n",
            {"R3"})
        assert active(findings) == []

    def test_baseline_grandfathers_finding(self, tmp_path):
        code = "def f():\n    return np.zeros(4)\n"
        findings = lint_snippet(tmp_path, "render/frameir.py", code, {"R3"})
        assert len(active(findings)) == 1
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        again = lint_snippet(tmp_path, "render/frameir.py", code, {"R3"},
                             baseline=baseline)
        assert active(again) == []
        assert [f.status for f in again] == ["baselined"]

    def test_baseline_survives_line_drift(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/frameir.py",
            "def f():\n    return np.zeros(4)\n", {"R3"})
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        shifted = "X = 1\nY = 2\n\n\ndef f():\n    return np.zeros(4)\n"
        again = lint_snippet(tmp_path, "render/frameir.py", shifted,
                             {"R3"}, baseline=baseline)
        assert active(again) == []


class TestR4Registry:
    def test_flags_unregistered_checkpoint(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "from repro import faults\n\n"
            "def f():\n    return faults.checkpoint('bogus.point')\n",
            {"R4"})
        assert [f.rule for f in active(findings)] == ["R4"]

    def test_registered_checkpoint_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "from repro import faults\n\n"
            "def f():\n    return faults.checkpoint('rasterize')\n", {"R4"})
        assert [f for f in active(findings)
                if f.path.endswith("x.py")] == []

    def test_flags_direct_environ_read(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f():\n    return os.environ.get('REPRO_IR', 'auto')\n",
            {"R4"})
        assert [f.rule for f in active(findings)] == ["R4"]

    def test_flags_environ_subscript(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f():\n    return os.environ['REPRO_COHERENCE']\n", {"R4"})
        assert len(active(findings)) == 1

    def test_flags_unregistered_knob_name(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "from repro import knobs\n\n"
            "def f():\n    return knobs.env('REPRO_NOPE')\n", {"R4"})
        assert [f.rule for f in active(findings)] == ["R4"]

    def test_registered_knob_read_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "from repro import knobs\n\n"
            "def f():\n    return knobs.env('REPRO_IR')\n", {"R4"})
        assert [f for f in active(findings)
                if f.path.endswith("x.py")] == []

    def test_non_repro_environ_read_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f():\n    return os.environ.get('HOME')\n", {"R4"})
        assert active(findings) == []


class TestR5Oracles:
    def test_flags_undeclared_mode_literal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(ir='bogus'):\n    return ir == 'also-bogus'\n", {"R5"})
        assert {f.rule for f in active(findings)} == {"R5"}
        assert len(active(findings)) == 2

    def test_declared_mode_literals_are_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(ir='auto', coherence='off'):\n"
            "    return ir in ('frameir', 'legacy')\n", {"R5"})
        assert [f for f in active(findings)
                if f.path.endswith("x.py")] == []

    def test_untested_oracle_symbol_flagged(self, tmp_path):
        # Defines a declared oracle symbol with no tests/ referencing it.
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def rasterize_splats_scalar():\n    return None\n", {"R5"})
        assert any("never exercised" in f.message
                   for f in active(findings))

    def test_live_tree_oracles_covered(self):
        findings = run_lint(rules={"R5"})
        assert active(findings) == []


class TestR6SharedState:
    _WRITER = ("_MEMO = {}\n\n"
               "def run_frames(tasks):\n    return list(tasks)\n\n"
               "def f(k, v):\n    _MEMO[k] = v\n")

    def test_flags_unlocked_global_write(self, tmp_path):
        findings = lint_snippet(tmp_path, "engine/x.py", self._WRITER,
                                {"R6"})
        assert [f.rule for f in active(findings)] == ["R6"]

    def test_locked_write_is_legal(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "engine/x.py",
            "import threading\n\n"
            "_MEMO = {}\n_LOCK = threading.RLock()\n\n"
            "def run_frames(tasks):\n    return list(tasks)\n\n"
            "def f(k, v):\n"
            "    with _LOCK:\n        _MEMO[k] = v\n", {"R6"})
        assert active(findings) == []

    def test_unreachable_module_ignored(self, tmp_path):
        # No run_frames definition/call and no import path to one.
        findings = lint_snippet(
            tmp_path, "workloads/x.py",
            "_MEMO = {}\n\ndef f(k, v):\n    _MEMO[k] = v\n", {"R6"})
        assert active(findings) == []

    def test_mutating_method_call_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "engine/x.py",
            "_SEEN = []\n\n"
            "def run_frames(tasks):\n    return list(tasks)\n\n"
            "def f(v):\n    _SEEN.append(v)\n", {"R6"})
        assert [f.rule for f in active(findings)] == ["R6"]

    def test_pragma_suppresses(self, tmp_path):
        code = self._WRITER.replace(
            "    _MEMO[k] = v",
            "    # repro-lint: ok(R6): test fixture\n    _MEMO[k] = v")
        findings = lint_snippet(tmp_path, "engine/x.py", code, {"R6"})
        assert active(findings) == []


class TestEngine:
    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="R99"):
            lint_snippet(tmp_path, "render/x.py", "X = 1\n", {"R99"})

    def test_finding_key_ignores_line_numbers(self):
        a = Finding("R1", "error", "src/x.py", 10, 0, "m", scope="f",
                    source="np.add.reduceat(v, s)")
        b = Finding("R1", "error", "src/x.py", 99, 4, "m", scope="f",
                    source="  np.add.reduceat(v,  s)  ")
        assert a.key() == b.key()

    def test_pragma_parser_multi_rule(self):
        pragmas = parse_pragmas(
            ["x = 1  # repro-lint: ok(R1, R6): both apply"])
        assert pragmas == {1: {"R1", "R6"}}

    def test_json_report_is_stable(self, tmp_path):
        code = "def f(v, s):\n    return np.add.reduceat(v, s)\n"
        first = format_json(lint_snippet(tmp_path, "render/x.py", code,
                                         {"R1"}))
        second = format_json(lint_snippet(tmp_path, "render/x.py", code,
                                          {"R1"}))
        assert first == second
        payload = json.loads(first)
        assert payload["counts"]["active"] == 1
        assert payload["findings"][0]["rule"] == "R1"

    def test_text_report_has_location_and_summary(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "render/x.py",
            "def f(v, s):\n    return np.add.reduceat(v, s)\n", {"R1"})
        text = format_text(findings)
        assert "src/repro/render/x.py:5" in text
        assert "1 active" in text


class TestLiveTree:
    def test_live_tree_has_zero_active_findings(self):
        """The CI gate: the committed tree lints clean."""
        findings = run_lint()
        assert active(findings) == [], format_text(findings)

    def test_cli_exit_codes(self):
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "lint"],
            capture_output=True, text=True)
        assert clean.returncode == 0, clean.stdout + clean.stderr

    def test_cli_json_round_trips(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--format", "json"],
            capture_output=True, text=True)
        payload = json.loads(out.stdout)
        assert payload["counts"]["active"] == 0
        assert set(payload["rules"]) == {"R1", "R2", "R3", "R4", "R5",
                                         "R6"}

    def test_cli_nonzero_on_new_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n\n"
            "def f(v, s):\n    return np.add.reduceat(v, s)\n",
            encoding="utf-8")
        run = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(bad)],
            capture_output=True, text=True)
        assert run.returncode == 1
        assert "R1" in run.stdout

    def test_counts_helper(self):
        findings = run_lint()
        summary = counts(findings)
        assert summary["active"] == 0
        assert set(summary) == {"active", "suppressed", "baselined"}

"""Golden flush-engine tests: batched vs scalar must agree bit-for-bit.

The batched flush-plan engine (:mod:`repro.hwmodel.flushplan`) replaces
~tens of thousands of per-flush Python calls with vectorised segment math
and exact-LRU cache replays.  These tests pin its contract: on real catalog
scenes, across all four hardware variants, every cycle count, every stat
counter, and every trace event must equal the retained scalar path exactly
— including draws with a warm shared CROP cache and with the TC timeout
rule enabled.
"""

import numpy as np
import pytest

from repro.core.vrpipe import VARIANTS, variant_config
from repro.gaussians.preprocess import preprocess
from repro.hwmodel.caches import LRUCache
from repro.hwmodel.pipeline import DrawWorkload, GraphicsPipeline
from repro.hwmodel.stats import UNIT_NAMES
from repro.hwmodel.trace import DrawTrace
from repro.render.fragstream import FragmentStream
from repro.render.splat_raster import rasterize_splats
from repro.workloads.catalog import build_scene, get_profile

SCENES = ("lego", "palace")

#: Every scene runs under both digestion engines: the FrameIR path and
#: the legacy sort-based oracle must drive bit-identical flush schedules
#: (CI additionally forces each mode process-wide via ``REPRO_IR``).
IR_MODES = ("frameir", "legacy")


@pytest.fixture(scope="module",
                params=[(scene, ir) for scene in SCENES for ir in IR_MODES],
                ids=lambda p: f"{p[0]}-{p[1]}")
def scene_stream(request):
    scene, ir = request.param
    profile = get_profile(scene)
    cloud = build_scene(profile, seed=0)
    camera = profile.camera()
    pre = preprocess(cloud, camera)
    return rasterize_splats(pre.splats, camera.width, camera.height, ir=ir)


def assert_stats_identical(a, b):
    """Every unit counter and every scalar stat must be exactly equal."""
    for name in UNIT_NAMES:
        assert a.units[name].items == b.units[name].items, name
        assert a.units[name].busy_cycles == b.units[name].busy_cycles, name
    for attr, value in vars(a).items():
        if attr == "units":
            continue
        assert value == getattr(b, attr), attr


def assert_traces_identical(a, b):
    assert len(a) == len(b)
    for ea, eb in zip(a.events, b.events):
        assert ea.as_row() == eb.as_row()


def draw_both_engines(stream, config, caches=(None, None)):
    """Draw with both engines; returns (batched, scalar) results + traces."""
    workload = DrawWorkload.from_stream(stream, config)
    trace_batched, trace_scalar = DrawTrace(), DrawTrace()
    batched = GraphicsPipeline(config).draw(
        workload, crop_cache=caches[0], trace=trace_batched,
        engine="batched")
    scalar = GraphicsPipeline(config).draw(
        workload, crop_cache=caches[1], trace=trace_scalar, engine="scalar")
    return batched, scalar, trace_batched, trace_scalar


class TestGoldenEquivalence:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_engines_identical(self, scene_stream, variant):
        cfg = variant_config(variant)
        batched, scalar, ta, tb = draw_both_engines(scene_stream, cfg)
        assert batched.cycles == scalar.cycles
        assert_stats_identical(batched.stats, scalar.stats)
        assert_traces_identical(ta, tb)
        # The draw actually exercised the flush machinery.
        assert batched.stats.tc_flushes() > 0
        assert len(ta) == batched.stats.tc_flushes()

    def test_qm_without_tgc(self, scene_stream):
        """The QM ablation (QRU pairing in raw draw order) is also exact."""
        cfg = variant_config("qm", qm_use_tgc=False)
        batched, scalar, ta, tb = draw_both_engines(scene_stream, cfg)
        assert_stats_identical(batched.stats, scalar.stats)
        assert_traces_identical(ta, tb)
        assert batched.stats.tgc_flush_full == 0

    def test_rgba8_format(self, scene_stream):
        """RGBA8 halves the CROP line footprint; the replay must follow."""
        cfg = variant_config("het+qm", color_format="rgba8")
        batched, scalar, *_ = draw_both_engines(scene_stream, cfg)
        assert_stats_identical(batched.stats, scalar.stats)


class TestWarmCropCache:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_draws_share_cache(self, scene_stream, variant):
        """Warm shared-CROP-cache draws stay exact per draw on every
        variant, and both engines leave the shared cache in the identical
        state (contents, LRU order and dirty bits) — the cross-frame
        handoff the trajectory engine's warm mode relies on."""
        cfg = variant_config(variant)
        cache_batched = LRUCache(cfg.crop_cache_kb * 1024,
                                 cfg.cache_line_bytes)
        cache_scalar = LRUCache(cfg.crop_cache_kb * 1024,
                                cfg.cache_line_bytes)
        for _ in range(2):
            batched, scalar, ta, tb = draw_both_engines(
                scene_stream, cfg, caches=(cache_batched, cache_scalar))
            assert_stats_identical(batched.stats, scalar.stats)
            assert_traces_identical(ta, tb)
        assert (list(cache_batched._lines.items())
                == list(cache_scalar._lines.items()))
        assert batched.stats.crop_cache_hits > 0


class TestTimeoutRule:
    def test_timeout_flushes_counted_separately(self, scene_stream):
        cfg = variant_config("het+qm", tc_timeout_quads=64)
        batched, scalar, ta, tb = draw_both_engines(scene_stream, cfg)
        assert_stats_identical(batched.stats, scalar.stats)
        assert_traces_identical(ta, tb)
        stats = batched.stats
        assert stats.tc_flush_timeout > 0
        # The trace's per-cause counts must match the stat split exactly:
        # timeouts are no longer folded into the end-of-draw count.
        reasons = ta.reasons()
        assert stats.tc_flush_timeout == reasons.get("timeout", 0)
        assert stats.tc_flush_final == reasons.get("final", 0)
        assert stats.tc_flushes() == len(ta)


class TestDegenerateDraws:
    def test_empty_stream(self):
        stream = FragmentStream(
            np.empty(0, np.int32), np.empty(0, np.int32),
            np.empty(0, np.int32), np.empty(0, np.float32),
            np.zeros((0, 3)), 32, 32)
        cfg = variant_config("het+qm")
        batched, scalar, ta, tb = draw_both_engines(stream, cfg)
        assert_stats_identical(batched.stats, scalar.stats)
        assert len(ta) == len(tb) == 0

    def test_odd_zcache_size_uses_line_replay(self, scene_stream):
        """A z-cache that holds a fractional number of tile groups forces
        the line-granular replay fallback; it must stay exact too."""
        cfg = variant_config("het", zcache_kb=3)
        batched, scalar, *_ = draw_both_engines(scene_stream, cfg)
        assert_stats_identical(batched.stats, scalar.stats)

    def test_unknown_engine_rejected(self, scene_stream):
        cfg = variant_config("baseline")
        workload = DrawWorkload.from_stream(scene_stream, cfg)
        with pytest.raises(ValueError, match="engine"):
            GraphicsPipeline(cfg).draw(workload, engine="warp")

"""Preprocessing orchestration and synthetic scene builders."""

import numpy as np
import pytest

from repro.gaussians import Camera, synthetic
from repro.gaussians.preprocess import preprocess


class TestPreprocess:
    def test_sorted_front_to_back(self, small_cloud, small_camera):
        pre = preprocess(small_cloud, small_camera)
        assert (np.diff(pre.splats.depths) >= 0).all()

    def test_visible_not_more_than_input(self, small_cloud, small_camera):
        pre = preprocess(small_cloud, small_camera)
        assert 0 < pre.n_visible <= pre.n_input

    def test_kept_indices_map_depths(self, small_cloud, small_camera):
        pre = preprocess(small_cloud, small_camera)
        cam_space = small_camera.to_camera_space(
            small_cloud.positions[pre.kept_indices])
        assert cam_space[:, 2] == pytest.approx(pre.splats.depths)

    def test_colors_populated(self, small_cloud, small_camera):
        pre = preprocess(small_cloud, small_camera)
        assert pre.splats.colors.shape == (pre.n_visible, 3)
        assert (pre.splats.colors >= 0).all()

    def test_type_checks(self, small_camera):
        with pytest.raises(TypeError):
            preprocess("not a cloud", small_camera)


class TestSyntheticBuilders:
    def test_blob_count_and_bounds(self):
        cloud = synthetic.make_blob(0, 100, center=(1, 2, 3), radius=0.5)
        assert len(cloud) == 100
        assert cloud.positions.mean(axis=0) == pytest.approx([1, 2, 3],
                                                             abs=0.3)

    def test_blob_deterministic(self):
        a = synthetic.make_blob(42, 50, center=(0, 0, 0), radius=1.0)
        b = synthetic.make_blob(42, 50, center=(0, 0, 0), radius=1.0)
        assert a.positions == pytest.approx(b.positions)

    def test_plane_is_flat(self):
        cloud = synthetic.make_plane(0, 200, center=(0, 0, 0),
                                     normal=(0, 0, 1), extent=1.0,
                                     thickness=0.01)
        assert np.abs(cloud.positions[:, 2]).max() < 0.06
        assert np.abs(cloud.positions[:, 0]).max() <= 1.0

    def test_plane_normal_alignment(self):
        """Splats on a plane are flattened along the normal."""
        cloud = synthetic.make_plane(0, 50, center=(0, 0, 0),
                                     normal=(0, 0, 1), extent=1.0,
                                     thickness=0.01)
        assert np.allclose(cloud.scales[:, 2], 0.01)

    def test_shell_radius(self):
        cloud = synthetic.make_shell(0, 300, center=(0, 0, 0), radius=2.0,
                                     thickness=0.02)
        r = np.linalg.norm(cloud.positions, axis=1)
        assert r.mean() == pytest.approx(2.0, abs=0.05)

    def test_layered_surfaces_layer_count(self):
        cloud = synthetic.make_layered_surfaces(
            0, 300, center=(0, 0, 0), extent=1.0, n_layers=3,
            layer_spacing=0.5, axis=(0, 0, 1))
        zs = cloud.positions[:, 2]
        # Three distinct depth clusters around -0.5, 0, +0.5.
        for target in (-0.5, 0.0, 0.5):
            assert (np.abs(zs - target) < 0.1).sum() > 50

    def test_layered_total_count(self):
        cloud = synthetic.make_layered_surfaces(
            0, 301, center=(0, 0, 0), extent=1.0, n_layers=4,
            layer_spacing=0.2)
        assert len(cloud) == 301

    def test_compose(self):
        a = synthetic.make_blob(0, 10, (0, 0, 0), 1.0)
        b = synthetic.make_blob(1, 20, (0, 0, 0), 1.0)
        assert len(synthetic.compose(a, b)) == 30

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            synthetic.make_blob(0, 0, (0, 0, 0), 1.0)

    def test_random_quaternions_unit(self):
        q = synthetic.random_quaternions(np.random.default_rng(0), 20)
        assert np.linalg.norm(q, axis=1) == pytest.approx(np.ones(20))

    def test_opacity_ranges_respected(self):
        cloud = synthetic.make_blob(0, 200, (0, 0, 0), 1.0,
                                    opacity_low=0.3, opacity_high=0.6)
        assert cloud.opacities.min() >= 0.3
        assert cloud.opacities.max() <= 0.6

"""Pinhole camera: transforms, look-at frames, orbits."""

import numpy as np
import pytest

from repro.gaussians.camera import Camera, orbit_viewpoints


class TestCameraBasics:
    def test_position_roundtrip(self):
        cam = Camera.look_at(eye=(1.0, 2.0, -3.0), target=(0, 0, 0))
        assert cam.position == pytest.approx([1.0, 2.0, -3.0])

    def test_rotation_is_orthonormal(self):
        cam = Camera.look_at(eye=(1, 0.5, -2), target=(0.2, 0, 0.3))
        eye3 = cam.rotation @ cam.rotation.T
        assert eye3 == pytest.approx(np.eye(3), abs=1e-12)

    def test_target_projects_to_center(self):
        cam = Camera.look_at(eye=(0, 0, -3), target=(0, 0, 0),
                             width=200, height=100)
        uv = cam.project(np.array([[0.0, 0.0, 0.0]]))
        assert uv[0] == pytest.approx([100.0, 50.0])

    def test_target_depth_positive(self):
        cam = Camera.look_at(eye=(2, 1, -3), target=(0, 0, 0))
        cam_space = cam.to_camera_space(np.array([[0.0, 0.0, 0.0]]))
        assert cam_space[0, 2] > 0

    def test_point_behind_is_nan(self):
        cam = Camera.look_at(eye=(0, 0, -3), target=(0, 0, 0))
        uv = cam.project(np.array([[0.0, 0.0, -10.0]]))
        assert np.isnan(uv).all()

    def test_fov_controls_focal(self):
        wide = Camera.look_at(eye=(0, 0, -3), target=(0, 0, 0),
                              fov_x_deg=90.0, width=200)
        narrow = Camera.look_at(eye=(0, 0, -3), target=(0, 0, 0),
                                fov_x_deg=30.0, width=200)
        assert wide.fx < narrow.fx

    def test_rejects_degenerate_lookat(self):
        with pytest.raises(ValueError, match="coincide"):
            Camera.look_at(eye=(1, 1, 1), target=(1, 1, 1))

    def test_rejects_parallel_up(self):
        with pytest.raises(ValueError, match="parallel"):
            Camera.look_at(eye=(0, 0, 0), target=(0, 1, 0), up=(0, 1, 0))

    def test_rejects_bad_clip_planes(self):
        with pytest.raises(ValueError, match="zfar"):
            Camera(np.eye(3), np.zeros(3), fx=100, fy=100, width=64,
                   height=64, znear=10.0, zfar=1.0)


class TestOrbit:
    def test_count_and_radius(self):
        cams = orbit_viewpoints(center=(0, 0, 0), radius=2.0, n_views=6)
        assert len(cams) == 6
        for cam in cams:
            horizontal = cam.position[[0, 2]]
            assert np.linalg.norm(horizontal) == pytest.approx(2.0)

    def test_all_look_at_center(self):
        cams = orbit_viewpoints(center=(1, 0, 2), radius=3.0, n_views=4,
                                height=0.5, width=128, img_height=128)
        for cam in cams:
            uv = cam.project(np.array([[1.0, 0.0, 2.0]]))
            assert uv[0] == pytest.approx([64.0, 64.0], abs=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            orbit_viewpoints((0, 0, 0), radius=-1, n_views=3)

"""Hardware early termination: stencil-MSB semantics and the oracle."""

import numpy as np
import pytest

from repro.core.het import (
    AlphaTestUnit,
    TerminationStencil,
    blend_with_het,
    termination_test_quads,
)


class TestTerminationStencil:
    def test_initially_unterminated(self):
        st = TerminationStencil(8, 8)
        assert not st.is_terminated(np.arange(8), np.zeros(8, int)).any()

    def test_mark_and_test(self):
        st = TerminationStencil(8, 8)
        st.mark_terminated(np.array([2]), np.array([3]))
        assert st.is_terminated(2, 3)
        assert not st.is_terminated(3, 3)
        assert st.terminated_count() == 1

    def test_msb_is_termination_bit(self):
        st = TerminationStencil(4, 4, stencil_bits=8)
        assert st.termination_bit == 0x80
        assert st.stencil_mask == 0x7F

    def test_stencil_test_coexists(self):
        """A masked stencil test must never observe the termination flag."""
        st = TerminationStencil(4, 4)
        st.write_stencil(1, 1, value=0x01, mask=0x01)
        st.mark_terminated(np.array([1]), np.array([1]))
        assert st.stencil_test(1, 1, reference=0x01, mask=0x01)
        assert st.is_terminated(1, 1)

    def test_stencil_write_cannot_clobber_flag(self):
        st = TerminationStencil(4, 4)
        st.mark_terminated(np.array([0]), np.array([0]))
        st.write_stencil(0, 0, value=0x00, mask=0xFF)
        assert st.is_terminated(0, 0)

    def test_smaller_stencil_width(self):
        st = TerminationStencil(4, 4, stencil_bits=4)
        assert st.termination_bit == 0x08

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            TerminationStencil(4, 4, stencil_bits=9)


class TestAlphaTestUnit:
    def test_fires_on_crossing(self):
        unit = AlphaTestUnit(0.996)
        assert unit.check(0.9, 0.997)

    def test_silent_below(self):
        unit = AlphaTestUnit(0.996)
        assert not unit.check(0.5, 0.9)

    def test_double_sided_no_refire(self):
        """Already-terminated pixels must not re-signal (the paper's
        bandwidth-contention argument for checking the old alpha)."""
        unit = AlphaTestUnit(0.996)
        assert not unit.check(0.997, 0.999)
        assert unit.signals_sent == 0

    def test_vectorised_count(self):
        unit = AlphaTestUnit(0.996)
        fired = unit.check(np.array([0.9, 0.999, 0.99]),
                           np.array([0.999, 0.9999, 0.991]))
        assert fired.tolist() == [True, False, False]
        assert unit.signals_sent == 1

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            AlphaTestUnit(0.0)


class TestTerminationTestQuads:
    def test_quad_survives_with_live_pixel(self):
        st = TerminationStencil(8, 8)
        # Terminate 3 of 4 pixels of quad (0, 0).
        st.mark_terminated(np.array([0, 1, 0]), np.array([0, 0, 1]))
        assert termination_test_quads(st, np.array([0]), np.array([0]))[0]

    def test_quad_dies_fully_terminated(self):
        st = TerminationStencil(8, 8)
        st.mark_terminated(np.array([0, 1, 0, 1]), np.array([0, 0, 1, 1]))
        assert not termination_test_quads(st, np.array([0]), np.array([0]))[0]

    def test_edge_quad_clipped(self):
        st = TerminationStencil(3, 3)  # quads at the edge overhang
        st.mark_terminated(np.array([2]), np.array([2]))
        # Quad (1,1) covers pixels (2..3, 2..3) clipped to (2,2) only.
        assert not termination_test_quads(st, np.array([1]), np.array([1]))[0]


class TestOracleEquivalence:
    def test_matches_vectorised_masks(self, deep_stream):
        """The sequential unit-level oracle must agree with the
        vectorised perfect-ET masks used by the pipeline model."""
        image, accum, stats = blend_with_het(deep_stream)
        ref_image, ref_alpha = deep_stream.blend_image(early_term=True)
        np.testing.assert_allclose(image, ref_image, atol=1e-9)
        np.testing.assert_allclose(accum, ref_alpha, atol=1e-9)
        assert stats["blended"] == int(deep_stream.et_survivor_mask().sum())

    def test_termination_updates_once_per_pixel(self, deep_stream):
        _, alpha, stats = blend_with_het(deep_stream)
        assert stats["termination_updates"] == stats["terminated_pixels"]
        assert stats["terminated_pixels"] == int((alpha >= 0.996).sum())

    def test_discard_accounting(self, deep_stream):
        _, _, stats = blend_with_het(deep_stream)
        total = (stats["blended"] + stats["discarded_terminated"]
                 + stats["discarded_pruned"])
        assert total == len(deep_stream)

    def test_type_check(self):
        with pytest.raises(TypeError):
            blend_with_het("stream")

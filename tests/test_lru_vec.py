"""Fuzz/property tests: vectorized exact-LRU engine vs the scalar oracle.

The vectorized engine (:func:`repro.hwmodel.caches.replay_tag_stream`, used
by ``LRUCache.access_segmented``) must agree with the scalar
``access_line``/``flush`` loop on *every* observable: per-segment miss
counts, the hit/miss/eviction/writeback counters, and the final cache
contents in exact LRU order with exact dirty bits — including warm-cache
handoff between two streams.  Random tag streams across several regimes
(uniform, cyclic, sorted, heavy-tailed, dwelling) exercise the certificate
tiers and the exact scan rounds alike.
"""

import zlib

import numpy as np
import pytest

from repro.hwmodel import caches
from repro.hwmodel.caches import LRUCache, replay_tag_stream


def style_seed(style, salt=0):
    """Process-independent fuzz seed (``hash()`` varies per interpreter)."""
    return zlib.crc32(f"{style}:{salt}".encode()) & 0x7FFFFFFF


def random_stream(rng, style, n, universe):
    if style == "uniform":
        return rng.integers(0, universe, n).astype(np.int64)
    if style == "cyclic":
        jitter = rng.integers(0, 2, n)
        return ((np.arange(n) % universe) + jitter).astype(np.int64)
    if style == "sorted":
        return np.sort(rng.integers(0, universe, n)).astype(np.int64)
    if style == "pareto":
        return np.minimum((rng.pareto(0.7, n) * 2).astype(np.int64), universe)
    if style == "dwell":
        # Long dwells on few tags interrupted by sweeps: big reuse windows
        # with low distinct counts — the regime that defeats the cheap
        # certificates and forces the exact scan rounds.
        chunks = []
        remaining = n
        while remaining > 0:
            if rng.random() < 0.5:
                k = int(rng.integers(1, 4))
                dwell_tags = rng.integers(0, universe, k)
                reps = int(rng.integers(1, remaining + 1))
                chunks.append(rng.choice(dwell_tags, size=reps))
            else:
                reps = int(rng.integers(1, min(remaining, universe) + 1))
                chunks.append(np.arange(reps) % universe)
            remaining -= len(chunks[-1])
        return np.concatenate(chunks)[:n].astype(np.int64)
    raise AssertionError(style)


def random_splits(rng, n):
    n_segments = int(rng.integers(1, 8))
    if n == 0:
        return np.zeros(n_segments + 1, dtype=np.int64)
    cuts = np.sort(rng.integers(0, n + 1, n_segments - 1))
    return np.concatenate(([0], cuts, [n])).astype(np.int64)


def scalar_replay(cache, tags, splits, write):
    out = []
    for s, e in zip(splits[:-1], splits[1:]):
        out.append(cache.access_many(tags[s:e], write=write))
    return np.asarray(out, dtype=np.int64)


def assert_caches_equal(vec, ref):
    assert vec.hits == ref.hits
    assert vec.misses == ref.misses
    assert vec.evictions == ref.evictions
    assert vec.writebacks == ref.writebacks
    assert list(vec._lines.items()) == list(ref._lines.items())


STYLES = ("uniform", "cyclic", "sorted", "pareto", "dwell")


class TestVectorizedReplayFuzz:
    @pytest.mark.parametrize("style", STYLES)
    def test_cold_replay_matches_scalar(self, style):
        rng = np.random.default_rng(style_seed(style))
        for trial in range(25):
            n_lines = int(rng.integers(1, 40))
            universe = int(rng.integers(1, 90))
            n = int(rng.integers(0, 1500))
            write = bool(rng.integers(0, 2))
            tags = random_stream(rng, style, n, universe)
            splits = random_splits(rng, n)
            vec = LRUCache(n_lines * 64, 64)
            ref = LRUCache(n_lines * 64, 64)
            got = vec.access_segmented(tags, splits, write=write,
                                       engine="vector")
            want = scalar_replay(ref, tags, splits, write)
            assert got.tolist() == want.tolist(), (style, trial)
            assert_caches_equal(vec, ref)

    @pytest.mark.parametrize("style", STYLES)
    def test_warm_handoff_between_two_streams(self, style):
        """Replay stream A, hand the warm cache to stream B: the second
        vectorized replay must start from the exact warm state (LRU order
        and dirty bits) and still match the scalar oracle, and a final
        flush must count the same dirty writebacks."""
        rng = np.random.default_rng(style_seed(style, 1))
        for trial in range(15):
            n_lines = int(rng.integers(1, 24))
            universe = int(rng.integers(1, 60))
            vec = LRUCache(n_lines * 64, 64)
            ref = LRUCache(n_lines * 64, 64)
            for phase in range(2):
                n = int(rng.integers(0, 900))
                write = bool(rng.integers(0, 2))
                tags = random_stream(rng, style, n, universe)
                splits = random_splits(rng, n)
                got = vec.access_segmented(tags, splits, write=write,
                                           engine="vector")
                want = scalar_replay(ref, tags, splits, write)
                assert got.tolist() == want.tolist(), (style, trial, phase)
                assert_caches_equal(vec, ref)
            vec.flush()
            ref.flush()
            assert vec.writebacks == ref.writebacks

    def test_mixed_scalar_then_vector(self):
        """Scalar accesses may interleave with vectorized replays (the
        pipeline mixes access_line/access_many with access_segmented)."""
        rng = np.random.default_rng(99)
        vec = LRUCache(8 * 64, 64)
        ref = LRUCache(8 * 64, 64)
        for round_ in range(6):
            loose = rng.integers(0, 30, int(rng.integers(0, 40)))
            for t in loose.tolist():
                w = bool(rng.integers(0, 2))
                assert vec.access_line(t, write=w) == ref.access_line(t, write=w)
            tags = random_stream(rng, "uniform", 300, 25)
            splits = random_splits(rng, 300)
            got = vec.access_segmented(tags, splits, write=True,
                                       engine="vector")
            want = scalar_replay(ref, tags, splits, True)
            assert got.tolist() == want.tolist()
            assert_caches_equal(vec, ref)


class TestEngineDispatch:
    def test_auto_uses_scalar_for_short_streams(self, monkeypatch):
        calls = []
        real = caches.replay_tag_stream
        monkeypatch.setattr(caches, "replay_tag_stream",
                            lambda *a, **k: calls.append(1) or real(*a, **k))
        cache = LRUCache(4 * 64, 64)
        cache.access_segmented(np.arange(10), np.asarray([0, 10]))
        assert not calls
        cache.access_segmented(
            np.arange(caches.VECTOR_MIN_STREAM) % 7,
            np.asarray([0, caches.VECTOR_MIN_STREAM]))
        assert calls

    def test_budget_exhaustion_falls_back_to_scalar(self, monkeypatch):
        """With a zero scan budget the vector engine bails; results must
        still be exact via the scalar fallback."""
        monkeypatch.setattr(caches, "SCAN_BUDGET_FACTOR", -10 ** 9)
        rng = np.random.default_rng(5)
        tags = random_stream(rng, "dwell", 800, 12)
        splits = random_splits(rng, 800)
        vec = LRUCache(4 * 64, 64)
        ref = LRUCache(4 * 64, 64)
        got = vec.access_segmented(tags, splits, write=True, engine="vector")
        want = scalar_replay(ref, tags, splits, True)
        assert got.tolist() == want.tolist()
        assert_caches_equal(vec, ref)

    def test_rejects_unknown_engine(self):
        cache = LRUCache(4 * 64, 64)
        with pytest.raises(ValueError, match="engine"):
            cache.access_segmented(np.asarray([1]), np.asarray([0, 1]),
                                   engine="warp")

    def test_replay_tag_stream_empty_warm(self):
        hit, counters, items = replay_tag_stream(
            np.asarray([1, 2, 1, 3], dtype=np.int64), 2, [], True)
        assert hit.tolist() == [False, False, True, False]
        assert counters == (1, 3, 1, 1)
        assert items == [(1, True), (3, True)]

"""Pipeline simulator: integration invariants across the four variants."""

import numpy as np
import pytest

from repro.core.het import blend_with_het
from repro.core.vrpipe import run_all_variants, run_variant
from repro.hwmodel.caches import LRUCache
from repro.hwmodel.config import jetson_agx_orin
from repro.hwmodel.pipeline import DrawWorkload, GraphicsPipeline


@pytest.fixture(scope="module")
def variant_results(deep_stream):
    return run_all_variants(deep_stream)


class TestDrawWorkload:
    def test_from_stream(self, deep_stream):
        wl = DrawWorkload.from_stream(deep_stream, jetson_agx_orin())
        assert wl.n_prims == deep_stream.prim_colors.shape[0]
        assert wl.group_n_quads.sum() == len(wl.quads)
        # Raster-tile counts bounded by 4 per (prim, tile) group.
        assert wl.group_n_rtiles.max() <= 4
        assert wl.group_n_rtiles.min() >= 1

    def test_groups_cover_all_quads(self, deep_stream):
        wl = DrawWorkload.from_stream(deep_stream, jetson_agx_orin())
        covered = 0
        for prim, (s, e) in wl.prim_group_ranges.items():
            covered += int(wl.group_n_quads[s:e].sum())
            assert (wl.group_prim[s:e] == prim).all()
        assert covered == len(wl.quads)

    def test_terminated_pixels_counted(self, deep_stream):
        wl = DrawWorkload.from_stream(deep_stream, jetson_agx_orin())
        _, alpha, _ = blend_with_het(deep_stream)
        assert wl.n_terminated_pixels == int((alpha >= 0.996).sum())

    def test_type_check(self):
        with pytest.raises(TypeError):
            GraphicsPipeline().draw("stream")


class TestVariantOrdering:
    def test_speedup_ordering(self, variant_results):
        cycles = {k: v.cycles for k, v in variant_results.items()}
        assert cycles["het+qm"] < cycles["het"] < cycles["baseline"]
        assert cycles["qm"] < cycles["baseline"]

    def test_counts_ordering(self, variant_results):
        base = variant_results["baseline"].stats
        het = variant_results["het"].stats
        qm = variant_results["qm"].stats
        both = variant_results["het+qm"].stats
        assert het.fragments_blended < base.fragments_blended
        assert qm.quads_to_crop < base.quads_to_crop
        assert both.quads_to_crop < het.quads_to_crop
        # QM is colour-exact but moves work into the SMs: the ROP blends
        # merged unions, i.e. *fewer* fragments than the baseline.
        assert qm.fragments_blended < base.fragments_blended

    def test_quads_rasterized_variant_invariant(self, variant_results):
        counts = {k: v.stats.quads_rasterized
                  for k, v in variant_results.items()}
        assert len(set(counts.values())) == 1

    def test_merges_only_with_qm(self, variant_results):
        assert variant_results["baseline"].stats.quads_merged_pairs == 0
        assert variant_results["het"].stats.quads_merged_pairs == 0
        assert variant_results["qm"].stats.quads_merged_pairs > 0

    def test_zrop_only_with_het(self, variant_results):
        assert variant_results["baseline"].stats.zrop_tests == 0
        assert variant_results["het"].stats.zrop_tests > 0
        assert variant_results["het"].stats.termination_updates > 0


class TestCountConsistency:
    def test_baseline_blend_counts_match_stream(self, deep_stream,
                                                variant_results):
        stats = variant_results["baseline"].stats
        assert stats.fragments_blended == int(deep_stream.unpruned.sum())

    def test_het_blend_counts_match_lagged_mask(self, deep_stream,
                                                variant_results):
        cfg = variant_results["het"].config
        expected = int(deep_stream.het_blended_mask(
            cfg.termination_alpha, cfg.het_inflight_lag).sum())
        assert variant_results["het"].stats.fragments_blended == expected

    def test_shaded_ge_blended(self, variant_results):
        for res in variant_results.values():
            assert res.stats.fragments_shaded >= res.stats.fragments_blended

    def test_qm_merge_arithmetic(self, variant_results):
        stats = variant_results["qm"].stats
        # Each merged pair removes at most one quad from the CROP stream.
        base = variant_results["baseline"].stats
        assert (base.quads_to_crop - stats.quads_to_crop
                <= stats.quads_merged_pairs)

    def test_utilization_in_range(self, variant_results):
        for res in variant_results.values():
            for name, u in res.utilization().items():
                assert 0.0 <= u <= 1.0, (name, u)

    def test_rop_is_bottleneck_baseline(self, variant_results):
        assert variant_results["baseline"].stats.bottleneck() in ("crop",
                                                                  "prop")


class TestDeterminism:
    def test_same_stream_same_cycles(self, deep_stream):
        a = run_variant(deep_stream, "het+qm")
        b = run_variant(deep_stream, "het+qm")
        assert a.cycles == b.cycles
        assert a.stats.quads_merged_pairs == b.stats.quads_merged_pairs


class TestSharedCache:
    def test_warm_cache_second_draw_hits(self, small_stream):
        cfg = jetson_agx_orin()
        cache = LRUCache(cfg.crop_cache_kb * 1024, cfg.cache_line_bytes)
        pipe = GraphicsPipeline(cfg)
        first = pipe.draw(small_stream, crop_cache=cache)
        second = pipe.draw(small_stream, crop_cache=cache)
        # 96x96 RGBA16F framebuffer = 72 KB > 16 KB: it cannot all fit, but
        # re-drawing must not miss more than the first cold pass.
        assert second.stats.crop_cache_misses <= first.stats.crop_cache_misses

    def test_time_ms_positive(self, small_stream):
        res = GraphicsPipeline(jetson_agx_orin()).draw(small_stream)
        assert res.time_ms() > 0
        assert "cycles" in repr(res)


class TestEmptyDraw:
    def test_empty_stream(self):
        from repro.render.fragstream import FragmentStream
        stream = FragmentStream(
            np.empty(0, np.int32), np.empty(0, np.int32),
            np.empty(0, np.int32), np.empty(0, np.float32),
            np.zeros((0, 3)), 32, 32)
        res = GraphicsPipeline(jetson_agx_orin()).draw(stream)
        assert res.stats.quads_to_crop == 0
        assert res.cycles > 0  # fill cycles only

"""GaussianCloud container and covariance construction."""

import numpy as np
import pytest

from repro.gaussians.gaussian import GaussianCloud, quaternion_to_rotation


def _simple_cloud(n=4, sh_degree=0):
    k = (sh_degree + 1) ** 2
    return GaussianCloud(
        positions=np.zeros((n, 3)),
        scales=np.full((n, 3), 0.1),
        quaternions=np.tile([1.0, 0, 0, 0], (n, 1)),
        opacities=np.full(n, 0.5),
        sh=np.zeros((n, k, 3)),
    )


class TestQuaternionToRotation:
    def test_identity(self):
        rot = quaternion_to_rotation(np.array([[1.0, 0, 0, 0]]))
        assert rot[0] == pytest.approx(np.eye(3))

    def test_normalises_input(self):
        rot = quaternion_to_rotation(np.array([[2.0, 0, 0, 0]]))
        assert rot[0] == pytest.approx(np.eye(3))

    def test_z_rotation_90(self):
        half = np.sqrt(0.5)
        rot = quaternion_to_rotation(np.array([[half, 0, 0, half]]))
        v = rot[0] @ np.array([1.0, 0, 0])
        assert v == pytest.approx([0, 1, 0], abs=1e-12)

    def test_orthonormal_for_random(self):
        rng = np.random.default_rng(3)
        q = rng.normal(size=(10, 4))
        rots = quaternion_to_rotation(q)
        for r in rots:
            assert r @ r.T == pytest.approx(np.eye(3), abs=1e-12)
            assert np.linalg.det(r) == pytest.approx(1.0)

    def test_rejects_zero_quaternion(self):
        with pytest.raises(ValueError):
            quaternion_to_rotation(np.zeros((1, 4)))


class TestGaussianCloud:
    def test_len(self):
        assert len(_simple_cloud(5)) == 5

    def test_covariance_isotropic(self):
        cloud = _simple_cloud(2)
        cov = cloud.covariances()
        assert cov[0] == pytest.approx(0.01 * np.eye(3))

    def test_covariance_rotation_invariant_trace(self):
        rng = np.random.default_rng(0)
        cloud = GaussianCloud(
            positions=np.zeros((3, 3)),
            scales=np.tile([0.1, 0.2, 0.3], (3, 1)),
            quaternions=rng.normal(size=(3, 4)),
            opacities=np.full(3, 0.5),
            sh=np.zeros((3, 1, 3)),
        )
        for cov in cloud.covariances():
            assert np.trace(cov) == pytest.approx(0.01 + 0.04 + 0.09)
            # Symmetric positive semi-definite.
            assert cov == pytest.approx(cov.T)
            assert np.linalg.eigvalsh(cov).min() >= -1e-12

    def test_subset(self):
        cloud = _simple_cloud(5)
        sub = cloud.subset(np.array([0, 2]))
        assert len(sub) == 2

    def test_concatenate(self):
        merged = GaussianCloud.concatenate([_simple_cloud(2), _simple_cloud(3)])
        assert len(merged) == 5

    def test_concatenate_rejects_mixed_degree(self):
        with pytest.raises(ValueError, match="mismatched"):
            GaussianCloud.concatenate(
                [_simple_cloud(2, sh_degree=0), _simple_cloud(2, sh_degree=1)])

    def test_rejects_bad_opacity(self):
        with pytest.raises(ValueError, match="opacities"):
            GaussianCloud(np.zeros((1, 3)), np.ones((1, 3)),
                          [[1, 0, 0, 0]], [1.5], np.zeros((1, 1, 3)))

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError, match="scales"):
            GaussianCloud(np.zeros((1, 3)), np.zeros((1, 3)),
                          [[1, 0, 0, 0]], [0.5], np.zeros((1, 1, 3)))

    def test_rejects_bad_sh_count(self):
        with pytest.raises(ValueError, match="coefficient count"):
            GaussianCloud(np.zeros((1, 3)), np.ones((1, 3)),
                          [[1, 0, 0, 0]], [0.5], np.zeros((1, 3, 3)))

    def test_sh_degree_property(self):
        assert _simple_cloud(1, sh_degree=2).sh_degree == 2

    def test_extent(self):
        cloud = GaussianCloud(
            positions=[[0, 0, 0], [3, 4, 0]], scales=np.ones((2, 3)),
            quaternions=np.tile([1, 0, 0, 0], (2, 1)),
            opacities=[0.5, 0.5], sh=np.zeros((2, 1, 3)))
        assert cloud.extent() == pytest.approx(5.0)

"""Reference renderer: ground-truth images and error bounds."""

import numpy as np
import pytest

from repro.gaussians.camera import Camera
from repro.render.reference import render_reference, render_stream


class TestRenderReference:
    def test_produces_image(self, small_cloud, small_camera):
        res = render_reference(small_cloud, small_camera)
        assert res.image.shape == (96, 96, 3)
        assert res.alpha.shape == (96, 96)
        assert res.image.min() >= 0.0
        assert res.alpha.max() <= 1.0 + 1e-9

    def test_center_has_content(self, small_cloud, small_camera):
        res = render_reference(small_cloud, small_camera)
        assert res.alpha[40:56, 40:56].mean() > 0.3

    def test_early_term_error_bound(self, deep_cloud, deep_camera):
        exact = render_reference(deep_cloud, deep_camera)
        et = render_reference(deep_cloud, deep_camera, early_term=True)
        # Residual transmittance bound: 1 - 0.996.
        assert np.abs(exact.image - et.image).max() <= 0.004 + 1e-9

    def test_early_term_high_psnr(self, deep_cloud, deep_camera):
        exact = render_reference(deep_cloud, deep_camera)
        et = render_reference(deep_cloud, deep_camera, early_term=True)
        assert exact.psnr_against(et.image) > 50.0

    def test_psnr_identical_inf(self, small_cloud, small_camera):
        res = render_reference(small_cloud, small_camera)
        assert res.psnr_against(res.image) == float("inf")

    def test_psnr_shape_check(self, small_cloud, small_camera):
        res = render_reference(small_cloud, small_camera)
        with pytest.raises(ValueError):
            res.psnr_against(np.zeros((2, 2, 3)))

    def test_render_stream_matches(self, small_cloud, small_camera):
        res = render_reference(small_cloud, small_camera)
        image, alpha = render_stream(res.stream)
        assert image == pytest.approx(res.image)

    def test_type_checks(self, small_camera):
        with pytest.raises(TypeError):
            render_reference("cloud", small_camera)
        with pytest.raises(TypeError):
            render_stream("stream")

    def test_empty_scene(self):
        from repro.gaussians.gaussian import GaussianCloud
        cam = Camera.look_at(eye=(0, 0, -1), target=(0, 0, 0), width=32,
                             height=32)
        res = render_reference(GaussianCloud.empty(), cam)
        assert res.image.sum() == 0.0

"""Splat rasterisation: coverage, alpha evaluation, stream integrity."""

import numpy as np
import pytest

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.projection import ALPHA_EPS, project_gaussians
from repro.render.splat_raster import rasterize_splats, splat_coverage_counts


def _splats(positions, cam, opacity=0.9, scale=0.06):
    positions = np.atleast_2d(positions)
    n = positions.shape[0]
    cloud = GaussianCloud(
        positions=positions, scales=np.full((n, 3), scale),
        quaternions=np.tile([1.0, 0, 0, 0], (n, 1)),
        opacities=np.full(n, opacity),
        sh=np.zeros((n, 1, 3)))
    return project_gaussians(cloud, cam,
                             colors=np.tile([0.5, 0.5, 0.5], (n, 1)))


@pytest.fixture
def cam():
    return Camera.look_at(eye=(0, 0, -2), target=(0, 0, 0), width=96,
                          height=96)


class TestRasterize:
    def test_fragments_near_center(self, cam):
        stream = rasterize_splats(_splats([0, 0, 0], cam), 96, 96)
        assert len(stream) > 0
        assert abs(stream.x.mean() - 48) < 2
        assert abs(stream.y.mean() - 48) < 2

    def test_alpha_peak_at_center(self, cam):
        stream = rasterize_splats(_splats([0, 0, 0], cam), 96, 96)
        peak = stream.alphas.argmax()
        assert abs(stream.x[peak] - 48) <= 1
        assert abs(stream.y[peak] - 48) <= 1
        assert stream.alphas.max() <= 0.99

    def test_emission_order_is_primitive_major(self, cam):
        stream = rasterize_splats(
            _splats([[0, 0, 0], [0.2, 0.1, 0.5]], cam), 96, 96)
        assert (np.diff(stream.prim_ids) >= 0).all()

    def test_offscreen_clipped(self, cam):
        stream = rasterize_splats(_splats([5.0, 0, 0.0], cam), 96, 96)
        assert len(stream) == 0

    def test_partial_clip(self, cam):
        # A splat on the right edge rasterises only on-screen pixels.
        stream = rasterize_splats(_splats([1.17, 0, 0.0], cam), 96, 96)
        if len(stream):
            assert stream.x.max() <= 95

    def test_max_fragments_guard(self, cam):
        with pytest.raises(MemoryError):
            rasterize_splats(_splats([0, 0, 0], cam, scale=0.5), 96, 96,
                             max_fragments=10)

    def test_alpha_pruning_flags_exist(self, cam):
        stream = rasterize_splats(_splats([0, 0, 0], cam), 96, 96)
        # The OBB boundary sits at alpha == 1/255; corner fragments fall
        # below it and must be flagged pruned (but kept in the stream).
        assert (~stream.unpruned).sum() > 0
        assert stream.alphas[~stream.unpruned].max() < ALPHA_EPS

    def test_empty_splats(self, cam):
        splats = _splats([0, 0, 0], cam).subset(np.array([], dtype=int))
        stream = rasterize_splats(splats, 96, 96)
        assert len(stream) == 0

    def test_type_check(self):
        with pytest.raises(TypeError):
            rasterize_splats("nope", 96, 96)


class TestCoverageCounts:
    def test_matches_rasterizer_roughly(self, cam):
        splats = _splats([[0, 0, 0], [0.2, 0, 0.3]], cam)
        counts = splat_coverage_counts(splats, 96, 96)
        stream = rasterize_splats(splats, 96, 96)
        actual = np.bincount(stream.prim_ids, minlength=2)
        for est, act in zip(counts, actual):
            assert est == pytest.approx(act, rel=0.5)

    def test_offscreen_zero(self, cam):
        counts = splat_coverage_counts(_splats([9, 9, 0], cam), 96, 96)
        assert counts[0] == 0


class TestRasterJobs:
    def test_jobs_streams_bit_identical(self, cam, monkeypatch):
        from repro.render import splat_raster

        # Shrink the block budget so the stream spans many blocks and the
        # thread pool actually interleaves them.
        monkeypatch.setattr(splat_raster, "_FRAGMENT_BLOCK", 1024)
        rng = np.random.default_rng(3)
        positions = rng.uniform(-0.6, 0.6, (200, 3))
        splats = _splats(positions, cam, scale=0.05)
        serial = rasterize_splats(splats, 96, 96)
        threaded = rasterize_splats(splats, 96, 96, jobs=4)
        assert np.array_equal(serial.prim_ids, threaded.prim_ids)
        assert np.array_equal(serial.x, threaded.x)
        assert np.array_equal(serial.y, threaded.y)
        assert np.array_equal(serial.alphas.view(np.uint32),
                              threaded.alphas.view(np.uint32))

"""Fuzz/property tests: FrameIR digestion vs the legacy sort-based oracle.

The FrameIR path (:mod:`repro.render.frameir`) derives the quad table, the
(prim, tile) group ranges and the (prim, grid) pair structures from the
rasteriser's row intervals with no fragment-level sort; the legacy path —
retained behind ``ir="legacy"`` — re-sorts the fragment stream.  Both must
agree **bit for bit** on every observable: every quad-table column (meta
and aggregates, for every threshold/lag in use), the group and pair
structures the flush planner iterates, the HET termination sets, and the
simulated draws themselves.  Random splat scenes plus the library's five
digestion regimes — empty, single-pixel, max_fragments-clamped,
HET-terminated, warm handoff — pin the equivalence the same way the
scalar-oracle fuzz suites de-risked the LRU and flush engines.
"""

import zlib

import numpy as np
import pytest

from repro.core.vrpipe import variant_config
from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.preprocess import preprocess
from repro.gaussians.projection import project_gaussians
from repro.hwmodel.pipeline import DrawWorkload, GraphicsPipeline
from repro.render.frameir import FrameIR, resolve_ir
from repro.render.splat_raster import rasterize_splats

TABLE_COLUMNS = (
    "prim_ids", "qx", "qy", "tile_ids", "grid_ids", "qpos",
    "n_fragments", "n_unpruned", "n_et_blended", "n_unterminated",
    "mask_unpruned", "mask_et", "mask_unterminated",
)

GROUP_COLUMNS = (
    "group_starts", "group_ends", "group_prim", "group_tile", "group_grid",
    "group_n_quads", "group_n_rtiles",
)


def fuzz_seed(tag, salt=0):
    """Process-independent fuzz seed (``hash()`` varies per interpreter)."""
    return zlib.crc32(f"{tag}:{salt}".encode()) & 0x7FFFFFFF


def random_cloud(rng, n, spread=1.1, scale_low=0.004, scale_high=0.16,
                 opacity_low=0.05, opacity_high=1.0):
    quats = rng.normal(size=(n, 4))
    quats /= np.linalg.norm(quats, axis=1, keepdims=True)
    scales = np.exp(rng.uniform(np.log(scale_low), np.log(scale_high),
                                size=(n, 3)))
    return GaussianCloud(
        positions=rng.uniform(-spread, spread, size=(n, 3)) * [1, 1, 0.6],
        scales=scales, quaternions=quats,
        opacities=rng.uniform(opacity_low, opacity_high, n),
        sh=np.zeros((n, 1, 3)))


def camera(width=112, height=96):
    return Camera.look_at(eye=(0, 0.1, -2.1), target=(0, 0, 0),
                          width=width, height=height)


def assert_tables_identical(table_ir, table_legacy):
    assert len(table_ir) == len(table_legacy)
    for name in TABLE_COLUMNS:
        a, b = getattr(table_ir, name), getattr(table_legacy, name)
        assert a.dtype == b.dtype, name
        np.testing.assert_array_equal(a, b, err_msg=name)


def assert_workloads_identical(wl_ir, wl_legacy):
    for name in GROUP_COLUMNS:
        np.testing.assert_array_equal(getattr(wl_ir, name),
                                      getattr(wl_legacy, name), err_msg=name)
    assert wl_ir.prim_group_ranges == wl_legacy.prim_group_ranges
    assert wl_ir.prims_with_quads == wl_legacy.prims_with_quads
    # (prim, grid) pair structures the TGC flush planner consumes.
    np.testing.assert_array_equal(wl_ir.pair_prim, wl_legacy.pair_prim)
    np.testing.assert_array_equal(wl_ir.pair_grid, wl_legacy.pair_grid)
    assert set(wl_ir.prim_grids) == set(wl_legacy.prim_grids)
    for prim, grids in wl_ir.prim_grids.items():
        np.testing.assert_array_equal(grids, wl_legacy.prim_grids[prim])
    # Termination sets (HET stencil updates).
    assert wl_ir.n_terminated_pixels == wl_legacy.n_terminated_pixels
    np.testing.assert_array_equal(wl_ir.terminated_stencil_tags,
                                  wl_legacy.terminated_stencil_tags)


def both_workloads(stream, config):
    return (DrawWorkload.from_stream(stream, config, ir="frameir"),
            DrawWorkload.from_stream(stream, config, ir="legacy"))


class TestFrameIRFuzz:
    def test_random_scenes_match_oracle(self):
        rng = np.random.default_rng(fuzz_seed("frameir"))
        for trial in range(8):
            n = int(rng.integers(20, 220))
            cloud = random_cloud(rng, n)
            cam = camera()
            pre = preprocess(cloud, cam)
            stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                      ir="frameir")
            if len(stream) == 0:
                continue
            for threshold, lag in ((0.996, 0), (0.996, 2), (0.9, 1)):
                assert_tables_identical(
                    stream.quad_table(threshold, lag, ir="frameir"),
                    stream.quad_table(threshold, lag, ir="legacy"))

    def test_random_workloads_match_oracle(self):
        rng = np.random.default_rng(fuzz_seed("frameir-wl"))
        for trial in range(5):
            cloud = random_cloud(rng, int(rng.integers(30, 160)),
                                 opacity_low=0.5)
            cam = camera()
            pre = preprocess(cloud, cam)
            stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                      ir="frameir")
            for variant in ("baseline", "het+qm"):
                cfg = variant_config(variant)
                wl_ir, wl_legacy = both_workloads(stream, cfg)
                assert_workloads_identical(wl_ir, wl_legacy)

    def test_random_draws_cycle_exact(self):
        """IR-digested and legacy-digested workloads simulate identically."""
        rng = np.random.default_rng(fuzz_seed("frameir-draw"))
        cloud = random_cloud(rng, 120, opacity_low=0.4)
        cam = camera()
        pre = preprocess(cloud, cam)
        stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                  ir="frameir")
        for variant in ("baseline", "qm", "het", "het+qm"):
            cfg = variant_config(variant)
            wl_ir, wl_legacy = both_workloads(stream, cfg)
            res_ir = GraphicsPipeline(cfg).draw(wl_ir)
            res_legacy = GraphicsPipeline(cfg).draw(wl_legacy)
            assert res_ir.cycles == res_legacy.cycles, variant
            for unit, stats in res_ir.stats.units.items():
                assert stats.items == res_legacy.stats.units[unit].items
                assert (stats.busy_cycles
                        == res_legacy.stats.units[unit].busy_cycles)


class TestDigestionRegimes:
    """The five stream regimes of the digestion oracle contract."""

    def test_empty_stream(self):
        cam = camera()
        splats = project_gaussians(
            random_cloud(np.random.default_rng(0), 4), cam).subset(
                np.array([], dtype=int))
        stream = rasterize_splats(splats, cam.width, cam.height,
                                  ir="frameir")
        assert len(stream) == 0
        assert isinstance(stream.frameir, FrameIR)
        assert_tables_identical(stream.quad_table(0.996, 0, ir="frameir"),
                                stream.quad_table(0.996, 0, ir="legacy"))
        cfg = variant_config("het+qm")
        assert_workloads_identical(*both_workloads(stream, cfg))

    def test_single_pixel_splats(self):
        """Subpixel splats: every primitive covers exactly one pixel, so
        every quad holds single-fragment scanline spans."""
        rng = np.random.default_rng(fuzz_seed("single-pixel"))
        cloud = random_cloud(rng, 90, scale_low=0.0015, scale_high=0.003,
                             opacity_low=0.6)
        cam = camera()
        pre = preprocess(cloud, cam)
        stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                  ir="frameir")
        assert len(stream) > 0
        counts = np.bincount(stream.prim_ids)
        # Subpixel splats: floor/ceil bound snapping caps coverage at a
        # 4x4 pixel neighbourhood per primitive.
        assert counts.max() <= 16
        assert_tables_identical(stream.quad_table(0.996, 2, ir="frameir"),
                                stream.quad_table(0.996, 2, ir="legacy"))
        cfg = variant_config("het+qm")
        assert_workloads_identical(*both_workloads(stream, cfg))

    def test_max_fragments_clamped(self):
        """At the max_fragments guard boundary the IR still rides along
        and digests identically (one below, both paths raise)."""
        rng = np.random.default_rng(fuzz_seed("clamp"))
        cloud = random_cloud(rng, 40, scale_low=0.05, scale_high=0.4)
        cam = camera()
        pre = preprocess(cloud, cam)
        total = len(rasterize_splats(pre.splats, cam.width, cam.height))
        assert total > 0
        stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                  max_fragments=total, ir="frameir")
        assert isinstance(stream.frameir, FrameIR)
        with pytest.raises(MemoryError):
            rasterize_splats(pre.splats, cam.width, cam.height,
                             max_fragments=total - 1)
        assert_tables_identical(stream.quad_table(0.996, 0, ir="frameir"),
                                stream.quad_table(0.996, 0, ir="legacy"))
        cfg = variant_config("baseline")
        assert_workloads_identical(*both_workloads(stream, cfg))

    def test_het_terminated(self, deep_cloud, deep_camera):
        """Depth-stacked opaque layers saturate pixels: the termination
        sets are non-trivial and must match exactly."""
        pre = preprocess(deep_cloud, deep_camera)
        deep_stream = rasterize_splats(
            pre.splats, deep_camera.width, deep_camera.height,
            ir="frameir")
        cfg = variant_config("het+qm")
        wl_ir, wl_legacy = both_workloads(deep_stream, cfg)
        assert wl_ir.n_terminated_pixels > 0
        assert wl_ir.terminated_stencil_tags.size > 0
        assert_workloads_identical(wl_ir, wl_legacy)
        assert_tables_identical(
            deep_stream.quad_table(cfg.termination_alpha,
                                   cfg.het_inflight_lag, ir="frameir"),
            deep_stream.quad_table(cfg.termination_alpha,
                                   cfg.het_inflight_lag, ir="legacy"))

    def test_warm_handoff(self):
        """Whichever path digests first (warming the stream's shared
        pixel-sort/arrival caches), the other must reproduce it exactly —
        and the cached tables must be path-keyed, not shared."""
        rng = np.random.default_rng(fuzz_seed("warm"))
        cloud = random_cloud(rng, 80, opacity_low=0.55)
        cam = camera()
        pre = preprocess(cloud, cam)
        cfg = variant_config("het+qm")

        stream_a = rasterize_splats(pre.splats, cam.width, cam.height,
                                    ir="frameir")
        first_a = DrawWorkload.from_stream(stream_a, cfg, ir="frameir")
        second_a = DrawWorkload.from_stream(stream_a, cfg, ir="legacy")
        assert first_a.quads is not second_a.quads
        assert_workloads_identical(first_a, second_a)

        stream_b = rasterize_splats(pre.splats, cam.width, cam.height,
                                    ir="frameir")
        first_b = DrawWorkload.from_stream(stream_b, cfg, ir="legacy")
        second_b = DrawWorkload.from_stream(stream_b, cfg, ir="frameir")
        assert_workloads_identical(second_b, first_b)
        assert_tables_identical(second_b.quads, first_a.quads)


class TestIRKnob:
    def test_resolve_ir_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_IR", raising=False)
        assert resolve_ir() == "auto"
        monkeypatch.setenv("REPRO_IR", "legacy")
        assert resolve_ir() == "legacy"
        assert resolve_ir("frameir") == "frameir"
        with pytest.raises(ValueError, match="ir mode"):
            resolve_ir("warp")

    def test_frameir_mode_requires_ir(self):
        rng = np.random.default_rng(3)
        cloud = random_cloud(rng, 20)
        cam = camera()
        pre = preprocess(cloud, cam)
        bare = rasterize_splats(pre.splats, cam.width, cam.height,
                                ir="legacy")
        assert bare.frameir is None
        if len(bare):
            with pytest.raises(ValueError, match="frameir"):
                bare.quad_table(0.996, 0, ir="frameir")
            # auto falls back to the legacy path on bare streams.
            assert bare.quad_table(0.996, 0, ir="auto") is not None

    def test_env_frameir_default_stays_best_effort(self, monkeypatch):
        """A ``$REPRO_IR=frameir`` process default must not harden into a
        by-name requirement inside renderers constructed under it: bare
        streams (hand-built or scalar-rasterised) keep digesting through
        the legacy fallback."""
        monkeypatch.setenv("REPRO_IR", "frameir")
        from repro.core.vrpipe import HardwareRenderer
        from repro.render.splat_raster import rasterize_splats_scalar

        rng = np.random.default_rng(7)
        cloud = random_cloud(rng, 25, opacity_low=0.5)
        cam = camera(64, 64)
        pre = preprocess(cloud, cam)
        bare = rasterize_splats_scalar(pre.splats, cam.width, cam.height)
        assert bare.frameir is None
        result = HardwareRenderer().render_stream(bare, pre)
        assert result.draw.cycles > 0

    def test_legacy_stream_has_no_ir(self):
        rng = np.random.default_rng(4)
        cloud = random_cloud(rng, 15)
        cam = camera()
        pre = preprocess(cloud, cam)
        stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                  ir="frameir")
        assert isinstance(stream.frameir, FrameIR)
        assert stream.frameir.n_fragments == len(stream)


class TestDtypePins:
    """Golden-equality check for the R3 dtype annotations.

    The explicit ``dtype=`` pins added to the columnar modules
    (``frameir.py``, ``fragstream.py``, ``flushplan.py``, ``caches.py``)
    must *document* the dtypes the golden outputs already had, not change
    them: every quad-table and workload column is exactly ``int64`` on
    both digestion paths.
    """

    def test_columns_are_int64_on_both_paths(self):
        rng = np.random.default_rng(fuzz_seed("dtype-pins"))
        cloud = random_cloud(rng, 90)
        cam = camera()
        pre = preprocess(cloud, cam)
        stream = rasterize_splats(pre.splats, cam.width, cam.height,
                                  ir="frameir")
        assert len(stream) > 0
        for ir in ("frameir", "legacy"):
            table = stream.quad_table(0.996, 0, ir=ir)
            for name in TABLE_COLUMNS:
                assert getattr(table, name).dtype == np.int64, (ir, name)
        config = variant_config("baseline")
        for workload in both_workloads(stream, config):
            for name in GROUP_COLUMNS:
                assert getattr(workload, name).dtype == np.int64, name

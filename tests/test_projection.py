"""EWA projection: conics, tight OBBs, depths."""

import numpy as np
import pytest

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.projection import (
    ALPHA_EPS,
    ALPHA_MAX,
    _eigendecompose_2x2,
    project_gaussians,
)


def _cloud_at(positions, scale=0.05, opacity=0.8):
    positions = np.atleast_2d(positions)
    n = positions.shape[0]
    return GaussianCloud(
        positions=positions,
        scales=np.full((n, 3), scale),
        quaternions=np.tile([1.0, 0, 0, 0], (n, 1)),
        opacities=np.full(n, opacity),
        sh=np.zeros((n, 1, 3)),
    )


@pytest.fixture
def cam():
    return Camera.look_at(eye=(0, 0, -2.0), target=(0, 0, 0),
                          width=128, height=128)


class TestEigen2x2:
    def test_diagonal(self):
        vals, vecs = _eigendecompose_2x2(
            np.array([4.0]), np.array([0.0]), np.array([1.0]))
        assert vals[0] == pytest.approx([4.0, 1.0])
        assert abs(vecs[0, 0] @ [1, 0]) == pytest.approx(1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            m = rng.normal(size=(2, 2))
            sym = m @ m.T + 0.1 * np.eye(2)
            vals, vecs = _eigendecompose_2x2(
                np.array([sym[0, 0]]), np.array([sym[0, 1]]),
                np.array([sym[1, 1]]))
            ref = np.sort(np.linalg.eigvalsh(sym))[::-1]
            assert vals[0] == pytest.approx(ref, rel=1e-9)
            # Eigenvectors orthonormal.
            assert vecs[0] @ vecs[0].T == pytest.approx(np.eye(2), abs=1e-9)


class TestProjection:
    def test_center_projects_to_image_center(self, cam):
        splats = project_gaussians(_cloud_at([0.0, 0.0, 0.0]), cam)
        assert splats.centers[0] == pytest.approx([64.0, 64.0])

    def test_depth_is_camera_z(self, cam):
        splats = project_gaussians(_cloud_at([0.0, 0.0, 0.0]), cam)
        assert splats.depths[0] == pytest.approx(2.0)

    def test_closer_gaussian_is_bigger(self, cam):
        cloud = _cloud_at([[0, 0, 0.0], [0, 0, 2.0]])
        splats = project_gaussians(cloud, cam)
        assert splats.radii[0].max() > splats.radii[1].max()

    def test_alpha_at_obb_corner_below_eps(self, cam):
        """The tight OBB boundary is the alpha == 1/255 iso-line."""
        splats = project_gaussians(_cloud_at([0.0, 0.0, 0.0], opacity=0.9),
                                   cam)
        a, b, c = splats.conics[0]
        # Walk to the boundary along the major axis.
        axis = splats.axes[0, 0]
        r = splats.radii[0, 0]
        dx, dy = axis * r
        power = 0.5 * (a * dx * dx + c * dy * dy) + b * dx * dy
        alpha = splats.opacities[0] * np.exp(-power)
        assert alpha == pytest.approx(ALPHA_EPS, rel=1e-6)

    def test_opacity_capped(self, cam):
        splats = project_gaussians(_cloud_at([0, 0, 0], opacity=1.0), cam)
        assert splats.opacities[0] == pytest.approx(ALPHA_MAX)

    def test_low_opacity_zero_radius_at_eps(self, cam):
        splats = project_gaussians(
            _cloud_at([0, 0, 0], opacity=ALPHA_EPS * 0.99), cam)
        assert splats.radii[0] == pytest.approx([0.0, 0.0], abs=1e-9)

    def test_behind_camera_zero_radius(self, cam):
        splats = project_gaussians(_cloud_at([0, 0, -5.0]), cam)
        assert (splats.radii[0] == 0).all()

    def test_conic_is_inverse_covariance(self, cam):
        splats = project_gaussians(_cloud_at([0.3, -0.2, 0.1]), cam)
        a, b, c = splats.conics[0]
        conic = np.array([[a, b], [b, c]])
        vals, vecs = np.linalg.eigh(conic)
        assert vals.min() > 0  # positive definite

    def test_bounding_boxes_contain_centers(self, cam):
        cloud = _cloud_at([[0, 0, 0], [0.4, 0.2, 0.5]])
        splats = project_gaussians(cloud, cam)
        boxes = splats.bounding_boxes()
        assert (boxes[:, 0] <= splats.centers[:, 0]).all()
        assert (boxes[:, 2] >= splats.centers[:, 0]).all()

    def test_subset(self, cam):
        splats = project_gaussians(_cloud_at([[0, 0, 0], [0.1, 0, 0]]), cam)
        sub = splats.subset(np.array([1]))
        assert len(sub) == 1
        assert sub.centers[0] == pytest.approx(splats.centers[1])

    def test_colors_passthrough(self, cam):
        colors = np.array([[0.1, 0.2, 0.3]])
        splats = project_gaussians(_cloud_at([0, 0, 0]), cam, colors=colors)
        assert splats.colors == pytest.approx(colors)

    def test_rejects_bad_color_shape(self, cam):
        with pytest.raises(ValueError):
            project_gaussians(_cloud_at([0, 0, 0]), cam,
                              colors=np.zeros((2, 3)))

    def test_anisotropic_obb_orientation(self, cam):
        """A Gaussian elongated along world-x must produce a wide splat."""
        cloud = GaussianCloud(
            positions=[[0.0, 0.0, 0.0]],
            scales=[[0.3, 0.02, 0.02]],
            quaternions=[[1.0, 0, 0, 0]],
            opacities=[0.9],
            sh=np.zeros((1, 1, 3)))
        splats = project_gaussians(cloud, cam)
        major = splats.axes[0, 0]
        assert abs(major[0]) > 0.99  # major axis is horizontal on screen
        assert splats.radii[0, 0] > 3 * splats.radii[0, 1]

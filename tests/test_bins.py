"""TGC and TC bin dynamics: the exact flush semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel.tc import TileCoalescer
from repro.hwmodel.tgc import TileGridCoalescer


class TestTGC:
    def test_full_flush(self):
        tgc = TileGridCoalescer(n_bins=4, bin_capacity=3)
        assert tgc.insert(0, 10) == []
        assert tgc.insert(0, 11) == []
        flushed = tgc.insert(0, 12)
        assert len(flushed) == 1
        grid, prims, reason = flushed[0]
        assert grid == 0 and prims == [10, 11, 12]
        assert reason == TileGridCoalescer.FLUSH_FULL

    def test_eviction_oldest(self):
        tgc = TileGridCoalescer(n_bins=2, bin_capacity=10)
        tgc.insert(0, 1)
        tgc.insert(1, 2)
        flushed = tgc.insert(2, 3)  # no free bin: evict grid 0
        assert flushed[0][0] == 0
        assert flushed[0][2] == TileGridCoalescer.FLUSH_EVICT

    def test_drain_in_age_order(self):
        tgc = TileGridCoalescer()
        tgc.insert(5, 0)
        tgc.insert(3, 1)
        drained = tgc.drain()
        assert [g for g, _, _ in drained] == [5, 3]
        assert tgc.occupancy == 0

    def test_storage_matches_table3(self):
        tgc = TileGridCoalescer(n_bins=128, bin_capacity=16)
        assert tgc.storage_bytes() == 24832  # 24.25 KB

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TileGridCoalescer(n_bins=0)


class TestTC:
    def _rows(self, n):
        return np.arange(n)

    def test_full_flush(self):
        tc = TileCoalescer(n_bins=4, bin_capacity=8)
        assert tc.insert(0, self._rows(7)) == []
        flushed = tc.insert(0, self._rows(1))
        assert len(flushed) == 1
        assert len(flushed[0]) == 8
        assert flushed[0].reason == TileCoalescer.FLUSH_FULL

    def test_overflow_splits(self):
        tc = TileCoalescer(n_bins=4, bin_capacity=8)
        flushed = tc.insert(0, self._rows(20))
        assert [len(b) for b in flushed] == [8, 8]
        assert tc.occupancy == 1  # 4 quads remain binned

    def test_eviction_on_pressure(self):
        tc = TileCoalescer(n_bins=2, bin_capacity=100)
        tc.insert(0, self._rows(3))
        tc.insert(1, self._rows(3))
        flushed = tc.insert(2, self._rows(3))
        assert flushed[0].tile_id == 0
        assert flushed[0].reason == TileCoalescer.FLUSH_EVICT

    def test_round_robin_32_tiles_coalesce(self):
        """The §VII-A probe's good case: N <= bins keeps bins resident."""
        tc = TileCoalescer(n_bins=32, bin_capacity=128)
        flushed = []
        for _round in range(10):
            for tile in range(32):
                flushed += tc.insert(tile, self._rows(1))
        assert flushed == []  # everything still binned
        assert tc.occupancy == 32

    def test_round_robin_33_tiles_thrash(self):
        """N = 33 evicts every round: single-quad flushes."""
        tc = TileCoalescer(n_bins=32, bin_capacity=128)
        flushed = []
        for _round in range(10):
            for tile in range(33):
                flushed += tc.insert(tile, self._rows(1))
        assert len(flushed) > 250
        assert all(len(b) == 1 for b in flushed)

    def test_timeout_flush(self):
        tc = TileCoalescer(n_bins=8, bin_capacity=100, timeout_quads=5)
        tc.insert(0, self._rows(2))
        flushed = tc.insert(1, self._rows(6))
        timeouts = [b for b in flushed if b.reason == TileCoalescer.FLUSH_TIMEOUT]
        assert len(timeouts) == 1 and timeouts[0].tile_id == 0

    def test_drain(self):
        tc = TileCoalescer()
        tc.insert(3, self._rows(2))
        drained = tc.drain()
        assert len(drained) == 1
        assert drained[0].reason == TileCoalescer.FLUSH_FINAL

    def test_batch_order_preserved(self):
        tc = TileCoalescer(n_bins=2, bin_capacity=4)
        tc.insert(0, np.array([5, 6]))
        flushed = tc.insert(0, np.array([7, 8]))
        assert flushed[0].quad_rows.tolist() == [5, 6, 7, 8]

    def test_rejects_2d_rows(self):
        with pytest.raises(ValueError):
            TileCoalescer().insert(0, np.zeros((2, 2)))

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            TileCoalescer(timeout_quads=0)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(1, 20)),
                min_size=1, max_size=60),
       st.integers(2, 8), st.integers(2, 16))
def test_tc_conservation_property(inserts, n_bins, capacity):
    """Every inserted quad is flushed exactly once, per-tile order kept."""
    tc = TileCoalescer(n_bins=n_bins, bin_capacity=capacity)
    flushed = []
    next_row = 0
    expected = {}
    for tile, count in inserts:
        rows = np.arange(next_row, next_row + count)
        expected.setdefault(tile, []).extend(rows.tolist())
        next_row += count
        flushed += tc.insert(tile, rows)
    flushed += tc.drain()
    # Conservation: the union of flush batches is exactly the input.
    seen = np.concatenate([b.quad_rows for b in flushed])
    assert sorted(seen.tolist()) == list(range(next_row))
    # Order: concatenating a tile's flushes reproduces insertion order.
    per_tile = {}
    for batch in flushed:
        per_tile.setdefault(batch.tile_id, []).extend(
            batch.quad_rows.tolist())
    assert per_tile == expected
    # Capacity: no flush exceeds the bin size.
    assert all(len(b) <= capacity for b in flushed)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 99)),
                min_size=1, max_size=50),
       st.integers(2, 6), st.integers(2, 8))
def test_tgc_conservation_property(inserts, n_bins, capacity):
    """TGC flushes preserve per-grid primitive order and lose nothing."""
    tgc = TileGridCoalescer(n_bins=n_bins, bin_capacity=capacity)
    flushed = []
    expected = {}
    for grid, prim in inserts:
        expected.setdefault(grid, []).append(prim)
        flushed += tgc.insert(grid, prim)
    flushed += tgc.drain()
    per_grid = {}
    for grid, prims, _reason in flushed:
        per_grid.setdefault(grid, []).extend(prims)
    assert per_grid == expected
    assert all(len(prims) <= capacity for _g, prims, _r in flushed)


def _flush_signature(batch):
    return (batch.tile_id, batch.reason, batch.quad_rows.tolist())


class TestTCBatchInsert:
    """insert_groups must reproduce sequential insert() flush-for-flush."""

    def _random_groups(self, seed, n_groups=120, n_tiles=12):
        rng = np.random.default_rng(seed)
        lengths = rng.integers(1, 40, n_groups)
        ends = np.cumsum(lengths)
        starts = ends - lengths
        tiles = rng.integers(0, n_tiles, n_groups)
        rows = np.arange(ends[-1], dtype=np.int64)
        return tiles, starts, ends, rows

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_sequential(self, seed):
        tiles, starts, ends, rows = self._random_groups(seed)
        seq = TileCoalescer(n_bins=4, bin_capacity=16, timeout_quads=50)
        bat = TileCoalescer(n_bins=4, bin_capacity=16, timeout_quads=50)
        expected = []
        for tile, s, e in zip(tiles, starts, ends):
            expected.extend(seq.insert(int(tile), rows[s:e]))
        got = list(bat.insert_groups(tiles, starts, ends, rows))
        expected.extend(seq.drain())
        got.extend(bat.drain())
        assert ([_flush_signature(b) for b in got]
                == [_flush_signature(b) for b in expected])
        assert bat.flush_counts == seq.flush_counts
        assert bat.quads_inserted == seq.quads_inserted

    def test_is_a_generator(self):
        tc = TileCoalescer(n_bins=2, bin_capacity=4)
        gen = tc.insert_groups(np.array([0]), np.array([0]), np.array([2]),
                               np.arange(2))
        assert tc.quads_inserted == 0  # nothing consumed yet
        assert list(gen) == []
        assert tc.quads_inserted == 2


class TestRangePlanner:
    """RangeTileCoalescer must plan TileCoalescer's exact flush schedule."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("timeout", [None, 50])
    def test_plan_matches_flushes(self, seed, timeout):
        from repro.hwmodel.tc import RangeTileCoalescer

        rng = np.random.default_rng(seed)
        n_groups = 150
        lengths = rng.integers(1, 40, n_groups)
        ends = np.cumsum(lengths)
        starts = ends - lengths
        tiles = rng.integers(0, 10, n_groups)
        rows = np.arange(ends[-1], dtype=np.int64)

        ref = TileCoalescer(n_bins=4, bin_capacity=16, timeout_quads=timeout)
        expected = list(ref.insert_groups(tiles, starts, ends, rows))
        expected.extend(ref.drain())

        planner = RangeTileCoalescer(n_bins=4, bin_capacity=16,
                                     timeout_quads=timeout)
        for tile, s, e in zip(tiles.tolist(), starts.tolist(), ends.tolist()):
            planner.insert_group(tile, s, e)
        planner.drain()

        assert planner.flush_tile == [b.tile_id for b in expected]
        assert planner.flush_reason == [b.reason for b in expected]
        assert planner.flush_counts == ref.flush_counts
        assert planner.quads_inserted == ref.quads_inserted
        # Expand the planned row segments and compare flush-for-flush.
        seg_starts = np.asarray(planner.seg_starts)
        seg_ends = np.asarray(planner.seg_ends)
        bounds = planner.flush_seg_bounds
        for i, batch in enumerate(expected):
            segs = zip(seg_starts[bounds[i]:bounds[i + 1]],
                       seg_ends[bounds[i]:bounds[i + 1]])
            planned = [r for s, e in segs for r in range(s, e)]
            assert planned == batch.quad_rows.tolist()

    def test_rejects_bad_parameters(self):
        from repro.hwmodel.tc import RangeTileCoalescer

        with pytest.raises(ValueError):
            RangeTileCoalescer(n_bins=0)
        with pytest.raises(ValueError):
            RangeTileCoalescer(timeout_quads=0)

    @pytest.mark.parametrize("timeout", [None, 50])
    @pytest.mark.parametrize("seed", [0, 5])
    def test_plan_groups_matches_insert_group(self, seed, timeout):
        """The collapsed batch pass == one insert_group call per group,
        including repeated same-tile runs (which the batch pass coalesces
        into one resolved bin entry)."""
        from repro.hwmodel.tc import RangeTileCoalescer

        rng = np.random.default_rng(seed)
        n_groups = 200
        lengths = rng.integers(1, 40, n_groups)
        ends = np.cumsum(lengths)
        starts = ends - lengths
        # Run-heavy tile sequence: geometric runs of the same tile.
        tiles = np.repeat(rng.integers(0, 8, 60),
                          rng.integers(1, 8, 60))[:n_groups]
        tiles = np.resize(tiles, n_groups)

        ref = RangeTileCoalescer(n_bins=4, bin_capacity=16,
                                 timeout_quads=timeout)
        for tile, s, e in zip(tiles.tolist(), starts.tolist(), ends.tolist()):
            ref.insert_group(tile, s, e)
        ref.drain()

        bat = RangeTileCoalescer(n_bins=4, bin_capacity=16,
                                 timeout_quads=timeout)
        bat.plan_groups(tiles, starts, ends)
        bat.drain()

        assert bat.flush_tile == ref.flush_tile
        assert bat.flush_reason == ref.flush_reason
        assert bat.flush_counts == ref.flush_counts
        assert bat.quads_inserted == ref.quads_inserted
        # Row streams must expand identically (segment splits may differ
        # when runs collapse, so compare per-flush expanded rows).
        for i in range(len(bat.flush_tile)):
            def rows(c, i=i):
                lo, hi = c.flush_seg_bounds[i], c.flush_seg_bounds[i + 1]
                return [r for s, e in zip(c.seg_starts[lo:hi],
                                          c.seg_ends[lo:hi])
                        for r in range(s, e)]
            assert rows(bat) == rows(ref)


class TestSharedTimeoutPath:
    """Scalar and range coalescers share one timeout code path; the
    ``tc_flush_timeout`` accounting must be identical across both (and
    hence across the scalar and batched flush engines)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_timeout_counts_equal(self, seed):
        from repro.hwmodel.tc import RangeTileCoalescer

        rng = np.random.default_rng(seed)
        n_groups = 120
        lengths = rng.integers(1, 12, n_groups)
        ends = np.cumsum(lengths)
        starts = ends - lengths
        tiles = rng.integers(0, 12, n_groups)
        rows = np.arange(ends[-1], dtype=np.int64)

        scalar = TileCoalescer(n_bins=4, bin_capacity=16, timeout_quads=9)
        flushed = list(scalar.insert_groups(tiles, starts, ends, rows))
        flushed.extend(scalar.drain())

        planner = RangeTileCoalescer(n_bins=4, bin_capacity=16,
                                     timeout_quads=9)
        planner.plan_groups(tiles, starts, ends)
        planner.drain()

        assert scalar.flush_counts[TileCoalescer.FLUSH_TIMEOUT] > 0
        assert (planner.flush_counts[TileCoalescer.FLUSH_TIMEOUT]
                == scalar.flush_counts[TileCoalescer.FLUSH_TIMEOUT])
        assert planner.flush_counts == scalar.flush_counts
        assert planner.flush_reason == [b.reason for b in flushed]


class TestTGCBatchInsert:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_matches_sequential(self, seed):
        rng = np.random.default_rng(seed)
        grids = rng.integers(0, 9, 300)
        prims = np.arange(300)
        seq = TileGridCoalescer(n_bins=3, bin_capacity=5)
        bat = TileGridCoalescer(n_bins=3, bin_capacity=5)
        expected = []
        for grid, prim in zip(grids, prims):
            expected.extend(seq.insert(int(grid), int(prim)))
        got = list(bat.insert_pairs(grids, prims))
        expected.extend(seq.drain())
        got.extend(bat.drain())
        assert got == expected
        assert bat.flush_counts == seq.flush_counts
        assert bat.prims_inserted == seq.prims_inserted

    @pytest.mark.parametrize("seed", [0, 7])
    def test_plan_groups_matches_insert_pairs(self, seed):
        """The collapsed planning pass == insert_pairs + drain exactly."""
        rng = np.random.default_rng(seed)
        grids = rng.integers(0, 9, 300)
        prims = np.arange(300)
        seq = TileGridCoalescer(n_bins=3, bin_capacity=5)
        expected = []
        for grid, prim in zip(grids, prims):
            expected.extend(seq.insert(int(grid), int(prim)))
        expected.extend(seq.drain())
        plan = TileGridCoalescer(n_bins=3, bin_capacity=5)
        got = plan.plan_groups(grids, prims)
        assert got == expected
        assert plan.flush_counts == seq.flush_counts
        assert plan.prims_inserted == seq.prims_inserted

"""Front-to-back blending: the associativity VR-Pipe's QM depends on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.blending import (
    accumulate_back_to_front,
    accumulate_front_to_back,
    back_to_front_blend,
    front_to_back_blend,
    premultiply,
)


def rgba(r, g, b, a):
    return premultiply(np.array([[r, g, b]]), np.array([a]))[0]


class TestPremultiply:
    def test_basic(self):
        out = premultiply(np.array([[1.0, 0.5, 0.0]]), np.array([0.5]))
        assert out[0] == pytest.approx([0.5, 0.25, 0.0, 0.5])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            premultiply(np.zeros((2, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            premultiply(np.zeros((2, 4)), np.zeros(2))


class TestFrontToBack:
    def test_opaque_front_wins(self):
        front = rgba(1, 0, 0, 1.0)
        back = rgba(0, 1, 0, 1.0)
        out = front_to_back_blend(front, back)
        assert out == pytest.approx(front)

    def test_transparent_front_passes(self):
        front = rgba(1, 0, 0, 0.0)
        back = rgba(0, 1, 0, 0.7)
        out = front_to_back_blend(front, back)
        assert out == pytest.approx(back)

    def test_alpha_accumulates(self):
        out = front_to_back_blend(rgba(0, 0, 0, 0.5), rgba(0, 0, 0, 0.5))
        assert out[3] == pytest.approx(0.75)

    def test_not_commutative(self):
        a = rgba(1, 0, 0, 0.6)
        b = rgba(0, 1, 0, 0.6)
        assert not np.allclose(front_to_back_blend(a, b),
                               front_to_back_blend(b, a))

    def test_batch_rows(self):
        front = np.stack([rgba(1, 0, 0, 0.5)] * 3)
        back = np.stack([rgba(0, 1, 0, 0.5)] * 3)
        out = front_to_back_blend(front, back)
        assert out.shape == (3, 4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            front_to_back_blend(np.zeros(4), np.zeros((2, 4)))


class TestAccumulate:
    def test_empty(self):
        assert accumulate_front_to_back(np.empty((0, 4))).tolist() == [0] * 4

    def test_single(self):
        f = rgba(0.2, 0.4, 0.6, 0.5)
        assert accumulate_front_to_back([f]) == pytest.approx(f)

    def test_matches_equation1(self):
        """Fold == the paper's Equation 1 sum-of-weighted-colours form."""
        rng = np.random.default_rng(5)
        colors = rng.uniform(0, 1, size=(6, 3))
        alphas = rng.uniform(0.05, 0.9, size=6)
        folded = accumulate_front_to_back(premultiply(colors, alphas))
        expected = np.zeros(3)
        transmittance = 1.0
        for c, a in zip(colors, alphas):
            expected += transmittance * a * c
            transmittance *= 1.0 - a
        assert folded[:3] == pytest.approx(expected)
        assert folded[3] == pytest.approx(1.0 - transmittance)


class TestBackToFront:
    def test_single(self):
        f = rgba(0.2, 0.4, 0.6, 0.5)
        assert accumulate_back_to_front([f]) == pytest.approx(f)

    def test_over_operator(self):
        back = rgba(0, 1, 0, 0.5)
        front = rgba(1, 0, 0, 0.5)
        out = back_to_front_blend(back, front)
        # front contributes fully; back attenuated by front's alpha.
        assert out == pytest.approx(front + 0.5 * back)

    def test_empty(self):
        assert accumulate_back_to_front(np.empty((0, 4))).tolist() == [0] * 4

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            back_to_front_blend(np.zeros(4), np.zeros((2, 4)))


rgba_strategy = st.tuples(
    st.floats(0, 1), st.floats(0, 1), st.floats(0, 1), st.floats(0, 0.99),
).map(lambda t: premultiply(np.array([t[:3]]), np.array([t[3]]))[0])


@settings(max_examples=100, deadline=None)
@given(rgba_strategy, rgba_strategy, rgba_strategy)
def test_associativity(c1, c2, c3):
    """Equation 2: f_fb(f_fb(c1,c2),c3) == f_fb(c1,f_fb(c2,c3))."""
    left = front_to_back_blend(front_to_back_blend(c1, c2), c3)
    right = front_to_back_blend(c1, front_to_back_blend(c2, c3))
    np.testing.assert_allclose(left, right, atol=1e-12)


@settings(max_examples=100, deadline=None)
@given(st.lists(rgba_strategy, min_size=1, max_size=10))
def test_front_to_back_equals_back_to_front(fragments):
    """The two compositing orders agree — the equivalence that lets OpenGL
    viewers blend back-to-front while the paper's pipeline goes
    front-to-back to enable early termination."""
    seq = np.stack(fragments)
    np.testing.assert_allclose(accumulate_front_to_back(seq),
                               accumulate_back_to_front(seq), atol=1e-12)


@settings(max_examples=100, deadline=None)
@given(st.lists(rgba_strategy, min_size=1, max_size=8),
       st.integers(0, 7))
def test_arbitrary_split_point(fragments, split):
    """Partially blending any prefix then the rest equals the full fold."""
    split = min(split, len(fragments) - 1)
    full = accumulate_front_to_back(np.stack(fragments))
    if split == 0:
        prefix = fragments[0]
        rest = fragments[1:]
    else:
        prefix = accumulate_front_to_back(np.stack(fragments[:split + 1]))
        rest = fragments[split + 1:]
    partial = prefix
    for frag in rest:
        partial = front_to_back_blend(partial, frag)
    np.testing.assert_allclose(partial, full, atol=1e-12)

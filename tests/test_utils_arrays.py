"""Segmented-reduction helpers: exact semantics and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.arrays import (
    segment_boundaries,
    segmented_cumprod_exclusive,
    segmented_cumsum,
    segmented_first_index_where,
    segmented_sum,
)


class TestSegmentBoundaries:
    def test_single_segment(self):
        assert segment_boundaries(np.array([3, 3, 3])).tolist() == [0]

    def test_multiple_segments(self):
        ids = np.array([0, 0, 2, 2, 2, 5])
        assert segment_boundaries(ids).tolist() == [0, 2, 5]

    def test_empty(self):
        assert segment_boundaries(np.array([])).size == 0

    def test_all_distinct(self):
        ids = np.arange(5)
        assert segment_boundaries(ids).tolist() == [0, 1, 2, 3, 4]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            segment_boundaries(np.zeros((2, 2)))


class TestSegmentedSum:
    def test_basic(self):
        ids = np.array([0, 0, 1, 1, 1])
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert segmented_sum(vals, ids).tolist() == [3.0, 12.0]

    def test_2d_values(self):
        ids = np.array([0, 0, 1])
        vals = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        out = segmented_sum(vals, ids)
        assert out.tolist() == [[3.0, 30.0], [3.0, 30.0]]

    def test_empty(self):
        assert segmented_sum(np.array([]), np.array([])).size == 0


class TestSegmentedCumsum:
    def test_restarts_each_segment(self):
        ids = np.array([0, 0, 0, 1, 1])
        vals = np.array([1.0, 1.0, 1.0, 5.0, 5.0])
        assert segmented_cumsum(vals, ids).tolist() == [1, 2, 3, 5, 10]

    def test_negative_values(self):
        # Regression guard: offsets must propagate correctly even when the
        # running total decreases (log-space transmittance is negative).
        ids = np.array([0, 0, 1, 1])
        vals = np.array([-1.0, -2.0, -3.0, -4.0])
        assert segmented_cumsum(vals, ids).tolist() == [-1, -3, -3, -7]

    def test_empty(self):
        assert segmented_cumsum(np.array([]), np.array([])).size == 0


class TestSegmentedCumprodExclusive:
    def test_first_element_is_one(self):
        ids = np.array([0, 0, 1])
        vals = np.array([0.5, 0.5, 0.25])
        out = segmented_cumprod_exclusive(vals, ids)
        assert out[0] == pytest.approx(1.0)
        assert out[2] == pytest.approx(1.0)

    def test_product_semantics(self):
        ids = np.zeros(4, dtype=int)
        vals = np.array([0.5, 0.4, 0.9, 0.1])
        out = segmented_cumprod_exclusive(vals, ids)
        expected = [1.0, 0.5, 0.2, 0.18]
        assert out == pytest.approx(expected)

    def test_zero_clamped(self):
        ids = np.zeros(3, dtype=int)
        vals = np.array([1.0, 0.0, 0.5])
        out = segmented_cumprod_exclusive(vals, ids)
        assert out[2] <= 1e-25  # effectively zero, not -inf/nan
        assert np.all(np.isfinite(out))


class TestSegmentedFirstIndexWhere:
    def test_finds_first(self):
        ids = np.array([0, 0, 0, 1, 1])
        mask = np.array([False, True, True, False, False])
        out = segmented_first_index_where(mask, ids)
        assert out.tolist() == [1, 2]  # segment 1 has none -> length

    def test_all_false_returns_length(self):
        ids = np.array([0, 0, 1])
        mask = np.zeros(3, dtype=bool)
        assert segmented_first_index_where(mask, ids).tolist() == [2, 1]


@st.composite
def segmented_data(draw):
    n_segments = draw(st.integers(1, 5))
    lengths = [draw(st.integers(1, 8)) for _ in range(n_segments)]
    ids = np.repeat(np.arange(n_segments), lengths)
    vals = np.array(draw(st.lists(
        st.floats(0.01, 0.99), min_size=int(ids.size), max_size=int(ids.size))))
    return ids, vals


@settings(max_examples=50, deadline=None)
@given(segmented_data())
def test_cumprod_matches_python_loop(data):
    ids, vals = data
    out = segmented_cumprod_exclusive(vals, ids)
    # Oracle: per-element exclusive product via Python.
    for i in range(ids.size):
        product = 1.0
        for j in range(i):
            if ids[j] == ids[i]:
                product *= vals[j]
        assert out[i] == pytest.approx(product, rel=1e-9)


@settings(max_examples=50, deadline=None)
@given(segmented_data())
def test_cumsum_matches_python_loop(data):
    ids, vals = data
    out = segmented_cumsum(vals, ids)
    for i in range(ids.size):
        total = sum(vals[j] for j in range(i + 1) if ids[j] == ids[i])
        assert out[i] == pytest.approx(total, rel=1e-9)

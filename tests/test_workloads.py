"""Workload catalog: profiles, builders, viewpoints."""

import numpy as np
import pytest

from repro.workloads.catalog import (
    LARGE_SCALE_SCENES,
    SCENARIO_SCENES,
    SCENES,
    build_scene,
    default_camera,
    get_profile,
    scene_names,
)
from repro.workloads.viewpoints import scene_viewpoints


class TestCatalog:
    def test_table2_scene_set(self):
        assert set(SCENES) == {"kitchen", "bonsai", "train", "truck",
                               "lego", "palace"}
        assert set(LARGE_SCALE_SCENES) == {"building", "rubble"}

    def test_scene_names_order(self):
        names = scene_names()
        assert names == ["kitchen", "bonsai", "train", "truck", "lego",
                         "palace"]
        assert len(scene_names(include_large=True)) == 8

    def test_scenario_scene_set(self):
        # Extra coverage regimes beyond the paper's figure sweeps; kept
        # out of scene_names() so the figure tables stay the paper's.
        assert set(SCENARIO_SCENES) == {"aerial", "garden"}
        assert "aerial" not in scene_names(include_large=True)
        assert get_profile("aerial").scene_type == "aerial"
        assert get_profile("garden").scene_type == "garden"

    def test_paper_facts(self):
        kitchen = get_profile("kitchen")
        assert kitchen.paper_resolution == (1552, 1040)
        assert kitchen.paper_gaussians == 1_850_000
        assert get_profile("truck").paper_gaussians == 2_540_000
        assert get_profile("building").paper_gaussians == 9_060_000

    def test_unknown_scene(self):
        with pytest.raises(KeyError, match="unknown scene"):
            get_profile("atrium")

    def test_build_scene_counts(self):
        for name in ("lego", "palace", "aerial", "garden"):
            profile = get_profile(name)
            cloud = build_scene(name)
            assert len(cloud) == profile.n_gaussians

    def test_under_producing_builder_topped_up(self, monkeypatch):
        """A builder that rounds low must be topped up to the profile count."""
        from repro.workloads import catalog

        profile = get_profile("lego")
        original = catalog._BUILDERS["synthetic"]

        def shorting_builder(prof, rng):
            cloud = original(prof, rng)
            return cloud.subset(np.arange(len(cloud) - 25))

        monkeypatch.setitem(catalog._BUILDERS, "synthetic", shorting_builder)
        a = build_scene("lego")
        b = build_scene("lego")
        assert len(a) == profile.n_gaussians
        assert (a.positions == b.positions).all()  # top-up is deterministic

    @pytest.mark.parametrize("name", ("aerial", "garden"))
    def test_scenario_builders_topped_up(self, name, monkeypatch):
        """The scenario builders round block sizes too: shorting them must
        trigger the same deterministic top-up as the Table II builders."""
        from repro.workloads import catalog

        profile = get_profile(name)
        original = catalog._BUILDERS[profile.scene_type]

        def shorting_builder(prof, rng):
            cloud = original(prof, rng)
            return cloud.subset(np.arange(len(cloud) - 17))

        monkeypatch.setitem(catalog._BUILDERS, profile.scene_type,
                            shorting_builder)
        a = build_scene(name)
        b = build_scene(name)
        assert len(a) == profile.n_gaussians
        assert (a.positions == b.positions).all()

    def test_scenario_builds_deterministic(self):
        for name in ("aerial", "garden"):
            a = build_scene(name, seed=0)
            b = build_scene(name, seed=0)
            assert (a.positions == b.positions).all()
            assert not (a.positions
                        == build_scene(name, seed=1).positions).all()

    def test_empty_builder_raises(self, monkeypatch):
        from repro.gaussians.gaussian import GaussianCloud
        from repro.workloads import catalog

        monkeypatch.setitem(
            catalog._BUILDERS, "synthetic",
            lambda prof, rng: GaussianCloud.empty(sh_degree=0))
        with pytest.raises(ValueError, match="empty"):
            build_scene("lego")

    def test_build_deterministic(self):
        a = build_scene("lego", seed=0)
        b = build_scene("lego", seed=0)
        assert (a.positions == b.positions).all()

    def test_seeds_differ(self):
        a = build_scene("lego", seed=0)
        b = build_scene("lego", seed=1)
        assert not (a.positions == b.positions).all()

    def test_default_camera_matches_profile(self):
        cam = default_camera("train")
        profile = get_profile("train")
        assert cam.width == profile.width
        assert cam.height == profile.height


class TestViewpoints:
    def test_count(self):
        assert len(scene_viewpoints("lego", 5)) == 5

    def test_resolution_matches(self):
        cams = scene_viewpoints("kitchen", 3)
        profile = get_profile("kitchen")
        assert all(c.width == profile.width for c in cams)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            scene_viewpoints("lego", 0)


class TestSceneStatistics:
    """The calibrated qualitative properties the experiments rely on."""

    @pytest.fixture(scope="class")
    def ratios(self):
        from repro.gaussians.preprocess import preprocess
        from repro.render.splat_raster import rasterize_splats
        out = {}
        for name in ("bonsai", "train", "lego", "aerial", "garden"):
            profile = get_profile(name)
            cloud = build_scene(name)
            cam = profile.camera()
            pre = preprocess(cloud, cam)
            stream = rasterize_splats(pre.splats, cam.width, cam.height)
            out[name] = stream.termination_ratio()
        return out

    def test_all_above_threshold(self, ratios):
        """Paper: every Table II scene's ratio exceeds 1.5."""
        for name in ("bonsai", "train", "lego"):
            assert ratios[name] > 1.5, name

    def test_outdoor_exceeds_indoor(self, ratios):
        assert ratios["train"] > ratios["bonsai"]

    def test_scenario_scenes_bracket_the_catalog(self, ratios):
        """The scenario profiles sit at the load extremes: the sparse
        aerial flyover barely terminates, the dense garden terminates
        more than it."""
        assert ratios["aerial"] < 1.15
        assert ratios["garden"] > ratios["aerial"] + 0.2
